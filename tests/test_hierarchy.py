"""Tests for multi-level cache hierarchies (repro.core.hierarchy)."""

import numpy as np
import pytest

from repro.core.cache import CacheConfig, simulate
from repro.core.hierarchy import hierarchy_bandwidths, simulate_hierarchy
from repro.core.machine import PAPER_MACHINE


def stream(seed=0, n=4000, span=2048):
    rng = np.random.default_rng(seed)
    return rng.integers(0, span, size=n) * 16


class TestSimulateHierarchy:
    def test_single_level_matches_simulate(self):
        addresses = stream()
        config = CacheConfig(1024, 32, 2)
        hierarchy = simulate_hierarchy(addresses, [config])
        flat = simulate(addresses, config)
        assert hierarchy.levels[0].misses == flat.misses
        assert hierarchy.memory_misses == flat.misses

    def test_l2_sees_l1_misses_only(self):
        addresses = stream()
        l1 = CacheConfig(512, 32, 2)
        l2 = CacheConfig(8192, 64, 2)
        hierarchy = simulate_hierarchy(addresses, [l1, l2])
        assert hierarchy.levels[1].accesses == hierarchy.levels[0].misses

    def test_memory_misses_bounded_by_big_single_cache(self):
        # L1+L2 cannot reach memory less often than a lone L2 of the
        # same outer size (inclusion-ish property for this traffic).
        addresses = stream(seed=3)
        l1 = CacheConfig(512, 32, 2)
        l2 = CacheConfig(8192, 64, None)
        hierarchy = simulate_hierarchy(addresses, [l1, l2])
        lone = simulate(addresses, l2)
        assert hierarchy.memory_misses >= lone.misses
        # ...but gets close: L2 filters nearly as well.
        assert hierarchy.memory_misses <= lone.misses * 2

    def test_l2_filters_most_l1_misses_on_looping_stream(self):
        # Footprint fits L2 but not L1: L2 local hit rate is high.
        addresses = np.tile(np.arange(0, 4096, 16), 20)
        l1 = CacheConfig(512, 32, 2)
        l2 = CacheConfig(8192, 64, 2)
        hierarchy = simulate_hierarchy(addresses, [l1, l2])
        assert hierarchy.local_miss_rate(1) < 0.05
        # Only the 64 cold line fetches reach memory (5120 accesses).
        assert hierarchy.memory_misses == 64
        assert hierarchy.memory_miss_rate == pytest.approx(64 / 5120)

    def test_three_levels(self):
        addresses = stream(seed=5)
        hierarchy = simulate_hierarchy(addresses, [
            CacheConfig(256, 32, 1),
            CacheConfig(2048, 64, 2),
            CacheConfig(16384, 128, None),
        ])
        assert hierarchy.n_levels == 3
        misses = [level.misses for level in hierarchy.levels]
        assert misses[0] >= misses[1] >= misses[2]

    def test_rejects_shrinking_lines(self):
        with pytest.raises(ValueError):
            simulate_hierarchy(stream(), [CacheConfig(512, 64, 2),
                                          CacheConfig(4096, 32, 2)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            simulate_hierarchy(stream(), [])


class TestHierarchyBandwidths:
    def test_monotone_decreasing_traffic(self):
        # Footprint (4 KB) fits L2 but not L1.
        addresses = stream(seed=7, span=256)
        hierarchy = simulate_hierarchy(addresses, [
            CacheConfig(512, 32, 2), CacheConfig(8192, 64, 2)])
        bandwidths = hierarchy_bandwidths(hierarchy, PAPER_MACHINE)
        assert len(bandwidths) == 2
        assert bandwidths[0] > 0
        # DRAM traffic (bytes) is below the L1-L2 traffic unless L2 is
        # useless; with these sizes it filters strongly.
        assert bandwidths[1] < bandwidths[0]

"""Tests for the shared experiment engine (repro.engine)."""

import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import miss_rate_curve
from repro.engine import (
    ArtifactStore,
    Engine,
    ExperimentSpec,
    TraceSpec,
    addresses_payload,
    fingerprint,
    render_calls,
    run_experiment,
)
from repro.pipeline.trace import TexelTrace
from repro.texture.layout import BlockedLayout, WilliamsLayout
from repro.texture.memory import AddressMapper, place_textures

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

SPEC = TraceSpec(scene="goblet", scale=0.1, order=("horizontal",))


def trace_columns(trace):
    return (trace.texture_id, trace.level, trace.tu, trace.tv,
            trace.tu_raw, trace.tv_raw, trace.kind)


def assert_traces_equal(a, b):
    for left, right in zip(trace_columns(a), trace_columns(b)):
        np.testing.assert_array_equal(left, right)
    assert a.n_fragments == b.n_fragments


class TestArtifactStore:
    def test_cold_miss_then_warm_hit(self, tmp_path):
        cold = Engine(store=ArtifactStore(tmp_path))
        before = render_calls()
        first = cold.render(SPEC)
        assert render_calls() == before + 1
        # Same engine: in-memory memo, still one render.
        assert cold.render(SPEC) is first

        # Fresh engine over the same store: zero renders, zero scene
        # builds, same trace and triangle counters.
        warm = Engine(store=ArtifactStore(tmp_path))
        second = warm.render(SPEC)
        assert render_calls() == before + 1
        assert not warm._scenes
        assert_traces_equal(first.trace, second.trace)
        assert second.n_fragments == first.n_fragments
        assert second.n_triangles_submitted == first.n_triangles_submitted
        assert second.n_triangles_rasterized == first.n_triangles_rasterized

    def test_warm_streams_skip_render_and_scene_build(self, tmp_path):
        cold = Engine(store=ArtifactStore(tmp_path))
        cold_addresses = cold.addresses(SPEC, ("blocked", 4))
        before = render_calls()
        warm = Engine(store=ArtifactStore(tmp_path))
        warm_addresses = warm.addresses(SPEC, ("blocked", 4))
        assert render_calls() == before
        assert not warm._scenes
        np.testing.assert_array_equal(cold_addresses, warm_addresses)

    def test_fingerprint_invalidation(self):
        base = fingerprint(addresses_payload(SPEC, ("blocked", 4)))
        changed = [
            addresses_payload(
                TraceSpec(scene="goblet", scale=0.2, order=("horizontal",)),
                ("blocked", 4)),
            addresses_payload(
                TraceSpec(scene="goblet", scale=0.1, order=("vertical",)),
                ("blocked", 4)),
            addresses_payload(SPEC, ("blocked", 8)),
            addresses_payload(SPEC, ("nonblocked",)),
        ]
        fingerprints = {base} | {fingerprint(p) for p in changed}
        assert len(fingerprints) == 5

    def test_miss_rate_curves_bit_identical_cold_vs_warm(self, tmp_path):
        sizes = [1024, 2048, 4096]
        cold = Engine(store=ArtifactStore(tmp_path))
        cold_curve = miss_rate_curve(cold.streams(SPEC, ("blocked", 4)), 32, sizes)
        warm = Engine(store=ArtifactStore(tmp_path))
        warm_curve = miss_rate_curve(warm.streams(SPEC, ("blocked", 4)), 32, sizes)
        np.testing.assert_array_equal(cold_curve.miss_rates, warm_curve.miss_rates)
        assert cold_curve.cold_miss_rate == warm_curve.cold_miss_rate

    def test_stats_and_clear(self, tmp_path):
        store = ArtifactStore(tmp_path)
        Engine(store=store).streams(SPEC, ("blocked", 4)).profile(32)
        report = store.stats()
        assert report["kinds"]["traces"]["files"] > 0
        assert report["kinds"]["addresses"]["files"] > 0
        assert report["kinds"]["profiles"]["files"] > 0
        assert report["total_bytes"] > 0
        cleared = store.clear()
        assert cleared["total_files"] == report["total_files"]
        assert store.stats()["total_files"] == 0

    def test_torn_artifact_treated_as_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        Engine(store=store).render(SPEC)
        for path in (tmp_path / "traces").iterdir():
            path.write_bytes(b"torn")
        before = render_calls()
        result = Engine(store=ArtifactStore(tmp_path)).render(SPEC)
        assert render_calls() == before + 1
        assert result.trace.n_accesses > 0


class TestTraceSaveLoad:
    def test_round_trip(self, tmp_path):
        trace = Engine(store=ArtifactStore(tmp_path)).trace(SPEC)
        path = tmp_path / "trace.npz"
        trace.save(path)
        assert_traces_equal(trace, TexelTrace.load(path))


class TestWarmHarness:
    def test_fig_5_2_second_run_renders_nothing(self, tmp_path):
        import bench_fig_5_2
        from paperbench import SceneBank

        cold_bank = SceneBank(scale=0.1, store=ArtifactStore(tmp_path))
        cold_curves, cold_colds = bench_fig_5_2.measure(cold_bank)
        before = render_calls()

        warm_bank = SceneBank(scale=0.1, store=ArtifactStore(tmp_path))
        warm_curves, warm_colds = bench_fig_5_2.measure(warm_bank)
        assert render_calls() == before
        assert not warm_bank.engine._scenes

        assert cold_curves.keys() == warm_curves.keys()
        for key in cold_curves:
            np.testing.assert_array_equal(cold_curves[key].miss_rates,
                                          warm_curves[key].miss_rates)
        assert cold_colds == warm_colds


class TestExperimentRunner:
    def test_grid_and_select(self, tmp_path):
        experiment = ExperimentSpec(
            scenes=("goblet",), orders=(("horizontal",), ("vertical",)),
            layouts=(("nonblocked",), ("blocked", 4)),
            cache_sizes=(1024, 4096), line_sizes=(32,), assocs=(None, 2),
            scale=0.1)
        result = run_experiment(experiment, store=ArtifactStore(tmp_path))
        assert len(result.rows) == 2 * 2 * 2 * 2
        picked = result.select(order=("vertical",), layout=("blocked", 4),
                               cache_size=4096, assoc=None)
        assert len(picked) == 1
        assert 0.0 <= picked[0].stats.miss_rate <= 1.0
        # Bigger cache, same everything else: no more misses.
        small = result.select(order=("vertical",), layout=("blocked", 4),
                              cache_size=1024, assoc=None)[0]
        assert picked[0].stats.miss_rate <= small.stats.miss_rate + 1e-12

    def test_dedup_one_render_per_scene_order(self, tmp_path):
        before = render_calls()
        experiment = ExperimentSpec(
            scenes=("goblet",), orders=(("horizontal",),),
            layouts=(("nonblocked",), ("blocked", 4), ("blocked", 8)),
            cache_sizes=(1024,), line_sizes=(32, 64), scale=0.1)
        run_experiment(experiment, store=ArtifactStore(tmp_path))
        assert render_calls() == before + 1

    def test_parallel_workers_warm_the_store(self, tmp_path):
        experiment = ExperimentSpec(
            scenes=("goblet",), orders=(("horizontal",), ("vertical",)),
            layouts=(("blocked", 4),), cache_sizes=(1024, 4096),
            line_sizes=(32,), scale=0.1)
        store = ArtifactStore(tmp_path)
        result = run_experiment(experiment, store=store, workers=2)
        # Workers rendered in subprocesses; this process stayed cold.
        assert len(result.rows) == 2 * 2
        serial = run_experiment(experiment, store=ArtifactStore(tmp_path))
        for row, expected in zip(result.rows, serial.rows):
            assert row.stats.miss_rate == expected.stats.miss_rate


class TestSpecValidation:
    def test_unknown_scene_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            TraceSpec(scene="teapot", scale=0.1, order=("horizontal",))

    def test_paper_order_resolved(self):
        assert TraceSpec(scene="town", scale=0.1, order="paper").order == \
            ("vertical",)

    def test_trace_specs_deduped(self):
        experiment = ExperimentSpec(
            scenes=("goblet",), orders=("paper", ("horizontal",)),
            layouts=(("nonblocked",),), scale=0.1)
        assert len(experiment.trace_specs()) == 1


class TestAddressMapper:
    def test_matches_per_access_lookup(self, tmp_path):
        engine = Engine(store=ArtifactStore(tmp_path))
        trace = engine.trace(SPEC)
        scene = engine.scene("goblet", 0.1)
        placements = place_textures(scene.get_mipmaps(), BlockedLayout(4))
        mapped = AddressMapper(placements).map_trace(trace)
        expected = np.empty_like(mapped)
        for i in range(trace.n_accesses):
            expected[i] = placements[int(trace.texture_id[i])].addresses(
                int(trace.level[i]), trace.tu[i:i + 1], trace.tv[i:i + 1])[0]
        np.testing.assert_array_equal(mapped, expected)

    def test_williams_three_accesses_per_texel(self, tmp_path):
        engine = Engine(store=ArtifactStore(tmp_path))
        trace = engine.trace(SPEC)
        scene = engine.scene("goblet", 0.1)
        placements = place_textures(scene.get_mipmaps(), WilliamsLayout())
        mapped = AddressMapper(placements).map_trace(trace)
        assert mapped.shape == (trace.n_accesses, 3)
        assert trace.byte_addresses(placements).shape == (3 * trace.n_accesses,)

    def test_empty_trace(self):
        mapper = AddressMapper([])
        empty = np.empty(0, dtype=np.int64)
        assert mapper.map(np.empty(0, dtype=np.int16),
                          np.empty(0, dtype=np.int16), empty, empty).shape == (0,)


class TestCacheCLI:
    def test_stats_and_clear(self, tmp_path, capsys):
        from repro.cli import main

        store = ArtifactStore(tmp_path)
        Engine(store=store).render(SPEC)
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "traces" in out
        assert str(tmp_path) in out
        assert main(["cache", "clear", "--dir", str(tmp_path)]) == 0
        assert "cleared" in capsys.readouterr().out
        assert store.stats()["total_files"] == 0

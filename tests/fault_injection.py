"""Fault-injection helpers for store/engine robustness tests.

These simulate the failure modes the hardened artifact store must
absorb: writers killed between payload write and publish, disks that
fill up or go read-only mid-save, truncated/zeroed/bit-rotted
payloads, foreign archives, and temp-file litter from dead processes.
"""

from __future__ import annotations

import errno
import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.engine import artifacts, tiers


class SimulatedKill(BaseException):
    """Raised at an injected kill point.  A ``BaseException`` so
    production ``except Exception`` blocks cannot absorb it, mirroring
    how SIGKILL preempts cleanup."""


@contextmanager
def killed_writer(at_replace: int = 0):
    """Simulate SIGKILL between payload write and ``os.replace``.

    The ``at_replace``-th publish raises :class:`SimulatedKill` and the
    temp-file cleanup is disabled for the duration -- exactly the
    on-disk state a killed process leaves behind: ``*.tmp*`` litter,
    nothing (or only earlier files) published.  ``at_replace=1`` kills
    between a payload's publish and its sidecar's.
    """
    calls = {"n": 0}
    real_replace = artifacts._replace
    real_discard = artifacts._discard_temp

    def dying_replace(source, destination):
        if calls["n"] >= at_replace:
            raise SimulatedKill(
                f"writer killed before publish #{calls['n']}")
        calls["n"] += 1
        real_replace(source, destination)

    artifacts._replace = dying_replace
    artifacts._discard_temp = lambda temp_name: None
    try:
        yield
    finally:
        artifacts._replace = real_replace
        artifacts._discard_temp = real_discard


@contextmanager
def disk_full(code: int = errno.ENOSPC):
    """Every publish fails like a broken disk: ``os.replace`` raises
    ``OSError(code)`` (default ENOSPC; try EROFS/EACCES too)."""
    real_replace = artifacts._replace

    def full(source, destination):
        raise OSError(code, os.strerror(code), str(destination))

    artifacts._replace = full
    try:
        yield
    finally:
        artifacts._replace = real_replace


@contextmanager
def failing_numpy_save(code: int = errno.ENOSPC):
    """``np.save``/``np.savez``/``np.savez_compressed`` raise
    ``OSError(code)``, simulating the disk filling up
    mid-payload-write."""
    real_save, real_savez = np.save, np.savez
    real_savez_compressed = np.savez_compressed

    def boom(*args, **kwargs):
        raise OSError(code, os.strerror(code))

    np.save = boom
    np.savez = boom
    np.savez_compressed = boom
    try:
        yield
    finally:
        np.save = real_save
        np.savez = real_savez
        np.savez_compressed = real_savez_compressed


def _forget(path) -> None:
    """Drop process caches that could mask on-disk tampering.

    Rewriting a payload in place refreshes its mtime, but on coarse
    filesystem clocks a same-size rewrite can land inside one mtime
    tick and leave the T0 stat key valid.  Tamper helpers invalidate
    explicitly so detection never depends on clock granularity."""
    tiers.memory_tier().invalidate(None)
    tiers.digest_cache().invalidate(str(path))


def truncate(path, keep: int = 8) -> None:
    """Chop a payload down to its first ``keep`` bytes (torn write)."""
    path = Path(path)
    path.write_bytes(path.read_bytes()[:keep])
    _forget(path)


def zero(path) -> None:
    """Replace a payload with a zero-byte file."""
    Path(path).write_bytes(b"")
    _forget(path)


def flip_bit(path, offset: int = None) -> None:
    """Flip one bit in the middle of a payload (silent bit rot)."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    index = len(data) // 2 if offset is None else offset
    data[index] ^= 0x10
    path.write_bytes(bytes(data))
    _forget(path)


def litter_tmp(directory, suffix: str = ".npz", age_s: float = 0.0) -> Path:
    """Drop realistic ``*.tmp*`` litter (what mkstemp leaves when its
    writer dies), optionally back-dated ``age_s`` seconds."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    descriptor, name = tempfile.mkstemp(dir=directory, suffix=".tmp" + suffix)
    os.write(descriptor, b"half-written payload")
    os.close(descriptor)
    if age_s:
        backdate(name, age_s)
    return Path(name)


def backdate(path, age_s: float) -> None:
    """Push a file's mtime ``age_s`` seconds into the past, aging it
    out of the store's in-flight-write grace window."""
    stamp = time.time() - age_s
    os.utime(path, (stamp, stamp))


def restamp(store, kind: str, digest: str, suffix: str) -> None:
    """Recompute the sidecar envelope to match the (tampered) payload
    on disk -- simulating a confused-but-checksumming writer, so the
    schema layer beneath the digest check gets exercised."""
    import json

    payload_path = store._path(kind, digest, suffix)
    sidecar = store._path(kind, digest, ".json")
    meta = json.loads(sidecar.read_text())
    meta["envelope"] = {
        "kind": kind,
        "digest": artifacts._file_digest(payload_path),
        "nbytes": payload_path.stat().st_size,
    }
    sidecar.write_text(json.dumps(meta, indent=1))
    _forget(payload_path)
    _forget(sidecar)


@contextmanager
def fault_plan(plan: str, directory=None):
    """Arm the deterministic chaos harness for the duration: set
    ``REPRO_FAULT_PLAN`` (and ``REPRO_FAULT_DIR``, needed by
    ``scope=once`` directives to claim their cross-process marker).

    Arm *before* the stream pool spawns -- workers read the plan from
    the environment they inherit at fork."""
    saved = {key: os.environ.get(key)
             for key in ("REPRO_FAULT_PLAN", "REPRO_FAULT_DIR")}
    os.environ["REPRO_FAULT_PLAN"] = plan
    if directory is not None:
        Path(directory).mkdir(parents=True, exist_ok=True)
        os.environ["REPRO_FAULT_DIR"] = str(directory)
    try:
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def payload_files(store, kind: str):
    """The payload files (non-sidecar, non-tmp) of one artifact kind."""
    directory = Path(store.root) / kind
    if not directory.is_dir():
        return []
    return sorted(f for f in directory.glob("*")
                  if f.suffix != ".json" and ".tmp" not in f.name)

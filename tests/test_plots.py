"""Tests for the terminal chart renderer."""

import numpy as np
import pytest

from repro.analysis.plots import ascii_chart, miss_rate_chart
from repro.core.stackdist import MissRateCurve


class TestAsciiChart:
    def test_basic_structure(self):
        chart = ascii_chart({"a": ([1, 2, 4], [10, 5, 1])}, width=32, height=8,
                            title="T")
        lines = chart.splitlines()
        assert lines[0] == "T"
        assert any("o a" in line for line in lines)  # legend
        assert sum("|" in line for line in lines) == 8

    def test_extremes_plotted(self):
        chart = ascii_chart({"a": ([1, 100], [1, 100])}, width=32, height=8,
                            log_x=False, log_y=False)
        rows = [line for line in chart.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("o")       # max lands top-right
        body = rows[-1].split("|", 1)[1]
        assert body[0] == "o"                        # min lands bottom-left

    def test_multiple_series_glyphs(self):
        chart = ascii_chart({
            "first": ([1, 2], [1, 2]),
            "second": ([1, 2], [2, 1]),
        }, width=24, height=6, log_x=False, log_y=False)
        assert "o first" in chart
        assert "x second" in chart
        assert "x" in chart.split("x second")[0]

    def test_monotone_series_descends(self):
        chart = ascii_chart({"a": ([1, 2, 4, 8], [8, 4, 2, 1])},
                            width=32, height=8)
        rows = [line.split("|", 1)[1] for line in chart.splitlines()
                if "|" in line]
        first_cols = [row.index("o") for row in rows if "o" in row]
        assert first_cols == sorted(first_cols)

    def test_axis_labels(self):
        chart = ascii_chart({"a": ([1, 2], [1, 2])}, x_label="size",
                            y_label="miss")
        assert "(size)" in chart
        assert "miss" in chart

    def test_constant_series_safe(self):
        chart = ascii_chart({"a": ([1, 2, 3], [5, 5, 5])},
                            log_x=False, log_y=False)
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": ([1, 2], [1])})
        with pytest.raises(ValueError):
            ascii_chart({"a": ([], [])})
        with pytest.raises(ValueError):
            ascii_chart({"a": ([1], [1])}, width=4)


class TestMissRateChart:
    def test_renders_curves(self):
        curve = MissRateCurve(
            line_size=32,
            sizes=np.array([1024, 4096, 16384]),
            miss_rates=np.array([0.2, 0.05, 0.01]),
            cold_miss_rate=0.01,
            total_accesses=1000,
        )
        chart = miss_rate_chart({"town": curve}, title="fig")
        assert "fig" in chart
        assert "miss %" in chart
        assert "o town" in chart
        assert "1K" in chart  # byte ticks render in K

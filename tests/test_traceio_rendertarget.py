"""Tests for trace persistence and render-to-texture."""

import os

import numpy as np
import pytest

from repro.core.cache import CacheConfig, LRUCache
from repro.pipeline.renderer import Renderer
from repro.pipeline.traceio import load_trace, save_trace
from repro.raster.framebuffer import Framebuffer
from repro.texture.rendertarget import (
    flush_for_texture_update,
    framebuffer_to_texture,
)
from tests.test_renderer import tiny_scene


@pytest.fixture(scope="module")
def rendered():
    return Renderer(produce_image=False, record_positions=True).render(tiny_scene())


class TestTraceIO:
    def test_roundtrip(self, rendered, tmp_path):
        path = os.path.join(tmp_path, "frame.trace.npz")
        save_trace(path, rendered.trace)
        loaded = load_trace(path)
        assert loaded.n_accesses == rendered.trace.n_accesses
        assert loaded.n_fragments == rendered.trace.n_fragments
        assert np.array_equal(loaded.tu, rendered.trace.tu)
        assert np.array_equal(loaded.kind, rendered.trace.kind)
        assert np.array_equal(loaded.x, rendered.trace.x)

    def test_roundtrip_without_positions(self, tmp_path):
        result = Renderer(produce_image=False).render(tiny_scene())
        path = os.path.join(tmp_path, "np.trace.npz")
        save_trace(path, result.trace)
        loaded = load_trace(path)
        assert not loaded.has_positions
        assert np.array_equal(loaded.tv, result.trace.tv)

    def test_addresses_identical_after_roundtrip(self, rendered, tmp_path):
        from repro.texture.layout import BlockedLayout
        from repro.texture.memory import place_textures
        scene = tiny_scene()
        placements = place_textures(scene.get_mipmaps(), BlockedLayout(4))
        path = os.path.join(tmp_path, "addr.trace.npz")
        save_trace(path, rendered.trace)
        loaded = load_trace(path)
        assert np.array_equal(loaded.byte_addresses(placements),
                              rendered.trace.byte_addresses(placements))

    def test_rejects_non_trace_npz(self, tmp_path):
        path = os.path.join(tmp_path, "junk.npz")
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ValueError):
            load_trace(path)


class TestFramebufferToTexture:
    def make_framebuffer(self):
        framebuffer = Framebuffer(100, 80, clear_color=(10, 20, 30))
        framebuffer.pixels[:40, :, 0] = 200  # top half red-ish
        return framebuffer

    def test_default_size_pow2(self):
        texture = framebuffer_to_texture(self.make_framebuffer())
        assert texture.width == 64
        assert texture.height == 64

    def test_explicit_size(self):
        texture = framebuffer_to_texture(self.make_framebuffer(), size=32)
        assert texture.width == 32

    def test_content_resampled(self):
        texture = framebuffer_to_texture(self.make_framebuffer(), size=32)
        assert texture.texels[2, 16, 0] == 200
        assert texture.texels[30, 16, 0] == 10

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            framebuffer_to_texture(self.make_framebuffer(), size=48)

    def test_render_to_texture_pipeline(self):
        # Render pass 1, wrap it as a texture, texture pass 2 with it.
        from repro.geometry.mesh import make_quad
        from repro.geometry.transform import look_at, perspective
        from repro.scenes.base import SceneData
        from repro.texture.image import TextureSet
        first = Renderer(produce_image=True).render(tiny_scene())
        texture = framebuffer_to_texture(first.framebuffer)
        textures = TextureSet()
        textures.add(texture)
        mesh = make_quad(np.array([[-1, -1, 0], [1, -1, 0], [1, 1, 0],
                                   [-1, 1, 0]], dtype=float), texture_id=0)
        scene2 = SceneData(name="second", width=48, height=48, mesh=mesh,
                           textures=textures,
                           view=look_at((0, 0, 3), (0, 0, 0)),
                           projection=perspective(45.0, 1.0, 0.5, 10.0))
        second = Renderer(produce_image=True).render(scene2)
        assert second.n_fragments > 0
        # The checkerboard from pass 1 survives into pass 2's frame.
        center = second.framebuffer.pixels[12:36, 12:36]
        assert center.max() > 150
        assert center.min() < 100


class TestFlush:
    def test_flush_empties_cache(self):
        cache = LRUCache(CacheConfig(256, 32, 2))
        cache.access(1)
        cache.access(2)
        flush_for_texture_update([cache])
        assert cache.contents() == set()

    def test_post_flush_accesses_miss_but_not_cold(self):
        cache = LRUCache(CacheConfig(256, 32))
        cache.access(1)
        cache.flush()
        assert cache.access(1) is False
        assert cache.cold_misses == 1
        assert cache.misses == 2

    def test_flush_type_error(self):
        with pytest.raises(TypeError):
            flush_for_texture_update([object()])

"""Tests for the victim-cache ablation (repro.core.victim)."""

import numpy as np
import pytest

from repro.core.cache import CacheConfig, simulate
from repro.core.victim import simulate_victim


def config(n_lines=8, line=32):
    return CacheConfig(n_lines * line, line, 1)


class TestSimulateVictim:
    def test_zero_victims_equals_direct_mapped(self):
        rng = np.random.default_rng(4)
        addresses = rng.integers(0, 1024, size=3000) * 32
        cfg = config()
        victim = simulate_victim(addresses, cfg, victim_lines=0)
        direct = simulate(addresses, cfg)
        assert victim.misses == direct.misses
        assert victim.victim_hits == 0

    def test_pingpong_conflict_absorbed(self):
        # Two lines in the same set alternating: a 1-entry victim
        # buffer turns all but the cold misses into victim hits.
        cfg = config(n_lines=8, line=32)
        stride_lines = 8  # same set, different tag
        addresses = np.tile([0, stride_lines * 32], 100).astype(np.int64)
        stats = simulate_victim(addresses, cfg, victim_lines=1)
        assert stats.misses == 2
        assert stats.victim_hits == 198

    def test_victim_capacity_limits_absorption(self):
        # Three-way ping-pong needs two victim entries.
        cfg = config(n_lines=8, line=32)
        lines = np.tile([0, 8, 16], 50)
        addresses = lines * 32
        one = simulate_victim(addresses, cfg, victim_lines=1)
        two = simulate_victim(addresses, cfg, victim_lines=2)
        assert two.misses == 3
        assert one.misses > two.misses

    def test_never_worse_than_direct(self):
        rng = np.random.default_rng(9)
        addresses = rng.integers(0, 512, size=4000) * 32
        cfg = config()
        direct = simulate(addresses, cfg).misses
        for victims in (1, 2, 4, 8):
            assert simulate_victim(addresses, cfg, victims).misses <= direct

    def test_miss_rate_counts_memory_fetches_only(self):
        cfg = config(n_lines=8, line=32)
        addresses = np.tile([0, 8 * 32], 10).astype(np.int64)
        stats = simulate_victim(addresses, cfg, victim_lines=1)
        assert stats.accesses == 20
        assert stats.miss_rate == pytest.approx(2 / 20)
        assert stats.victim_hit_rate == pytest.approx(18 / 20)

    def test_rejects_non_direct_mapped(self):
        with pytest.raises(ValueError):
            simulate_victim(np.array([0]), CacheConfig(256, 32, 2), 4)

    def test_rejects_negative_victims(self):
        with pytest.raises(ValueError):
            simulate_victim(np.array([0]), config(), -1)

    def test_cold_misses_tracked(self):
        cfg = config()
        addresses = np.arange(0, 64 * 32, 32)
        stats = simulate_victim(addresses, cfg, victim_lines=4)
        assert stats.cold_misses == 64

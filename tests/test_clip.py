"""Unit tests for near-plane clipping (repro.geometry.clip)."""

import numpy as np

from repro.geometry.clip import clip_triangles_near


def tri(vertices, attrs=None):
    clip = np.asarray(vertices, dtype=float).reshape(1, 3, 4)
    if attrs is None:
        attrs = np.zeros((1, 3, 1))
    else:
        attrs = np.asarray(attrs, dtype=float).reshape(1, 3, -1)
    return clip, attrs


class TestClipTrianglesNear:
    def test_fully_inside_passthrough(self):
        clip, attrs = tri([[0, 0, 0, 1], [1, 0, 0, 1], [0, 1, 0, 1]])
        result = clip_triangles_near(clip, attrs)
        assert result.n_triangles == 1
        assert np.allclose(result.clip[0], clip[0])
        assert result.triangle_index.tolist() == [0]

    def test_fully_outside_dropped(self):
        # All vertices behind the near plane: z + w < 0.
        clip, attrs = tri([[0, 0, -2, 1], [1, 0, -3, 1], [0, 1, -2.5, 1]])
        result = clip_triangles_near(clip, attrs)
        assert result.n_triangles == 0

    def test_one_vertex_outside_gives_two_triangles(self):
        clip, attrs = tri([[0, 0, -2, 1], [1, 0, 1, 1], [0, 1, 1, 1]])
        result = clip_triangles_near(clip, attrs)
        assert result.n_triangles == 2

    def test_two_vertices_outside_gives_one_triangle(self):
        clip, attrs = tri([[0, 0, -2, 1], [1, 0, -2, 1], [0, 1, 1, 1]])
        result = clip_triangles_near(clip, attrs)
        assert result.n_triangles == 1

    def test_intersection_on_plane(self):
        clip, attrs = tri([[0, 0, -2, 1], [1, 0, -2, 1], [0, 1, 1, 1]])
        result = clip_triangles_near(clip, attrs, eps=0.0)
        # New vertices satisfy z + w ~ 0.
        sums = result.clip[0, :, 2] + result.clip[0, :, 3]
        assert (sums >= -1e-9).all()
        assert np.isclose(sorted(sums)[0], 0.0, atol=1e-9)

    def test_attribute_interpolation(self):
        clip, attrs = tri(
            [[0, 0, -3, 1], [0, 0, 1, 1], [1, 1, 1, 1]],
            attrs=[[0.0], [1.0], [2.0]],
        )
        result = clip_triangles_near(clip, attrs, eps=0.0)
        # The edge from attr 0 (z+w = -2) to attr 1 (z+w = 2) crosses at
        # t = 0.5 -> interpolated attribute 0.5.
        values = sorted(result.attrs.ravel().tolist())
        assert any(np.isclose(v, 0.5, atol=1e-9) for v in values)

    def test_submission_order_preserved(self):
        inside = [[0, 0, 0, 1], [1, 0, 0, 1], [0, 1, 0, 1]]
        crossing = [[0, 0, -2, 1], [1, 0, 1, 1], [0, 1, 1, 1]]
        clip = np.array([crossing, inside, crossing], dtype=float)
        attrs = np.zeros((3, 3, 1))
        result = clip_triangles_near(clip, attrs)
        assert result.triangle_index.tolist() == [0, 0, 1, 2, 2]

    def test_empty_input(self):
        result = clip_triangles_near(np.empty((0, 3, 4)), np.empty((0, 3, 2)))
        assert result.n_triangles == 0
        assert result.attrs.shape[2] == 2

"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


class TestScenesAndCosts:
    def test_scenes_lists_all(self, capsys):
        assert main(["scenes"]) == 0
        out = capsys.readouterr().out
        for name in ("flight", "town", "guitar", "goblet"):
            assert name in out

    def test_costs_table(self, capsys):
        assert main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "trilinear interpolation" in out
        assert "per-fragment total" in out

    def test_costs_layout_choice(self, capsys):
        assert main(["costs", "--layout", "nonblocked"]) == 0
        assert "nonblocked" in capsys.readouterr().out


class TestRender:
    def test_render_stats_only(self, capsys):
        assert main(["render", "goblet", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "goblet" in out
        assert "texel fetches" in out

    def test_render_png(self, tmp_path, capsys):
        out_path = os.path.join(tmp_path, "frame.png")
        assert main(["render", "goblet", "--scale", "0.1",
                     "--out", out_path]) == 0
        with open(out_path, "rb") as handle:
            assert handle.read(4) == b"\x89PNG"

    def test_render_ppm(self, tmp_path):
        out_path = os.path.join(tmp_path, "frame.ppm")
        assert main(["render", "goblet", "--scale", "0.1",
                     "--out", out_path]) == 0
        with open(out_path, "rb") as handle:
            assert handle.read(2) == b"P6"

    def test_render_orders(self, capsys):
        for order in ("horizontal", "vertical", "tiled", "hilbert"):
            assert main(["render", "goblet", "--scale", "0.1",
                         "--order", order]) == 0

    def test_unknown_scene_rejected(self):
        with pytest.raises(SystemExit):
            main(["render", "teapot"])


class TestSimulate:
    def test_simulate_reports_breakdown(self, capsys):
        assert main(["simulate", "goblet", "--scale", "0.1",
                     "--cache-size", "8192", "--line-size", "64"]) == 0
        out = capsys.readouterr().out
        assert "miss rate" in out
        assert "conflict misses" in out
        assert "MB/s" in out

    def test_simulate_fully_associative(self, capsys):
        assert main(["simulate", "goblet", "--scale", "0.1",
                     "--assoc", "0"]) == 0
        assert "full" in capsys.readouterr().out

    def test_simulate_layouts(self, capsys):
        for layout in ("nonblocked", "blocked", "padded", "blocked6d",
                       "williams"):
            assert main(["simulate", "goblet", "--scale", "0.1",
                         "--layout", layout]) == 0

    def test_shards_reject_reference_kernel(self, capsys):
        # --shards (any count) requests streaming; the reference
        # simulator cannot stream, so the CLI refuses instead of
        # silently dropping the flag.
        for args in (["simulate"], ["sweep", "--axis", "cache"]):
            assert main([args[0], "goblet", "--scale", "0.1",
                         *args[1:], "--shards", "1",
                         "--kernel", "reference"]) == 2
            assert "vectorized" in capsys.readouterr().err


class TestSweep:
    def test_cache_axis(self, capsys):
        assert main(["sweep", "goblet", "--scale", "0.1",
                     "--axis", "cache"]) == 0
        out = capsys.readouterr().out
        assert "32KB" in out

    def test_line_axis(self, capsys):
        assert main(["sweep", "goblet", "--scale", "0.1",
                     "--axis", "line"]) == 0
        assert "256B" in capsys.readouterr().out

    def test_assoc_axis(self, capsys):
        assert main(["sweep", "goblet", "--scale", "0.1",
                     "--axis", "assoc"]) == 0
        out = capsys.readouterr().out
        assert "2-way" in out
        assert "full" in out


class TestParallelAndHierarchy:
    def test_parallel_subcommand(self, capsys):
        assert main(["parallel", "goblet", "--scale", "0.1",
                     "--generators", "2"]) == 0
        out = capsys.readouterr().out
        assert "scanline-interleave" in out
        assert "strip-split" in out
        assert "MB/s" in out

    def test_hierarchy_subcommand(self, capsys):
        assert main(["hierarchy", "goblet", "--scale", "0.1",
                     "--l1-size", "2048", "--l2-size", "8192"]) == 0
        out = capsys.readouterr().out
        assert "L1" in out and "L2" in out
        assert "memory miss rate" in out


class TestTiming:
    def test_single_config(self, capsys):
        assert main(["timing", "goblet", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "fragment FIFO" in out
        assert "total cycles" in out

    def test_sweep_table(self, capsys):
        assert main(["timing", "goblet", "--scale", "0.1",
                     "--depths", "0,32", "--latencies", "10,100",
                     "--dram-services"]) == 0
        out = capsys.readouterr().out
        assert "Latency tolerance" in out
        assert "efficiency" in out

    def test_reference_kernel(self, capsys):
        assert main(["timing", "goblet", "--scale", "0.1",
                     "--kernel", "reference"]) == 0
        assert "total cycles" in capsys.readouterr().out


class TestFilteringFlags:
    def test_aniso_flag(self, capsys):
        assert main(["simulate", "flight", "--scale", "0.1",
                     "--aniso", "4"]) == 0
        assert "miss rate" in capsys.readouterr().out

    def test_lod_bias_flag(self, capsys):
        assert main(["render", "goblet", "--scale", "0.1",
                     "--lod-bias", "1.0"]) == 0

    def test_no_mipmaps_flag(self, capsys):
        assert main(["simulate", "flight", "--scale", "0.1",
                     "--no-mipmaps"]) == 0

"""Unit tests for the cache simulator (repro.core.cache)."""

import numpy as np
import pytest

from repro.core.cache import (
    CacheConfig,
    LineStream,
    LRUCache,
    collapse_consecutive,
    simulate,
    to_lines,
)


class TestCacheConfig:
    def test_basic_properties(self):
        config = CacheConfig(size=32 * 1024, line_size=128, assoc=2)
        assert config.n_lines == 256
        assert config.ways == 2
        assert config.n_sets == 128
        assert not config.fully_associative

    def test_fully_associative(self):
        config = CacheConfig(size=1024, line_size=32)
        assert config.ways == config.n_lines == 32
        assert config.n_sets == 1
        assert config.fully_associative

    def test_assoc_beyond_lines_degrades_to_full(self):
        config = CacheConfig(size=1024, line_size=128, assoc=16)
        assert config.n_lines == 8
        assert config.ways == 8
        assert config.fully_associative

    def test_rejects_non_pow2_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1024, line_size=48)

    def test_rejects_size_not_multiple_of_line(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1000, line_size=64)

    def test_rejects_bad_assoc(self):
        with pytest.raises(ValueError):
            CacheConfig(size=1024, line_size=32, assoc=0)

    def test_labels(self):
        assert CacheConfig(32 * 1024, 128, 2).label() == "32KB/128B/2-way"
        assert CacheConfig(128 * 1024, 64, 1).label() == "128KB/64B/direct"
        assert CacheConfig(4096, 32).label() == "4KB/32B/full"


class TestToLinesAndCollapse:
    def test_to_lines(self):
        lines = to_lines(np.array([0, 31, 32, 100]), 32)
        assert lines.tolist() == [0, 0, 1, 3]

    def test_collapse(self):
        runs, dup = collapse_consecutive(np.array([5, 5, 5, 7, 5, 5]))
        assert runs.tolist() == [5, 7, 5]
        assert dup == 3

    def test_collapse_empty(self):
        runs, dup = collapse_consecutive(np.array([], dtype=np.int64))
        assert len(runs) == 0
        assert dup == 0

    def test_line_stream(self):
        stream = LineStream.from_addresses(np.array([0, 4, 8, 64, 68]), 64)
        assert stream.total_accesses == 5
        assert stream.run_lines.tolist() == [0, 1]
        assert stream.duplicate_hits == 3


class TestLRUCacheReference:
    def test_hit_after_miss(self):
        cache = LRUCache(CacheConfig(size=128, line_size=32))
        assert cache.access(1) is False
        assert cache.access(1) is True
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        cache = LRUCache(CacheConfig(size=64, line_size=32))  # 2 lines, FA
        cache.access(1)
        cache.access(2)
        cache.access(1)      # 1 becomes MRU
        cache.access(3)      # evicts 2
        assert cache.access(1) is True
        assert cache.access(2) is False

    def test_set_mapping_direct(self):
        cache = LRUCache(CacheConfig(size=128, line_size=32, assoc=1))  # 4 sets
        cache.access(0)
        cache.access(4)      # same set 0, evicts line 0
        assert cache.access(0) is False

    def test_set_mapping_two_way(self):
        cache = LRUCache(CacheConfig(size=256, line_size=32, assoc=2))  # 4 sets
        cache.access(0)
        cache.access(4)
        assert cache.access(0) is True  # both fit in set 0
        cache.access(8)                 # evicts LRU of set 0 = 4
        assert cache.access(4) is False

    def test_cold_miss_tracking(self):
        cache = LRUCache(CacheConfig(size=64, line_size=32))
        for line in (1, 2, 3, 1):
            cache.access(line)
        # line 1 was evicted: second access to 1 is a non-cold miss.
        assert cache.misses == 4
        assert cache.cold_misses == 3

    def test_contents(self):
        cache = LRUCache(CacheConfig(size=64, line_size=32))
        cache.access(1)
        cache.access(2)
        assert cache.contents() == {1, 2}

    def test_stats_roundtrip(self):
        cache = LRUCache(CacheConfig(size=64, line_size=32))
        cache.access(1)
        cache.access(1)
        stats = cache.stats()
        assert stats.accesses == 2
        assert stats.hits == 1
        assert stats.miss_rate == 0.5


class TestSimulate:
    def test_sequential_scan_miss_rate(self):
        # A pure sequential scan misses once per line.
        addresses = np.arange(0, 8192, 4)
        stats = simulate(addresses, CacheConfig(size=256, line_size=32))
        assert stats.accesses == 2048
        assert stats.misses == 8192 // 32
        assert stats.cold_misses == stats.misses

    def test_matches_reference_implementation(self):
        rng = np.random.default_rng(42)
        addresses = rng.integers(0, 4096, size=3000) * 4
        config = CacheConfig(size=512, line_size=32, assoc=2)
        fast = simulate(addresses, config)
        reference = LRUCache(config)
        for line in to_lines(addresses, 32).tolist():
            reference.access(line)
        assert fast.misses == reference.misses
        assert fast.cold_misses == reference.cold_misses

    def test_line_stream_reuse(self):
        addresses = np.arange(0, 4096, 4)
        stream = LineStream.from_addresses(addresses, 64)
        a = simulate(stream, CacheConfig(size=512, line_size=64, assoc=2))
        b = simulate(addresses, CacheConfig(size=512, line_size=64, assoc=2))
        assert a.misses == b.misses

    def test_line_size_mismatch_rejected(self):
        stream = LineStream.from_addresses(np.array([0]), 32)
        with pytest.raises(ValueError):
            simulate(stream, CacheConfig(size=512, line_size=64))

    def test_empty_trace(self):
        stats = simulate(np.array([], dtype=np.int64), CacheConfig(size=512, line_size=64))
        assert stats.accesses == 0
        assert stats.miss_rate == 0.0

    def test_non_pow2_sets_supported(self):
        # 3-way associative: 512/32/3 -> ways must divide lines; use a
        # config whose set count is not a power of two instead.
        config = CacheConfig(size=96 * 32, line_size=32, assoc=2)  # 48 sets
        addresses = np.arange(0, 96 * 32 * 2, 32)
        stats = simulate(addresses, config)
        assert stats.misses == 192

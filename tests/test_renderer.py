"""Integration tests for the full pipeline (repro.pipeline.renderer)."""

import numpy as np
import pytest

from repro.geometry.mesh import Mesh, make_quad
from repro.geometry.transform import look_at, perspective
from repro.pipeline.renderer import Renderer, render_trace
from repro.raster.order import HorizontalOrder, TiledOrder, VerticalOrder
from repro.scenes.base import SceneData
from repro.texture.image import TextureSet
from repro.texture.procedural import checkerboard, gradient


def tiny_scene(width=64, height=64, camera_z=3.0, squares=8, tex=64):
    """A camera-facing textured quad."""
    textures = TextureSet()
    textures.add(checkerboard(tex, tex, squares=squares))
    mesh = make_quad(
        np.array([[-1, -1, 0], [1, -1, 0], [1, 1, 0], [-1, 1, 0]], dtype=float),
        texture_id=0, subdivide=2,
    )
    return SceneData(
        name="tiny", width=width, height=height, mesh=mesh, textures=textures,
        view=look_at((0, 0, camera_z), (0, 0, 0)),
        projection=perspective(45.0, width / height, 0.5, 10.0),
    )


def two_quad_scene():
    """Two quads at different depths, the nearer occluding the farther."""
    textures = TextureSet()
    textures.add(checkerboard(32, 32, color_a=(255, 0, 0), color_b=(255, 0, 0)))
    textures.add(checkerboard(32, 32, color_a=(0, 255, 0), color_b=(0, 255, 0)))
    behind = make_quad(
        np.array([[-1, -1, -0.5], [1, -1, -0.5], [1, 1, -0.5], [-1, 1, -0.5]],
                 dtype=float), texture_id=0)
    front = make_quad(
        np.array([[-1, -1, 0.5], [1, -1, 0.5], [1, 1, 0.5], [-1, 1, 0.5]],
                 dtype=float), texture_id=1)
    mesh = Mesh.concat([behind, front])
    return SceneData(
        name="two", width=48, height=48, mesh=mesh, textures=textures,
        view=look_at((0, 0, 3), (0, 0, 0)),
        projection=perspective(45.0, 1.0, 0.5, 10.0),
    )


class TestRenderer:
    def test_produces_fragments_and_trace(self):
        result = Renderer(produce_image=False).render(tiny_scene())
        assert result.n_fragments > 900  # quad covers a good area
        assert result.n_accesses >= 4 * result.n_fragments
        assert result.framebuffer is None

    def test_image_mode_draws_texture(self):
        result = Renderer(produce_image=True).render(tiny_scene())
        pixels = result.framebuffer.pixels
        # Both checker colors present somewhere in the middle.
        center = pixels[16:48, 16:48]
        assert center.max() > 180
        assert center.min() < 80

    def test_deterministic(self):
        a = Renderer(produce_image=True).render(tiny_scene())
        b = Renderer(produce_image=True).render(tiny_scene())
        assert a.framebuffer.checksum() == b.framebuffer.checksum()
        assert np.array_equal(a.trace.tu, b.trace.tu)

    def test_zbuffer_occlusion(self):
        result = Renderer(produce_image=True).render(two_quad_scene())
        pixels = result.framebuffer.pixels
        center = pixels[24, 24]
        # Front (green) quad wins even though it was submitted last.
        assert center[1] > 200
        assert center[0] < 50

    def test_occluded_fragments_still_textured(self):
        # The paper's pipeline textures before the z-test: both quads
        # contribute texture accesses.
        result = Renderer(produce_image=True).render(two_quad_scene())
        assert set(np.unique(result.trace.texture_id).tolist()) == {0, 1}

    def test_orders_same_fragment_multiset(self):
        scene = tiny_scene()
        results = {}
        for order in (HorizontalOrder(), VerticalOrder(), TiledOrder(8)):
            result = render_trace(scene, order=order)
            key = tuple(sorted(zip(result.trace.tu.tolist(), result.trace.tv.tolist(),
                                   result.trace.level.tolist())))
            results[order.name] = (result.n_fragments, key)
        fragment_counts = {v[0] for v in results.values()}
        access_sets = {v[1] for v in results.values()}
        assert len(fragment_counts) == 1
        assert len(access_sets) == 1

    def test_orders_change_sequence(self):
        scene = tiny_scene()
        horizontal = render_trace(scene, order=HorizontalOrder())
        vertical = render_trace(scene, order=VerticalOrder())
        assert not np.array_equal(horizontal.trace.tu, vertical.trace.tu)

    def test_per_triangle_fragments_sum(self):
        result = render_trace(tiny_scene())
        assert result.per_triangle_fragments.sum() == result.n_fragments

    def test_magnified_scene_uses_bilinear(self):
        # Tiny texture across a big quad: magnified -> 4 accesses/frag.
        scene = tiny_scene(tex=8, camera_z=2.0)
        result = render_trace(scene)
        assert result.n_accesses < 8 * result.n_fragments

    def test_lighting_modulates_color(self):
        from repro.geometry.lighting import DirectionalLight
        scene = tiny_scene()
        lit = Renderer(produce_image=True,
                       lighting=DirectionalLight(direction=(0, 0, 1),
                                                 ambient=0.1, diffuse=0.4)).render(scene)
        unlit = Renderer(produce_image=True).render(tiny_scene())
        assert lit.framebuffer.pixels.mean() < unlit.framebuffer.pixels.mean()


class TestGradientOrientation:
    def test_texture_not_mirrored(self):
        # The gradient's red channel grows with u; on screen, u grows
        # with x for this quad, so red must increase left-to-right.
        textures = TextureSet()
        textures.add(gradient(64, 64))
        mesh = make_quad(
            np.array([[-1, -1, 0], [1, -1, 0], [1, 1, 0], [-1, 1, 0]],
                     dtype=float), texture_id=0)
        scene = SceneData(
            name="grad", width=64, height=64, mesh=mesh, textures=textures,
            view=look_at((0, 0, 2.2), (0, 0, 0)),
            projection=perspective(60.0, 1.0, 0.5, 10.0),
        )
        result = Renderer(produce_image=True).render(scene)
        pixels = result.framebuffer.pixels
        row = pixels[32]
        assert row[56][0] > row[8][0] + 100
        # Green grows with v; v=0 at the quad bottom (screen bottom).
        column = pixels[:, 32]
        assert column[8][1] > column[56][1] + 100

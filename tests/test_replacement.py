"""Tests for the FIFO / random replacement ablation (the paper assumes
LRU; Section 5.2.2 measures fully-associative caches with "an LRU
replacement policy")."""

import numpy as np
import pytest

from repro.core.cache import CacheConfig, simulate


def config(n_lines=4, line=32, assoc=None):
    return CacheConfig(size=n_lines * line, line_size=line, assoc=assoc)


class TestFifo:
    def test_hit_does_not_refresh(self):
        # Insert 1, 2; touch 1; insert 3 (evicts 1 under FIFO, 2 under LRU).
        lines = np.array([1, 2, 1, 3, 1, 2]) * 32
        fifo = simulate(lines, config(n_lines=2), policy="fifo")
        lru = simulate(lines, config(n_lines=2), policy="lru")
        # FIFO: misses 1,2,3,1; hit 1(second),2? sequence:
        #  1 miss, 2 miss, 1 hit, 3 miss evicts 1, 1 miss evicts 2, 2 miss.
        assert fifo.misses == 5
        # LRU: 1 miss, 2 miss, 1 hit, 3 miss evicts 2, 1 hit, 2 miss.
        assert lru.misses == 4

    def test_fifo_equals_lru_for_streaming(self):
        addresses = np.arange(0, 8192, 4)
        fifo = simulate(addresses, config(), policy="fifo")
        lru = simulate(addresses, config(), policy="lru")
        assert fifo.misses == lru.misses


class TestRandom:
    def test_deterministic_under_seed(self):
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 512, size=2000) * 32
        a = simulate(addresses, config(), policy="random", seed=7)
        b = simulate(addresses, config(), policy="random", seed=7)
        assert a.misses == b.misses

    def test_seed_changes_outcome(self):
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 512, size=4000) * 32
        results = {simulate(addresses, config(n_lines=8), policy="random",
                            seed=s).misses for s in range(5)}
        assert len(results) > 1

    def test_cold_misses_policy_independent(self):
        rng = np.random.default_rng(1)
        addresses = rng.integers(0, 256, size=2000) * 32
        cold = {simulate(addresses, config(), policy=p).cold_misses
                for p in ("lru", "fifo", "random")}
        assert len(cold) == 1


class TestValidation:
    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            simulate(np.array([0]), config(), policy="plru")

"""Unit tests for the vectorized cache-simulation kernels
(repro.core.kernels): exact equivalence against the sequential
reference simulator and the Fenwick stack-distance loop."""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.cache import (
    CacheConfig,
    LineStream,
    _simulate_runs,
    simulate,
    simulate_sequence,
)
from repro.core.kernels import (
    COLD,
    SetDistanceProfile,
    _argsort_bounded,
    check_kernel,
    dominance_counts,
    previous_occurrences,
    sequence_stats,
    set_distance_histogram,
    set_partition,
)
from repro.core.stackdist import stack_distances as fenwick_stack_distances
from repro.engine import ArtifactStore, Engine, TraceSpec, set_profile_payload


def random_lines(seed, n=2000, universe=256):
    return np.random.default_rng(seed).integers(0, universe, size=n,
                                                dtype=np.int64)


def naive_previous(lines):
    last = {}
    prev = np.full(len(lines), -1, dtype=np.int64)
    for i, line in enumerate(lines.tolist()):
        if line in last:
            prev[i] = last[line]
        last[line] = i
    return prev


def naive_dominance(prev):
    n = len(prev)
    counts = np.zeros(n, dtype=np.int64)
    for i in range(n):
        counts[i] = int(np.sum(prev[:i] <= prev[i]))
    return counts


class TestArgsortBounded:
    @pytest.mark.parametrize("upper", [1, 7, 1 << 16, 1 << 20, 1 << 33])
    def test_matches_stable_argsort(self, upper):
        rng = np.random.default_rng(upper % 97)
        keys = rng.integers(0, upper, size=500, dtype=np.int64)
        expected = np.argsort(keys, kind="stable")
        np.testing.assert_array_equal(_argsort_bounded(keys, upper), expected)

    def test_stability_with_heavy_ties(self):
        keys = np.tile(np.arange(3, dtype=np.int64), 100)
        order = _argsort_bounded(keys, 3)
        # Equal keys keep their original relative order.
        for value in range(3):
            positions = order[keys[order] == value]
            assert np.all(np.diff(positions) > 0)


class TestPreviousOccurrences:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_naive(self, seed):
        lines = random_lines(seed, n=1500, universe=100)
        np.testing.assert_array_equal(previous_occurrences(lines),
                                      naive_previous(lines))

    def test_degenerate(self):
        assert len(previous_occurrences(np.empty(0, dtype=np.int64))) == 0
        np.testing.assert_array_equal(
            previous_occurrences(np.array([42])), [-1])


class TestDominanceCounts:
    # Sizes straddling the bottom-block width (32) and power-of-two
    # level boundaries, where the partition arithmetic is most fragile.
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 31, 32, 33, 63, 64, 65,
                                   100, 257, 1000])
    def test_matches_naive(self, n):
        prev = naive_previous(random_lines(n + 1, n=n, universe=max(n // 3, 1)))
        np.testing.assert_array_equal(dominance_counts(prev),
                                      naive_dominance(prev))

    def test_all_cold(self):
        prev = np.full(50, -1, dtype=np.int64)
        # prev == -1 everywhere: every earlier j dominates.
        np.testing.assert_array_equal(dominance_counts(prev), np.arange(50))


class TestStackDistances:
    @pytest.mark.parametrize("seed", range(15))
    def test_matches_fenwick_reference(self, seed):
        lines = random_lines(seed, n=3000, universe=300)
        run_lines, _ = _collapse(lines)
        np.testing.assert_array_equal(kernels.stack_distances(run_lines),
                                      fenwick_stack_distances(run_lines))

    def test_cold_marker(self):
        distances = kernels.stack_distances(np.array([1, 2, 1, 2]))
        assert distances[0] == COLD and distances[1] == COLD
        assert distances[2] == 2 and distances[3] == 2


def _collapse(lines):
    keep = np.empty(len(lines), dtype=bool)
    keep[0:1] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    kept = lines[keep]
    return kept, len(lines) - len(kept)


class TestSetPartition:
    def test_stable_per_set_order(self):
        lines = random_lines(3, n=500, universe=64)
        part = set_partition(lines, 8)
        sets = part % 8
        assert np.all(np.diff(sets) >= 0)
        for s in range(8):
            np.testing.assert_array_equal(part[sets == s], lines[lines % 8 == s])

    def test_partitioned_prev_matches_direct(self):
        lines = random_lines(11, n=800, universe=96)
        prev = previous_occurrences(lines)
        for n_sets in (2, 4, 16):
            direct = previous_occurrences(set_partition(lines, n_sets))
            derived = kernels._partitioned_prev(lines, n_sets, prev)
            np.testing.assert_array_equal(derived, direct)


class TestSetDistanceProfile:
    @pytest.mark.parametrize("seed", range(8))
    def test_misses_match_reference_grid(self, seed):
        lines = random_lines(seed, n=2500, universe=200)
        run_lines, _ = _collapse(lines)
        stream = LineStream(line_size=32, run_lines=run_lines,
                            total_accesses=len(lines))
        for n_sets in (1, 2, 4, 8, 32, 64):
            profile = SetDistanceProfile.from_stream(stream, n_sets)
            for ways in (1, 2, 4, 8):
                config = CacheConfig(n_sets * ways * 32, 32, ways)
                misses, cold = _simulate_runs(run_lines, config)
                assert profile.misses_at(ways) == misses
                assert profile.cold == cold

    def test_shared_prev_gives_same_profile(self):
        lines = random_lines(21, n=1200, universe=150)
        run_lines, _ = _collapse(lines)
        stream = LineStream(line_size=64, run_lines=run_lines,
                            total_accesses=len(lines))
        prev = previous_occurrences(run_lines)
        for n_sets in (1, 4, 16):
            fresh = SetDistanceProfile.from_stream(stream, n_sets)
            shared = SetDistanceProfile.from_stream(stream, n_sets, prev=prev)
            np.testing.assert_array_equal(fresh.counts, shared.counts)
            assert fresh.cold == shared.cold

    def test_stats_pair_validates_shape(self):
        stream = LineStream(line_size=32, run_lines=np.arange(10),
                            total_accesses=10)
        profile = SetDistanceProfile.from_stream(stream, 4)
        with pytest.raises(ValueError):
            profile.stats_pair(CacheConfig(256, 64, 1))  # wrong line size
        with pytest.raises(ValueError):
            profile.stats_pair(CacheConfig(256, 32, 1))  # 8 sets, not 4

    def test_empty_stream(self):
        stream = LineStream(line_size=32, run_lines=np.empty(0, dtype=np.int64),
                            total_accesses=0)
        profile = SetDistanceProfile.from_stream(stream, 4)
        assert profile.misses_at(2) == 0
        assert profile.total_accesses == 0


class TestSimulateEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_traces_grid(self, seed):
        addresses = np.random.default_rng(seed).integers(
            0, 1 << 14, size=4000, dtype=np.int64)
        for line_size in (16, 64):
            for size in (512, 4096):
                for assoc in (1, 2, 8, None):
                    config = CacheConfig(size, line_size, assoc)
                    fast = simulate(addresses, config)
                    slow = simulate(addresses, config, kernel="reference")
                    assert (fast.accesses, fast.misses, fast.cold_misses) == \
                           (slow.accesses, slow.misses, slow.cold_misses)

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError):
            simulate(np.arange(10), CacheConfig(256, 32), kernel="numba")
        with pytest.raises(ValueError):
            check_kernel("fenwick")

    def test_non_lru_policies_take_reference_path(self):
        addresses = random_lines(2, n=2000, universe=4000) * 8
        config = CacheConfig(512, 32, 2)
        for policy in ("fifo", "random"):
            stats = simulate(addresses, config, policy=policy)
            reference = simulate(addresses, config, policy=policy,
                                 kernel="reference")
            assert stats.misses == reference.misses


class TestSequenceStats:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_reference_cache(self, seed):
        rng = np.random.default_rng(seed)
        segments = [rng.integers(0, 1 << 13, size=rng.integers(50, 1500))
                    for _ in range(4)]
        for assoc in (1, 2, None):
            config = CacheConfig(1024, 32, assoc)
            fast = simulate_sequence(segments, config)
            slow = simulate_sequence(segments, config, kernel="reference")
            assert len(fast) == len(slow) == len(segments)
            for a, b in zip(fast, slow):
                assert (a.accesses, a.misses, a.cold_misses) == \
                       (b.accesses, b.misses, b.cold_misses)

    def test_empty(self):
        assert sequence_stats([], CacheConfig(256, 32)) == []

    def test_warm_second_segment_reuses_first(self):
        frame = np.arange(0, 1024, 4)
        stats = simulate_sequence([frame, frame], CacheConfig(4096, 32))
        assert stats[0].misses == 32   # all cold
        assert stats[1].misses == 0    # fully warm


class TestSceneSlices:
    """Exact equivalence on real rendered traces across paper grids."""

    @pytest.fixture(scope="class")
    def streams(self):
        engine = Engine()
        spec = TraceSpec("town", scale=0.05, order=("vertical",))
        return engine.streams(spec, ("blocked", 4))

    def test_paper_grid_bit_identical(self, streams):
        for line_size in (32, 128):
            stream = streams.stream(line_size)
            for size in (2048, 16384):
                for assoc in (1, 2, 4, 8, 16, None):
                    config = CacheConfig(size, line_size, assoc)
                    fast = simulate(stream, config)
                    slow = simulate(stream, config, kernel="reference")
                    assert (fast.misses, fast.cold_misses) == \
                           (slow.misses, slow.cold_misses), config.label()

    def test_histogram_totals(self, streams):
        stream = streams.stream(64)
        counts, cold = set_distance_histogram(stream.run_lines, 8)
        assert counts.sum() + cold == len(stream.run_lines)


class TestStoreRoundTrip:
    def test_set_profile_persists(self, tmp_path):
        store = ArtifactStore(tmp_path)
        lines = random_lines(9, n=900, universe=128)
        run_lines, _ = _collapse(lines)
        stream = LineStream(line_size=32, run_lines=run_lines,
                            total_accesses=len(lines))
        profile = SetDistanceProfile.from_stream(stream, 8)
        payload = set_profile_payload({"addresses": "test"}, 32, 8)
        store.save_set_profile(payload, profile)
        loaded = store.load_set_profile(payload)
        assert loaded is not None
        assert (loaded.line_size, loaded.n_sets, loaded.cold,
                loaded.duplicate_hits) == (32, 8, profile.cold,
                                           profile.duplicate_hits)
        np.testing.assert_array_equal(loaded.counts, profile.counts)

    def test_missing_and_torn_files_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        payload = set_profile_payload({"addresses": "test"}, 32, 8)
        assert store.load_set_profile(payload) is None
        from repro.engine.artifacts import fingerprint
        path = store._path("set_profiles", fingerprint(payload), ".npz")
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not an npz")
        assert store.load_set_profile(payload) is None

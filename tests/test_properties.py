"""Property-based tests (hypothesis) on the core data structures and
invariants: LRU caching, stack distances, layouts and traversal
orders."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import (
    CacheConfig,
    LineStream,
    LRUCache,
    collapse_consecutive,
    simulate,
)
from repro.core.classify import classify_misses
from repro.core.stackdist import COLD, DistanceProfile, stack_distances
from repro.raster.order import HilbertOrder, HorizontalOrder, TiledOrder, VerticalOrder
from repro.texture.layout import (
    Blocked6DLayout,
    BlockedLayout,
    NonblockedLayout,
    PaddedBlockedLayout,
)

lines_strategy = st.lists(st.integers(min_value=0, max_value=63),
                          min_size=1, max_size=300)

pow2 = st.sampled_from([1, 2, 4, 8, 16])


@st.composite
def cache_configs(draw):
    line_size = draw(st.sampled_from([16, 32, 64, 128]))
    n_lines = draw(st.sampled_from([4, 8, 16, 32]))
    assoc = draw(st.sampled_from([1, 2, 4, None]))
    return CacheConfig(size=line_size * n_lines, line_size=line_size, assoc=assoc)


class TestCacheProperties:
    @given(lines=lines_strategy, config=cache_configs())
    @settings(max_examples=60, deadline=None)
    def test_simulate_matches_reference(self, lines, config):
        addresses = np.asarray(lines, dtype=np.int64) * config.line_size
        fast = simulate(addresses, config)
        reference = LRUCache(config)
        for line in lines:
            reference.access(line)
        assert fast.misses == reference.misses
        assert fast.cold_misses == reference.cold_misses

    @given(lines=lines_strategy)
    @settings(max_examples=60, deadline=None)
    def test_collapse_preserves_length_accounting(self, lines):
        array = np.asarray(lines, dtype=np.int64)
        runs, dup = collapse_consecutive(array)
        assert len(runs) + dup == len(array)
        # No two consecutive runs are equal.
        assert (np.diff(runs) != 0).all()

    @given(lines=lines_strategy)
    @settings(max_examples=40, deadline=None)
    def test_collapsing_is_exact_for_lru(self, lines):
        # Simulating with duplicates inline equals simulate()'s
        # collapsed path (duplicates credited as hits).
        config = CacheConfig(size=256, line_size=32, assoc=2)
        addresses = np.asarray(lines, dtype=np.int64) * 32
        collapsed_stats = simulate(addresses, config)
        reference = LRUCache(config)
        hits = sum(reference.access(line) for line in lines)
        assert collapsed_stats.hits == hits

    @given(lines=lines_strategy)
    @settings(max_examples=40, deadline=None)
    def test_miss_rate_antitone_in_size_fully_associative(self, lines):
        addresses = np.asarray(lines, dtype=np.int64) * 32
        previous = None
        for n_lines in (2, 4, 8, 16, 32, 64):
            stats = simulate(addresses, CacheConfig(size=n_lines * 32, line_size=32))
            if previous is not None:
                assert stats.misses <= previous
            previous = stats.misses

    @given(lines=lines_strategy, config=cache_configs())
    @settings(max_examples=60, deadline=None)
    def test_classification_partitions_misses(self, lines, config):
        addresses = np.asarray(lines, dtype=np.int64) * config.line_size
        stats = classify_misses(addresses, config)
        assert stats.cold_misses + stats.capacity_misses + stats.conflict_misses \
            == stats.misses
        assert stats.cold_misses == len(set(lines))


class TestStackDistanceProperties:
    @given(lines=lines_strategy)
    @settings(max_examples=60, deadline=None)
    def test_distances_match_fully_associative_simulation(self, lines):
        array = np.asarray(lines, dtype=np.int64)
        runs, dup = collapse_consecutive(array)
        stream = LineStream(line_size=32, run_lines=runs,
                            total_accesses=len(array))
        profile = DistanceProfile.from_stream(stream)
        for n_lines in (1, 2, 4, 8, 32):
            config = CacheConfig(size=n_lines * 32, line_size=32)
            stats = simulate(array * 32, config)
            assert profile.misses_at(n_lines) == stats.misses

    @given(lines=lines_strategy)
    @settings(max_examples=60, deadline=None)
    def test_cold_count_is_distinct_lines(self, lines):
        distances = stack_distances(np.asarray(lines, dtype=np.int64))
        assert int((distances == COLD).sum()) == len(set(lines))

    @given(lines=lines_strategy)
    @settings(max_examples=60, deadline=None)
    def test_distance_bounded_by_alphabet(self, lines):
        distances = stack_distances(np.asarray(lines, dtype=np.int64))
        finite = distances[distances != COLD]
        if len(finite):
            assert finite.min() >= 1
            assert finite.max() <= len(set(lines))


coords = st.lists(
    st.tuples(st.integers(0, 63), st.integers(0, 63)),
    min_size=1, max_size=64, unique=True,
)


class TestLayoutProperties:
    @given(points=coords, block=pow2)
    @settings(max_examples=40, deadline=None)
    def test_blocked_injective(self, points, block):
        layout = BlockedLayout(block_w=block)
        plan = layout.place_texture([(64, 64)])
        tu = np.array([p[0] for p in points])
        tv = np.array([p[1] for p in points])
        addresses = layout.addresses(plan.levels[0], tu, tv)
        assert len(set(addresses.tolist())) == len(points)
        assert addresses.min() >= 0
        assert addresses.max() < plan.total_nbytes

    @given(points=coords, block=pow2, pad=st.sampled_from([1, 2, 4]))
    @settings(max_examples=40, deadline=None)
    def test_padded_injective_and_bounded(self, points, block, pad):
        layout = PaddedBlockedLayout(block_w=block, pad_blocks=pad)
        plan = layout.place_texture([(64, 64)])
        tu = np.array([p[0] for p in points])
        tv = np.array([p[1] for p in points])
        addresses = layout.addresses(plan.levels[0], tu, tv)
        assert len(set(addresses.tolist())) == len(points)
        assert addresses.max() < plan.total_nbytes

    @given(points=coords, block=st.sampled_from([2, 4, 8]))
    @settings(max_examples=40, deadline=None)
    def test_blocked6d_injective_and_bounded(self, points, block):
        layout = Blocked6DLayout(block_w=block, superblock_nbytes=4096)
        plan = layout.place_texture([(64, 64)])
        tu = np.array([p[0] for p in points])
        tv = np.array([p[1] for p in points])
        addresses = layout.addresses(plan.levels[0], tu, tv)
        assert len(set(addresses.tolist())) == len(points)
        assert addresses.max() < plan.total_nbytes

    @given(points=coords)
    @settings(max_examples=40, deadline=None)
    def test_layouts_agree_on_texel_count(self, points):
        # Different layouts permute texels; they never merge them.
        tu = np.array([p[0] for p in points])
        tv = np.array([p[1] for p in points])
        counts = set()
        for layout in (NonblockedLayout(), BlockedLayout(8),
                       PaddedBlockedLayout(8)):
            plan = layout.place_texture([(64, 64)])
            addresses = layout.addresses(plan.levels[0], tu, tv)
            counts.add(len(set(addresses.tolist())))
        assert counts == {len(points)}


class TestOrderProperties:
    @given(points=coords)
    @settings(max_examples=40, deadline=None)
    def test_orders_are_permutations(self, points):
        x = np.array([p[0] for p in points])
        y = np.array([p[1] for p in points])
        for order in (HorizontalOrder(), VerticalOrder(), TiledOrder(8),
                      HilbertOrder(6)):
            perm = order.argsort(x, y)
            assert sorted(perm.tolist()) == list(range(len(points)))

    @given(points=coords)
    @settings(max_examples=40, deadline=None)
    def test_horizontal_is_lexicographic(self, points):
        x = np.array([p[0] for p in points])
        y = np.array([p[1] for p in points])
        perm = HorizontalOrder().argsort(x, y)
        keys = list(zip(y[perm].tolist(), x[perm].tolist()))
        assert keys == sorted(keys)

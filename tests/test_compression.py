"""Tests for VQ texture compression (paper Section 8 future work)."""

import numpy as np
import pytest

from repro.texture.compression import (
    CODEBOOK_SIZE,
    VQCompressedLayout,
    VQTexture,
    compress,
    decompress,
    mean_squared_error,
)
from repro.texture.image import TextureImage
from repro.texture.procedural import checkerboard, wood


class TestVQCompressedLayout:
    def test_four_texels_share_one_byte(self):
        layout = VQCompressedLayout(index_block_w=8)
        plan = layout.place_texture([(64, 64)])
        tu = np.array([0, 1, 0, 1])
        tv = np.array([0, 0, 1, 1])
        addresses = layout.addresses(plan.levels[0], tu, tv)
        assert len(set(addresses.tolist())) == 1

    def test_adjacent_blocks_differ(self):
        layout = VQCompressedLayout(index_block_w=8)
        plan = layout.place_texture([(64, 64)])
        a = layout.addresses(plan.levels[0], np.array([0]), np.array([0]))
        b = layout.addresses(plan.levels[0], np.array([2]), np.array([0]))
        assert a[0] != b[0]

    def test_sixteen_to_one_allocation(self):
        layout = VQCompressedLayout(index_block_w=8)
        plan = layout.place_texture([(64, 64)])
        assert plan.total_nbytes == 64 * 64 // 4  # 1 byte per 2x2 block

    def test_bijective_over_index_plane(self):
        layout = VQCompressedLayout(index_block_w=4)
        plan = layout.place_texture([(32, 32)])
        tv, tu = np.mgrid[0:32:2, 0:32:2]
        addresses = layout.addresses(plan.levels[0], tu.ravel(), tv.ravel())
        assert len(np.unique(addresses)) == 16 * 16
        assert addresses.max() < plan.total_nbytes

    def test_small_levels_handled(self):
        layout = VQCompressedLayout(index_block_w=8)
        plan = layout.place_texture([(64, 64), (32, 32), (2, 2), (1, 1)])
        address = layout.addresses(plan.levels[3], np.array([0]), np.array([0]))
        assert address[0] >= plan.levels[3].base

    def test_rejects_non_pow2_block(self):
        with pytest.raises(ValueError):
            VQCompressedLayout(index_block_w=3)


class TestCompressRoundtrip:
    def test_codebook_shape(self):
        vq = compress(wood(64, 64, seed=1))
        assert vq.codebook.shape == (CODEBOOK_SIZE, 2, 2, 4)
        assert vq.indices.shape == (32, 32)
        assert vq.compression_ratio == 16.0

    def test_two_tone_image_compresses_exactly(self):
        # A checkerboard with 4-texel squares has few distinct blocks:
        # VQ reproduces it perfectly.
        image = checkerboard(32, 32, squares=8)
        vq = compress(image)
        restored = decompress(vq)
        assert mean_squared_error(image, restored) < 1.0

    def test_lossy_but_close_on_natural_texture(self):
        image = wood(64, 64, seed=2)
        restored = decompress(compress(image))
        error = mean_squared_error(image, restored)
        trivial = mean_squared_error(
            image, TextureImage.solid(64, 64, tuple(
                image.texels.reshape(-1, 4).mean(axis=0).astype(np.uint8))))
        assert error < trivial / 3

    def test_deterministic(self):
        image = wood(32, 32, seed=3)
        a = compress(image, seed=5)
        b = compress(image, seed=5)
        assert np.array_equal(a.indices, b.indices)

    def test_rejects_tiny_image(self):
        with pytest.raises(ValueError):
            compress(TextureImage.solid(1, 1))

    def test_nbytes_accounting(self):
        vq = compress(wood(64, 64))
        assert vq.compressed_nbytes == 1024
        assert vq.codebook_nbytes == CODEBOOK_SIZE * 16

"""Additional property-based tests (hypothesis): filtering footprints,
VQ layout, anisotropic probes, warm-cache sequences and victim caches."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CacheConfig, simulate, simulate_sequence
from repro.core.victim import simulate_victim
from repro.texture.compression import VQCompressedLayout
from repro.texture.filtering import generate_accesses, generate_accesses_aniso

unit = st.floats(min_value=0.0, max_value=0.999, allow_nan=False)
lods = st.floats(min_value=-3.0, max_value=8.0, allow_nan=False)
lines = st.lists(st.integers(0, 63), min_size=1, max_size=200)


class TestFilteringProperties:
    @given(u=unit, v=unit, lod=lods)
    @settings(max_examples=120, deadline=None)
    def test_footprint_shape(self, u, v, lod):
        accesses = generate_accesses(np.array([u]), np.array([v]),
                                     np.array([lod]), 7, 64, 64)
        # 8 accesses (trilinear) or 4 (bilinear); coordinates in range.
        assert accesses.n_accesses in (4, 8)
        assert accesses.tu.min() >= 0
        for index in range(accesses.n_accesses):
            width = max(64 >> int(accesses.level[index]), 1)
            assert accesses.tu[index] < width
            assert accesses.tv[index] < width

    @given(u=unit, v=unit, lod=lods)
    @settings(max_examples=80, deadline=None)
    def test_footprint_is_2x2_per_level(self, u, v, lod):
        accesses = generate_accesses(np.array([u]), np.array([v]),
                                     np.array([lod]), 7, 64, 64)
        for level in np.unique(accesses.level):
            mask = accesses.level == level
            assert len(set(accesses.tu_raw[mask].tolist())) <= 2
            assert len(set(accesses.tv_raw[mask].tolist())) <= 2

    @given(u=unit, v=unit,
           dudx=st.floats(0.1, 32.0), dvdy=st.floats(0.1, 32.0))
    @settings(max_examples=80, deadline=None)
    def test_aniso_probe_count_bounds(self, u, v, dudx, dvdy):
        accesses = generate_accesses_aniso(
            np.array([u]), np.array([v]),
            np.array([dudx]), np.array([0.0]),
            np.array([0.0]), np.array([dvdy]),
            7, 64, 64, max_aniso=4,
        )
        # Between one bilinear quad and 4 trilinear probes.
        assert 4 <= accesses.n_accesses <= 4 * 8
        assert (accesses.fragment_index == 0).all()


class TestVQLayoutProperties:
    @given(points=st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63)),
                           min_size=1, max_size=64, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_vq_block_sharing(self, points):
        layout = VQCompressedLayout(index_block_w=4)
        plan = layout.place_texture([(64, 64)])
        tu = np.array([p[0] for p in points])
        tv = np.array([p[1] for p in points])
        addresses = layout.addresses(plan.levels[0], tu, tv)
        # Texels in the same 2x2 block share an address; distinct
        # blocks get distinct addresses.
        blocks = set(zip((tu >> 1).tolist(), (tv >> 1).tolist()))
        assert len(set(addresses.tolist())) == len(blocks)
        assert addresses.max() < plan.total_nbytes


class TestSequenceProperties:
    @given(first=lines, second=lines)
    @settings(max_examples=60, deadline=None)
    def test_sequence_totals_match_concatenation(self, first, second):
        config = CacheConfig(256, 32, 2)
        a = np.asarray(first, dtype=np.int64) * 32
        b = np.asarray(second, dtype=np.int64) * 32
        segments = simulate_sequence([a, b], config)
        whole = simulate(np.concatenate([a, b]), config)
        assert segments[0].misses + segments[1].misses == whole.misses
        assert segments[0].accesses + segments[1].accesses == whole.accesses
        assert segments[0].cold_misses + segments[1].cold_misses == whole.cold_misses

    @given(stream=lines)
    @settings(max_examples=60, deadline=None)
    def test_warm_repeat_never_worse(self, stream):
        config = CacheConfig(512, 32)
        addresses = np.asarray(stream, dtype=np.int64) * 32
        warm = simulate_sequence([addresses, addresses], config)
        cold = simulate(addresses, config)
        assert warm[1].misses <= cold.misses


class TestVictimProperties:
    @given(stream=lines, victims=st.sampled_from([0, 1, 2, 4]))
    @settings(max_examples=60, deadline=None)
    def test_victim_never_increases_misses(self, stream, victims):
        config = CacheConfig(256, 32, 1)
        addresses = np.asarray(stream, dtype=np.int64) * 32
        with_victims = simulate_victim(addresses, config, victims)
        plain = simulate(addresses, config)
        assert with_victims.misses <= plain.misses
        # Accounting: hits + victim hits + misses = accesses.
        total = (with_victims.misses + with_victims.victim_hits)
        assert total <= with_victims.accesses

    @given(stream=lines)
    @settings(max_examples=40, deadline=None)
    def test_huge_victim_buffer_approaches_full_associativity(self, stream):
        config = CacheConfig(256, 32, 1)
        addresses = np.asarray(stream, dtype=np.int64) * 32
        buffered = simulate_victim(addresses, config, victim_lines=64)
        # Main (8 lines) + 64 victims hold all 64 possible lines: only
        # cold misses remain.
        assert buffered.misses == buffered.cold_misses

"""Unit tests for vertex lighting (repro.geometry.lighting)."""

import numpy as np

from repro.geometry.lighting import DirectionalLight, light_mesh
from repro.geometry.mesh import make_quad


class TestDirectionalLight:
    def test_facing_light_is_brightest(self):
        light = DirectionalLight(direction=(0, 0, 1), ambient=0.2, diffuse=0.8)
        normals = np.array([[0, 0, 1.0], [0, 0, -1.0], [1.0, 0, 0]])
        shade = light.shade(normals)
        assert shade[0] == 1.0
        assert shade[1] == 0.2  # backfacing: ambient only
        assert shade[2] == 0.2  # perpendicular

    def test_clamped_to_unit(self):
        light = DirectionalLight(direction=(0, 0, 1), ambient=0.9, diffuse=0.9)
        shade = light.shade(np.array([[0, 0, 1.0]]))
        assert shade[0] == 1.0

    def test_light_mesh_shape(self):
        quad = make_quad(np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]],
                                  dtype=float), texture_id=0)
        colors = light_mesh(quad, DirectionalLight(direction=(0, 0, 1)))
        assert colors.shape == (4, 3)
        assert np.allclose(colors, 1.0)

"""Unit tests for the stack-distance engine (repro.core.stackdist)."""

import numpy as np
import pytest

from repro.core.cache import CacheConfig, LineStream, simulate
from repro.core.stackdist import (
    COLD,
    DistanceProfile,
    miss_rate_curve,
    stack_distances,
)


def naive_stack_distances(lines):
    """O(n^2) reference: distinct lines since previous access, plus 1."""
    result = []
    for index, line in enumerate(lines):
        previous = None
        for j in range(index - 1, -1, -1):
            if lines[j] == line:
                previous = j
                break
        if previous is None:
            result.append(COLD)
        else:
            result.append(len(set(lines[previous + 1:index])) + 1)
    return result


class TestStackDistances:
    def test_simple_sequence(self):
        lines = np.array([1, 2, 3, 1, 2, 1])
        assert stack_distances(lines).tolist() == [COLD, COLD, COLD, 3, 3, 2]

    def test_immediate_repeat_distance_one(self):
        lines = np.array([5, 5])
        assert stack_distances(lines).tolist() == [COLD, 1]

    def test_matches_naive_reference(self):
        rng = np.random.default_rng(7)
        lines = rng.integers(0, 40, size=400)
        fast = stack_distances(lines)
        slow = naive_stack_distances(lines.tolist())
        assert fast.tolist() == slow

    def test_all_distinct(self):
        lines = np.arange(100)
        assert (stack_distances(lines) == COLD).all()


class TestDistanceProfile:
    def test_misses_at_capacity(self):
        lines = np.array([1, 2, 3, 1, 2, 1])
        stream = LineStream(line_size=32, run_lines=lines, total_accesses=6)
        profile = DistanceProfile.from_stream(stream)
        # Capacity 3 holds everything: only the 3 cold misses remain.
        assert profile.misses_at(3) == 3
        # Capacity 2 misses the two distance-3 accesses as well.
        assert profile.misses_at(2) == 5
        assert profile.misses_at(1) == 6

    def test_inclusion_monotonicity(self):
        rng = np.random.default_rng(11)
        lines = rng.integers(0, 64, size=2000)
        stream = LineStream(line_size=32, run_lines=lines, total_accesses=2000)
        profile = DistanceProfile.from_stream(stream)
        misses = [profile.misses_at(c) for c in range(1, 80)]
        assert all(a >= b for a, b in zip(misses, misses[1:]))

    def test_duplicate_hits_counted(self):
        addresses = np.array([0, 0, 0, 64])
        stream = LineStream.from_addresses(addresses, 64)
        profile = DistanceProfile.from_stream(stream)
        assert profile.total_accesses == 4
        assert profile.duplicate_hits == 2
        assert profile.misses_at(1) == 2  # two cold misses

    def test_rejects_zero_capacity(self):
        profile = DistanceProfile(counts=np.zeros(1, dtype=np.int64),
                                  cold=0, duplicate_hits=0)
        with pytest.raises(ValueError):
            profile.misses_at(0)


class TestMissRateCurve:
    def test_agrees_with_direct_simulation(self):
        rng = np.random.default_rng(3)
        # A mix of streaming and reuse.
        addresses = np.concatenate([
            rng.integers(0, 2048, size=4000) * 8,
            np.arange(0, 8192, 8),
        ])
        curve = miss_rate_curve(addresses, 64, [512, 1024, 4096])
        for size, rate in zip(curve.sizes, curve.miss_rates):
            stats = simulate(addresses, CacheConfig(size=int(size), line_size=64))
            assert stats.miss_rate == pytest.approx(rate, abs=1e-12)

    def test_cold_rate_floor(self):
        addresses = np.arange(0, 4096, 4)
        curve = miss_rate_curve(addresses, 32, [128, 4096])
        assert curve.cold_miss_rate == pytest.approx(128 / 1024)
        assert np.allclose(curve.miss_rates, curve.cold_miss_rate)

    def test_sizes_sorted(self):
        addresses = np.arange(0, 4096, 4)
        curve = miss_rate_curve(addresses, 32, [4096, 128])
        assert curve.sizes.tolist() == [128, 4096]

    def test_as_stats(self):
        addresses = np.arange(0, 4096, 4)
        curve = miss_rate_curve(addresses, 32, [1024])
        stats = curve.as_stats()[0]
        assert stats.config.size == 1024
        assert stats.accesses == 1024
        assert stats.misses == 128

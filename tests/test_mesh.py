"""Unit tests for repro.geometry.mesh."""

import numpy as np
import pytest

from repro.geometry.mesh import Mesh, make_grid, make_quad
from repro.geometry.transform import translate


def simple_mesh():
    return Mesh(
        positions=np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float),
        uvs=np.zeros((3, 2)),
        triangles=np.array([[0, 1, 2]]),
        texture_ids=np.array([5]),
    )


class TestMeshValidation:
    def test_basic(self):
        mesh = simple_mesh()
        assert mesh.n_vertices == 3
        assert mesh.n_triangles == 1

    def test_rejects_bad_uvs(self):
        with pytest.raises(ValueError):
            Mesh(positions=np.zeros((3, 3)), uvs=np.zeros((2, 2)),
                 triangles=np.array([[0, 1, 2]]), texture_ids=np.array([0]))

    def test_rejects_out_of_range_index(self):
        with pytest.raises(ValueError):
            Mesh(positions=np.zeros((3, 3)), uvs=np.zeros((3, 2)),
                 triangles=np.array([[0, 1, 3]]), texture_ids=np.array([0]))

    def test_rejects_mismatched_texture_ids(self):
        with pytest.raises(ValueError):
            Mesh(positions=np.zeros((3, 3)), uvs=np.zeros((3, 2)),
                 triangles=np.array([[0, 1, 2]]), texture_ids=np.array([0, 1]))


class TestTransformed:
    def test_translation_moves_positions(self):
        mesh = simple_mesh().transformed(translate(1.0, 0.0, 0.0))
        assert np.allclose(mesh.positions[0], [1, 0, 0])

    def test_original_untouched(self):
        mesh = simple_mesh()
        mesh.transformed(translate(1.0, 0.0, 0.0))
        assert np.allclose(mesh.positions[0], [0, 0, 0])


class TestConcat:
    def test_preserves_submission_order(self):
        a = simple_mesh()
        b = simple_mesh()
        b.texture_ids = np.array([9])
        merged = Mesh.concat([a, b])
        assert merged.texture_ids.tolist() == [5, 9]
        assert merged.n_vertices == 6
        assert merged.triangles[1].tolist() == [3, 4, 5]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Mesh.concat([])


class TestMakeQuad:
    def test_two_triangles_unsubdivided(self):
        quad = make_quad(np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]],
                                  dtype=float), texture_id=3)
        assert quad.n_triangles == 2
        assert (quad.texture_ids == 3).all()

    def test_subdivision_counts(self):
        quad = make_quad(np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]],
                                  dtype=float), texture_id=0, subdivide=4)
        assert quad.n_triangles == 32
        assert quad.n_vertices == 25

    def test_uv_rect_repeats(self):
        quad = make_quad(np.array([[0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]],
                                  dtype=float), texture_id=0,
                         uv_rect=(0.0, 0.0, 3.0, 2.0))
        assert quad.uvs[:, 0].max() == 3.0
        assert quad.uvs[:, 1].max() == 2.0

    def test_corner_interpolation(self):
        corners = np.array([[0, 0, 0], [2, 0, 0], [2, 2, 0], [0, 2, 0]], dtype=float)
        quad = make_quad(corners, texture_id=0, subdivide=2)
        # Center vertex sits at the quad center.
        center = quad.positions[4]
        assert np.allclose(center, [1, 1, 0])

    def test_rejects_bad_corners(self):
        with pytest.raises(ValueError):
            make_quad(np.zeros((3, 3)), texture_id=0)

    def test_rejects_bad_subdivide(self):
        with pytest.raises(ValueError):
            make_quad(np.zeros((4, 3)), texture_id=0, subdivide=0)


class TestMakeGrid:
    def test_triangle_count(self):
        grid = make_grid(np.zeros((4, 5)), cell_size=1.0, texture_id=0)
        assert grid.n_triangles == 2 * 3 * 4
        assert grid.n_vertices == 20

    def test_heights_applied(self):
        heights = np.zeros((2, 2))
        heights[1, 1] = 5.0
        grid = make_grid(heights, cell_size=2.0, texture_id=0)
        assert np.allclose(grid.positions[3], [2.0, 5.0, 2.0])

    def test_uv_span(self):
        grid = make_grid(np.zeros((3, 3)), cell_size=1.0, texture_id=0,
                         uv_scale=2.0)
        assert grid.uvs.max() == 2.0
        assert grid.uvs.min() == 0.0

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            make_grid(np.zeros((1, 5)), cell_size=1.0, texture_id=0)

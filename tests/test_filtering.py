"""Unit tests for repro.texture.filtering (trilinear/bilinear access
generation, paper Section 2)."""

import numpy as np
import pytest

from repro.texture.filtering import (
    KIND_BILINEAR,
    KIND_LOWER,
    KIND_UPPER,
    filter_colors,
    generate_accesses,
)
from repro.texture.image import TextureImage
from repro.texture.mipmap import MipMap
from repro.texture.procedural import gradient


@pytest.fixture
def mipmap64():
    return MipMap.build(TextureImage.solid(64, 64, rgba=(100, 150, 200, 255)))


class TestAccessCounts:
    def test_trilinear_emits_eight(self):
        accesses = generate_accesses(
            np.array([0.5]), np.array([0.5]), np.array([1.5]), 7, 64, 64)
        assert accesses.n_accesses == 8

    def test_bilinear_emits_four(self):
        accesses = generate_accesses(
            np.array([0.5]), np.array([0.5]), np.array([-0.5]), 7, 64, 64)
        assert accesses.n_accesses == 4
        assert (accesses.kind == KIND_BILINEAR).all()
        assert (accesses.level == 0).all()

    def test_lod_zero_is_bilinear(self):
        # Section 2: the special case is a ratio *less than one*
        # (lod <= 0); exactly 1.0 maps to bilinear at level 0.
        accesses = generate_accesses(
            np.array([0.5]), np.array([0.5]), np.array([0.0]), 7, 64, 64)
        assert accesses.n_accesses == 4

    def test_mixed_fragments_keep_order(self):
        accesses = generate_accesses(
            np.array([0.5, 0.5, 0.5]), np.array([0.5, 0.5, 0.5]),
            np.array([1.5, -1.0, 2.5]), 7, 64, 64)
        assert accesses.n_accesses == 8 + 4 + 8
        assert accesses.fragment_index.tolist() == [0] * 8 + [1] * 4 + [2] * 8


class TestLevelSelection:
    def test_trilinear_adjacent_levels(self):
        accesses = generate_accesses(
            np.array([0.5]), np.array([0.5]), np.array([2.3]), 7, 64, 64)
        assert accesses.level[:4].tolist() == [2] * 4
        assert accesses.level[4:].tolist() == [3] * 4
        assert accesses.kind[:4].tolist() == [KIND_LOWER] * 4
        assert accesses.kind[4:].tolist() == [KIND_UPPER] * 4

    def test_lower_level_first(self):
        # The paper's access order: the more detailed (lower) level's
        # quad precedes the upper level's quad.
        accesses = generate_accesses(
            np.array([0.5]), np.array([0.5]), np.array([1.5]), 7, 64, 64)
        assert (accesses.level[:4] < accesses.level[4:]).all()

    def test_lod_clamped_to_pyramid_top(self):
        accesses = generate_accesses(
            np.array([0.5]), np.array([0.5]), np.array([20.0]), 7, 64, 64)
        assert (accesses.level == 6).all()


class TestCoordinates:
    def test_footprint_is_2x2(self):
        accesses = generate_accesses(
            np.array([0.25]), np.array([0.25]), np.array([-1.0]), 7, 64, 64)
        # u * 64 - 0.5 = 15.5 -> texels 15, 16.
        assert sorted(set(accesses.tu.tolist())) == [15, 16]
        assert sorted(set(accesses.tv.tolist())) == [15, 16]

    def test_wrap_repeat(self):
        accesses = generate_accesses(
            np.array([1.25]), np.array([0.25]), np.array([-1.0]), 7, 64, 64)
        assert sorted(set(accesses.tu.tolist())) == [15, 16]
        assert sorted(set(accesses.tu_raw.tolist())) == [79, 80]

    def test_wrap_negative(self):
        accesses = generate_accesses(
            np.array([0.0]), np.array([0.0]), np.array([-1.0]), 7, 64, 64)
        # u * 64 - 0.5 = -0.5 -> raw texels -1, 0 -> wrapped 63, 0.
        assert sorted(set(accesses.tu.tolist())) == [0, 63]
        assert sorted(set(accesses.tu_raw.tolist())) == [-1, 0]

    def test_upper_level_coordinates_halved(self):
        accesses = generate_accesses(
            np.array([0.5]), np.array([0.5]), np.array([1.5]), 7, 64, 64)
        assert accesses.tu[:4].max() <= 32
        assert accesses.tu[4:].max() <= 16


class TestFilterColors:
    def test_constant_texture(self, mipmap64):
        colors = filter_colors(
            mipmap64, np.array([0.3, 0.8]), np.array([0.1, 0.9]),
            np.array([1.7, -0.5]))
        assert np.allclose(colors[:, 0], 100)
        assert np.allclose(colors[:, 2], 200)

    def test_bilinear_midpoint(self):
        texels = np.zeros((1, 2, 4), dtype=np.uint8)
        texels[0, 0] = 0
        texels[0, 1] = 200
        # Widths must be powers of two; 2x1 is valid.
        mipmap = MipMap.build(TextureImage(texels))
        color = filter_colors(mipmap, np.array([0.5]), np.array([0.5]),
                              np.array([-1.0]))
        assert abs(color[0, 0] - 100) < 1e-6

    def test_gradient_monotonic(self):
        mipmap = MipMap.build(gradient(64, 64))
        us = np.array([0.2, 0.5, 0.8])
        colors = filter_colors(mipmap, us, np.full(3, 0.5), np.full(3, -1.0))
        assert colors[0, 0] < colors[1, 0] < colors[2, 0]

    def test_trilinear_blends_levels(self):
        # Level 0 dark, checker fine detail averages to mid at level 1+.
        texels = np.zeros((2, 2, 4), dtype=np.uint8)
        texels[0, 0] = texels[1, 1] = 200
        mipmap = MipMap.build(TextureImage(texels))
        near = filter_colors(mipmap, np.array([0.25]), np.array([0.25]),
                             np.array([0.01]))
        far = filter_colors(mipmap, np.array([0.25]), np.array([0.25]),
                            np.array([0.99]))
        # Near lod ~0 keeps more of the level-0 value at (0,0) = 200;
        # far lod ~1 approaches the 1x1 average = 100.
        assert near[0, 0] > far[0, 0]

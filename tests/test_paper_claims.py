"""End-to-end reproduction checks of the paper's qualitative claims.

Each test renders a (small-scale) benchmark scene through the full
pipeline and checks the *direction* of a published result: who wins,
where the knees fall, which mechanism removes which misses.  These are
the repository's ground-truth guardrails; the benchmark harnesses
regenerate the corresponding tables and figures at larger scale.
"""

import numpy as np
import pytest

from repro import (
    Blocked6DLayout,
    BlockedLayout,
    CacheConfig,
    GobletScene,
    GuitarScene,
    HorizontalOrder,
    NonblockedLayout,
    PaddedBlockedLayout,
    TiledOrder,
    TownScene,
    TraceStreams,
    VerticalOrder,
    cached_bandwidth,
    classify_misses,
    miss_rate_curve,
    place_textures,
    render_trace,
    simulate,
    uncached_bandwidth,
)

SCALE = 0.2


@pytest.fixture(scope="module")
def town():
    return TownScene().build(scale=SCALE)


@pytest.fixture(scope="module")
def town_traces(town):
    return {
        "horizontal": render_trace(town, order=HorizontalOrder()).trace,
        "vertical": render_trace(town, order=VerticalOrder()).trace,
    }


@pytest.fixture(scope="module")
def goblet_trace():
    scene = GobletScene().build(scale=SCALE)
    return scene, render_trace(scene, order=HorizontalOrder()).trace


class TestSection52BaseRepresentation:
    def test_town_vertical_is_worst_case(self, town, town_traces):
        """Section 5.2.3: vertical rasterization through Town's upright
        textures inflates small-cache miss rates under the nonblocked
        representation."""
        placements = place_textures(town.get_mipmaps(), NonblockedLayout())
        rates = {}
        for order, trace in town_traces.items():
            addresses = trace.byte_addresses(placements)
            curve = miss_rate_curve(addresses, 32, [1024, 32768])
            rates[order] = curve.miss_rates
        assert rates["vertical"][0] > 2.0 * rates["horizontal"][0]
        # Large caches converge: the difference is working-set size,
        # not cold misses.
        assert rates["vertical"][1] == pytest.approx(rates["horizontal"][1], rel=0.1)

    def test_cold_miss_rates_low(self, town, town_traces):
        """Section 5.2.2: cold miss rates are low (a 32-byte line holds
        eight texels and most of each line is used)."""
        placements = place_textures(town.get_mipmaps(), NonblockedLayout())
        addresses = town_traces["horizontal"].byte_addresses(placements)
        curve = miss_rate_curve(addresses, 32, [65536])
        assert curve.cold_miss_rate < 0.03

    def test_longer_lines_cut_cold_misses(self, town, town_traces):
        """Section 5.2.2: 128-byte lines reduce cold misses ~3-4x over
        32-byte lines (substantial spatial locality)."""
        placements = place_textures(town.get_mipmaps(), BlockedLayout(8))
        addresses = town_traces["horizontal"].byte_addresses(placements)
        short = miss_rate_curve(addresses, 32, [65536]).cold_miss_rate
        long = miss_rate_curve(addresses, 128, [65536]).cold_miss_rate
        assert long < short / 2.5

    def test_working_set_small_fraction_of_texture(self, town, town_traces):
        """Section 5.2.3: the first working set is a very small fraction
        of the texture content used."""
        placements = place_textures(town.get_mipmaps(), NonblockedLayout())
        addresses = town_traces["horizontal"].byte_addresses(placements)
        total_texture = sum(p.total_nbytes for p in placements)
        curve = miss_rate_curve(addresses, 32, [4096, total_texture])
        # A 4 KB cache (far below the texture content) is already
        # within 3x of the cold-miss floor.
        assert 4096 < total_texture / 10
        assert curve.miss_rates[0] < 3.0 * curve.miss_rates[-1]


class TestSection53BlockedRepresentation:
    def test_blocking_removes_orientation_dependence(self, town, town_traces):
        """Section 5.3: the blocked representation shrinks the
        vertical-rasterization working set."""
        small_cache = [1024]
        rates = {}
        for name, layout in [("nonblocked", NonblockedLayout()),
                             ("blocked", BlockedLayout(4))]:
            placements = place_textures(town.get_mipmaps(), layout)
            addresses = town_traces["vertical"].byte_addresses(placements)
            rates[name] = miss_rate_curve(addresses, 64, small_cache).miss_rates[0]
        assert rates["blocked"] < 0.5 * rates["nonblocked"]

    def test_best_block_matches_line_size(self, town, town_traces):
        """Figure 5.4: the lowest miss rate occurs when the block's
        memory footprint equals the cache line size."""
        line_size = 64  # matches a 4x4 block of 4-byte texels
        cache = [1024]
        rates = {}
        for block in (2, 4, 16):
            placements = place_textures(town.get_mipmaps(), BlockedLayout(block))
            addresses = town_traces["vertical"].byte_addresses(placements)
            rates[block] = miss_rate_curve(addresses, line_size, cache).miss_rates[0]
        assert rates[4] <= rates[2]
        assert rates[4] <= rates[16]

    def test_two_way_removes_mip_level_conflicts(self, goblet_trace):
        """Figure 5.7(a): for Goblet (small triangles), direct-mapped
        caches suffer conflicts between adjacent Mip levels; two-way
        set-associative caches match fully-associative miss rates."""
        scene, trace = goblet_trace
        placements = place_textures(scene.get_mipmaps(), BlockedLayout(8))
        streams = TraceStreams(trace.byte_addresses(placements))
        size = 2048
        direct = simulate(streams.stream(128), CacheConfig(size, 128, 1))
        two_way = simulate(streams.stream(128), CacheConfig(size, 128, 2))
        full = simulate(streams.stream(128), CacheConfig(size, 128, None))
        assert direct.miss_rate > 1.5 * two_way.miss_rate
        assert two_way.miss_rate == pytest.approx(full.miss_rate, rel=0.35)

    def test_town_vertical_conflicts_survive_two_way(self, town, town_traces):
        """Figure 5.7(b): Town-vertical has same-level block conflicts
        that two-way associativity cannot remove (gap to fully
        associative remains)."""
        placements = place_textures(town.get_mipmaps(), BlockedLayout(8))
        streams = TraceStreams(town_traces["vertical"].byte_addresses(placements))
        size = 4096
        two_way = classify_misses(streams.stream(128), CacheConfig(size, 128, 2))
        assert two_way.conflict_misses > 0


class TestSection6Tiling:
    @pytest.fixture(scope="class")
    def guitar(self):
        return GuitarScene().build(scale=SCALE)

    def test_medium_tiles_shrink_working_set(self, guitar):
        """Figure 6.2: medium tiles cut capacity misses at cache sizes
        that previously did not fit the working set; huge tiles revert
        to nontiled behaviour."""
        placements = place_textures(guitar.get_mipmaps(), BlockedLayout(8))
        cache = [1024]
        rates = {}
        for name, order in [("nontiled", HorizontalOrder()),
                            ("medium", TiledOrder(8)),
                            ("huge", TiledOrder(256))]:
            trace = render_trace(guitar, order=order).trace
            addresses = trace.byte_addresses(placements)
            rates[name] = miss_rate_curve(addresses, 128, cache).miss_rates[0]
        assert rates["medium"] < 0.75 * rates["nontiled"]
        assert rates["huge"] == pytest.approx(rates["nontiled"], rel=0.35)

    def test_goblet_insensitive_to_tiles(self, goblet_trace):
        """Section 6.1: with small triangles (Goblet), tiling does not
        hurt -- the working set is unaffected by tile dimensions."""
        scene, _ = goblet_trace
        placements = place_textures(scene.get_mipmaps(), BlockedLayout(8))
        rates = []
        for order in (HorizontalOrder(), TiledOrder(8), TiledOrder(32)):
            trace = render_trace(scene, order=order).trace
            addresses = trace.byte_addresses(placements)
            rates.append(miss_rate_curve(addresses, 128, [2048]).miss_rates[0])
        assert max(rates) < 1.25 * min(rates)

    def test_padding_reduces_block_column_conflicts(self):
        """Figure 6.4(b): with large textures (Flight), tiling alone is
        not sufficient; padding (or 6D blocking) removes conflicts
        between same-column neighbor blocks."""
        from repro import FlightScene
        scene = FlightScene().build(scale=SCALE)
        trace = render_trace(scene, order=TiledOrder(8)).trace
        results = {}
        for name, layout in [
            ("blocked", BlockedLayout(8)),
            ("padded", PaddedBlockedLayout(8, pad_blocks=4)),
            ("6d", Blocked6DLayout(8, superblock_nbytes=4096)),
        ]:
            placements = place_textures(scene.get_mipmaps(), layout)
            streams = TraceStreams(trace.byte_addresses(placements))
            stats = classify_misses(streams.stream(128),
                                    CacheConfig(4096, 128, 2))
            results[name] = stats
        assert results["padded"].conflict_misses < results["blocked"].conflict_misses
        assert results["6d"].conflict_misses < results["blocked"].conflict_misses


class TestSection7Bandwidth:
    def test_cache_reduces_bandwidth_at_least_threefold(self, town, town_traces):
        """Section 7.2: a working-set-sized cache cuts texture memory
        bandwidth by 3-15x versus the uncached 1.5 GB/s system."""
        placements = place_textures(
            town.get_mipmaps(), PaddedBlockedLayout(8, pad_blocks=4))
        trace = render_trace(town, order=TiledOrder(8)).trace
        addresses = trace.byte_addresses(placements)
        # A cache that holds the (scaled) working set: 32 KB x scale.
        stats = simulate(addresses, CacheConfig(8192, 64, 2))
        cached = cached_bandwidth(stats.miss_rate, 64)
        assert uncached_bandwidth() / cached > 3.0

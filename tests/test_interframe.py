"""Tests for animated scenes and warm-cache (inter-frame) simulation."""

import numpy as np
import pytest

from repro.core.cache import CacheConfig, simulate, simulate_sequence
from repro.pipeline.renderer import render_trace
from repro.scenes import ALL_SCENES, GobletScene
from repro.texture.layout import BlockedLayout
from repro.texture.memory import place_textures


class TestSimulateSequence:
    def test_single_segment_matches_simulate(self):
        rng = np.random.default_rng(2)
        addresses = rng.integers(0, 4096, size=3000) * 4
        config = CacheConfig(512, 32, 2)
        sequence = simulate_sequence([addresses], config)
        direct = simulate(addresses, config)
        assert sequence[0].misses == direct.misses
        assert sequence[0].accesses == direct.accesses
        assert sequence[0].cold_misses == direct.cold_misses

    def test_warm_start_helps_small_working_set(self):
        # Same addresses twice: the repeat segment hits entirely if the
        # cache holds the footprint.
        addresses = np.arange(0, 2048, 4)
        config = CacheConfig(4096, 32)
        first, second = simulate_sequence([addresses, addresses], config)
        assert first.misses == 64
        assert second.misses == 0

    def test_warm_start_useless_below_footprint(self):
        # Footprint twice the cache: LRU evicts everything before reuse.
        addresses = np.arange(0, 8192, 4)
        config = CacheConfig(4096, 32)
        first, second = simulate_sequence([addresses, addresses], config)
        assert second.misses == first.misses

    def test_cold_misses_not_recounted(self):
        addresses = np.arange(0, 2048, 4)
        config = CacheConfig(1024, 32)
        first, second = simulate_sequence([addresses, addresses], config)
        assert first.cold_misses == 64
        assert second.cold_misses == 0


class TestAnimatedScenes:
    @pytest.mark.parametrize("name", sorted(ALL_SCENES))
    def test_time_moves_camera_only(self, name):
        frame0 = ALL_SCENES[name]().build(scale=0.1, time=0.0)
        frame1 = ALL_SCENES[name]().build(scale=0.1, time=0.5)
        assert not np.allclose(frame0.view, frame1.view)
        assert np.array_equal(frame0.mesh.positions, frame1.mesh.positions)
        assert frame0.n_textures == frame1.n_textures

    def test_consecutive_frames_share_texture_footprint(self):
        # A 1/30s camera step leaves most of the referenced texels
        # identical -- the reuse inter-frame caching would exploit.
        scene0 = GobletScene().build(scale=0.15, time=0.0)
        scene1 = GobletScene().build(scale=0.15, time=1.0 / 30.0)
        placements = place_textures(scene0.get_mipmaps(), BlockedLayout(4))
        lines0 = set((render_trace(scene0).trace.byte_addresses(placements) // 64).tolist())
        lines1 = set((render_trace(scene1).trace.byte_addresses(placements) // 64).tolist())
        overlap = len(lines0 & lines1) / len(lines0 | lines1)
        assert overlap > 0.8

"""Unit tests for repro.geometry (vec, transform)."""

import numpy as np
import pytest

from repro.geometry.transform import (
    look_at,
    ndc_to_screen,
    perspective,
    rotate_x,
    rotate_y,
    rotate_z,
    scale,
    transform_points,
    translate,
)
from repro.geometry.vec import (
    normalize,
    triangle_normals,
    vertex_normals,
)


class TestVec:
    def test_normalize_unit_length(self):
        vectors = np.array([[3.0, 4.0, 0.0], [0.0, 0.0, 2.0]])
        result = normalize(vectors)
        assert np.allclose(np.linalg.norm(result, axis=1), 1.0)

    def test_normalize_zero_safe(self):
        assert np.allclose(normalize(np.array([0.0, 0.0, 0.0])), 0.0)

    def test_triangle_normals(self):
        positions = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0]], dtype=float)
        triangles = np.array([[0, 1, 2]])
        normals = triangle_normals(positions, triangles)
        assert np.allclose(normals, [[0, 0, 1]])

    def test_vertex_normals_flat_plane(self):
        positions = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]], dtype=float)
        triangles = np.array([[0, 1, 2], [1, 3, 2]])
        normals = vertex_normals(positions, triangles)
        assert np.allclose(normals, [[0, 0, 1]] * 4)


class TestTransforms:
    def test_translate(self):
        matrix = translate(1.0, 2.0, 3.0)
        moved = transform_points(matrix, np.array([[0.0, 0.0, 0.0]]))
        assert np.allclose(moved[0, :3], [1, 2, 3])

    def test_scale(self):
        moved = transform_points(scale(2.0), np.array([[1.0, 1.0, 1.0]]))
        assert np.allclose(moved[0, :3], [2, 2, 2])

    def test_rotations_orthonormal(self):
        for rotation in (rotate_x(0.7), rotate_y(1.1), rotate_z(-0.3)):
            block = rotation[:3, :3]
            assert np.allclose(block @ block.T, np.eye(3))
            assert np.isclose(np.linalg.det(block), 1.0)

    def test_rotate_z_quarter_turn(self):
        moved = transform_points(rotate_z(np.pi / 2), np.array([[1.0, 0.0, 0.0]]))
        assert np.allclose(moved[0, :3], [0, 1, 0], atol=1e-12)

    def test_look_at_centers_target(self):
        view = look_at(eye=(5.0, 3.0, 8.0), target=(1.0, 1.0, 1.0))
        moved = transform_points(view, np.array([[1.0, 1.0, 1.0]]))
        # Target lands on the -Z axis in eye space.
        assert np.allclose(moved[0, :2], 0.0, atol=1e-12)
        assert moved[0, 2] < 0

    def test_look_at_preserves_distance(self):
        view = look_at(eye=(2.0, 0.0, 0.0), target=(0.0, 0.0, 0.0))
        moved = transform_points(view, np.array([[0.0, 0.0, 0.0]]))
        assert np.isclose(-moved[0, 2], 2.0)

    def test_perspective_near_far_map_to_ndc(self):
        proj = perspective(90.0, 1.0, near=1.0, far=10.0)
        near_clip = transform_points(proj, np.array([[0.0, 0.0, -1.0]]))[0]
        far_clip = transform_points(proj, np.array([[0.0, 0.0, -10.0]]))[0]
        assert np.isclose(near_clip[2] / near_clip[3], -1.0)
        assert np.isclose(far_clip[2] / far_clip[3], 1.0)

    def test_perspective_fov(self):
        proj = perspective(90.0, 1.0, near=1.0, far=10.0)
        # A point on the 45-degree frustum edge maps to |x/w| = 1.
        edge = transform_points(proj, np.array([[2.0, 0.0, -2.0]]))[0]
        assert np.isclose(edge[0] / edge[3], 1.0)

    def test_perspective_validation(self):
        with pytest.raises(ValueError):
            perspective(60.0, 1.0, near=0.0, far=10.0)
        with pytest.raises(ValueError):
            perspective(60.0, 1.0, near=5.0, far=2.0)

    def test_ndc_to_screen_corners(self):
        clip = np.array([
            [-1.0, 1.0, 0.0, 1.0],   # NDC top-left -> pixel (0, 0)
            [1.0, -1.0, 0.0, 1.0],   # NDC bottom-right -> (w, h)
            [0.0, 0.0, 0.0, 1.0],    # center
        ])
        screen, z, inv_w = ndc_to_screen(clip, 640, 480)
        assert np.allclose(screen[0], [0, 0])
        assert np.allclose(screen[1], [640, 480])
        assert np.allclose(screen[2], [320, 240])
        assert np.allclose(inv_w, 1.0)

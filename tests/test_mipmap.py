"""Unit tests for repro.texture.mipmap."""

import numpy as np
import pytest

from repro.texture.image import TextureImage
from repro.texture.mipmap import MipMap, build_mipmaps, downsample
from repro.texture.procedural import checkerboard


class TestDownsample:
    def test_halves_dimensions(self):
        texels = np.zeros((8, 16, 4), dtype=np.uint8)
        assert downsample(texels).shape == (4, 8, 4)

    def test_preserves_unit_axis(self):
        texels = np.zeros((1, 8, 4), dtype=np.uint8)
        assert downsample(texels).shape == (1, 4, 4)

    def test_box_filter_average(self):
        texels = np.zeros((2, 2, 4), dtype=np.uint8)
        texels[0, 0] = 100
        texels[0, 1] = 200
        texels[1, 0] = 0
        texels[1, 1] = 100
        result = downsample(texels)
        assert result.shape == (1, 1, 4)
        assert abs(int(result[0, 0, 0]) - 100) <= 1

    def test_constant_stays_constant(self):
        texels = np.full((8, 8, 4), 77, dtype=np.uint8)
        assert (downsample(texels) == 77).all()


class TestMipMap:
    def test_level_count_square(self):
        mipmap = MipMap.build(TextureImage.solid(64, 64))
        assert mipmap.n_levels == 7  # 64..1
        assert mipmap.max_level == 6
        assert mipmap.level_shape(0) == (64, 64)
        assert mipmap.level_shape(6) == (1, 1)

    def test_level_count_rectangular(self):
        mipmap = MipMap.build(TextureImage.solid(64, 16))
        # 64x16 -> 32x8 -> 16x4 -> 8x2 -> 4x1 -> 2x1 -> 1x1
        assert mipmap.n_levels == 7
        assert mipmap.level_shape(4) == (4, 1)

    def test_nbytes_is_four_thirds(self):
        mipmap = MipMap.build(TextureImage.solid(256, 256))
        base = 256 * 256 * 4
        assert base < mipmap.nbytes < base * 4 / 3 * 1.01

    def test_level_log2(self):
        mipmap = MipMap.build(TextureImage.solid(32, 16))
        assert mipmap.level_log2(0) == (5, 4)
        assert mipmap.level_log2(1) == (4, 3)

    def test_sample_gathers(self):
        image = checkerboard(8, 8, squares=2, color_a=(255, 0, 0),
                             color_b=(0, 0, 255))
        mipmap = MipMap.build(image)
        colors = mipmap.sample(0, np.array([0, 4]), np.array([0, 0]))
        assert colors[0][0] == 255
        assert colors[1][2] == 255

    def test_build_mipmaps_order(self):
        images = [TextureImage.solid(4, 4, name="a"), TextureImage.solid(8, 8, name="b")]
        mipmaps = build_mipmaps(images)
        assert [m.name for m in mipmaps] == ["a", "b"]
        assert mipmaps[1].level_shape(0) == (8, 8)

    def test_coarsest_level_is_global_average(self):
        texels = np.zeros((4, 4, 4), dtype=np.uint8)
        texels[:, :2] = 200
        mipmap = MipMap.build(TextureImage(texels))
        top = mipmap.levels[-1][0, 0]
        assert 90 <= top[0] <= 110

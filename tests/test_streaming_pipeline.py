"""End-to-end streaming pipeline: bit-identity with the in-RAM path.

The streaming fold (render blocks -> per-block addresses -> mergeable
per-set profiles) must reproduce the materialized pipeline exactly:
same rendered stream, same store artifacts, same miss-rate curves and
3C classifications -- serially, sharded, and through ``Engine.run``.
Also covers the chunked trace representation in the artifact store and
its orphaned-part litter lifecycle.
"""

import os
import time

import numpy as np
import pytest

from repro.core.cache import CacheConfig
from repro.core.classify import classify_misses
from repro.core.stackdist import miss_rate_curve
from repro.engine import (
    ArtifactStore,
    Engine,
    ExperimentSpec,
    StreamedProfiles,
    TraceSpec,
    classify_streamed,
)
from repro.engine.spec import paper_order_spec
from repro.pipeline.renderer import render_trace, render_trace_blocks
from repro.pipeline.trace import concat_blocks

SCENE = "town"
SCALE = 0.05
LAYOUT = ("blocked", 8)
SIZES = (1024, 4096, 16384)


def town_spec():
    return TraceSpec(scene=SCENE, scale=SCALE, order=paper_order_spec(SCENE))


@pytest.fixture()
def stores(tmp_path):
    """Two independent store roots: in-RAM reference vs streamed."""
    return (ArtifactStore(tmp_path / "ram"), ArtifactStore(tmp_path / "st"))


def backdate(path, seconds=3600):
    old = time.time() - seconds
    os.utime(path, (old, old))


class TestStreamingRender:
    def test_blocks_match_monolithic_render(self):
        scene = Engine().scene(SCENE, SCALE)
        whole = render_trace(scene)
        totals = {}
        blocks = list(render_trace_blocks(scene, 2048, totals=totals))
        rebuilt = concat_blocks(blocks)
        assert rebuilt.n_accesses == whole.trace.n_accesses
        assert rebuilt.n_fragments == whole.trace.n_fragments
        for column in ("texture_id", "level", "tu", "tv",
                       "tu_raw", "tv_raw", "kind"):
            assert np.array_equal(getattr(rebuilt, column),
                                  getattr(whole.trace, column))
        assert totals["n_fragments"] == whole.trace.n_fragments
        assert totals["n_triangles_submitted"] == whole.n_triangles_submitted
        assert totals["n_triangles_rasterized"] == whole.n_triangles_rasterized


class TestChunkedStore:
    def test_writer_reader_round_trip(self, stores):
        _, store = stores
        spec = town_spec()
        engine = Engine(store=ArtifactStore(store.root / "scratch"))
        result = engine.render(spec)
        writer = store.open_render_writer(spec)
        from repro.pipeline.trace import iter_blocks
        for block in iter_blocks(result.trace, 3000):
            writer.append(block)
        assert writer.finish({
            "n_triangles_submitted": result.n_triangles_submitted,
            "n_triangles_rasterized": result.n_triangles_rasterized})
        reader = store.open_render_blocks(spec)
        assert reader is not None and len(reader) > 1
        assert reader.n_accesses == result.trace.n_accesses
        rebuilt = concat_blocks(reader)
        assert np.array_equal(rebuilt.tu, result.trace.tu)
        # load_render materializes the chunked representation too.
        loaded = store.load_render(spec)
        assert np.array_equal(loaded.trace.kind, result.trace.kind)
        assert loaded.n_triangles_rasterized == result.n_triangles_rasterized

    def test_orphaned_parts_are_litter_not_corruption(self, stores):
        _, store = stores
        stray = store.root / "traces" / ("ab" * 32 + ".p00000.npz")
        stray.parent.mkdir(parents=True, exist_ok=True)
        stray.write_bytes(b"interrupted streaming writer residue")
        # Fresh: an in-flight writer may still publish its sidecar.
        scan = store.verify()
        assert scan["clean"] and scan["orphaned_parts"] == 0
        assert scan["pending"] >= 1
        backdate(stray)
        scan = store.verify()
        assert scan["clean"] and scan["orphaned_parts"] == 1
        stats = store.stats()
        assert stats["orphaned_parts"] == 1
        assert stats["kinds"]["traces"]["parts"] == 1
        report = store.repair()
        assert len(report["purged_parts"]) == 1
        assert not stray.exists()


class TestStreamedProfiles:
    def test_bit_identical_profiles_and_classification(self, stores):
        ram_store, st_store = stores
        spec = town_spec()
        engine = Engine(store=ram_store)
        streams = engine.streams(spec, LAYOUT)
        streamed = StreamedProfiles(st_store, spec, LAYOUT, chunk_size=4096)

        curve_ram = miss_rate_curve(streams, 64, sorted(SIZES))
        curve_st = miss_rate_curve(streamed, 64, sorted(SIZES))
        assert np.array_equal(curve_ram.miss_rates, curve_st.miss_rates)

        for assoc in (1, 2, 4):
            config = CacheConfig(8192, 64, assoc)
            expected = classify_misses(engine.addresses(spec, LAYOUT), config)
            assert classify_streamed(streamed, config) == expected

    def test_stream_materialization_refused(self, stores):
        _, st_store = stores
        streamed = StreamedProfiles(st_store, town_spec(), LAYOUT)
        with pytest.raises(RuntimeError):
            streamed.stream(64)

    def test_streamed_artifacts_warm_the_in_ram_path(self, stores):
        _, st_store = stores
        from repro.engine import runner
        spec = town_spec()
        streamed = StreamedProfiles(st_store, spec, LAYOUT, chunk_size=4096)
        streamed.prefetch([(64, 1), (64, 64)])
        # The fold streamed the render into the store chunk by chunk
        # and published the same profile artifacts the in-RAM path
        # keys, so a warm engine over the same root does zero renders.
        before = runner.render_calls()
        engine = Engine(store=st_store)
        engine.streams(spec, LAYOUT).profile(64)
        engine.streams(spec, LAYOUT).set_profile(64, 64)
        assert runner.render_calls() == before
        assert st_store.open_render_blocks(spec) is not None


class TestEngineRunStreaming:
    GRID = dict(scenes=(SCENE,), layouts=(LAYOUT, ("nonblocked",)),
                cache_sizes=SIZES, line_sizes=(32, 64), assocs=(None, 2),
                scale=SCALE)

    def rows(self, result):
        return [(r.scene, r.layout, r.config.label(), r.stats)
                for r in result.rows]

    def test_chunked_run_bit_identical(self, tmp_path):
        exp = ExperimentSpec(**self.GRID)
        ram = Engine(store=ArtifactStore(tmp_path / "a")).run(exp)
        streamed = Engine(store=ArtifactStore(tmp_path / "b")).run(
            exp, chunk_size=4096)
        assert self.rows(ram) == self.rows(streamed)

    def test_sharded_run_bit_identical(self, tmp_path):
        exp = ExperimentSpec(**self.GRID)
        ram = Engine(store=ArtifactStore(tmp_path / "a")).run(exp)
        sharded = Engine(store=ArtifactStore(tmp_path / "b")).run(
            exp, shards=2)
        assert self.rows(ram) == self.rows(sharded)
        # Sharding went through the chunked representation.
        store = ArtifactStore(tmp_path / "b")
        assert store.open_render_blocks(exp.trace_specs()[0]) is not None

    def test_streaming_rejects_reference_kernel(self, tmp_path):
        exp = ExperimentSpec(scenes=(SCENE,), layouts=(LAYOUT,), scale=SCALE)
        with pytest.raises(ValueError):
            Engine(store=ArtifactStore(tmp_path / "a")).run(
                exp, chunk_size=4096, kernel="reference")

    def test_shards_reject_reference_kernel(self, tmp_path):
        # Any shard count (even 1, which folds serially) requests
        # streaming, so combining it with the reference simulator must
        # fail loudly rather than silently running vectorized-only.
        exp = ExperimentSpec(scenes=(SCENE,), layouts=(LAYOUT,), scale=SCALE)
        engine = Engine(store=ArtifactStore(tmp_path / "a"))
        for shards in (1, 2):
            with pytest.raises(ValueError, match="vectorized"):
                engine.run(exp, shards=shards, kernel="reference")

    def test_collapsed_runs_match_materialized(self, tmp_path):
        # Block-folded run collapse (with boundary stitching) must
        # equal collapse_consecutive over the materialized stream.
        from repro.core.cache import collapse_consecutive, to_lines

        engine = Engine(store=ArtifactStore(tmp_path / "a"))
        spec = town_spec()
        addresses = engine.addresses(spec, LAYOUT)
        for line_size in (16, 64):
            want_runs, want_dup = collapse_consecutive(
                to_lines(addresses, line_size))
            # A tiny chunk forces many block boundaries (and stitches).
            streams = engine.streamed(spec, LAYOUT, chunk_size=512)
            got_runs, got_dup = streams.collapsed_runs(line_size)
            assert np.array_equal(got_runs, want_runs)
            assert got_dup == want_dup

    def test_pipelined_run_bit_identical(self, tmp_path):
        from repro.engine import shutdown_stream_pool
        exp = ExperimentSpec(**self.GRID)
        ram = Engine(store=ArtifactStore(tmp_path / "a")).run(exp)
        try:
            piped = Engine(store=ArtifactStore(tmp_path / "b")).run(
                exp, chunk_size=4096, stream_workers=2)
        finally:
            shutdown_stream_pool()
        assert self.rows(ram) == self.rows(piped)
        store = ArtifactStore(tmp_path / "b")
        assert store.open_render_blocks(exp.trace_specs()[0]) is not None

    def test_single_shard_streams(self, tmp_path):
        exp = ExperimentSpec(**self.GRID)
        ram = Engine(store=ArtifactStore(tmp_path / "a")).run(exp)
        sharded = Engine(store=ArtifactStore(tmp_path / "b")).run(
            exp, shards=1)
        assert self.rows(ram) == self.rows(sharded)
        store = ArtifactStore(tmp_path / "b")
        assert store.open_render_blocks(exp.trace_specs()[0]) is not None

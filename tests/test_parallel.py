"""Unit tests for the parallel texture caching study (paper Section 8)."""

import numpy as np
import pytest

from repro.core.cache import CacheConfig
from repro.core.parallel import (
    ScanlineInterleave,
    StripSplit,
    TileInterleave,
    simulate_parallel,
    split_trace,
)
from repro.geometry.mesh import make_quad
from repro.geometry.transform import look_at, perspective
from repro.pipeline.renderer import Renderer
from repro.scenes.base import SceneData
from repro.texture.image import TextureSet
from repro.texture.layout import BlockedLayout
from repro.texture.memory import place_textures
from repro.texture.procedural import checkerboard


@pytest.fixture(scope="module")
def rendered():
    textures = TextureSet()
    textures.add(checkerboard(128, 128))
    mesh = make_quad(
        np.array([[-1, -1, 0], [1, -1, 0], [1, 1, 0], [-1, 1, 0]], dtype=float),
        texture_id=0, subdivide=3,
    )
    scene = SceneData(
        name="par", width=96, height=96, mesh=mesh, textures=textures,
        view=look_at((0, 0, 2.4), (0, 0, 0)),
        projection=perspective(50.0, 1.0, 0.5, 10.0),
    )
    renderer = Renderer(produce_image=False, record_positions=True)
    result = renderer.render(scene)
    placements = place_textures(scene.get_mipmaps(), BlockedLayout(4))
    return result.trace, placements


class TestDistributions:
    def test_scanline_assignment(self):
        dist = ScanlineInterleave(3)
        y = np.array([0, 1, 2, 3, 4])
        assert dist.assign(np.zeros(5), y).tolist() == [0, 1, 2, 0, 1]

    def test_tile_assignment_checkerboard(self):
        dist = TileInterleave(2, tile=8)
        x = np.array([0, 8, 0, 8])
        y = np.array([0, 0, 8, 8])
        assert dist.assign(x, y).tolist() == [0, 1, 1, 0]

    def test_strip_assignment(self):
        dist = StripSplit(2, height=96)
        y = np.array([0, 47, 48, 95])
        assert dist.assign(np.zeros(4), y).tolist() == [0, 0, 1, 1]

    def test_strip_clamps_last_band(self):
        dist = StripSplit(3, height=10)
        assert dist.assign(np.zeros(1), np.array([9]))[0] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            TileInterleave(0)
        with pytest.raises(ValueError):
            TileInterleave(2, tile=0)
        with pytest.raises(ValueError):
            StripSplit(8, height=4)


class TestSplitTrace:
    def test_partition_is_exact(self, rendered):
        trace, _ = rendered
        parts = split_trace(trace, ScanlineInterleave(4))
        assert sum(p.n_accesses for p in parts) == trace.n_accesses
        for gen, part in enumerate(parts):
            assert (part.y % 4 == gen).all()

    def test_order_preserved(self, rendered):
        trace, _ = rendered
        parts = split_trace(trace, StripSplit(2, height=96))
        mask = np.asarray(trace.y) < 48
        assert np.array_equal(parts[0].tu, trace.tu[mask])

    def test_requires_positions(self, rendered):
        trace, _ = rendered
        stripped = trace.subset(np.ones(trace.n_accesses, dtype=bool))
        stripped.x = None
        stripped.y = None
        with pytest.raises(ValueError):
            split_trace(stripped, ScanlineInterleave(2))


class TestSimulateParallel:
    def test_single_generator_matches_serial(self, rendered):
        trace, placements = rendered
        config = CacheConfig(2048, 64, 2)
        parallel = simulate_parallel(trace, placements,
                                     TileInterleave(1, 16), config)
        from repro.core.cache import simulate
        serial = simulate(trace.byte_addresses(placements), config)
        assert parallel.total_misses == serial.misses
        assert parallel.redundancy == pytest.approx(1.0)

    def test_finer_interleave_more_redundant(self, rendered):
        trace, placements = rendered
        config = CacheConfig(2048, 64, 2)
        scanline = simulate_parallel(trace, placements,
                                     ScanlineInterleave(4), config)
        strips = simulate_parallel(trace, placements,
                                   StripSplit(4, height=96), config)
        # Scanline interleave: every generator touches nearly the whole
        # texture; strips mostly partition it.
        assert scanline.redundancy > strips.redundancy

    def test_finer_interleave_better_balance(self, rendered):
        trace, placements = rendered
        config = CacheConfig(2048, 64, 2)
        scanline = simulate_parallel(trace, placements,
                                     ScanlineInterleave(4), config)
        assert scanline.load_imbalance < 1.3

    def test_aggregate_rate_and_bandwidth(self, rendered):
        trace, placements = rendered
        config = CacheConfig(1024, 64, 2)
        stats = simulate_parallel(trace, placements, TileInterleave(4, 8), config)
        assert 0.0 < stats.aggregate_miss_rate < 1.0
        assert stats.shared_memory_bandwidth() > 0
        assert stats.n_generators == 4

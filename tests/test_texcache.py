"""Cycle-exactness of the three-queue prefetching texture cache
(repro.core.texcache): the lag-blocked vectorized scan must agree with
the per-event sequential reference walk to the integer cycle, on
randomized streams (hypothesis), the sweep grid's batched rows, and a
real rendered scene slice -- plus the edge cases the blocking logic is
most likely to get wrong (empty stream, depth-0 FIFO, single-bank DRAM
service times).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CacheConfig
from repro.core.dram import PAPER_DRAM, DramModel
from repro.core.kernels import miss_stream
from repro.core.machine import PAPER_MACHINE, MachineModel
from repro.core.texcache import (
    TexCacheParams,
    TexCacheResult,
    fill_service_cycles,
    fragment_fill_streams,
    simulate_texcache,
    sweep_texcache,
)
from repro.engine import Engine, TraceSpec

FIELDS = ("n_fragments", "n_fills", "total_cycles", "ideal_cycles",
          "stall_cycles", "fragment_fifo_wait", "request_fifo_wait",
          "reorder_buffer_wait")


def assert_results_equal(fast: TexCacheResult, slow: TexCacheResult, msg=""):
    for field in FIELDS:
        assert getattr(fast, field) == getattr(slow, field), (field, msg)


@st.composite
def timing_cases(draw):
    """A random fill-count stream with compatible queue parameters."""
    reorder = draw(st.integers(1, 10))
    n = draw(st.integers(0, 48))
    counts = np.asarray(
        draw(st.lists(st.integers(0, reorder), min_size=n, max_size=n)),
        dtype=np.int64)
    if n and draw(st.booleans()):  # sparse misses stress empty blocks
        counts[draw(st.integers(0, n - 1))::2] = 0
    params = TexCacheParams(
        fragment_fifo=draw(st.integers(0, 14)),
        request_fifo=draw(st.integers(1, 10)),
        reorder_buffer=reorder,
        fill_latency=draw(st.integers(1, 60)),
        fill_interval=draw(st.integers(1, 12)),
        consume_cycles=draw(st.integers(1, 6)),
        arrival_cycles=draw(st.integers(1, 6)),
    )
    services = None
    if draw(st.booleans()):
        n_fills = int(counts.sum())
        services = np.asarray(
            draw(st.lists(st.integers(1, 15), min_size=n_fills,
                          max_size=n_fills)), dtype=np.int64)
    return counts, services, params


class TestKernelEquivalence:
    @given(case=timing_cases())
    @settings(max_examples=150, deadline=None)
    def test_vectorized_matches_reference(self, case):
        counts, services, params = case
        fast = simulate_texcache(counts, params, services=services)
        slow = simulate_texcache(counts, params, services=services,
                                 kernel="reference")
        assert_results_equal(fast, slow, params)

    @given(case=timing_cases(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_sweep_grid_matches_reference(self, case, data):
        # The sweep batches several depths into one blocked pass and
        # a whole latency axis into the scan rows; every cell must
        # still equal an independent reference walk.
        counts, services, params = case
        depths = data.draw(st.lists(st.integers(0, 12), min_size=1,
                                    max_size=4))
        latencies = data.draw(st.lists(st.integers(1, 50), min_size=1,
                                       max_size=3))
        fast = sweep_texcache(counts, params, depths, latencies,
                              services=services)
        slow = sweep_texcache(counts, params, depths, latencies,
                              services=services, kernel="reference")
        assert set(fast) == set(slow)
        for cell in fast:
            assert_results_equal(fast[cell], slow[cell], cell)

    def test_empty_stream(self):
        params = TexCacheParams()
        for kernel in ("vectorized", "reference"):
            result = simulate_texcache(np.zeros(0, dtype=np.int64), params,
                                       kernel=kernel)
            assert result.n_fragments == 0
            assert result.total_cycles == 0
            assert result.stall_cycles == 0
            assert result.fragments_per_second == 0.0

    def test_depth_zero_fifo_exposes_latency(self):
        # No prefetch: every miss serializes tag check -> fill ->
        # texture, so each missing fragment pays the full latency.
        counts = np.asarray([1, 0, 1, 1, 0], dtype=np.int64)
        params = TexCacheParams(fragment_fifo=0, fill_latency=40)
        fast = simulate_texcache(counts, params)
        slow = simulate_texcache(counts, params, kernel="reference")
        assert_results_equal(fast, slow)
        assert fast.stall_cycles >= 3 * params.fill_latency

    def test_deep_fifo_hides_latency(self):
        rng = np.random.default_rng(7)
        counts = (rng.random(600) < 0.05).astype(np.int64)
        shallow = simulate_texcache(
            counts, TexCacheParams(fragment_fifo=1, reorder_buffer=64,
                                   request_fifo=64, fill_interval=4))
        deep = simulate_texcache(
            counts, TexCacheParams(fragment_fifo=256, reorder_buffer=64,
                                   request_fifo=64, fill_interval=4))
        assert deep.total_cycles <= shallow.total_cycles
        assert deep.efficiency > 0.9

    def test_reorder_buffer_deadlock_rejected(self):
        counts = np.asarray([0, 3, 1], dtype=np.int64)
        params = TexCacheParams(reorder_buffer=2)
        for kernel in ("vectorized", "reference"):
            with pytest.raises(ValueError, match="deadlock"):
                simulate_texcache(counts, params, kernel=kernel)

    def test_bad_kernel_rejected(self):
        with pytest.raises(ValueError):
            simulate_texcache(np.zeros(1, dtype=np.int64), TexCacheParams(),
                              kernel="magic")


class TestFillServices:
    def test_sums_to_access_cycles(self):
        rng = np.random.default_rng(3)
        lines = rng.integers(0, 4096, size=2000, dtype=np.int64)
        for line_size in (16, 64, 128):
            services = fill_service_cycles(lines, line_size)
            want = PAPER_DRAM.access_cycles(lines * line_size, line_size)
            assert int(services.sum()) == int(want)

    def test_kernel_equivalence(self):
        rng = np.random.default_rng(11)
        lines = rng.integers(0, 1 << 12, size=1500, dtype=np.int64)
        fast = fill_service_cycles(lines, 64)
        slow = fill_service_cycles(lines, 64, kernel="reference")
        np.testing.assert_array_equal(fast, slow)

    def test_single_bank_dram(self):
        # One bank: a row switch happens exactly where consecutive
        # fills touch different rows.
        dram = DramModel(n_banks=1)
        lines = np.asarray([0, 1, 200, 200, 0], dtype=np.int64)
        for kernel in ("vectorized", "reference"):
            services = fill_service_cycles(lines, 64, dram, kernel=kernel)
            bank, row = dram.bank_and_row(lines * 64)
            switch = np.r_[True, row[1:] != row[:-1]]
            beats = max(-(-64 // dram.beat_nbytes), 1)
            want = beats * dram.col_cycles + dram.row_cycles * switch
            np.testing.assert_array_equal(services, want)

    def test_single_bank_services_through_timing(self):
        rng = np.random.default_rng(5)
        counts = rng.integers(0, 3, size=120).astype(np.int64)
        services = fill_service_cycles(
            rng.integers(0, 256, size=int(counts.sum()), dtype=np.int64),
            64, DramModel(n_banks=1))
        params = TexCacheParams(reorder_buffer=4)
        fast = simulate_texcache(counts, params, services=services)
        slow = simulate_texcache(counts, params, services=services,
                                 kernel="reference")
        assert_results_equal(fast, slow)


class TestDerivation:
    def test_from_machine_matches_paper(self):
        params = TexCacheParams.from_machine(PAPER_MACHINE, 128)
        assert params.fill_latency == 50  # 18 + 128/4, Section 7.1.1
        assert params.fill_interval == 32
        assert params.consume_cycles == 2
        assert params.request_fifo == params.reorder_buffer == 8

    def test_machine_model_helper(self):
        params = PAPER_MACHINE.texcache_params(64, fragment_fifo=16)
        assert params == TexCacheParams.from_machine(PAPER_MACHINE, 64,
                                                     fragment_fifo=16)

    def test_fractional_cycles_rejected(self):
        machine = MachineModel(dram_bytes_per_cycle=3.0)
        with pytest.raises(ValueError, match="integral"):
            TexCacheParams.from_machine(machine, 64)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            TexCacheParams(request_fifo=0)
        with pytest.raises(ValueError):
            TexCacheParams(fill_interval=0)
        with pytest.raises(ValueError):
            TexCacheParams(fragment_fifo=-1)


class TestSceneSlice:
    """Cycle-exactness on a real rendered trace slice."""

    @pytest.fixture(scope="class")
    def addresses(self):
        engine = Engine()
        spec = TraceSpec("town", scale=0.05, order=("vertical",))
        return engine.addresses(spec, ("blocked", 4))[:60000]

    def test_scene_stream_matches(self, addresses):
        config = CacheConfig(4096, 64, None)
        counts, services = fragment_fill_streams(addresses, config,
                                                 dram=PAPER_DRAM)
        assert len(services) == int(counts.sum())
        assert len(services) == len(miss_stream(
            addresses[:8 * len(counts)], config))
        params = PAPER_MACHINE.texcache_params(64)
        fast = simulate_texcache(counts, params, services=services)
        slow = simulate_texcache(counts, params, services=services,
                                 kernel="reference")
        assert_results_equal(fast, slow)

    def test_scene_sweep_matches(self, addresses):
        config = CacheConfig(2048, 64, None)
        counts, _ = fragment_fill_streams(addresses, config)
        params = PAPER_MACHINE.texcache_params(64, request_fifo=16,
                                               reorder_buffer=16)
        depths = (0, 2, 16, 64)
        latencies = (4, 50, 300)
        fast = sweep_texcache(counts, params, depths, latencies)
        slow = sweep_texcache(counts, params, depths, latencies,
                              kernel="reference")
        for cell in fast:
            assert_results_equal(fast[cell], slow[cell], cell)
        # Latency tolerance: with a deep FIFO the total barely moves
        # as the fill latency grows; with none it tracks latency.
        deep = [fast[(64, latency)].total_cycles for latency in latencies]
        none = [fast[(0, latency)].total_cycles for latency in latencies]
        assert deep[-1] < none[-1]
        assert deep[-1] - deep[0] < none[-1] - none[0]

"""Property tests for the mergeable profile algebra (streaming fold).

The streaming pipeline's correctness reduces to one algebraic claim:
``PartialSetProfile.merge(a, b)`` equals the profile of the
concatenated stream, field for field.  That makes the merge
associative, so any block partition (and any merge tree over shards)
finalizes to the exact whole-stream :class:`SetDistanceProfile` --
which these tests check directly against ``from_stream`` and against
the sequential cache simulator, across the paper's cache grids.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import CacheConfig, LineStream, collapse_consecutive
from repro.core.kernels import PartialSetProfile, SetDistanceProfile
from repro.core.sweep import PAPER_ASSOCIATIVITIES, PAPER_LINE_SIZES

lines_strategy = st.lists(st.integers(min_value=0, max_value=63),
                          min_size=0, max_size=300)

#: Small (size, line_size, assoc) grid drawn from the paper's axes.
GRID_CONFIGS = [
    CacheConfig(size=4096, line_size=line_size, assoc=assoc)
    for line_size in PAPER_LINE_SIZES[:3]
    for assoc in PAPER_ASSOCIATIVITIES
]


def _stream(lines, line_size):
    runs, _ = collapse_consecutive(np.asarray(lines, dtype=np.int64))
    return LineStream(line_size=line_size, run_lines=runs,
                      total_accesses=len(lines))


def _profiles_equal(a, b):
    return (np.array_equal(a.counts, b.counts) and a.cold == b.cold
            and a.duplicate_hits == b.duplicate_hits
            and a.line_size == b.line_size and a.n_sets == b.n_sets)


def _states_equal(a, b):
    return (np.array_equal(a.counts, b.counts)
            and a.duplicate_hits == b.duplicate_hits
            and a.total_accesses == b.total_accesses
            and np.array_equal(a.stack_lines, b.stack_lines)
            and np.array_equal(a.open_lines, b.open_lines)
            and np.array_equal(a.offsets, b.offsets)
            and a.first_line == b.first_line and a.last_line == b.last_line)


@st.composite
def partitioned_stream(draw):
    """A random line stream plus random cut points (empty blocks and
    cuts inside duplicate runs included)."""
    lines = draw(st.lists(st.integers(0, 63), min_size=0, max_size=300))
    # Duplicate runs exercise the boundary-collapse correction.
    repeats = draw(st.lists(st.integers(1, 3), min_size=len(lines),
                            max_size=len(lines)))
    lines = np.repeat(np.asarray(lines, dtype=np.int64), repeats)
    n = len(lines)
    cuts = draw(st.lists(st.integers(0, n), min_size=0, max_size=6))
    bounds = [0] + sorted(cuts) + [n]
    blocks = [lines[lo:hi] for lo, hi in zip(bounds[:-1], bounds[1:])]
    return lines, blocks


class TestBlockPartitionExactness:
    @given(data=partitioned_stream(),
           n_sets=st.sampled_from([1, 2, 4, 8, 16]),
           line_size=st.sampled_from(PAPER_LINE_SIZES))
    @settings(max_examples=80, deadline=None)
    def test_fold_matches_whole_stream(self, data, n_sets, line_size):
        lines, blocks = data
        reference = SetDistanceProfile.from_stream(
            _stream(lines, line_size), n_sets)
        folded = SetDistanceProfile.from_blocks(blocks, line_size, n_sets)
        assert _profiles_equal(reference, folded)
        assert reference.total_accesses == folded.total_accesses

    @given(data=partitioned_stream())
    @settings(max_examples=40, deadline=None)
    def test_fold_miss_counts_across_paper_grid(self, data):
        lines, blocks = data
        for config in GRID_CONFIGS:
            reference = SetDistanceProfile.from_stream(
                _stream(lines, config.line_size), config.n_sets)
            folded = SetDistanceProfile.from_blocks(
                blocks, config.line_size, config.n_sets)
            assert folded.misses_at(config.ways) \
                == reference.misses_at(config.ways)
            assert folded.cold == reference.cold

    @given(lines=lines_strategy, n_sets=st.sampled_from([1, 4]))
    @settings(max_examples=40, deadline=None)
    def test_single_block_is_whole_stream(self, lines, n_sets):
        lines = np.asarray(lines, dtype=np.int64)
        reference = SetDistanceProfile.from_stream(_stream(lines, 32), n_sets)
        folded = SetDistanceProfile.from_blocks([lines], 32, n_sets)
        assert _profiles_equal(reference, folded)


class TestMergeAlgebra:
    @given(parts=st.lists(lines_strategy, min_size=3, max_size=3),
           n_sets=st.sampled_from([1, 2, 8]))
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, parts, n_sets):
        a, b, c = (PartialSetProfile.from_lines(
            np.asarray(p, dtype=np.int64), 32, n_sets) for p in parts)
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert _states_equal(left, right)

    @given(parts=st.lists(lines_strategy, min_size=2, max_size=2),
           n_sets=st.sampled_from([1, 2, 8]))
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_concatenation_state(self, parts, n_sets):
        # Stronger than profile equality: the merged *state* matches
        # the state of the concatenated stream, which is what makes
        # further merges (associativity at any depth) exact.
        x = np.asarray(parts[0], dtype=np.int64)
        y = np.asarray(parts[1], dtype=np.int64)
        merged = PartialSetProfile.from_lines(x, 32, n_sets).merge(
            PartialSetProfile.from_lines(y, 32, n_sets))
        whole = PartialSetProfile.from_lines(
            np.concatenate([x, y]), 32, n_sets)
        assert _states_equal(merged, whole)

    @given(lines=lines_strategy, n_sets=st.sampled_from([1, 4]))
    @settings(max_examples=30, deadline=None)
    def test_empty_is_identity(self, lines, n_sets):
        lines = np.asarray(lines, dtype=np.int64)
        state = PartialSetProfile.from_lines(lines, 32, n_sets)
        identity = PartialSetProfile.empty(32, n_sets)
        assert _states_equal(identity.merge(state), state)
        assert _states_equal(state.merge(identity), state)

    def test_mismatched_geometry_rejected(self):
        a = PartialSetProfile.empty(32, 4)
        import pytest
        with pytest.raises(ValueError):
            a.merge(PartialSetProfile.empty(32, 8))
        with pytest.raises(ValueError):
            a.merge(PartialSetProfile.empty(64, 4))

    def test_boundary_duplicate_credited_as_hit(self):
        # a ends and b begins with the same line: the concatenated
        # collapsed stream suppresses b's leading access, so the fold
        # must credit it to duplicate_hits, not distance 1.
        a = PartialSetProfile.from_lines(np.array([3, 5]), 32, 1)
        b = PartialSetProfile.from_lines(np.array([5, 5, 3]), 32, 1)
        merged = a.merge(b)
        whole = PartialSetProfile.from_lines(
            np.array([3, 5, 5, 5, 3]), 32, 1)
        assert _states_equal(merged, whole)
        assert merged.duplicate_hits == 2
        profile = merged.finalize()
        assert profile.cold == 2
        # 3's re-access at distance 2 is the only closed distance.
        assert profile.counts.tolist() == [0, 0, 1]

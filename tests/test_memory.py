"""Unit tests for repro.texture.memory."""

import numpy as np
import pytest

from repro.texture.image import TextureImage
from repro.texture.layout import BlockedLayout, NonblockedLayout
from repro.texture.memory import TextureMemory, place_textures
from repro.texture.mipmap import MipMap


def mipmap(side):
    return MipMap.build(TextureImage.solid(side, side))


class TestTextureMemory:
    def test_bump_allocation(self):
        memory = TextureMemory(alignment=16)
        assert memory.alloc(100) == 0
        assert memory.alloc(10) == 112  # rounded up to 16
        assert memory.used_nbytes == 122

    def test_alignment(self):
        memory = TextureMemory(alignment=64)
        memory.alloc(1)
        assert memory.alloc(1) == 64

    def test_rejects_bad_alignment(self):
        with pytest.raises(ValueError):
            TextureMemory(alignment=0)

    def test_rejects_negative_alloc(self):
        with pytest.raises(ValueError):
            TextureMemory().alloc(-1)

    def test_place_assigns_ids(self):
        memory = TextureMemory()
        layout = NonblockedLayout()
        first = memory.place(mipmap(8), layout)
        second = memory.place(mipmap(8), layout)
        assert first.texture_id == 0
        assert second.texture_id == 1
        assert second.base >= first.base + first.total_nbytes


class TestPlacedTexture:
    def test_addresses_are_absolute(self):
        memory = TextureMemory(alignment=16)
        layout = NonblockedLayout()
        memory.alloc(160)  # push the texture off zero
        placed = memory.place(mipmap(8), layout)
        address = placed.addresses(0, np.array([0]), np.array([0]))
        assert address[0] == placed.base
        assert placed.base == 160

    def test_level_indexing(self):
        memory = TextureMemory()
        placed = memory.place(mipmap(8), NonblockedLayout())
        level1 = placed.addresses(1, np.array([0]), np.array([0]))
        assert level1[0] == placed.base + 8 * 8 * 4
        assert placed.n_levels == 4

    def test_multi_access_layout_shape(self):
        from repro.texture.layout import WilliamsLayout
        memory = TextureMemory()
        placed = memory.place(mipmap(8), WilliamsLayout())
        addresses = placed.addresses(0, np.array([1, 2, 3]), np.array([0, 0, 0]))
        assert addresses.shape == (3, 3)


class TestPlaceTextures:
    def test_texture_id_order(self):
        placements = place_textures([mipmap(8), mipmap(16)], BlockedLayout(4))
        assert [p.texture_id for p in placements] == [0, 1]

    def test_no_overlap(self):
        placements = place_textures([mipmap(8), mipmap(16), mipmap(8)],
                                    NonblockedLayout())
        spans = [(p.base, p.base + p.total_nbytes) for p in placements]
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert e0 <= s1

    def test_fresh_address_space(self):
        first = place_textures([mipmap(8)], NonblockedLayout())
        second = place_textures([mipmap(8)], NonblockedLayout())
        assert first[0].base == second[0].base

"""Unit tests for the z-buffer and framebuffer."""

import os

import numpy as np
import pytest

from repro.raster.framebuffer import Framebuffer
from repro.raster.zbuffer import ZBuffer


class TestZBuffer:
    def test_first_write_passes(self):
        zbuffer = ZBuffer(4, 4)
        passed = zbuffer.test_and_write(np.array([1]), np.array([2]), np.array([0.5]))
        assert passed.tolist() == [True]

    def test_farther_fragment_rejected(self):
        zbuffer = ZBuffer(4, 4)
        zbuffer.test_and_write(np.array([1]), np.array([1]), np.array([0.3]))
        passed = zbuffer.test_and_write(np.array([1]), np.array([1]), np.array([0.7]))
        assert passed.tolist() == [False]

    def test_nearer_fragment_replaces(self):
        zbuffer = ZBuffer(4, 4)
        zbuffer.test_and_write(np.array([1]), np.array([1]), np.array([0.7]))
        passed = zbuffer.test_and_write(np.array([1]), np.array([1]), np.array([0.3]))
        assert passed.tolist() == [True]
        assert zbuffer.depth[1, 1] == 0.3

    def test_clear(self):
        zbuffer = ZBuffer(2, 2)
        zbuffer.test_and_write(np.array([0]), np.array([0]), np.array([0.1]))
        zbuffer.clear()
        assert np.isinf(zbuffer.depth).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            ZBuffer(0, 4)


class TestFramebuffer:
    def test_clear_color(self):
        framebuffer = Framebuffer(2, 2, clear_color=(10, 20, 30))
        assert (framebuffer.pixels[0, 0] == [10, 20, 30]).all()

    def test_write_clips_range(self):
        framebuffer = Framebuffer(2, 2)
        framebuffer.write(np.array([0]), np.array([0]),
                          np.array([[300.0, -5.0, 128.0]]))
        assert framebuffer.pixels[0, 0].tolist() == [255, 0, 128]

    def test_ppm_roundtrip(self, tmp_path):
        framebuffer = Framebuffer(3, 2, clear_color=(1, 2, 3))
        path = os.path.join(tmp_path, "out.ppm")
        framebuffer.to_ppm(path)
        with open(path, "rb") as handle:
            data = handle.read()
        assert data.startswith(b"P6\n3 2\n255\n")
        assert len(data) == len(b"P6\n3 2\n255\n") + 3 * 2 * 3

    def test_png_signature(self, tmp_path):
        framebuffer = Framebuffer(4, 4)
        path = os.path.join(tmp_path, "out.png")
        framebuffer.to_png(path)
        with open(path, "rb") as handle:
            data = handle.read()
        assert data.startswith(b"\x89PNG\r\n\x1a\n")
        assert b"IHDR" in data and b"IDAT" in data and b"IEND" in data

    def test_checksum_changes_with_content(self):
        framebuffer = Framebuffer(2, 2)
        before = framebuffer.checksum()
        framebuffer.write(np.array([1]), np.array([1]), np.array([[255.0, 255, 255]]))
        assert framebuffer.checksum() != before

    def test_validation(self):
        with pytest.raises(ValueError):
            Framebuffer(4, 0)

"""Unit tests for sweep helpers (repro.core.sweep)."""

import numpy as np
import pytest

from repro.core.cache import CacheConfig, simulate
from repro.core.sweep import (
    PAPER_ASSOCIATIVITIES,
    PAPER_CACHE_SIZES,
    TraceStreams,
    fully_associative_curve,
    sweep_associativities,
    sweep_cache_sizes,
)


@pytest.fixture
def addresses():
    rng = np.random.default_rng(17)
    return np.concatenate([
        rng.integers(0, 1024, size=3000) * 16,
        np.arange(0, 32768, 16),
    ])


class TestTraceStreams:
    def test_stream_memoized(self, addresses):
        streams = TraceStreams(addresses)
        assert streams.stream(32) is streams.stream(32)
        assert streams.stream(32) is not streams.stream(64)

    def test_profile_memoized(self, addresses):
        streams = TraceStreams(addresses)
        assert streams.profile(32) is streams.profile(32)

    def test_set_profile_memoized_and_shared(self, addresses):
        streams = TraceStreams(addresses)
        assert streams.set_profile(32, 8) is streams.set_profile(32, 8)
        # One set = fully associative: shares the distance profile's
        # counts instead of running a second pass.
        assert streams.set_profile(32, 1).counts is streams.profile(32).counts

    def test_rejects_unknown_kernel(self, addresses):
        with pytest.raises(ValueError):
            TraceStreams(addresses, kernel="fenwick")

    def test_reference_kernel_profile_matches(self, addresses):
        fast = TraceStreams(addresses).profile(32)
        slow = TraceStreams(addresses, kernel="reference").profile(32)
        assert np.array_equal(fast.counts, slow.counts)
        assert fast.cold == slow.cold


class TestSweeps:
    def test_fully_associative_sweep_matches_simulation(self, addresses):
        stats = sweep_cache_sizes(addresses, 32, [1024, 8192], assoc=None)
        for entry in stats:
            direct = simulate(addresses, entry.config)
            assert entry.misses == direct.misses

    def test_finite_assoc_sweep(self, addresses):
        stats = sweep_cache_sizes(addresses, 32, [1024, 4096], assoc=2)
        assert [s.config.size for s in stats] == [1024, 4096]
        assert stats[0].misses >= stats[1].misses

    def test_associativity_sweep_matches_direct_simulation(self, addresses):
        stats = sweep_associativities(addresses, 4096, 64,
                                      associativities=(1, 2, None))
        assert [s.config.assoc for s in stats] == [1, 2, None]
        for entry in stats:
            assert entry.misses == simulate(addresses, entry.config).misses

    def test_associativity_removes_pathological_conflicts(self):
        # Alternating same-set lines: direct-mapped thrashes, 2-way
        # holds both (Section 5.3.3's Mip-level conflict scenario).
        addresses = np.tile([0, 4096], 100).astype(np.int64) * 1
        stats = sweep_associativities(addresses, 4096, 64,
                                      associativities=(1, 2))
        assert stats[0].misses == 200
        assert stats[1].misses == 2

    def test_associativity_sweep_classified(self, addresses):
        stats = sweep_associativities(addresses, 2048, 64,
                                      associativities=(1, 2), classify=True)
        for entry in stats:
            assert entry.conflict_misses is not None
            assert entry.cold_misses + entry.capacity_misses + entry.conflict_misses == entry.misses

    def test_curve_helper(self, addresses):
        curve = fully_associative_curve(addresses, 32, [1024, 2048])
        assert len(curve.miss_rates) == 2

    def test_paper_grids(self):
        assert 32 * 1024 in PAPER_CACHE_SIZES
        assert None in PAPER_ASSOCIATIVITIES

    def test_kernels_agree_across_size_sweep(self, addresses):
        for assoc in (None, 1, 4):
            fast = sweep_cache_sizes(addresses, 32, [1024, 4096, 16384],
                                     assoc=assoc)
            slow = sweep_cache_sizes(addresses, 32, [1024, 4096, 16384],
                                     assoc=assoc, kernel="reference")
            for a, b in zip(fast, slow):
                assert (a.accesses, a.misses, a.cold_misses) == \
                       (b.accesses, b.misses, b.cold_misses)

    def test_kernels_agree_across_assoc_sweep(self, addresses):
        for classify in (False, True):
            fast = sweep_associativities(addresses, 4096, 32,
                                         classify=classify)
            slow = sweep_associativities(addresses, 4096, 32,
                                         classify=classify,
                                         kernel="reference")
            for a, b in zip(fast, slow):
                assert (a.misses, a.cold_misses, a.capacity_misses,
                        a.conflict_misses) == \
                       (b.misses, b.cold_misses, b.capacity_misses,
                        b.conflict_misses)

    def test_fully_associative_stats_are_exact_integers(self, addresses):
        curve = fully_associative_curve(addresses, 32, [1024, 8192])
        assert curve.miss_counts is not None
        for entry in curve.as_stats():
            direct = simulate(addresses, entry.config)
            assert entry.misses == direct.misses
            assert entry.cold_misses == direct.cold_misses

"""Pipelined parallel streaming: bit-identity, fallbacks, auditing.

The pipelined fold (:mod:`repro.engine.pipelined`) partitions cold
renders across a persistent worker pool; workers fold their own
slices inline (state transport, the default) or ship blocks to a
parent-side fold over shared memory / store readiness-polling.  Every
path must reproduce the in-RAM pipeline bit for bit; every failure mode
must degrade to the serial streamed path with a warning, never a
wrong answer.  Also covers the ``audit_parts`` sequential-oracle
spot check and the sharded fold's process cap.
"""

import contextlib
import multiprocessing
import os
import re
import warnings

import numpy as np
import pytest

from repro.engine import (
    ArtifactStore,
    Engine,
    ExperimentSpec,
    StreamAuditReport,
    StreamedProfiles,
    StreamingAuditError,
    TraceSpec,
)
from repro.engine import pipelined, streaming
from repro.engine.pipelined import shutdown_stream_pool
from repro.engine.spec import paper_order_spec
from repro.pipeline.renderer import (
    render_trace,
    render_trace_blocks,
    triangle_slice_bounds,
)
from repro.pipeline.trace import concat_blocks, iter_blocks

SCENE = "town"
SCALE = 0.05
LAYOUT = ("blocked", 8)
SIZES = (1024, 4096, 16384)

GRID = dict(scenes=(SCENE,), layouts=(LAYOUT,), cache_sizes=SIZES,
            line_sizes=(32, 64), assocs=(None, 2), scale=SCALE)


def town_spec():
    return TraceSpec(scene=SCENE, scale=SCALE, order=paper_order_spec(SCENE))


def rows(result):
    return [(r.scene, r.layout, r.config.label(), r.stats)
            for r in result.rows]


@contextlib.contextmanager
def no_fallback_warning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        yield
    fallbacks = [w for w in caught if "falling back" in str(w.message)]
    assert not fallbacks, [str(w.message) for w in fallbacks]


@pytest.fixture(autouse=True)
def fresh_pool():
    """Workers inherit the environment at spawn, so every test starts
    (and leaves) with no pool: fault-injection env vars set by one test
    must never leak into another test's persistent workers."""
    shutdown_stream_pool()
    yield
    shutdown_stream_pool()


class TestTriangleSlices:
    def test_slice_bounds_partition_the_index_space(self):
        for n in (0, 1, 7, 100):
            for count in (1, 2, 3, 8):
                bounds = [triangle_slice_bounds(n, (i, count))
                          for i in range(count)]
                assert bounds[0][0] == 0 and bounds[-1][1] == n
                for (_, hi), (lo, _) in zip(bounds[:-1], bounds[1:]):
                    assert hi == lo
        assert triangle_slice_bounds(10) == (0, 10)
        with pytest.raises(ValueError):
            triangle_slice_bounds(10, (2, 2))
        with pytest.raises(ValueError):
            triangle_slice_bounds(10, (0, 0))

    def test_sliced_streams_concatenate_bit_identical(self):
        scene = Engine().scene(SCENE, SCALE)
        whole = render_trace(scene).trace
        blocks, totals = [], []
        for index in range(3):
            slice_totals = {}
            blocks.extend(render_trace_blocks(
                scene, 2048, totals=slice_totals,
                triangle_slice=(index, 3)))
            totals.append(slice_totals)
        rebuilt = concat_blocks(blocks)
        assert rebuilt.n_accesses == whole.n_accesses
        for column in ("texture_id", "level", "tu", "tv",
                       "tu_raw", "tv_raw", "kind"):
            assert np.array_equal(getattr(rebuilt, column),
                                  getattr(whole, column))
        # Slice totals are slice-local and sum to the frame's.
        assert sum(t["n_fragments"] for t in totals) == whole.n_fragments


class TestPipelinedRun:
    def test_cold_pipelined_run_bit_identical(self, tmp_path):
        exp = ExperimentSpec(**GRID)
        ram = Engine(store=ArtifactStore(tmp_path / "a")).run(exp)
        pipe_store = ArtifactStore(tmp_path / "b")
        piped = Engine(store=pipe_store).run(exp, chunk_size=4096,
                                             stream_workers=2)
        assert rows(ram) == rows(piped)
        # The parallel render committed a dense, verifiable chunked
        # trace: p00000..p{n-1}, sidecar published, checksums intact.
        reader = pipe_store.open_render_blocks(exp.trace_specs()[0])
        assert reader is not None and len(reader) > 1
        names = [entry["name"] for entry in reader.meta["parts"]]
        assert [int(re.search(r"\.p(\d+)\.npz$", name).group(1))
                for name in names] == list(range(len(names)))
        scan = pipe_store.verify()
        assert scan["clean"] and scan["bad"] == 0

    def test_warm_pipelined_fold_bit_identical(self, tmp_path):
        # Build the chunked trace without publishing any profiles, so
        # prefetch() must actually run the warm pipelined fold rather
        # than loading cached artifacts.
        spec = town_spec()
        scratch = Engine(store=ArtifactStore(tmp_path / "scratch"))
        result = scratch.render(spec)
        store = ArtifactStore(tmp_path / "warm")
        writer = store.open_render_writer(spec)
        for block in iter_blocks(result.trace, 3000):
            writer.append(block)
        assert writer.finish({
            "n_triangles_submitted": result.n_triangles_submitted,
            "n_triangles_rasterized": result.n_triangles_rasterized})

        streamed = StreamedProfiles(store, spec, LAYOUT, chunk_size=3000,
                                    stream_workers=2)
        reference = scratch.streams(spec, LAYOUT)
        for pair in ((32, 1), (32, 64), (64, 1), (64, 16)):
            got = streamed.set_profile(*pair)
            want = reference.set_profile(*pair)
            assert np.array_equal(got.counts, want.counts)
            assert got.cold == want.cold
            assert got.duplicate_hits == want.duplicate_hits

    def test_pool_persists_across_folds(self, tmp_path):
        exp = ExperimentSpec(**GRID)
        engine = Engine(store=ArtifactStore(tmp_path / "a"))
        engine.run(exp, chunk_size=4096, stream_workers=2)
        pool = pipelined._POOL
        assert pool is not None and pool.alive()
        pids = [process.pid for process in pool.processes]
        # A second grid over the same pool: different layout, so the
        # fold runs again (warm this time) instead of loading caches.
        engine.run(ExperimentSpec(**{**GRID, "layouts": (("nonblocked",),)}),
                   chunk_size=4096, stream_workers=2)
        assert pipelined._POOL is pool
        assert [process.pid for process in pool.processes] == pids

    def test_stream_workers_reject_reference_kernel(self, tmp_path):
        exp = ExperimentSpec(scenes=(SCENE,), layouts=(LAYOUT,), scale=SCALE)
        with pytest.raises(ValueError, match="vectorized"):
            Engine(store=ArtifactStore(tmp_path / "a")).run(
                exp, stream_workers=2, kernel="reference")

    def test_audit_parts_requires_streaming(self, tmp_path):
        exp = ExperimentSpec(scenes=(SCENE,), layouts=(LAYOUT,), scale=SCALE)
        with pytest.raises(ValueError, match="streaming"):
            Engine(store=ArtifactStore(tmp_path / "a")).run(
                exp, audit_parts=2)


class TestFallbacks:
    def test_pool_death_falls_back_to_serial(self, tmp_path, monkeypatch):
        exp = ExperimentSpec(**GRID)
        ram = Engine(store=ArtifactStore(tmp_path / "a")).run(exp)
        monkeypatch.setenv("REPRO_FAULT_STREAM_POOL", "die")
        with pytest.warns(RuntimeWarning, match="falling back"):
            piped = Engine(store=ArtifactStore(tmp_path / "b")).run(
                exp, chunk_size=4096, stream_workers=2)
        assert rows(ram) == rows(piped)

    def test_shm_unavailable_falls_back_to_serial(self, tmp_path,
                                                  monkeypatch):
        # The shm transport must be forced: the default state transport
        # never touches shared memory, so losing shm cannot break it.
        exp = ExperimentSpec(**GRID)
        ram = Engine(store=ArtifactStore(tmp_path / "a")).run(exp)
        monkeypatch.setenv("REPRO_STREAM_TRANSPORT", "shm")
        monkeypatch.setenv("REPRO_FAULT_SHM", "unavailable")
        with pytest.warns(RuntimeWarning, match="falling back"):
            piped = Engine(store=ArtifactStore(tmp_path / "b")).run(
                exp, chunk_size=4096, stream_workers=2)
        assert rows(ram) == rows(piped)

    def test_shm_transport_bit_identical(self, tmp_path, monkeypatch):
        # Forcing the shared-memory transport keeps the parent-side
        # fold over shm block descriptors covered; no fallback fires.
        exp = ExperimentSpec(**GRID)
        ram = Engine(store=ArtifactStore(tmp_path / "a")).run(exp)
        monkeypatch.setenv("REPRO_STREAM_TRANSPORT", "shm")
        store = ArtifactStore(tmp_path / "b")
        with no_fallback_warning():
            piped = Engine(store=store).run(exp, chunk_size=4096,
                                            stream_workers=2)
        assert rows(ram) == rows(piped)
        scan = store.verify()
        assert scan["clean"] and scan["bad"] == 0
        # Leak check: every shm segment the fold created must be gone
        # once the pool shuts down (tracked in-flight ones included).
        shutdown_stream_pool()
        shm_root = "/dev/shm"
        if os.path.isdir(shm_root):
            leaked = [name for name in os.listdir(shm_root)
                      if name.startswith(f"repro{os.getpid()}s")]
            assert leaked == []

    def test_store_transport_bit_identical(self, tmp_path, monkeypatch):
        # Forcing the part-file transport exercises the readiness-
        # polling protocol end to end; no fallback may fire.
        exp = ExperimentSpec(**GRID)
        ram = Engine(store=ArtifactStore(tmp_path / "a")).run(exp)
        monkeypatch.setenv("REPRO_STREAM_TRANSPORT", "store")
        store = ArtifactStore(tmp_path / "b")
        with no_fallback_warning():
            piped = Engine(store=store).run(exp, chunk_size=4096,
                                            stream_workers=2)
        assert rows(ram) == rows(piped)
        scan = store.verify()
        assert scan["clean"] and scan["bad"] == 0

    def test_single_worker_request_stays_serial(self, tmp_path):
        # stream_workers=1 requests streaming but there is nothing to
        # pipeline; the serial fold runs without any fallback warning.
        exp = ExperimentSpec(**GRID)
        ram = Engine(store=ArtifactStore(tmp_path / "a")).run(exp)
        with no_fallback_warning():
            piped = Engine(store=ArtifactStore(tmp_path / "b")).run(
                exp, stream_workers=1)
        assert rows(ram) == rows(piped)
        assert pipelined._POOL is None


class TestAudit:
    def test_audit_report_via_engine_run(self, tmp_path):
        exp = ExperimentSpec(**GRID)
        result = Engine(store=ArtifactStore(tmp_path / "a")).run(
            exp, chunk_size=4096, stream_workers=2, audit_parts=2)
        assert len(result.audit_reports) == 1
        report = result.audit_reports[0]
        assert isinstance(report, StreamAuditReport)
        assert 1 <= len(report.parts) <= 2
        assert all(0 <= p < report.n_parts for p in report.parts)
        assert report.accesses > 0
        # Every (line_size, n_sets) pair of the grid got audited.
        line_sizes = {pair[0] for pair in report.pairs}
        assert line_sizes == set(GRID["line_sizes"])

    def test_audit_detects_a_broken_kernel(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path / "a")
        streamed = StreamedProfiles(store, town_spec(), LAYOUT,
                                    chunk_size=4096)
        pairs = [(64, 1), (64, 16)]
        streamed.prefetch(pairs)
        assert isinstance(streamed.audit(pairs, parts=2), StreamAuditReport)

        real = streaming.per_set_distances

        def corrupted(run_lines, n_sets):
            distances, cold = real(run_lines, n_sets)
            distances = distances.copy()
            if len(distances) and (~cold).any():
                warm = np.flatnonzero(~cold)
                distances[warm[-1]] += 1  # off-by-one a warm distance
            return distances, cold

        monkeypatch.setattr(streaming, "per_set_distances", corrupted)
        with pytest.raises(StreamingAuditError):
            streamed.audit(pairs, parts=2)


class TestShardCap:
    def test_sharded_pool_capped_at_cpu_count(self, tmp_path, monkeypatch):
        captured = {}
        real_pool = multiprocessing.Pool

        def spying_pool(processes=None):
            captured["processes"] = processes
            return real_pool(processes=processes)

        monkeypatch.setattr(multiprocessing, "Pool", spying_pool)
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        streamed = StreamedProfiles(ArtifactStore(tmp_path / "a"),
                                    town_spec(), LAYOUT,
                                    chunk_size=4096, shards=8)
        streamed.prefetch([(64, 16)])
        assert captured["processes"] == 1

"""Fault-injection tests for the hardened artifact store and engine.

Covers the failure model end to end: checksummed envelopes catching
every corruption class on all four artifact kinds, quarantine + repair
self-healing, kill-resilience of interrupted writers, degraded
(read-only / full-disk) store modes, single-flight locking across
racing processes, and the fault-tolerant parallel warm pool.
"""

import errno
import json
import multiprocessing
import os
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.engine import (
    ArtifactStore,
    Engine,
    ExperimentSpec,
    TraceSpec,
    addresses_payload,
    profile_payload,
    render_calls,
    reset_render_calls,
    run_experiment,
    set_profile_payload,
)
from repro.engine import artifacts as artifacts_module
from repro.engine import runner as runner_module

from tests import fault_injection as faults

SPEC = TraceSpec(scene="goblet", scale=0.1, order=("horizontal",))
LAYOUT = ("blocked", 4)
ADDR_PAYLOAD = addresses_payload(SPEC, LAYOUT)


def warm_store(root):
    """A store populated with all four artifact kinds for SPEC/LAYOUT."""
    store = ArtifactStore(root)
    engine = Engine(store=store)
    streams = engine.streams(SPEC, LAYOUT)
    streams.profile(32)
    streams.set_profile(32, 8)
    return store, engine


def assert_traces_equal(a, b):
    for name in ("texture_id", "level", "tu", "tv", "tu_raw", "tv_raw",
                 "kind"):
        np.testing.assert_array_equal(getattr(a, name), getattr(b, name))
    assert a.n_fragments == b.n_fragments


def quarantine_reasons(store, kind):
    """Concatenated reason records for one kind's quarantine."""
    directory = Path(store.root) / "quarantine" / kind
    if not directory.is_dir():
        return ""
    return "\n".join(f.read_text()
                     for f in directory.glob("*.reason.json"))


class TestEnvelope:
    def test_every_kind_gets_a_checksummed_sidecar(self, tmp_path):
        store, _ = warm_store(tmp_path)
        for kind in artifacts_module.KINDS:
            payloads = faults.payload_files(store, kind)
            assert payloads, f"no {kind} artifact written"
            for payload in payloads:
                sidecar = json.loads(
                    payload.with_suffix(".json").read_text())
                envelope = sidecar["envelope"]
                assert envelope["kind"] == kind
                assert envelope["nbytes"] == payload.stat().st_size
                assert envelope["digest"] == \
                    artifacts_module._file_digest(payload)
                assert "key" in sidecar

    def test_verify_reports_clean_store(self, tmp_path):
        store, _ = warm_store(tmp_path)
        report = store.verify()
        assert report["clean"]
        assert report["bad"] == 0 and report["tmp"] == 0
        assert report["ok"] == sum(
            len(faults.payload_files(store, kind))
            for kind in artifacts_module.KINDS)


class TestCorruptionRecovery:
    """All four kinds: damage loads as a quarantining miss and the
    recomputation is bit-identical."""

    def test_truncated_trace_archive(self, tmp_path):
        store, engine = warm_store(tmp_path)
        reference = engine.render(SPEC)
        [victim] = faults.payload_files(store, "traces")
        faults.truncate(victim)

        assert ArtifactStore(tmp_path).load_render(SPEC) is None
        assert "mismatch" in quarantine_reasons(store, "traces")
        assert not victim.exists()  # moved into quarantine

        before = render_calls()
        recomputed = Engine(store=ArtifactStore(tmp_path)).render(SPEC)
        assert render_calls() == before + 1
        assert_traces_equal(recomputed.trace, reference.trace)
        assert ArtifactStore(tmp_path).verify()["clean"]

    def test_zero_byte_address_stream(self, tmp_path):
        store, engine = warm_store(tmp_path)
        reference = engine.addresses(SPEC, LAYOUT)
        [victim] = faults.payload_files(store, "addresses")
        faults.zero(victim)

        fresh = ArtifactStore(tmp_path)
        assert fresh.load_addresses(ADDR_PAYLOAD) is None
        assert "size mismatch" in quarantine_reasons(store, "addresses")

        recomputed = Engine(store=ArtifactStore(tmp_path)).addresses(
            SPEC, LAYOUT)
        np.testing.assert_array_equal(recomputed, reference)

    def test_bit_flipped_profile(self, tmp_path):
        store, engine = warm_store(tmp_path)
        reference = engine.streams(SPEC, LAYOUT).profile(32)
        [victim] = faults.payload_files(store, "profiles")
        faults.flip_bit(victim)

        payload = profile_payload(ADDR_PAYLOAD, 32)
        assert ArtifactStore(tmp_path).load_profile(payload) is None
        assert "digest mismatch" in quarantine_reasons(store, "profiles")

        recomputed = Engine(store=ArtifactStore(tmp_path)).streams(
            SPEC, LAYOUT).profile(32)
        np.testing.assert_array_equal(recomputed.counts, reference.counts)
        assert recomputed.cold == reference.cold
        assert recomputed.duplicate_hits == reference.duplicate_hits

    def test_wrong_schema_archive_with_valid_digest(self, tmp_path):
        # A checksummed but foreign archive: the digest passes, the
        # schema layer underneath must still catch it.
        store, engine = warm_store(tmp_path)
        reference = engine.streams(SPEC, LAYOUT).set_profile(32, 8)
        [victim] = faults.payload_files(store, "set_profiles")
        digest = victim.name.split(".")[0]
        np.savez(victim, unrelated=np.arange(3))
        faults.restamp(store, "set_profiles", digest, ".npz")

        payload = set_profile_payload(ADDR_PAYLOAD, 32, 8)
        assert ArtifactStore(tmp_path).load_set_profile(payload) is None
        assert "undecodable" in quarantine_reasons(store, "set_profiles")

        recomputed = Engine(store=ArtifactStore(tmp_path)).streams(
            SPEC, LAYOUT).set_profile(32, 8)
        np.testing.assert_array_equal(recomputed.counts, reference.counts)
        assert recomputed.cold == reference.cold


class TestLegacyAndForeignSidecars:
    def test_legacy_sidecar_without_counters_is_a_miss(self, tmp_path):
        # Regression: a legacy/foreign traces sidecar missing the
        # render counters used to crash load_render with KeyError.
        store, engine = warm_store(tmp_path)
        [victim] = faults.payload_files(store, "traces")
        sidecar = victim.with_suffix(".json")
        sidecar.write_text(json.dumps({"key": SPEC.payload()}))

        fresh = ArtifactStore(tmp_path)
        assert fresh.load_render(SPEC) is None  # no KeyError
        assert "legacy sidecar" in quarantine_reasons(store, "traces")

    def test_enveloped_sidecar_missing_counters_is_a_miss(self, tmp_path):
        store, engine = warm_store(tmp_path)
        [victim] = faults.payload_files(store, "traces")
        digest = victim.name.split(".")[0]
        sidecar = victim.with_suffix(".json")
        sidecar.write_text(json.dumps({"key": SPEC.payload()}))
        faults.restamp(store, "traces", digest, ".npz")

        assert ArtifactStore(tmp_path).load_render(SPEC) is None
        assert "undecodable" in quarantine_reasons(store, "traces")

    def test_stale_orphaned_sidecar_quarantined(self, tmp_path):
        store, _ = warm_store(tmp_path)
        [victim] = faults.payload_files(store, "addresses")
        sidecar = victim.with_suffix(".json")
        victim.unlink()
        faults.backdate(sidecar, 2 * artifacts_module.TORN_GRACE_S)

        assert ArtifactStore(tmp_path).load_addresses(ADDR_PAYLOAD) is None
        assert "payload missing" in quarantine_reasons(store, "addresses")
        assert not sidecar.exists()

    def test_fresh_torn_state_is_left_alone(self, tmp_path):
        # Within the grace window a payload-without-sidecar is a
        # concurrent writer mid-publish: miss, but no quarantine.
        store, _ = warm_store(tmp_path)
        [victim] = faults.payload_files(store, "traces")
        victim.with_suffix(".json").unlink()

        assert ArtifactStore(tmp_path).load_render(SPEC) is None
        assert victim.exists()
        assert quarantine_reasons(store, "traces") == ""
        scan = store.verify()
        assert scan["clean"] and scan["pending"] == 1


class TestStatsRobustness:
    def test_stats_skips_files_vanishing_mid_scan(self, tmp_path,
                                                  monkeypatch):
        # TOCTOU regression: a file deleted between glob and stat (a
        # concurrent clear()) used to raise FileNotFoundError.
        store, _ = warm_store(tmp_path)
        full = store.stats()
        [victim] = faults.payload_files(store, "profiles")
        calls = {"n": 0}
        real_stat = Path.stat

        def racing_stat(self, *args, **kwargs):
            if self.name == victim.name:
                calls["n"] += 1
                if calls["n"] > 1:  # survive is_file(), vanish at stat()
                    raise FileNotFoundError(errno.ENOENT, "vanished",
                                            str(self))
            return real_stat(self, *args, **kwargs)

        monkeypatch.setattr(Path, "stat", racing_stat)
        report = store.stats()
        assert report["kinds"]["profiles"]["files"] == \
            full["kinds"]["profiles"]["files"] - 1
        assert report["total_files"] == full["total_files"] - 1

    def test_stats_and_clear_handle_tmp_litter(self, tmp_path):
        store, _ = warm_store(tmp_path)
        baseline = store.stats()
        faults.litter_tmp(Path(tmp_path) / "traces")
        faults.litter_tmp(Path(tmp_path) / "addresses", suffix=".npy")

        report = store.stats()
        assert report["tmp_files"] == 2
        assert report["kinds"]["traces"]["tmp"] == 1
        # Litter is not counted (or sized) as artifacts.
        assert report["total_files"] == baseline["total_files"]
        assert report["total_bytes"] == baseline["total_bytes"]

        store.clear()
        after = store.stats()
        assert after["total_files"] == 0 and after["tmp_files"] == 0

    def test_empty_root_everywhere(self, tmp_path):
        store = ArtifactStore(tmp_path / "never-created")
        assert store.stats()["total_files"] == 0
        assert store.verify()["clean"]
        report = store.repair()
        assert report["quarantined"] == [] and report["purged_tmp"] == []


class TestKillResilience:
    def test_writer_killed_before_publish(self, tmp_path):
        reference = Engine(store=ArtifactStore(tmp_path / "ref")).render(SPEC)

        root = tmp_path / "store"
        with faults.killed_writer():
            with pytest.raises(faults.SimulatedKill):
                Engine(store=ArtifactStore(root)).render(SPEC)

        # The kill left temp litter and published nothing.
        litter = list((root / "traces").glob("*"))
        assert litter and all(".tmp" in f.name for f in litter)

        # The store stays loadable: a clean miss, no crash.
        store = ArtifactStore(root)
        assert store.load_render(SPEC) is None
        scan = store.verify()
        assert scan["bad"] == 0 and scan["tmp"] == len(litter)

        # repair purges the litter once it is stale; verify comes back
        # clean and the next engine recomputes the cell bit-identically.
        for f in litter:
            faults.backdate(f, 2 * artifacts_module.TORN_GRACE_S)
        repaired = store.repair()
        assert len(repaired["purged_tmp"]) == len(litter)
        clean = store.verify()
        assert clean["clean"] and clean["tmp"] == 0

        recomputed = Engine(store=ArtifactStore(root)).render(SPEC)
        assert_traces_equal(recomputed.trace, reference.trace)
        assert ArtifactStore(root).verify()["ok"] >= 1

    def test_writer_killed_between_payload_and_sidecar(self, tmp_path):
        reference = Engine(store=ArtifactStore(tmp_path / "ref")).render(SPEC)

        root = tmp_path / "store"
        with faults.killed_writer(at_replace=1):
            with pytest.raises(faults.SimulatedKill):
                Engine(store=ArtifactStore(root)).render(SPEC)

        published = faults.payload_files(ArtifactStore(root), "traces")
        assert len(published) == 1  # payload landed, sidecar did not

        # Fresh torn state: read as a miss, and the recompute republishes
        # both files over it.
        store = ArtifactStore(root)
        assert store.load_render(SPEC) is None
        recomputed = Engine(store=ArtifactStore(root)).render(SPEC)
        assert_traces_equal(recomputed.trace, reference.trace)
        final = ArtifactStore(root).verify()
        assert final["clean"] and final["ok"] >= 1

        # Aged instead, the same state is damage: repair quarantines it.
        [payload] = faults.payload_files(store, "traces")
        payload.with_suffix(".json").unlink()
        faults.backdate(payload, 2 * artifacts_module.TORN_GRACE_S)
        repaired = ArtifactStore(root).repair()
        assert any("traces/" in name for name in repaired["quarantined"])
        assert "missing sidecar" in quarantine_reasons(store, "traces")


class TestDegradedModes:
    def test_full_disk_demotes_to_memory_with_one_warning(self, tmp_path):
        store = ArtifactStore(tmp_path)
        engine = Engine(store=store)
        with faults.disk_full():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = engine.render(SPEC)
                again = engine.render(SPEC)
        assert again is result  # in-memory memo still serves
        demotions = [w for w in caught
                     if "without persistence" in str(w.message)]
        assert len(demotions) == 1
        assert not store.available
        assert store.stats()["total_files"] == 0  # nothing half-written

    def test_numpy_save_failure_demotes(self, tmp_path):
        store = ArtifactStore(tmp_path)
        engine = Engine(store=store)
        with faults.failing_numpy_save(errno.EROFS):
            with warnings.catch_warnings(record=True):
                warnings.simplefilter("always")
                result = engine.render(SPEC)
        assert result.trace.n_accesses > 0
        assert not store.available
        assert store.stats()["tmp_files"] == 0  # temp cleaned up

    @pytest.mark.skipif(os.geteuid() == 0,
                        reason="root bypasses permission checks")
    def test_read_only_directory_demotes(self, tmp_path):
        read_only = tmp_path / "ro"
        read_only.mkdir()
        os.chmod(read_only, 0o555)
        try:
            engine = Engine(store=ArtifactStore(read_only))
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = engine.render(SPEC)
            assert result.trace.n_accesses > 0
            assert not engine.store.available
            assert any("without persistence" in str(w.message)
                       for w in caught)
        finally:
            os.chmod(read_only, 0o755)

    def test_warm_store_keeps_serving_when_disk_breaks(self, tmp_path):
        # A read-only store full of warm artifacts still serves them:
        # only writes degrade, reads keep working.
        warm_store(tmp_path)
        before = render_calls()
        with faults.disk_full():
            engine = Engine(store=ArtifactStore(tmp_path))
            engine.streams(SPEC, LAYOUT).profile(32)
        assert render_calls() == before
        assert engine.store.available  # no save was ever needed

    def test_experiment_completes_on_unwritable_store(self, tmp_path):
        experiment = ExperimentSpec(
            scenes=("goblet",), orders=(("horizontal",),),
            layouts=(LAYOUT,), cache_sizes=(1024, 4096), line_sizes=(32,),
            scale=0.1)
        with faults.disk_full():
            with warnings.catch_warnings(record=True):
                warnings.simplefilter("always")
                degraded = run_experiment(
                    experiment, store=ArtifactStore(tmp_path / "broken"))
        healthy = run_experiment(experiment,
                                 store=ArtifactStore(tmp_path / "ok"))
        assert [r.stats.miss_rate for r in degraded.rows] == \
            [r.stats.miss_rate for r in healthy.rows]


class TestSingleFlight:
    def test_lock_is_exclusive_with_takeover_timeout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with store.single_flight("traces", "deadbeef") as first:
            assert first
            with store.single_flight("traces", "deadbeef",
                                     timeout=0.2) as second:
                assert not second  # takeover: proceed without the lock
        with store.single_flight("traces", "deadbeef") as again:
            assert again  # released on exit

    def test_two_racing_engines_render_once(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("requires the fork start method")
        context = multiprocessing.get_context("fork")
        barrier = context.Barrier(2)
        queue = context.Queue()
        root = str(tmp_path)

        def race():
            reset_render_calls()
            barrier.wait()
            engine = Engine(store=ArtifactStore(root))
            result = engine.render(SPEC)
            queue.put((render_calls(), result.trace.n_accesses))

        processes = [context.Process(target=race) for _ in range(2)]
        for process in processes:
            process.start()
        counts = [queue.get(timeout=120) for _ in processes]
        for process in processes:
            process.join(timeout=30)
        renders = sorted(count for count, _ in counts)
        assert renders == [0, 1]  # exactly one render per fingerprint
        assert counts[0][1] == counts[1][1] > 0
        # And the store holds the one published, verified artifact.
        assert ArtifactStore(root).verify()["ok"] == 1


class TestWarmPoolFaults:
    EXPERIMENT = ExperimentSpec(
        scenes=("goblet",), orders=(("horizontal",), ("vertical",)),
        layouts=(LAYOUT,), cache_sizes=(1024, 4096), line_sizes=(32,),
        scale=0.1)

    def test_worker_crash_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setattr(runner_module, "WARM_BACKOFF_S", 0.01)
        monkeypatch.setenv("REPRO_FAULT_WARM",
                           f"once:{tmp_path / 'crash-marker'}")
        result = run_experiment(self.EXPERIMENT,
                                store=ArtifactStore(tmp_path / "store"),
                                workers=2)
        report = result.warm_report
        assert report.tasks == 2
        assert report.retries >= 1
        assert report.attempts >= report.tasks + 1
        assert report.ok and report.fallbacks == 0

        monkeypatch.delenv("REPRO_FAULT_WARM")
        serial = run_experiment(self.EXPERIMENT,
                                store=ArtifactStore(tmp_path / "serial"))
        assert serial.warm_report is None
        assert [r.stats.miss_rate for r in result.rows] == \
            [r.stats.miss_rate for r in serial.rows]

    def test_hopeless_workers_fall_back_in_process(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setattr(runner_module, "WARM_BACKOFF_S", 0.01)
        monkeypatch.setattr(runner_module, "WARM_RETRIES", 1)
        monkeypatch.setenv("REPRO_FAULT_WARM", "workers")
        result = run_experiment(self.EXPERIMENT,
                                store=ArtifactStore(tmp_path / "store"),
                                workers=2)
        report = result.warm_report
        assert report.tasks == 2
        assert report.attempts == 4  # 2 tasks x (first round + 1 retry)
        assert report.retries == 2
        assert report.fallbacks == 2  # every task completed in-process
        assert report.ok
        assert len(result.rows) == 2 * 2
        for row in result.rows:
            assert 0.0 <= row.stats.miss_rate <= 1.0


class TestCacheCLIVerifyRepair:
    def test_verify_repair_cycle(self, tmp_path, capsys):
        from repro.cli import main

        store, _ = warm_store(tmp_path)
        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0
        assert "verified clean" in capsys.readouterr().out

        [victim] = faults.payload_files(store, "traces")
        faults.truncate(victim)
        faults.litter_tmp(Path(tmp_path) / "profiles",
                          age_s=2 * artifacts_module.TORN_GRACE_S)

        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "BAD" in out and "mismatch" in out

        assert main(["cache", "repair", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "quarantined 1 artifact(s)" in out
        assert "purged 1 stale temp file(s)" in out

        assert main(["cache", "verify", "--dir", str(tmp_path)]) == 0
        assert main(["cache", "stats", "--dir", str(tmp_path)]) == 0
        assert "quarantine" in capsys.readouterr().out


class TestResumableParts:
    """verify/repair on a store holding an interrupted pipelined run:
    recorded strided parts are *resumable* -- pending inside the grace
    window, kept (never quarantined or purged) beyond it -- while
    unrecorded strided parts age into ordinary orphan litter."""

    def interrupted_run(self, root):
        """The wreckage of a pipelined cold render killed mid-run:
        range 0 completed (strided parts + completion record), the next
        range's part landed without a record (its worker died before
        finishing), the plan is on disk, the sidecar never published."""
        from repro.engine.pipelined import PART_STRIDE
        from repro.pipeline.trace import iter_blocks

        trace = Engine(store=ArtifactStore(root / "scratch")).render(
            SPEC).trace
        blocks = list(iter_blocks(trace, max(1, trace.n_accesses // 4)))
        assert len(blocks) >= 3
        store = ArtifactStore(root / "store")
        store.save_stream_plan(SPEC, {"n_ranges": 2, "chunk_size": 4096,
                                      "part_stride": PART_STRIDE,
                                      "created_at": 0.0})
        writer = store.open_render_writer(SPEC, part_base=0)
        writer.append(blocks[0])
        writer.append(blocks[1])
        envelopes, complete, _ = writer.finish_parts()
        assert complete and len(envelopes) == 2
        store.save_range_record(SPEC, 0, {
            "range": 0, "envelopes": envelopes, "complete": True,
            "totals": {}, "n_blocks": len(envelopes)})
        unrecorded = store.open_render_writer(SPEC, part_base=PART_STRIDE)
        unrecorded.append(blocks[2])
        orphan_envelopes, _, _ = unrecorded.finish_parts()
        recorded = [entry["name"] for entry in envelopes]
        return store, recorded, [entry["name"]
                                 for entry in orphan_envelopes]

    def test_fresh_parts_report_pending_not_damage(self, tmp_path):
        store, recorded, orphaned = self.interrupted_run(tmp_path)
        scan = store.verify()
        traces = scan["kinds"]["traces"]
        assert scan["bad"] == 0
        assert traces["pending"] == len(recorded) + len(orphaned)
        assert traces["resumable"] == [] and traces["orphaned_parts"] == []
        # repair within the grace window touches nothing.
        repaired = store.repair()
        assert repaired["quarantined"] == []
        assert repaired["purged_parts"] == []
        for name in recorded + orphaned:
            assert (Path(store.root) / "traces" / name).exists()

    def test_stale_recorded_parts_resumable_not_quarantined(self, tmp_path):
        store, recorded, orphaned = self.interrupted_run(tmp_path)
        for name in recorded + orphaned:
            faults.backdate(Path(store.root) / "traces" / name,
                            2 * artifacts_module.TORN_GRACE_S)
        scan = store.verify()
        traces = scan["kinds"]["traces"]
        assert scan["bad"] == 0 and scan["clean"]
        assert sorted(traces["resumable"]) == sorted(recorded)
        assert traces["orphaned_parts"] == orphaned
        assert store.stats()["resumable_parts"] == len(recorded)

        repaired = store.repair()
        assert repaired["quarantined"] == []
        assert repaired["kept_resumable"] == len(recorded)
        assert repaired["purged_resume"] == []
        assert sorted(repaired["purged_parts"]) == sorted(
            f"traces/{name}" for name in orphaned)
        for name in recorded:  # parts and their record both survive
            assert (Path(store.root) / "traces" / name).exists()
        assert store.load_range_records(SPEC)
        assert store.load_stream_plan(SPEC) is not None

    def test_corrupt_recorded_part_is_not_resumable(self, tmp_path):
        store, recorded, orphaned = self.interrupted_run(tmp_path)
        for name in recorded + orphaned:
            faults.backdate(Path(store.root) / "traces" / name,
                            2 * artifacts_module.TORN_GRACE_S)
        corrupt = Path(store.root) / "traces" / recorded[0]
        faults.flip_bit(corrupt)  # rewriting refreshes mtime...
        faults.backdate(corrupt, 2 * artifacts_module.TORN_GRACE_S)
        scan = store.verify()
        traces = scan["kinds"]["traces"]
        # The record's envelope check fails, so the whole range falls
        # back to orphan litter instead of resuming corrupt data.
        assert traces["resumable"] == []
        assert sorted(traces["orphaned_parts"]) == sorted(
            recorded + orphaned)

    def test_resume_metadata_purged_once_artifact_published(self, tmp_path):
        from repro.engine import fingerprint
        from repro.pipeline.trace import iter_blocks

        trace = Engine(store=ArtifactStore(tmp_path / "scratch")).render(
            SPEC).trace
        store = ArtifactStore(tmp_path / "store")
        writer = store.open_render_writer(SPEC)
        for block in iter_blocks(trace, max(1, trace.n_accesses // 3)):
            writer.append(block)
        assert writer.finish({"n_triangles_submitted": 1,
                              "n_triangles_rasterized": 1})
        # Leftover resume metadata from the run that published.
        store.save_stream_plan(SPEC, {"n_ranges": 1, "chunk_size": 4096,
                                      "part_stride": 100_000,
                                      "created_at": 0.0})
        store.save_range_record(SPEC, 0, {"range": 0, "envelopes": [],
                                          "complete": True, "totals": {},
                                          "n_blocks": 0})
        digest = fingerprint(SPEC.payload())
        for path in (Path(store.root) / "traces").glob(
                digest + ".*.json"):
            if ".plan." in path.name or ".done." in path.name:
                faults.backdate(path, 2 * artifacts_module.TORN_GRACE_S)
        scan = store.verify()
        assert len(scan["kinds"]["traces"]["stale_resume"]) == 2
        repaired = store.repair()
        assert len(repaired["purged_resume"]) == 2
        assert store.load_stream_plan(SPEC) is None
        assert store.load_range_records(SPEC) == {}
        assert store.verify()["clean"]

    def test_cache_cli_surfaces_resumable_parts(self, tmp_path, capsys):
        from repro.cli import main

        store, recorded, orphaned = self.interrupted_run(tmp_path)
        for name in recorded + orphaned:
            faults.backdate(Path(store.root) / "traces" / name,
                            2 * artifacts_module.TORN_GRACE_S)
        root = str(store.root)
        assert main(["cache", "verify", "--dir", root]) == 0
        out = capsys.readouterr().out
        assert "resumable" in out
        assert main(["cache", "repair", "--dir", root]) == 0
        out = capsys.readouterr().out
        assert f"kept {len(recorded)} resumable part(s)" in out
        assert main(["cache", "stats", "--dir", root]) == 0
        assert "resumable" in capsys.readouterr().out

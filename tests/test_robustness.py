"""Robustness and edge-case tests across the pipeline."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.cache import CacheConfig, simulate, simulate_sequence
from repro.engine import ArtifactStore, Engine, TraceSpec, addresses_payload
from repro.geometry.mesh import Mesh, make_quad
from repro.geometry.transform import look_at, perspective
from repro.pipeline.renderer import Renderer, render_trace
from repro.scenes.base import SceneData
from repro.texture.image import TextureSet
from repro.texture.layout import BlockedLayout, NonblockedLayout
from repro.texture.memory import place_textures
from repro.texture.mipmap import MipMap
from repro.texture.procedural import checkerboard

from tests import fault_injection as faults


def scene_with(mesh, width=32, height=32, eye=(0, 0, 3)):
    textures = TextureSet()
    textures.add(checkerboard(16, 16))
    return SceneData(
        name="edge", width=width, height=height, mesh=mesh, textures=textures,
        view=look_at(eye, (0, 0, 0)),
        projection=perspective(45.0, width / height, 0.5, 10.0),
    )


class TestRendererEdgeCases:
    def test_behind_camera_scene_is_empty(self):
        mesh = make_quad(np.array([[-1, -1, 5], [1, -1, 5], [1, 1, 5],
                                   [-1, 1, 5]], dtype=float), texture_id=0)
        result = render_trace(scene_with(mesh, eye=(0, 0, 3)))
        # Quad at z=5 is behind the camera at z=3 looking toward -z.
        assert result.n_fragments == 0
        assert result.trace.n_accesses == 0

    def test_triangle_straddling_near_plane(self):
        positions = np.array([
            [-0.5, -0.5, 0.0],
            [0.5, -0.5, 0.0],
            [0.0, 0.3, 8.0],   # behind the camera
        ])
        mesh = Mesh(positions=positions, uvs=np.zeros((3, 2)),
                    triangles=np.array([[0, 1, 2]]),
                    texture_ids=np.array([0]))
        result = render_trace(scene_with(mesh))
        assert result.n_fragments > 0
        assert np.isfinite(result.trace.tu).all()

    def test_subpixel_triangle(self):
        positions = np.array([
            [0.0, 0.0, 0.0], [0.01, 0.0, 0.0], [0.0, 0.01, 0.0]])
        mesh = Mesh(positions=positions, uvs=np.zeros((3, 2)),
                    triangles=np.array([[0, 1, 2]]),
                    texture_ids=np.array([0]))
        result = render_trace(scene_with(mesh))
        # May cover zero or one pixel; must not crash either way.
        assert result.n_fragments in (0, 1)

    def test_huge_triangle_clamped_to_screen(self):
        mesh = make_quad(np.array([[-50, -50, 0], [50, -50, 0], [50, 50, 0],
                                   [-50, 50, 0]], dtype=float), texture_id=0)
        result = render_trace(scene_with(mesh, width=16, height=16))
        assert result.n_fragments <= 16 * 16

    def test_sliver_triangle(self):
        positions = np.array([
            [-1.0, 0.0, 0.0], [1.0, 0.001, 0.0], [1.0, 0.0, 0.0]])
        mesh = Mesh(positions=positions, uvs=np.array([[0, 0], [1, 0], [1, 1]],
                                                      dtype=float),
                    triangles=np.array([[0, 1, 2]]),
                    texture_ids=np.array([0]))
        result = render_trace(scene_with(mesh))
        assert np.isfinite(result.trace.tu_raw).all()

    def test_one_pixel_screen(self):
        mesh = make_quad(np.array([[-1, -1, 0], [1, -1, 0], [1, 1, 0],
                                   [-1, 1, 0]], dtype=float), texture_id=0)
        result = Renderer(produce_image=True).render(
            scene_with(mesh, width=16, height=16))
        assert result.framebuffer.pixels.shape == (16, 16, 3)

    def test_uv_far_outside_unit_square(self):
        mesh = make_quad(np.array([[-1, -1, 0], [1, -1, 0], [1, 1, 0],
                                   [-1, 1, 0]], dtype=float), texture_id=0,
                         uv_rect=(-3.0, 5.0, 9.0, 17.0))
        result = render_trace(scene_with(mesh))
        assert result.n_accesses > 0
        # Wrapped coordinates stay inside every level.
        assert result.trace.tu.min() >= 0
        assert result.trace.tu.max() < 16


class TestSimulatorEdgeCases:
    def test_single_line_cache(self):
        config = CacheConfig(32, 32)
        stats = simulate(np.array([0, 0, 32, 0]), config)
        assert stats.misses == 3

    def test_sequence_with_empty_segment(self):
        config = CacheConfig(128, 32)
        stats = simulate_sequence(
            [np.arange(0, 128, 4), np.array([], dtype=np.int64)], config)
        assert stats[1].accesses == 0
        assert stats[1].misses == 0

    def test_negative_addresses_rejected_by_layouts(self):
        # Layouts assume wrapped (non-negative) coordinates; document
        # that behaviour through the placement API.
        layout = NonblockedLayout()
        plan = layout.place_texture([(16, 16)])
        addresses = layout.addresses(plan.levels[0], np.array([0]), np.array([0]))
        assert addresses[0] == 0

    def test_tiny_texture_through_full_pipeline(self):
        textures = TextureSet()
        textures.add(checkerboard(1, 1))
        mesh = make_quad(np.array([[-1, -1, 0], [1, -1, 0], [1, 1, 0],
                                   [-1, 1, 0]], dtype=float), texture_id=0)
        scene = SceneData(name="tiny-tex", width=16, height=16, mesh=mesh,
                          textures=textures,
                          view=look_at((0, 0, 3), (0, 0, 0)),
                          projection=perspective(45.0, 1.0, 0.5, 10.0))
        result = render_trace(scene)
        placements = place_textures(scene.get_mipmaps(), BlockedLayout(8))
        addresses = result.trace.byte_addresses(placements)
        stats = simulate(addresses, CacheConfig(128, 32))
        assert stats.misses >= 1

    def test_rectangular_texture_pipeline(self):
        textures = TextureSet()
        textures.add(checkerboard(32, 8))
        mesh = make_quad(np.array([[-1, -1, 0], [1, -1, 0], [1, 1, 0],
                                   [-1, 1, 0]], dtype=float), texture_id=0)
        scene = SceneData(name="rect-tex", width=32, height=32, mesh=mesh,
                          textures=textures,
                          view=look_at((0, 0, 3), (0, 0, 0)),
                          projection=perspective(45.0, 1.0, 0.5, 10.0))
        result = render_trace(scene)
        mipmaps = scene.get_mipmaps()
        assert mipmaps[0].level_shape(0) == (32, 8)
        placements = place_textures(mipmaps, BlockedLayout(4))
        addresses = result.trace.byte_addresses(placements)
        assert addresses.max() < placements[0].base + placements[0].total_nbytes


class TestStoreEdgeCases:
    SPEC = TraceSpec(scene="goblet", scale=0.1, order=("horizontal",))
    LAYOUT = ("blocked", 4)

    def _warm(self, root):
        store = ArtifactStore(root)
        Engine(store=store).addresses(self.SPEC, self.LAYOUT)
        return store

    def test_garbage_sidecar_quarantined(self, tmp_path):
        store = self._warm(tmp_path)
        [payload] = faults.payload_files(store, "addresses")
        payload.with_suffix(".json").write_text("{not json at all")

        key = addresses_payload(self.SPEC, self.LAYOUT)
        assert ArtifactStore(tmp_path).load_addresses(key) is None
        assert not payload.exists()  # quarantined alongside its sidecar
        quarantined = Path(tmp_path) / "quarantine" / "addresses"
        assert any(quarantined.glob("*.npy"))

    def test_foreign_payload_with_valid_envelope(self, tmp_path):
        # A digest-consistent sidecar over a payload numpy cannot
        # parse: the decode layer must quarantine, not crash.
        store = self._warm(tmp_path)
        [payload] = faults.payload_files(store, "addresses")
        payload.write_bytes(b"this is not an npy file")
        faults.restamp(store, "addresses",
                       payload.name.split(".")[0], ".npy")

        key = addresses_payload(self.SPEC, self.LAYOUT)
        assert ArtifactStore(tmp_path).load_addresses(key) is None
        reasons = Path(tmp_path) / "quarantine" / "addresses"
        assert any("undecodable" in f.read_text()
                   for f in reasons.glob("*.reason.json"))

    def test_quarantine_reason_record_fields(self, tmp_path):
        store = self._warm(tmp_path)
        [payload] = faults.payload_files(store, "addresses")
        faults.flip_bit(payload)
        key = addresses_payload(self.SPEC, self.LAYOUT)
        assert ArtifactStore(tmp_path).load_addresses(key) is None

        reason_dir = Path(tmp_path) / "quarantine" / "addresses"
        [record] = [json.loads(f.read_text())
                    for f in reason_dir.glob("*.reason.json")]
        assert record["kind"] == "addresses"
        assert record["digest"] == payload.name.split(".")[0]
        assert "digest mismatch" in record["reason"]
        assert record["files"]  # names of the files moved aside
        assert record["quarantined_at"]

    def test_maintenance_on_missing_root(self, tmp_path):
        store = ArtifactStore(tmp_path / "absent")
        assert store.stats()["total_files"] == 0
        assert store.verify()["clean"]
        assert store.repair() == {"root": str(store.root),
                                  "quarantined": [], "purged_tmp": [],
                                  "purged_parts": [], "purged_resume": [],
                                  "kept_resumable": 0}
        cleared = store.clear()
        assert cleared["total_files"] == 0

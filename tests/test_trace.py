"""Unit tests for texel traces (repro.pipeline.trace)."""

import numpy as np

from repro.pipeline.trace import TraceBuilder
from repro.texture.filtering import generate_accesses
from repro.texture.image import TextureImage
from repro.texture.layout import BlockedLayout, NonblockedLayout, WilliamsLayout
from repro.texture.memory import place_textures
from repro.texture.mipmap import MipMap


def build_trace():
    builder = TraceBuilder()
    accesses = generate_accesses(np.array([0.5, 0.25]), np.array([0.5, 0.25]),
                                 np.array([1.5, 1.5]), 5, 16, 16)
    builder.append(0, accesses, n_fragments=2)
    accesses2 = generate_accesses(np.array([0.75]), np.array([0.75]),
                                  np.array([-0.5]), 4, 8, 8)
    builder.append(1, accesses2, n_fragments=1)
    return builder.build()


class TestTraceBuilder:
    def test_concatenation_order(self):
        trace = build_trace()
        assert trace.n_accesses == 16 + 4
        assert trace.texture_id[:16].tolist() == [0] * 16
        assert trace.texture_id[16:].tolist() == [1] * 4
        assert trace.n_fragments == 3

    def test_empty_build(self):
        trace = TraceBuilder().build()
        assert trace.n_accesses == 0
        assert trace.n_fragments == 0

    def test_empty_batches_skipped(self):
        builder = TraceBuilder()
        empty = generate_accesses(np.array([]), np.array([]), np.array([]),
                                  5, 16, 16)
        builder.append(0, empty, n_fragments=0)
        assert builder.build().n_accesses == 0


class TestByteAddresses:
    def test_matches_direct_placement_lookup(self):
        trace = build_trace()
        mipmaps = [MipMap.build(TextureImage.solid(16, 16)),
                   MipMap.build(TextureImage.solid(8, 8))]
        placements = place_textures(mipmaps, BlockedLayout(4))
        addresses = trace.byte_addresses(placements)
        assert len(addresses) == trace.n_accesses
        for index in range(trace.n_accesses):
            expected = placements[trace.texture_id[index]].addresses(
                int(trace.level[index]),
                trace.tu[index:index + 1],
                trace.tv[index:index + 1],
            )[0]
            assert addresses[index] == expected

    def test_williams_triples_length(self):
        trace = build_trace()
        mipmaps = [MipMap.build(TextureImage.solid(16, 16)),
                   MipMap.build(TextureImage.solid(8, 8))]
        placements = place_textures(mipmaps, WilliamsLayout())
        addresses = trace.byte_addresses(placements)
        assert len(addresses) == 3 * trace.n_accesses

    def test_addresses_fall_inside_allocations(self):
        trace = build_trace()
        mipmaps = [MipMap.build(TextureImage.solid(16, 16)),
                   MipMap.build(TextureImage.solid(8, 8))]
        placements = place_textures(mipmaps, NonblockedLayout())
        addresses = trace.byte_addresses(placements)
        end = placements[-1].base + placements[-1].total_nbytes
        assert addresses.min() >= 0
        assert addresses.max() < end

    def test_empty_trace(self):
        trace = TraceBuilder().build()
        assert len(trace.byte_addresses([])) == 0

    def test_slice(self):
        trace = build_trace()
        part = trace.slice(0, 16)
        assert part.n_accesses == 16
        assert (part.texture_id == 0).all()

"""Unit tests for locality metrics (repro.analysis.metrics)."""

import numpy as np

from repro.analysis.metrics import (
    accesses_per_texel,
    level_histogram,
    mean_texture_runlength,
    repetition_factor,
    texture_runlengths,
)
from repro.pipeline.trace import TexelTrace, TraceBuilder
from repro.texture.filtering import generate_accesses


def make_trace(texture_id, level, tu, tv, kind, tu_raw=None, tv_raw=None):
    n = len(level)
    return TexelTrace(
        texture_id=np.asarray(texture_id, dtype=np.int16),
        level=np.asarray(level, dtype=np.int16),
        tu=np.asarray(tu, dtype=np.int32),
        tv=np.asarray(tv, dtype=np.int32),
        tu_raw=np.asarray(tu if tu_raw is None else tu_raw, dtype=np.int32),
        tv_raw=np.asarray(tv if tv_raw is None else tv_raw, dtype=np.int32),
        kind=np.asarray(kind, dtype=np.uint8),
        n_fragments=n // 8,
    )


class TestAccessesPerTexel:
    def test_simple_overlap(self):
        # Four lower-kind accesses to two distinct texels -> 2.0.
        trace = make_trace([0] * 4, [0] * 4, [0, 1, 0, 1], [0, 0, 0, 0],
                           [1, 1, 1, 1])
        result = accesses_per_texel(trace)
        assert result.lower == 2.0
        assert result.upper == 0.0
        assert result.bilinear == 0.0

    def test_kinds_independent(self):
        trace = make_trace([0] * 4, [0, 0, 1, 1], [0, 0, 0, 0], [0, 0, 0, 0],
                           [1, 1, 2, 2])
        result = accesses_per_texel(trace)
        assert result.lower == 2.0
        assert result.upper == 2.0

    def test_adjacent_fragment_overlap(self):
        # Two fragments one texel apart at lod 1.5: their lower-level
        # footprints share two texels.
        accesses = generate_accesses(
            np.array([0.5, 0.5 + 1 / 64]), np.array([0.5, 0.5]),
            np.array([1.5, 1.5]), 6, 64, 64)
        builder = TraceBuilder()
        builder.append(0, accesses, 2)
        result = accesses_per_texel(builder.build())
        assert result.lower == 8 / 6
        assert result.upper == 8 / 4  # footprints coincide at level 2


class TestRepetition:
    def test_no_repetition(self):
        trace = make_trace([0] * 4, [0] * 4, [0, 1, 2, 3], [0] * 4, [1] * 4)
        assert repetition_factor(trace) == 1.0

    def test_wrapped_copies_counted(self):
        # Raw coords span two copies of a 4-texel row.
        trace = make_trace([0] * 8, [0] * 8,
                           tu=[0, 1, 2, 3, 0, 1, 2, 3],
                           tv=[0] * 8, kind=[1] * 8,
                           tu_raw=[0, 1, 2, 3, 4, 5, 6, 7])
        assert repetition_factor(trace) == 2.0

    def test_negative_raw_coords_safe(self):
        trace = make_trace([0] * 2, [0] * 2, tu=[15, 0], tv=[0, 0],
                           kind=[1, 1], tu_raw=[-1, 0])
        assert repetition_factor(trace) == 1.0

    def test_empty_trace(self):
        trace = TraceBuilder().build()
        assert repetition_factor(trace) == 1.0


class TestRunlengths:
    def test_runs(self):
        trace = make_trace([0, 0, 1, 1, 1, 0], [0] * 6, [0] * 6, [0] * 6,
                           [1] * 6)
        assert texture_runlengths(trace).tolist() == [2, 3, 1]
        assert mean_texture_runlength(trace) == 2.0

    def test_single_texture(self):
        trace = make_trace([3] * 10, [0] * 10, [0] * 10, [0] * 10, [1] * 10)
        assert texture_runlengths(trace).tolist() == [10]

    def test_empty(self):
        trace = TraceBuilder().build()
        assert len(texture_runlengths(trace)) == 0
        assert mean_texture_runlength(trace) == 0.0


class TestLevelHistogram:
    def test_counts(self):
        trace = make_trace([0] * 5, [0, 0, 1, 2, 2], [0] * 5, [0] * 5, [1] * 5)
        assert level_histogram(trace).tolist() == [2, 1, 2]

    def test_empty(self):
        assert level_histogram(TraceBuilder().build()).tolist() == [0]

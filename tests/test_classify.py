"""Unit tests for miss classification (repro.core.classify)."""

import numpy as np

from repro.core.cache import CacheConfig, LineStream
from repro.core.classify import classify_misses
from repro.core.stackdist import DistanceProfile


class TestClassifyMisses:
    def test_categories_sum_to_misses(self):
        rng = np.random.default_rng(5)
        addresses = rng.integers(0, 8192, size=5000) * 4
        stats = classify_misses(addresses, CacheConfig(size=1024, line_size=32, assoc=2))
        assert stats.cold_misses + stats.capacity_misses + stats.conflict_misses == stats.misses

    def test_pure_streaming_is_all_cold(self):
        addresses = np.arange(0, 16384, 4)
        stats = classify_misses(addresses, CacheConfig(size=1024, line_size=32, assoc=1))
        assert stats.capacity_misses == 0
        assert stats.conflict_misses == 0
        assert stats.cold_misses == stats.misses

    def test_fully_associative_has_no_conflicts(self):
        rng = np.random.default_rng(9)
        addresses = rng.integers(0, 4096, size=4000) * 4
        stats = classify_misses(addresses, CacheConfig(size=512, line_size=32))
        assert stats.conflict_misses == 0
        assert stats.capacity_misses > 0

    def test_known_conflict_pattern(self):
        # Two lines mapping to the same direct-mapped set, alternating:
        # every access after the first two is a conflict miss.
        config = CacheConfig(size=256, line_size=32, assoc=1)  # 8 sets
        stride = 256  # same set, different tags
        addresses = np.tile([0, stride], 50).astype(np.int64)
        stats = classify_misses(addresses, config)
        assert stats.misses == 100
        assert stats.cold_misses == 2
        assert stats.capacity_misses == 0
        assert stats.conflict_misses == 98

    def test_capacity_pattern(self):
        # Cyclic sweep over 2x the cache: fully-associative LRU misses
        # everything; all non-cold misses are capacity.
        config = CacheConfig(size=256, line_size=32)  # 8 lines
        lines = np.tile(np.arange(16), 10)
        addresses = lines * 32
        stats = classify_misses(addresses, config)
        assert stats.misses == 160
        assert stats.cold_misses == 16
        assert stats.capacity_misses == 144
        assert stats.conflict_misses == 0

    def test_profile_reuse(self):
        addresses = np.arange(0, 8192, 4)
        stream = LineStream.from_addresses(addresses, 32)
        profile = DistanceProfile.from_stream(stream)
        a = classify_misses(stream, CacheConfig(size=512, line_size=32, assoc=2),
                            profile=profile)
        b = classify_misses(addresses, CacheConfig(size=512, line_size=32, assoc=2))
        assert (a.misses, a.capacity_misses, a.conflict_misses) == \
               (b.misses, b.capacity_misses, b.conflict_misses)

    def test_conflict_never_negative(self):
        rng = np.random.default_rng(13)
        for seed in range(5):
            addresses = np.random.default_rng(seed).integers(0, 512, size=1000) * 32
            stats = classify_misses(addresses, CacheConfig(size=256, line_size=32, assoc=2))
            assert stats.conflict_misses >= 0
            assert stats.capacity_misses >= 0

    def test_kernels_agree(self):
        for seed in range(5):
            addresses = np.random.default_rng(seed).integers(0, 4096, size=3000) * 4
            for config in (CacheConfig(512, 32, 1), CacheConfig(1024, 32, 2),
                           CacheConfig(2048, 64, 8), CacheConfig(512, 32)):
                fast = classify_misses(addresses, config)
                slow = classify_misses(addresses, config, kernel="reference")
                assert (fast.misses, fast.cold_misses, fast.capacity_misses,
                        fast.conflict_misses) == \
                       (slow.misses, slow.cold_misses, slow.capacity_misses,
                        slow.conflict_misses)

    def test_set_profile_reuse(self):
        from repro.core.kernels import SetDistanceProfile
        addresses = np.random.default_rng(3).integers(0, 2048, size=2000) * 8
        config = CacheConfig(size=1024, line_size=32, assoc=2)
        stream = LineStream.from_addresses(addresses, 32)
        set_profile = SetDistanceProfile.from_stream(stream, config.n_sets)
        a = classify_misses(stream, config, set_profile=set_profile)
        b = classify_misses(addresses, config)
        assert (a.misses, a.cold_misses, a.capacity_misses, a.conflict_misses) == \
               (b.misses, b.cold_misses, b.capacity_misses, b.conflict_misses)

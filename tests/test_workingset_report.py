"""Unit tests for working-set detection and report formatting."""

import numpy as np

from repro.analysis.report import format_percent, format_series, format_table
from repro.analysis.workingset import (
    first_working_set,
    worst_case_working_set,
)
from repro.core.stackdist import MissRateCurve


def curve(sizes, rates):
    return MissRateCurve(
        line_size=32,
        sizes=np.asarray(sizes, dtype=np.int64),
        miss_rates=np.asarray(rates, dtype=float),
        cold_miss_rate=min(rates),
        total_accesses=100000,
    )


class TestFirstWorkingSet:
    def test_detects_sharp_knee(self):
        sizes = [1024, 2048, 4096, 8192, 16384]
        rates = [0.20, 0.19, 0.18, 0.02, 0.018]
        ws = first_working_set(curve(sizes, rates))
        assert ws.size == 8192
        assert ws.drop_ratio > 5

    def test_flat_curve_returns_last(self):
        sizes = [1024, 2048, 4096]
        rates = [0.01, 0.0099, 0.0098]
        ws = first_working_set(curve(sizes, rates))
        assert ws.size == 4096

    def test_first_knee_wins_over_later(self):
        sizes = [1024, 2048, 4096, 8192]
        rates = [0.2, 0.02, 0.019, 0.01]
        ws = first_working_set(curve(sizes, rates))
        assert ws.size == 2048

    def test_ignores_early_small_drop(self):
        sizes = [1024, 2048, 4096, 8192]
        rates = [0.30, 0.21, 0.02, 0.019]
        ws = first_working_set(curve(sizes, rates))
        assert ws.size == 4096


class TestWorstCaseWorkingSet:
    def test_small_texture_uses_diagonal(self):
        # Texture smaller than screen: line size x texture diagonal.
        bound = worst_case_working_set(32, 64, 64, 1280, 1024)
        assert bound == 32 * int(np.ceil(np.hypot(64, 64)))

    def test_large_texture_uses_screen(self):
        bound = worst_case_working_set(32, 2048, 2048, 1280, 1024)
        assert bound == 32 * 1280

    def test_paper_16kb_claim(self):
        # Abstract: working sets at most 16 KB.  A 128x128 Town-like
        # texture with 32-byte lines bounds at ~5.7 KB; a full scan line
        # of a 1280-wide screen at 8-texel lines is 40 KB worst case --
        # measured sets are far below it.
        small = worst_case_working_set(32, 128, 128, 1280, 1024)
        assert small < 16 * 1024


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 2.5]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[2].startswith("-")
        assert len(lines) == 5

    def test_cell_formats(self):
        text = format_table(["v"], [[0.00042], [3.14159], [123.456], [0.0]])
        assert "0.0004" in text
        assert "3.14" in text
        assert "123.5" in text

    def test_format_percent(self):
        assert format_percent(0.0123) == "1.23%"
        assert format_percent(0.5, digits=0) == "50%"

    def test_format_series(self):
        text = format_series("town", [1, 2], [0.5, 0.25], "KB", "miss")
        assert text.startswith("town [KB -> miss]")
        assert "1:0.50" in text

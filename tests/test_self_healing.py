"""Self-healing pipelined streaming: the deterministic chaos sweep.

Every test here injects a fault through the ``REPRO_FAULT_PLAN``
grammar (:mod:`repro.engine.faults`) at an exact, repeatable point --
kill worker rendering range r at block b, wedge it, drop its shm
segment, fill its disk, crash the parent run -- and asserts the
pipelined fold (:mod:`repro.engine.pipelined`) recovers at *range*
granularity: bit-identical rows, no whole-fold serial restart, the
recovery visible on the :class:`~repro.engine.StreamReport`, and a
clean ``store.verify()`` afterwards.  Together the module is the
bit-identity sweep over every recovery path: supervised retry,
wedge detection, shm rollback, ENOSPC demotion retry, residual
serial escalation, and crash-resume from published parts (in-process
and across a hard ``os._exit``).
"""

import contextlib
import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.engine import (
    ArtifactStore,
    Engine,
    ExperimentSpec,
    StreamReport,
)
from repro.engine import faults as chaos
from repro.engine import pipelined
from repro.engine.pipelined import shutdown_stream_pool

from tests import fault_injection as injection

SCENE = "town"
SCALE = 0.05
LAYOUT = ("blocked", 8)
GRID = dict(scenes=(SCENE,), layouts=(LAYOUT,), cache_sizes=(1024, 4096),
            line_sizes=(32, 64), assocs=(None, 2), scale=SCALE)


def rows(result):
    return [(r.scene, r.layout, r.config.label(), r.stats)
            for r in result.rows]


def ram_rows(tmp_path):
    return rows(Engine(store=ArtifactStore(tmp_path / "ram")).run(
        ExperimentSpec(**GRID)))


def piped_run(root, **kwargs):
    return Engine(store=ArtifactStore(root)).run(
        ExperimentSpec(**GRID), chunk_size=4096, stream_workers=2,
        **kwargs)


def shm_litter():
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    return sorted(p.name for p in root.glob(f"repro{os.getpid()}s*"))


@contextlib.contextmanager
def no_fallback_warning():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        yield
    fallbacks = [w for w in caught if "falling back" in str(w.message)]
    assert not fallbacks, [str(w.message) for w in fallbacks]


@pytest.fixture(autouse=True)
def fresh_pool():
    """Chaos env vars must never leak into another test's persistent
    workers: every test starts (and leaves) with no pool."""
    shutdown_stream_pool()
    yield
    shutdown_stream_pool()


class TestFaultPlanGrammar:
    def test_plan_parses_matchers_and_params(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN",
            "kill-worker:range=1,block=2; kill-run:after=3,mode=exit")
        hit = chaos.maybe_fault("render-block", range=1, block=2)
        assert hit is not None and hit.action == "kill-worker"
        assert chaos.maybe_fault("render-block", range=1, block=1) is None
        assert chaos.maybe_fault("ship-block", range=1, block=2) is None
        crash = chaos.maybe_fault("range-complete", after=3)
        assert crash is not None and crash.param("mode") == "exit"
        assert chaos.maybe_fault("range-complete", after=2) is None

    def test_malformed_plans_fail_loudly(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "explode-host:range=0")
        with pytest.raises(ValueError, match="unknown action"):
            chaos.active_faults("render-block")
        monkeypatch.setenv("REPRO_FAULT_PLAN", "kill-worker:noequals")
        with pytest.raises(ValueError, match="key=value"):
            chaos.active_faults("render-block")

    def test_scope_once_fires_exactly_once(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           "kill-worker:range=0,scope=once")
        monkeypatch.setenv("REPRO_FAULT_DIR", str(tmp_path))
        assert chaos.maybe_fault("render-block", range=0, block=0) \
            is not None
        assert chaos.maybe_fault("render-block", range=0, block=5) is None

    def test_scope_once_requires_a_claim_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN",
                           "kill-worker:range=0,scope=once")
        monkeypatch.delenv("REPRO_FAULT_DIR", raising=False)
        with pytest.raises(ValueError, match="REPRO_FAULT_DIR"):
            chaos.maybe_fault("render-block", range=0, block=0)


class TestStreamReport:
    def test_clean_summary_and_absorb(self):
        report = StreamReport(folds=1)
        assert report.clean
        assert "no recovery" in report.summary()
        other = StreamReport(folds=2, respawns=1, retried_ranges=3,
                             resumed_ranges=2, resumed_parts=7,
                             recovery_s=1.5)
        other.note("range 0: worker died")
        report.absorb(other)
        assert not report.clean
        assert report.folds == 3 and report.respawns == 1
        assert report.retried_ranges == 3 and report.resumed_parts == 7
        summary = report.summary()
        assert "respawn" in summary and "resumed" in summary
        assert report.events == ("range 0: worker died",)

    def test_event_cap(self):
        report = StreamReport()
        for n in range(100):
            report.note(f"event {n}")
        assert len(report.events) == StreamReport._MAX_EVENTS


class TestWorkerFaults:
    def test_worker_kill_retries_only_the_failed_range(self, tmp_path):
        reference = ram_rows(tmp_path)
        with injection.fault_plan("kill-worker:range=1,block=0,scope=once",
                                  tmp_path / "plan"):
            with no_fallback_warning():
                result = piped_run(tmp_path / "piped")
        assert rows(result) == reference
        report = result.stream_report
        assert report is not None and not report.clean
        assert report.respawns >= 1
        assert report.retried_ranges >= 1
        assert report.residual_ranges == 0  # retry, not serial escalation
        assert report.fallbacks == 0
        scan = ArtifactStore(tmp_path / "piped").verify()
        assert scan["clean"] and scan["bad"] == 0

    def test_wedged_worker_is_killed_and_range_retried(self, tmp_path,
                                                       monkeypatch):
        reference = ram_rows(tmp_path)
        monkeypatch.setenv("REPRO_STREAM_JOB_TIMEOUT", "5")
        with injection.fault_plan(
                "wedge-worker:range=0,block=0,seconds=60,scope=once",
                tmp_path / "plan"):
            with no_fallback_warning():
                result = piped_run(tmp_path / "piped")
        assert rows(result) == reference
        report = result.stream_report
        assert report is not None and report.respawns >= 1
        assert report.retried_ranges >= 1 and report.fallbacks == 0
        assert any("wedged" in event for event in report.events)

    def test_enospc_demotion_retries_on_a_fresh_store(self, tmp_path):
        reference = ram_rows(tmp_path)
        with injection.fault_plan("enospc:range=1,block=0,scope=once",
                                  tmp_path / "plan"):
            with no_fallback_warning():
                result = piped_run(tmp_path / "piped")
        assert rows(result) == reference
        report = result.stream_report
        assert report is not None and report.retried_ranges >= 1
        assert report.fallbacks == 0
        scan = ArtifactStore(tmp_path / "piped").verify()
        assert scan["clean"] and scan["bad"] == 0

    def test_dropped_shm_segment_retries_without_leaking(self, tmp_path,
                                                         monkeypatch):
        reference = ram_rows(tmp_path)
        monkeypatch.setenv("REPRO_STREAM_TRANSPORT", "shm")
        with injection.fault_plan("drop-shm:range=0,block=0,scope=once",
                                  tmp_path / "plan"):
            with no_fallback_warning():
                result = piped_run(tmp_path / "piped")
        assert rows(result) == reference
        report = result.stream_report
        assert report is not None and report.retried_ranges >= 1
        assert report.fallbacks == 0
        shutdown_stream_pool()
        assert shm_litter() == []

    def test_unretryable_range_escalates_serially_not_whole_fold(
            self, tmp_path):
        # scope=always: every attempt of range 0 dies, exhausting the
        # retry budget.  Only that range may escalate to the parent's
        # serial recovery -- the other ranges' pipelined work is kept
        # and the fold never restarts wholesale.
        reference = ram_rows(tmp_path)
        with injection.fault_plan("kill-worker:range=0,block=0"):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = piped_run(tmp_path / "piped")
        messages = [str(w.message) for w in caught]
        assert any("residual" in m for m in messages), messages
        assert not any("falling back" in m for m in messages), messages
        assert rows(result) == reference
        report = result.stream_report
        assert report is not None
        assert report.residual_ranges >= 1 and report.fallbacks == 0
        assert report.respawns >= pipelined.STREAM_RETRIES + 1
        scan = ArtifactStore(tmp_path / "piped").verify()
        assert scan["clean"] and scan["bad"] == 0


class TestCrashResume:
    def assert_resumed(self, tmp_path, reference, store_root):
        """A second run over the crashed store must resume from the
        published parts, re-render only the missing ranges, and publish
        bit-identically."""
        with no_fallback_warning():
            result = piped_run(store_root)
        assert rows(result) == reference
        report = result.stream_report
        assert report is not None
        assert report.resumed_ranges >= 1
        assert report.resumed_parts >= 1
        scan = ArtifactStore(store_root).verify()
        assert scan["clean"] and scan["bad"] == 0
        # Publishing retired the crash-resume metadata.
        store = ArtifactStore(store_root)
        assert not list(Path(store.root, "traces").glob("*.plan.json"))
        assert not list(Path(store.root, "traces").glob("*.done.json"))

    def test_in_process_crash_resumes_from_parts(self, tmp_path):
        reference = ram_rows(tmp_path)
        with injection.fault_plan("kill-run:after=2,mode=raise"):
            with pytest.raises(chaos.InjectedCrash):
                piped_run(tmp_path / "piped")
        shutdown_stream_pool()  # drop the crashed run's pool state
        self.assert_resumed(tmp_path, reference, tmp_path / "piped")

    def test_store_transport_crash_resumes_from_parts(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_TRANSPORT", "store")
        reference = ram_rows(tmp_path)
        with injection.fault_plan("kill-run:after=1,mode=raise"):
            with pytest.raises(chaos.InjectedCrash):
                piped_run(tmp_path / "piped")
        shutdown_stream_pool()
        self.assert_resumed(tmp_path, reference, tmp_path / "piped")

    def test_hard_exit_crash_resumes_across_processes(self, tmp_path):
        # The SIGKILL-equivalent: a subprocess os._exit(42)s mid-fold
        # with no cleanup whatsoever, then a fresh process resumes.
        reference = ram_rows(tmp_path)
        script = tmp_path / "crash.py"
        script.write_text(
            "import sys\n"
            "from repro.engine import ArtifactStore, Engine, "
            "ExperimentSpec\n"
            f"exp = ExperimentSpec(**{GRID!r})\n"
            "Engine(store=ArtifactStore(sys.argv[1])).run(\n"
            "    exp, chunk_size=4096, stream_workers=2)\n")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_FAULT_PLAN"] = "kill-run:after=1,mode=exit"
        env.pop("REPRO_STREAM_TRANSPORT", None)
        # File-backed output: the killed parent's workers die with it
        # (PR_SET_PDEATHSIG), but pipes would hang communicate() if one
        # straggled through its teardown.
        log = (tmp_path / "crash.log").open("w")
        proc = subprocess.run(
            [sys.executable, str(script), str(tmp_path / "piped")],
            env=env, stdout=log, stderr=log, timeout=300)
        log.close()
        assert proc.returncode == 42, (tmp_path / "crash.log").read_text()
        store = ArtifactStore(tmp_path / "piped")
        assert store.load_render(
            ExperimentSpec(**GRID).trace_specs()[0]) is None
        assert list(Path(store.root, "traces").glob("*.done.json"))
        self.assert_resumed(tmp_path, reference, tmp_path / "piped")


class TestPoolHygiene:
    def test_get_pool_replaces_dead_workers_in_place(self):
        pool = pipelined.get_pool(2)
        assert pool.alive()
        victim = pool.processes[0]
        victim.terminate()
        victim.join(5)
        assert not pool.alive()
        again = pipelined.get_pool(2)
        assert again is pool  # transparent respawn, not a rebuild
        assert again.alive()
        assert again.processes[0].pid != victim.pid
        assert again.respawns >= 1

    def test_get_pool_rebuilds_on_worker_count_change(self):
        pool = pipelined.get_pool(2)
        bigger = pipelined.get_pool(3)
        assert bigger is not pool
        assert bigger.workers == 3 and bigger.alive()
        assert not pool.alive()  # the old pool was shut down

    def test_forced_shutdown_unlinks_tracked_segments(self):
        shared_memory = pipelined._shm_module()
        if shared_memory is None:
            pytest.skip("no multiprocessing.shared_memory on this host")
        pool = pipelined.get_pool(2)
        name = f"{pool.shm_prefix}f1r0b0a0"
        segment = shared_memory.SharedMemory(create=True, size=64,
                                             name=name)
        segment.close()
        pool.inflight_segments.add(name)
        shutdown_stream_pool()
        assert shm_litter() == []
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

"""Equivalence tests for the per-access outcome kernels
(repro.core.kernels.miss_mask and friends) and the five simulators
rewired onto them: hierarchy, prefetch, DRAM, victim and parallel.

Every test here checks *exact* equality -- integer miss counts,
per-level stats, per-fragment arrays and cycle totals -- between the
vectorized paths and the sequential reference loops, on randomized
streams across the paper's grids and on a real rendered scene slice.
"""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.cache import CacheConfig, LineStream, LRUCache, simulate, to_lines
from repro.core.dram import PAPER_DRAM, DramModel
from repro.core.hierarchy import simulate_hierarchy
from repro.core.kernels import line_miss_mask, miss_mask, miss_stream
from repro.core.prefetch import fragment_miss_counts
from repro.core.victim import simulate_victim
from repro.engine import Engine, TraceSpec

SIZES = (512, 4096)
LINE_SIZES = (16, 64)
ASSOCS = (1, 2, 8, None)


def random_addresses(seed, n=4000, span=1 << 14):
    return np.random.default_rng(seed).integers(0, span, size=n,
                                                dtype=np.int64)


def naive_outcomes(lines, config):
    """Per-access hit/miss verdicts from the sequential reference
    cache (consecutive duplicates are MRU hits there too)."""
    cache = LRUCache(config)
    outcomes = np.empty(len(lines), dtype=bool)
    for index, line in enumerate(lines.tolist()):
        outcomes[index] = not cache.access(line)
    return outcomes


class TestMissMask:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_sequential_walk_on_grid(self, seed):
        addresses = random_addresses(seed)
        for line_size in LINE_SIZES:
            for size in SIZES:
                for assoc in ASSOCS:
                    config = CacheConfig(size, line_size, assoc)
                    lines = to_lines(addresses, line_size)
                    np.testing.assert_array_equal(
                        miss_mask(addresses, config),
                        naive_outcomes(lines, config), err_msg=config.label())

    def test_agrees_with_aggregate_simulator(self):
        addresses = random_addresses(99, n=6000)
        for assoc in ASSOCS:
            config = CacheConfig(2048, 32, assoc)
            mask = miss_mask(addresses, config)
            stats = simulate(addresses, config)
            assert int(mask.sum()) == stats.misses

    def test_line_mask_consecutive_duplicates_are_hits(self):
        lines = np.array([5, 5, 5, 9, 9, 5], dtype=np.int64)
        mask = line_miss_mask(lines, CacheConfig(8 * 32, 32, None))
        np.testing.assert_array_equal(
            mask, [True, False, False, True, False, False])

    def test_empty(self):
        config = CacheConfig(256, 32, 1)
        assert len(miss_mask(np.empty(0, dtype=np.int64), config)) == 0
        assert len(miss_stream(np.empty(0, dtype=np.int64), config)) == 0


class TestMissStream:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reference_fetch_order(self, seed):
        addresses = random_addresses(seed, n=3000)
        for line_size in LINE_SIZES:
            for size in SIZES:
                for assoc in ASSOCS:
                    config = CacheConfig(size, line_size, assoc)
                    cache = LRUCache(config)
                    fetched = [line for line
                               in to_lines(addresses, line_size).tolist()
                               if not cache.access(line)]
                    np.testing.assert_array_equal(
                        miss_stream(addresses, config),
                        np.asarray(fetched, dtype=np.int64),
                        err_msg=config.label())

    def test_cold_stream_is_identity(self):
        lines = np.arange(100, dtype=np.int64)
        config = CacheConfig(64, 32, 1)
        np.testing.assert_array_equal(miss_stream(lines * 32, config), lines)


class TestPerSetDistances:
    @pytest.mark.parametrize("n_sets", [1, 2, 8, 64])
    def test_scatter_matches_sequential_per_set(self, n_sets):
        run = np.random.default_rng(n_sets).integers(0, 200, size=2500,
                                                     dtype=np.int64)
        distances, cold = kernels.per_set_distances(run, n_sets)
        # Walk each set's substream with a plain LRU stack.
        stacks = {}
        for index, line in enumerate(run.tolist()):
            stack = stacks.setdefault(line % n_sets, [])
            if line in stack:
                depth = len(stack) - stack.index(line)
                assert not cold[index]
                assert distances[index] == depth, index
                stack.remove(line)
            else:
                assert cold[index], index
            stack.append(line)


class TestHierarchyEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_two_levels_bit_identical(self, seed):
        addresses = random_addresses(seed, n=5000, span=1 << 15)
        for l1_assoc in (1, 2):
            configs = [CacheConfig(1024, 32, l1_assoc),
                       CacheConfig(8192, 128, 2)]
            fast = simulate_hierarchy(addresses, configs)
            slow = simulate_hierarchy(addresses, configs, kernel="reference")
            for a, b in zip(fast.levels, slow.levels):
                assert (a.accesses, a.misses, a.cold_misses) == \
                       (b.accesses, b.misses, b.cold_misses)

    def test_three_levels(self):
        addresses = random_addresses(7, n=4000, span=1 << 16)
        configs = [CacheConfig(512, 16, 1), CacheConfig(4096, 64, 2),
                   CacheConfig(16384, 128, None)]
        fast = simulate_hierarchy(addresses, configs)
        slow = simulate_hierarchy(addresses, configs, kernel="reference")
        assert [s.misses for s in fast.levels] == \
               [s.misses for s in slow.levels]
        assert fast.memory_miss_rate == slow.memory_miss_rate

    def test_level_stream_is_miss_stream(self):
        addresses = random_addresses(3, n=3000)
        l1 = CacheConfig(1024, 32, 2)
        l2 = CacheConfig(8192, 128, 2)
        stats = simulate_hierarchy(addresses, [l1, l2])
        fills = miss_stream(addresses, l1) * l1.line_size
        lone_l2 = simulate(fills, l2)
        assert stats.levels[1].misses == lone_l2.misses
        assert stats.levels[1].accesses == lone_l2.accesses

    def test_bad_kernel_rejected(self):
        with pytest.raises(ValueError):
            simulate_hierarchy(np.arange(8), [CacheConfig(256, 32)],
                               kernel="numba")


class TestFragmentMissCounts:
    @pytest.mark.parametrize("seed", range(5))
    def test_both_kernels_identical(self, seed):
        addresses = random_addresses(seed, n=4001)  # trailing remainder
        for line_size in LINE_SIZES:
            for assoc in (1, 2, None):
                config = CacheConfig(2048, line_size, assoc)
                np.testing.assert_array_equal(
                    fragment_miss_counts(addresses, config),
                    fragment_miss_counts(addresses, config,
                                         kernel="reference"),
                    err_msg=config.label())

    def test_fragment_fold(self):
        config = CacheConfig(4096, 32, None)
        addresses = np.arange(0, 16 * 32, 32, dtype=np.int64)  # all cold
        counts = fragment_miss_counts(addresses, config,
                                      accesses_per_fragment=4)
        np.testing.assert_array_equal(counts, [4, 4, 4, 4])


class TestDramEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_access_cycles_both_kernels(self, seed):
        addresses = random_addresses(seed, n=3000, span=1 << 20)
        for burst in (4, 32, 128):
            fast = PAPER_DRAM.access_cycles(addresses, burst)
            slow = PAPER_DRAM.access_cycles(addresses, burst,
                                            kernel="reference")
            assert fast == slow, burst

    def test_single_bank_model(self):
        dram = DramModel(n_banks=1)
        addresses = random_addresses(11, n=2000, span=1 << 18)
        assert dram.access_cycles(addresses, 32) == \
               dram.access_cycles(addresses, 32, kernel="reference")

    def test_timing_matches_piecewise_metrics(self):
        addresses = random_addresses(2, n=1500, span=1 << 19)
        timing = PAPER_DRAM.timing(addresses, 64)
        assert timing.cycles == PAPER_DRAM.access_cycles(addresses, 64)
        assert timing.effective_bandwidth() == \
               PAPER_DRAM.effective_bandwidth(addresses, 64)
        assert timing.bus_utilization == \
               PAPER_DRAM.bus_utilization(addresses, 64)
        assert timing.total_bytes == len(addresses) * 64

    def test_empty_stream(self):
        empty = np.empty(0, dtype=np.int64)
        timing = PAPER_DRAM.timing(empty, 32)
        assert timing.cycles == 0.0
        assert timing.effective_bandwidth() == 0.0
        assert timing.bus_utilization == 1.0
        assert PAPER_DRAM.access_cycles(empty, 32,
                                        kernel="reference") == 0.0


class TestVictimEquivalence:
    VICTIM_LINES = (0, 1, 2, 4, 8, 16)

    @pytest.mark.parametrize("seed", range(5))
    def test_all_fields_match_reference(self, seed):
        addresses = random_addresses(seed, n=4000)
        for line_size in LINE_SIZES:
            for size in SIZES:
                config = CacheConfig(size, line_size, 1)
                for victim_lines in self.VICTIM_LINES:
                    fast = simulate_victim(addresses, config, victim_lines)
                    slow = simulate_victim(addresses, config, victim_lines,
                                           kernel="reference")
                    assert (fast.accesses, fast.misses, fast.victim_hits,
                            fast.cold_misses) == \
                           (slow.accesses, slow.misses, slow.victim_hits,
                            slow.cold_misses), (config.label(), victim_lines)

    def test_zero_victim_lines_is_plain_direct_mapped(self):
        addresses = random_addresses(31, n=3000)
        config = CacheConfig(1024, 32, 1)
        stats = simulate_victim(addresses, config, 0)
        plain = simulate(addresses, config)
        assert stats.misses == plain.misses
        assert stats.cold_misses == plain.cold_misses
        assert stats.victim_hits == 0

    def test_victim_hits_only_reduce_misses(self):
        addresses = random_addresses(5, n=3000)
        config = CacheConfig(512, 32, 1)
        baseline = simulate_victim(addresses, config, 0)
        for victim_lines in self.VICTIM_LINES:
            stats = simulate_victim(addresses, config, victim_lines)
            assert stats.misses + stats.victim_hits == baseline.misses
            assert stats.cold_misses == baseline.cold_misses


class TestSceneSlice:
    """Exact equivalence on a real rendered trace slice."""

    @pytest.fixture(scope="class")
    def addresses(self):
        engine = Engine()
        spec = TraceSpec("town", scale=0.05, order=("vertical",))
        return engine.addresses(spec, ("blocked", 4))[:60000]

    def test_hierarchy(self, addresses):
        configs = [CacheConfig(1024, 32, 2), CacheConfig(8192, 128, 2)]
        fast = simulate_hierarchy(addresses, configs)
        slow = simulate_hierarchy(addresses, configs, kernel="reference")
        for a, b in zip(fast.levels, slow.levels):
            assert (a.accesses, a.misses, a.cold_misses) == \
                   (b.accesses, b.misses, b.cold_misses)

    def test_fragment_miss_counts(self, addresses):
        config = CacheConfig(2048, 128, 2)
        np.testing.assert_array_equal(
            fragment_miss_counts(addresses, config),
            fragment_miss_counts(addresses, config, kernel="reference"))

    def test_dram_cycles(self, addresses):
        for burst in (4, 128):
            assert PAPER_DRAM.access_cycles(addresses, burst) == \
                   PAPER_DRAM.access_cycles(addresses, burst,
                                            kernel="reference")

    def test_victim(self, addresses):
        config = CacheConfig(2048, 32, 1)
        stream = LineStream.from_addresses(addresses, config.line_size)
        for victim_lines in (0, 2, 8):
            fast = simulate_victim(stream, config, victim_lines)
            slow = simulate_victim(stream, config, victim_lines,
                                   kernel="reference")
            assert (fast.misses, fast.victim_hits, fast.cold_misses) == \
                   (slow.misses, slow.victim_hits, slow.cold_misses)

    def test_miss_mask_totals(self, addresses):
        config = CacheConfig(4096, 64, 2)
        mask = miss_mask(addresses, config)
        stats = simulate(addresses, config)
        assert int(mask.sum()) == stats.misses
        assert len(miss_stream(addresses, config)) == stats.misses

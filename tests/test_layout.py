"""Unit tests for the texture memory representations (paper Sections
5.1-5.3, 6.2)."""

import numpy as np
import pytest

from repro.texture.image import TEXEL_NBYTES
from repro.texture.layout import (
    Blocked6DLayout,
    BlockedLayout,
    NonblockedLayout,
    PaddedBlockedLayout,
    WilliamsLayout,
    make_layout,
)


def square_shapes(side):
    """Pyramid level shapes for a square texture."""
    shapes = []
    while side >= 1:
        shapes.append((side, side))
        side //= 2
    return shapes


def all_coords(width, height):
    tv, tu = np.mgrid[0:height, 0:width]
    return tu.ravel(), tv.ravel()


class TestNonblocked:
    def test_row_major_addresses(self):
        layout = NonblockedLayout()
        plan = layout.place_texture([(8, 8)])
        tu = np.array([0, 1, 0, 7])
        tv = np.array([0, 0, 1, 7])
        addresses = layout.addresses(plan.levels[0], tu, tv)
        assert addresses.tolist() == [0, 4, 32, (7 * 8 + 7) * 4]

    def test_levels_are_contiguous(self):
        layout = NonblockedLayout()
        plan = layout.place_texture(square_shapes(8))
        assert plan.levels[0].base == 0
        assert plan.levels[1].base == 8 * 8 * 4
        assert plan.levels[2].base == (64 + 16) * 4
        assert plan.total_nbytes == (64 + 16 + 4 + 1) * 4

    def test_bijective_within_level(self):
        layout = NonblockedLayout()
        plan = layout.place_texture([(16, 8)])
        tu, tv = all_coords(16, 8)
        addresses = layout.addresses(plan.levels[0], tu, tv)
        assert len(np.unique(addresses)) == 16 * 8

    def test_addressing_cost(self):
        cost = NonblockedLayout().addressing_cost()
        assert cost.adds == 2
        assert cost.shifts == 1
        assert cost.accesses_per_texel == 1


class TestBlocked:
    def test_block_interior_is_contiguous(self):
        layout = BlockedLayout(block_w=4)
        plan = layout.place_texture([(16, 16)])
        tu, tv = all_coords(4, 4)  # first block
        addresses = layout.addresses(plan.levels[0], tu, tv)
        assert sorted(addresses.tolist()) == list(range(0, 64, 4))

    def test_second_block_follows_first(self):
        layout = BlockedLayout(block_w=4)
        plan = layout.place_texture([(16, 16)])
        address = layout.addresses(plan.levels[0], np.array([4]), np.array([0]))
        assert address[0] == 4 * 4 * TEXEL_NBYTES

    def test_block_row_stride(self):
        layout = BlockedLayout(block_w=4)
        plan = layout.place_texture([(16, 16)])
        address = layout.addresses(plan.levels[0], np.array([0]), np.array([4]))
        # Second block row starts after 4 blocks of 16 texels.
        assert address[0] == 4 * 16 * TEXEL_NBYTES

    def test_matches_paper_formula(self):
        # Section 5.3.1 with bw = bh = 8, a 32-texel-wide level.
        layout = BlockedLayout(block_w=8)
        plan = layout.place_texture([(32, 32)])
        tu = np.array([13])
        tv = np.array([21])
        bx, by = 13 >> 3, 21 >> 3
        sx, sy = 13 & 7, 21 & 7
        rs = (32 * 8).bit_length() - 1  # log2(width * bh)
        bs = 6  # log2(64)
        expected = ((by << rs) + (bx << bs) + (sy << 3) + sx) * TEXEL_NBYTES
        assert layout.addresses(plan.levels[0], tu, tv)[0] == expected

    def test_bijective_within_level(self):
        layout = BlockedLayout(block_w=8)
        plan = layout.place_texture([(32, 16)])
        tu, tv = all_coords(32, 16)
        addresses = layout.addresses(plan.levels[0], tu, tv)
        assert len(np.unique(addresses)) == 32 * 16

    def test_small_levels_padded_to_full_block(self):
        layout = BlockedLayout(block_w=8)
        plan = layout.place_texture(square_shapes(16))
        # 2x2 and 1x1 levels still occupy one whole 8x8 block.
        level_sizes = np.diff([lvl.base for lvl in plan.levels] + [plan.total_nbytes])
        assert level_sizes[-1] == 8 * 8 * TEXEL_NBYTES

    def test_rejects_non_pow2_block(self):
        with pytest.raises(ValueError):
            BlockedLayout(block_w=3)

    def test_addressing_overhead_two_adds(self):
        # Section 5.3.1: "the aggregate hardware overhead of the blocked
        # representation compared to the base representation simply
        # consists of two additions."
        base = NonblockedLayout().addressing_cost()
        blocked = BlockedLayout(8).addressing_cost()
        assert blocked.adds - base.adds == 2


class TestPaddedBlocked:
    def test_pad_adds_row_offset(self):
        blocked = BlockedLayout(block_w=4)
        padded = PaddedBlockedLayout(block_w=4, pad_blocks=4)
        plan_b = blocked.place_texture([(16, 16)])
        plan_p = padded.place_texture([(16, 16)])
        tu = np.array([0])
        tv = np.array([4])  # block row 1
        delta = (padded.addresses(plan_p.levels[0], tu, tv)[0]
                 - blocked.addresses(plan_b.levels[0], tu, tv)[0])
        # One pad of 4 blocks of 16 texels each.
        assert delta == 4 * 16 * TEXEL_NBYTES

    def test_matches_paper_pad_formula(self):
        # Section 6.2: texel address = blocked + (by << ps),
        # ps = log2(bw * bh * pad_blocks).
        padded = PaddedBlockedLayout(block_w=8, pad_blocks=4)
        blocked = BlockedLayout(block_w=8)
        plan_p = padded.place_texture([(64, 64)])
        plan_b = blocked.place_texture([(64, 64)])
        ps = (8 * 8 * 4).bit_length() - 1
        for tv_value in (0, 8, 17, 63):
            by = tv_value >> 3
            tu = np.array([5])
            tv = np.array([tv_value])
            expected = (blocked.addresses(plan_b.levels[0], tu, tv)[0]
                        + ((by << ps) * TEXEL_NBYTES))
            assert padded.addresses(plan_p.levels[0], tu, tv)[0] == expected

    def test_allocation_includes_pads(self):
        padded = PaddedBlockedLayout(block_w=4, pad_blocks=2)
        plan = padded.place_texture([(16, 16)])
        assert plan.total_nbytes == (4 + 2) * 4 * (16 * TEXEL_NBYTES)

    def test_bijective(self):
        layout = PaddedBlockedLayout(block_w=4, pad_blocks=2)
        plan = layout.place_texture([(32, 32)])
        tu, tv = all_coords(32, 32)
        assert len(np.unique(layout.addresses(plan.levels[0], tu, tv))) == 1024

    def test_one_extra_add(self):
        assert (PaddedBlockedLayout(8).addressing_cost().adds
                - BlockedLayout(8).addressing_cost().adds) == 1

    def test_rejects_non_pow2_pad(self):
        with pytest.raises(ValueError):
            PaddedBlockedLayout(8, pad_blocks=3)


class TestBlocked6D:
    def test_superblock_side_fits_cache(self):
        layout = Blocked6DLayout(block_w=8, superblock_nbytes=32 * 1024)
        # 32 KB / 256 B per block = 128 blocks -> side 8 (64 blocks),
        # since 16x16 = 256 > 128.
        assert layout.super_side == 8

    def test_superblock_is_contiguous(self):
        layout = Blocked6DLayout(block_w=4, superblock_nbytes=4 * 64)
        # 4 blocks max -> side 2: a 2x2-block superblock (8x8 texels).
        assert layout.super_side == 2
        plan = layout.place_texture([(16, 16)])
        tu, tv = all_coords(8, 8)  # the first superblock
        addresses = layout.addresses(plan.levels[0], tu, tv)
        assert sorted(addresses.tolist()) == list(range(0, 256, 4))

    def test_bijective(self):
        layout = Blocked6DLayout(block_w=4, superblock_nbytes=1024)
        plan = layout.place_texture([(32, 32)])
        tu, tv = all_coords(32, 32)
        assert len(np.unique(layout.addresses(plan.levels[0], tu, tv))) == 1024

    def test_two_extra_adds(self):
        assert (Blocked6DLayout(8).addressing_cost().adds
                - BlockedLayout(8).addressing_cost().adds) == 2

    def test_rejects_tiny_superblock(self):
        with pytest.raises(ValueError):
            Blocked6DLayout(block_w=8, superblock_nbytes=64)


class TestWilliams:
    def test_three_accesses_per_texel(self):
        layout = WilliamsLayout()
        plan = layout.place_texture(square_shapes(8))
        addresses = layout.addresses(plan.levels[0], np.array([0, 1]), np.array([0, 0]))
        assert addresses.shape == (2, 3)
        assert layout.accesses_per_texel == 3

    def test_components_power_of_two_apart(self):
        # Section 5.1: "the individual color components of a texel are
        # always separated by powers of two bytes in memory".
        layout = WilliamsLayout()
        plan = layout.place_texture(square_shapes(64))
        addresses = layout.addresses(plan.levels[0], np.array([3]), np.array([5]))[0]
        red, green, blue = addresses.tolist()
        assert (green - red) & (green - red - 1) == 0
        assert (blue - red) & (blue - red - 1) == 0

    def test_canvas_size(self):
        layout = WilliamsLayout()
        plan = layout.place_texture(square_shapes(16))
        assert plan.total_nbytes == 32 * 32

    def test_levels_nested_along_diagonal(self):
        layout = WilliamsLayout()
        plan = layout.place_texture(square_shapes(16))
        assert plan.levels[0].base == 0
        assert plan.levels[1].base == 16 * 32 + 16

    def test_component_addresses_unique(self):
        layout = WilliamsLayout()
        plan = layout.place_texture(square_shapes(16))
        tu, tv = all_coords(16, 16)
        addresses = layout.addresses(plan.levels[0], tu, tv)
        assert len(np.unique(addresses)) == 3 * 256


class TestMakeLayout:
    def test_dispatch(self):
        assert isinstance(make_layout("nonblocked"), NonblockedLayout)
        assert isinstance(make_layout("blocked", block_w=4), BlockedLayout)
        assert make_layout("blocked", block_w=4).block_w == 4
        assert isinstance(make_layout("padded"), PaddedBlockedLayout)
        assert isinstance(make_layout("blocked6d"), Blocked6DLayout)
        assert isinstance(make_layout("williams"), WilliamsLayout)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_layout("morton")

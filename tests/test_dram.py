"""Tests for the DRAM timing model (paper Section 3.2)."""

import numpy as np
import pytest

from repro.core.dram import DramModel, line_fill_cycles, uncached_stream_cycles


class TestDramModel:
    def test_peak_bandwidth(self):
        dram = DramModel(beat_nbytes=8, col_cycles=2)
        assert dram.peak_bytes_per_cycle == 4.0

    def test_row_hit_vs_miss_cost(self):
        dram = DramModel(row_nbytes=2048, n_banks=1, beat_nbytes=8,
                         col_cycles=2, row_cycles=8)
        # Two accesses in the same row: one activation.
        same_row = dram.access_cycles(np.array([0, 64]), 8)
        assert same_row == 8 + 2 + 2
        # Two accesses in different rows of the same bank: two.
        cross_row = dram.access_cycles(np.array([0, 2048]), 8)
        assert cross_row == 8 + 2 + 8 + 2

    def test_banks_keep_independent_rows(self):
        dram = DramModel(row_nbytes=2048, n_banks=2, beat_nbytes=8,
                         col_cycles=2, row_cycles=8)
        # Rows 0 and 1 live in different banks: alternating stays open.
        alternating = np.tile([0, 2048], 10).astype(np.int64)
        cycles = dram.access_cycles(alternating, 8)
        assert cycles == 2 * 8 + 20 * 2

    def test_burst_beats(self):
        dram = DramModel(beat_nbytes=8, col_cycles=2, row_cycles=8)
        one_line = dram.access_cycles(np.array([0]), 128)
        assert one_line == 8 + (128 // 8) * 2

    def test_long_bursts_amortize_setup(self):
        # Section 3.2's point: the same bytes in longer bursts use the
        # bus better (given scattered, row-missing addresses).
        dram = DramModel(n_banks=1)
        rng = np.random.default_rng(0)
        scattered = rng.integers(0, 1 << 24, size=512) * 4
        small = dram.bus_utilization(scattered, 4)
        large = dram.bus_utilization(scattered, 128)
        assert large > 2 * small

    def test_sequential_texels_hit_open_row(self):
        dram = DramModel(n_banks=1)
        sequential = np.arange(0, 2048, 4)
        utilization = dram.bus_utilization(sequential, 4)
        # Row activations amortize away, but a 4-byte transfer still
        # occupies a full 8-byte beat: utilization caps near 0.5.
        assert 0.45 < utilization <= 0.5

    def test_effective_bandwidth_units(self):
        dram = DramModel(n_banks=1)
        sequential = np.arange(0, 2048, 128)
        bandwidth = dram.effective_bandwidth(sequential, 128, clock_hz=100e6)
        assert 0 < bandwidth <= dram.peak_bytes_per_cycle * 100e6

    def test_empty_stream(self):
        dram = DramModel()
        assert dram.effective_bandwidth(np.array([], dtype=np.int64), 32) == 0.0
        assert dram.bus_utilization(np.array([], dtype=np.int64), 32) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DramModel(row_nbytes=1000)
        with pytest.raises(ValueError):
            DramModel().access_cycles(np.array([0]), 0)


class TestHelpers:
    def test_uncached_stream_is_texel_sized(self):
        addresses = np.arange(0, 1024, 4)
        cycles = uncached_stream_cycles(addresses, texel_nbytes=4)
        assert cycles > 0

    def test_line_fills_cheaper_per_byte(self):
        rng = np.random.default_rng(1)
        texel_addresses = rng.integers(0, 1 << 22, size=4096) * 4
        line_addresses = np.unique(texel_addresses >> 7) << 7
        per_byte_uncached = uncached_stream_cycles(texel_addresses) / (4096 * 4)
        per_byte_lines = line_fill_cycles(line_addresses, 128) / (len(line_addresses) * 128)
        assert per_byte_lines < per_byte_uncached

"""Unit tests for repro.texture.image."""

import numpy as np
import pytest

from repro.texture.image import (
    TEXEL_NBYTES,
    TextureImage,
    TextureSet,
    is_power_of_two,
    log2_int,
)


class TestPowerOfTwoHelpers:
    def test_powers_of_two(self):
        for exponent in range(16):
            assert is_power_of_two(1 << exponent)

    def test_non_powers(self):
        for value in (0, -1, -2, 3, 5, 6, 7, 9, 12, 100):
            assert not is_power_of_two(value)

    def test_log2_int(self):
        assert log2_int(1) == 0
        assert log2_int(2) == 1
        assert log2_int(1024) == 10

    def test_log2_int_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_int(12)

    def test_log2_int_rejects_zero(self):
        with pytest.raises(ValueError):
            log2_int(0)


class TestTextureImage:
    def test_basic_construction(self):
        texels = np.zeros((16, 32, 4), dtype=np.uint8)
        image = TextureImage(texels, name="t")
        assert image.width == 32
        assert image.height == 16
        assert image.nbytes == 32 * 16 * TEXEL_NBYTES

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            TextureImage(np.zeros((10, 16, 4), dtype=np.uint8))

    def test_rejects_wrong_channels(self):
        with pytest.raises(ValueError):
            TextureImage(np.zeros((16, 16, 3), dtype=np.uint8))

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError):
            TextureImage(np.zeros((16, 16, 4), dtype=np.float32))

    def test_from_rgb_adds_alpha(self):
        rgb = np.full((8, 8, 3), 7, dtype=np.uint8)
        image = TextureImage.from_rgb(rgb)
        assert image.texels.shape == (8, 8, 4)
        assert (image.texels[..., 3] == 255).all()
        assert (image.texels[..., :3] == 7).all()

    def test_from_rgb_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            TextureImage.from_rgb(np.zeros((8, 8, 4), dtype=np.uint8))

    def test_solid(self):
        image = TextureImage.solid(4, 8, rgba=(1, 2, 3, 4))
        assert image.width == 4
        assert image.height == 8
        assert (image.texels == np.array([1, 2, 3, 4], dtype=np.uint8)).all()

    def test_texel_nbytes_is_paper_value(self):
        # Section 4.1: "we allocate 32 bits per texel".
        assert TEXEL_NBYTES == 4


class TestTextureSet:
    def test_ids_are_sequential(self):
        textures = TextureSet()
        a = textures.add(TextureImage.solid(4, 4))
        b = textures.add(TextureImage.solid(8, 8))
        assert (a, b) == (0, 1)
        assert len(textures) == 2
        assert textures[1].width == 8

    def test_total_nbytes(self):
        textures = TextureSet()
        textures.add(TextureImage.solid(4, 4))
        textures.add(TextureImage.solid(8, 8))
        assert textures.total_nbytes == (16 + 64) * 4

    def test_iteration_order(self):
        textures = TextureSet()
        textures.add(TextureImage.solid(4, 4, name="a"))
        textures.add(TextureImage.solid(4, 4, name="b"))
        assert [t.name for t in textures] == ["a", "b"]

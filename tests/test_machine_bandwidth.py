"""Unit tests for the machine model and bandwidth accounting (paper
Section 7)."""

import pytest

from repro.core.bandwidth import (
    GBYTE,
    MBYTE,
    cached_bandwidth,
    mbytes_per_second,
    reduction_factor,
    uncached_bandwidth,
)
from repro.core.machine import PAPER_MACHINE, MachineModel


class TestMachineModel:
    def test_peak_fragment_rate_is_50M(self):
        # Section 7.1.1: 100 MHz, 4 texels/cycle, 8 texels/fragment.
        assert PAPER_MACHINE.peak_fragments_per_second == 50e6

    def test_single_port_limits_to_12_5M(self):
        machine = MachineModel(texels_per_cycle=1)
        assert machine.peak_fragments_per_second == 12.5e6

    def test_line_fill_latency_roughly_fifty_cycles(self):
        # Section 7.1.1: "roughly fifty 10ns cycles for a 128 byte
        # cache line".
        assert PAPER_MACHINE.miss_latency_cycles(128) == 50.0

    def test_latency_hidden_sustains_peak(self):
        rate = PAPER_MACHINE.fragments_per_second(0.05, 128, latency_hidden=True)
        assert rate == PAPER_MACHINE.peak_fragments_per_second

    def test_unhidden_latency_degrades_rate(self):
        rate = PAPER_MACHINE.fragments_per_second(0.05, 128, latency_hidden=False)
        assert rate < PAPER_MACHINE.peak_fragments_per_second
        # miss_rate=0: back to the port-limited peak.
        ideal = PAPER_MACHINE.fragments_per_second(0.0, 128, latency_hidden=False)
        assert ideal == PAPER_MACHINE.peak_fragments_per_second

    def test_degradation_monotonic_in_miss_rate(self):
        rates = [PAPER_MACHINE.fragments_per_second(m, 128, latency_hidden=False)
                 for m in (0.0, 0.01, 0.05, 0.2)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_frame_texels(self):
        assert PAPER_MACHINE.frame_texels(1000) == 8000


class TestBandwidth:
    def test_uncached_is_paper_1_5_gbytes(self):
        # Section 7.2: 4 bytes/texel * 8 texels/fragment * 50M/s.
        assert uncached_bandwidth() == 1.6e9
        assert uncached_bandwidth() / GBYTE == pytest.approx(1.49, abs=0.01)

    def test_table_7_1_town_32k_32b(self):
        # Table 7.1: Town, 32KB/32B/2-way, miss rate 0.81% -> 99 MB/s.
        bandwidth = cached_bandwidth(0.0081, 32)
        assert mbytes_per_second(bandwidth) == pytest.approx(99, abs=1.0)

    def test_table_7_1_flight_4k_128b(self):
        # Table 7.1: Flight, 4KB/128B, miss rate 1.25% -> 610 MB/s.
        bandwidth = cached_bandwidth(0.0125, 128)
        assert mbytes_per_second(bandwidth) == pytest.approx(610, abs=2.0)

    def test_reduction_factor_three_to_fifteen(self):
        # Section 7.2's headline range for 32 KB caches: the measured
        # 32KB miss rates (Table 7.1) imply 3-15x less bandwidth.
        low = reduction_factor(0.0087, 128)   # Flight 32KB/128B, worst
        high = reduction_factor(0.0081, 32)   # Town 32KB/32B, best
        assert 3 < low < high < 16

    def test_zero_miss_rate_infinite_reduction(self):
        assert reduction_factor(0.0, 128) == float("inf")

    def test_rejects_bad_miss_rate(self):
        with pytest.raises(ValueError):
            cached_bandwidth(1.5, 32)

    def test_units(self):
        assert MBYTE == 2**20
        assert GBYTE == 2**30
        assert mbytes_per_second(2**20) == 1.0

"""Fragment-accurate slicing and block streaming of texel traces.

Covers the quad-structure fragment accounting (``count_fragments``,
``fragment_starts``, the ``TexelTrace.slice`` n_fragments fix),
``iter_blocks``/``concat_blocks`` round trips, and the chunked
``TraceWriter``/``TraceReader`` persistence format.
"""

import numpy as np
import pytest

from repro.engine.spec import paper_order_spec
from repro.pipeline.renderer import render_trace
from repro.pipeline.trace import (
    concat_blocks,
    count_fragments,
    fragment_starts,
    iter_blocks,
)
from repro.pipeline.traceio import TraceReader, TraceWriter
from repro.raster.order import make_order
from repro.scenes import make_scene

TRACE_COLUMNS = ("texture_id", "level", "tu", "tv", "tu_raw", "tv_raw", "kind")


@pytest.fixture(scope="module")
def rendered():
    scene = make_scene("town").build(scale=0.05)
    order = make_order(paper_order_spec("town")[0])
    return render_trace(scene, order=order)


def fragment_index(kind):
    """Oracle: the owning-fragment index of every access, derived from
    the quad structure independent of the slicing code under test."""
    starts = fragment_starts(kind)
    return np.searchsorted(starts, np.arange(len(kind)), side="right") - 1


def assert_traces_equal(a, b):
    assert a.n_accesses == b.n_accesses
    assert a.n_fragments == b.n_fragments
    for column in TRACE_COLUMNS:
        assert np.array_equal(getattr(a, column), getattr(b, column))
    assert a.has_positions == b.has_positions


class TestFragmentCounting:
    def test_full_range_matches_render_count(self, rendered):
        trace = rendered.trace
        assert count_fragments(trace.kind) == trace.n_fragments
        assert len(fragment_starts(trace.kind)) == trace.n_fragments

    def test_slice_counts_covered_fragments(self, rendered):
        """Regression: ``slice()`` used to report the whole frame's
        fragment count on every sub-trace; it must count exactly the
        fragments with at least one access inside the slice."""
        trace = rendered.trace
        owners = fragment_index(trace.kind)
        rng = np.random.default_rng(7)
        cuts = rng.integers(0, trace.n_accesses + 1, size=(40, 2))
        for start, stop in np.sort(cuts, axis=1):
            piece = trace.slice(int(start), int(stop))
            expected = len(np.unique(owners[start:stop]))
            assert piece.n_fragments == expected
            assert piece.n_accesses == stop - start

    def test_boundary_aligned_slices_partition_the_count(self, rendered):
        trace = rendered.trace
        starts = fragment_starts(trace.kind)
        bounds = [0, int(starts[len(starts) // 3]),
                  int(starts[2 * len(starts) // 3]), trace.n_accesses]
        total = sum(trace.slice(a, b).n_fragments
                    for a, b in zip(bounds[:-1], bounds[1:]))
        assert total == trace.n_fragments

    def test_empty_slice(self, rendered):
        assert rendered.trace.slice(8, 8).n_fragments == 0


class TestBlockStreaming:
    @pytest.mark.parametrize("chunk_size", [64, 1000, 10**9])
    def test_concat_inverts_iter(self, rendered, chunk_size):
        trace = rendered.trace
        blocks = list(iter_blocks(trace, chunk_size))
        assert [b.index for b in blocks] == list(range(len(blocks)))
        assert all(b.n_accesses <= max(chunk_size, 8) for b in blocks)
        assert sum(b.n_fragments for b in blocks) == trace.n_fragments
        assert_traces_equal(concat_blocks(blocks), trace)

    def test_blocks_cut_at_fragment_boundaries(self, rendered):
        trace = rendered.trace
        owners = fragment_index(trace.kind)
        begin = 0
        for block in iter_blocks(trace, 128):
            end = begin + block.n_accesses
            if end < trace.n_accesses:
                assert owners[end - 1] != owners[end]
            begin = end

    def test_rejects_nonpositive_chunk(self, rendered):
        with pytest.raises(ValueError):
            next(iter_blocks(rendered.trace, 0))

    def test_empty_concat(self):
        assert concat_blocks([]).n_accesses == 0


class TestTraceWriterReader:
    def test_round_trip(self, rendered, tmp_path):
        trace = rendered.trace
        prefix = str(tmp_path / "frame")
        with TraceWriter(prefix) as writer:
            for block in iter_blocks(trace, 500):
                writer.append(block)
        reader = TraceReader(prefix)
        assert reader.n_accesses == trace.n_accesses
        assert reader.n_fragments == trace.n_fragments
        assert_traces_equal(reader.read_all(), trace)
        rebuilt = concat_blocks(reader)
        assert_traces_equal(rebuilt, trace)

    def test_part_corruption_detected(self, rendered, tmp_path):
        prefix = str(tmp_path / "frame")
        with TraceWriter(prefix) as writer:
            for block in iter_blocks(rendered.trace, 500):
                writer.append(block)
        reader = TraceReader(prefix)
        victim = reader.part_path(1)
        payload = bytearray(open(victim, "rb").read())
        payload[len(payload) // 2] ^= 0xFF
        with open(victim, "wb") as handle:
            handle.write(payload)
        with pytest.raises(ValueError):
            reader.read_part(1)
        # Unverified reads are the caller's own risk but must not lie
        # about which part they came from.
        assert TraceReader(prefix, verify=False).read_part(0).index == 0

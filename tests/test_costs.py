"""Unit tests for the Table 2.1 cost model (repro.pipeline.costs)."""

from repro.pipeline.costs import (
    BILINEAR_INTERPOLATION,
    LEVEL_OF_DETAIL,
    MODULATION,
    NEAREST_UVD,
    OpCounts,
    PHASE_TABLE,
    RASTER_AND_SHADING,
    TRIANGLE_SETUP,
    TRILINEAR_INTERPOLATION,
    addressing_ops,
    fragment_cost,
    frame_cost,
)
from repro.texture.layout import BlockedLayout, NonblockedLayout

import pytest


class TestTable21Values:
    def test_triangle_setup(self):
        assert TRIANGLE_SETUP.adds == 89
        assert TRIANGLE_SETUP.multiplies == 64
        assert TRIANGLE_SETUP.divides == 1

    def test_rasterization(self):
        assert RASTER_AND_SHADING.adds == 11
        assert RASTER_AND_SHADING.multiplies == 1

    def test_level_of_detail(self):
        assert LEVEL_OF_DETAIL.adds == 9
        assert LEVEL_OF_DETAIL.multiplies == 9

    def test_trilinear(self):
        assert TRILINEAR_INTERPOLATION.adds == 56
        assert TRILINEAR_INTERPOLATION.shifts == 28
        assert TRILINEAR_INTERPOLATION.memory_accesses == 8

    def test_bilinear(self):
        assert BILINEAR_INTERPOLATION.adds == 24
        assert BILINEAR_INTERPOLATION.shifts == 12
        assert BILINEAR_INTERPOLATION.memory_accesses == 4

    def test_modulation(self):
        assert MODULATION.adds == 8
        assert MODULATION.multiplies == 4

    def test_nearest(self):
        assert NEAREST_UVD.adds == 14

    def test_phase_table_complete(self):
        assert len(PHASE_TABLE) == 8


class TestOpCounts:
    def test_add(self):
        total = OpCounts(adds=1, shifts=2) + OpCounts(adds=3, multiplies=4)
        assert total.adds == 4
        assert total.shifts == 2
        assert total.multiplies == 4

    def test_mul(self):
        scaled = OpCounts(adds=2, memory_accesses=1) * 8
        assert scaled.adds == 16
        assert scaled.memory_accesses == 8
        assert (3 * OpCounts(adds=1)).adds == 3

    def test_total_ops(self):
        assert OpCounts(adds=1, shifts=2, multiplies=3, divides=4).total_ops == 10


class TestFragmentCost:
    def test_trilinear_memory_accesses(self):
        assert fragment_cost(interpolation="trilinear").memory_accesses == 8
        assert fragment_cost(interpolation="bilinear").memory_accesses == 4

    def test_layout_addressing_included(self):
        base = fragment_cost(NonblockedLayout())
        blocked = fragment_cost(BlockedLayout(8))
        # Two extra adds per texel, eight texels per fragment.
        assert blocked.adds - base.adds == 16

    def test_addressing_ops_scaling(self):
        ops = addressing_ops(NonblockedLayout(), "trilinear")
        assert ops.adds == 16  # 2 adds x 8 texels
        assert addressing_ops(NonblockedLayout(), "bilinear").adds == 8

    def test_invalid_interpolation(self):
        with pytest.raises(ValueError):
            fragment_cost(interpolation="nearest")

    def test_frame_cost_combines(self):
        total = frame_cost(n_triangles=10, n_fragments=100)
        assert total.divides == 10  # one per triangle setup
        assert total.memory_accesses == 800

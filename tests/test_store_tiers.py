"""Tests for the tiered read-through store.

Covers T0 (the byte-bounded in-process LRU and the verify-once digest
cache): LRU eviction under byte pressure, stat revalidation so on-disk
tampering is never masked by a process-level hit, and hash-at-most-once
loads.  Covers T2 (``REPRO_STORE_REMOTE``): zero-render read-through
into a cold local store, local quarantine + recompute on remote
corruption, degradation when the remote root is unreachable, and
concurrent read-throughs deduplicating into one verified local copy.
"""

import threading

import numpy as np
import pytest

from repro.engine import (
    ArtifactStore,
    Engine,
    TraceSpec,
    addresses_payload,
    fingerprint,
    profile_payload,
    render_calls,
    tiers,
)
from tests import fault_injection as faults

SPEC = TraceSpec(scene="goblet", scale=0.1, order=("horizontal",))
LAYOUT = ("blocked", 4)
ADDR_PAYLOAD = addresses_payload(SPEC, LAYOUT)
PROFILE_32 = profile_payload(ADDR_PAYLOAD, 32)


@pytest.fixture(autouse=True)
def _fresh_process_caches():
    """Each test starts with empty process tiers (counters persist;
    tests assert on deltas, never absolutes)."""
    tiers.clear_process_caches()
    yield
    tiers.clear_process_caches()


def warm_store(root):
    store = ArtifactStore(root)
    engine = Engine(store=store)
    streams = engine.streams(SPEC, LAYOUT)
    streams.profile(32)
    streams.profile(64)
    streams.set_profile(32, 8)
    return store, engine


def quarantine_reasons(store, kind):
    directory = store.root / "quarantine" / kind
    if not directory.is_dir():
        return ""
    return "\n".join(f.read_text()
                     for f in directory.glob("*.reason.json"))


class TestMemoryTier:
    def _anchor(self, tmp_path, name):
        path = tmp_path / name
        path.write_bytes(b"x")
        return path

    def test_lru_eviction_under_byte_pressure(self, tmp_path):
        tier = tiers.MemoryTier(max_bytes=100)
        for index in range(3):
            tier.put(("k", index), self._anchor(tmp_path, f"a{index}"),
                     f"value-{index}", 40)
        # 3 x 40 bytes > 100: the least-recently-used entry is gone.
        assert tier.get(("k", 0)) is tiers.MISS
        assert tier.get(("k", 1)) == "value-1"
        assert tier.get(("k", 2)) == "value-2"
        stats = tier.stats()
        assert stats["bytes"] <= stats["max_bytes"]
        assert stats["evictions"] == 1

    def test_get_refreshes_lru_order(self, tmp_path):
        tier = tiers.MemoryTier(max_bytes=100)
        tier.put(("k", 0), self._anchor(tmp_path, "a0"), "value-0", 40)
        tier.put(("k", 1), self._anchor(tmp_path, "a1"), "value-1", 40)
        assert tier.get(("k", 0)) == "value-0"  # 0 is now most recent
        tier.put(("k", 2), self._anchor(tmp_path, "a2"), "value-2", 40)
        assert tier.get(("k", 1)) is tiers.MISS
        assert tier.get(("k", 0)) == "value-0"

    def test_oversized_value_is_not_cached(self, tmp_path):
        tier = tiers.MemoryTier(max_bytes=100)
        tier.put(("k", "big"), self._anchor(tmp_path, "big"), "v", 101)
        assert tier.get(("k", "big")) is tiers.MISS
        assert tier.stats()["entries"] == 0

    def test_stat_revalidation_drops_rewritten_anchor(self, tmp_path):
        tier = tiers.MemoryTier(max_bytes=100)
        anchor = self._anchor(tmp_path, "a")
        tier.put(("k",), anchor, "cached", 10)
        assert tier.get(("k",)) == "cached"
        anchor.write_bytes(b"different length")  # size change
        assert tier.get(("k",)) is tiers.MISS
        assert tier.stats()["entries"] == 0


class TestT0Integration:
    def test_warm_load_serves_the_cached_object(self, tmp_path):
        warm_store(tmp_path)
        first = ArtifactStore(tmp_path).load_profile(PROFILE_32)
        second = ArtifactStore(tmp_path).load_profile(PROFILE_32)
        # T0 is process-wide: distinct store instances over the same
        # root share one deserialized artifact, no disk read.
        assert first is second

    def test_disabled_via_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_MEMORY", "0")
        warm_store(tmp_path)
        assert not tiers.memory_tier().enabled
        first = ArtifactStore(tmp_path).load_profile(PROFILE_32)
        second = ArtifactStore(tmp_path).load_profile(PROFILE_32)
        assert first is not second
        np.testing.assert_array_equal(first.counts, second.counts)

    def test_byte_budget_bounds_resident_set(self, tmp_path, monkeypatch):
        store, _ = warm_store(tmp_path)
        reference = ArtifactStore(tmp_path).load_profile(PROFILE_32)
        budget = reference.counts.nbytes + 64  # exactly one profile
        monkeypatch.setenv("REPRO_STORE_MEMORY_BYTES", str(budget))
        tiers.clear_process_caches()

        fresh = ArtifactStore(tmp_path)
        fresh.load_profile(PROFILE_32)
        fresh.load_profile(profile_payload(ADDR_PAYLOAD, 64))
        stats = tiers.memory_tier().stats()
        assert stats["max_bytes"] == budget
        assert stats["bytes"] <= budget
        assert stats["entries"] <= 1

    def test_tampering_not_masked_by_warm_t0(self, tmp_path):
        """The dangerous case: the SAME store instance that populated
        T0 must still see on-disk bit rot."""
        store, engine = warm_store(tmp_path)
        reference = ArtifactStore(tmp_path).load_profile(PROFILE_32)
        digest = fingerprint(PROFILE_32)
        victim = store.root / "profiles" / (digest + ".npz")
        faults.flip_bit(victim)

        assert store.load_profile(PROFILE_32) is None
        assert "mismatch" in quarantine_reasons(store, "profiles")
        recomputed = engine.streams(SPEC, LAYOUT).profile(32)
        np.testing.assert_array_equal(recomputed.counts, reference.counts)

    def test_restamped_truncation_not_masked(self, tmp_path):
        """truncate + restamp defeats the digest check on purpose; the
        decode layer must still quarantine, not serve a stale T0 hit."""
        store, _ = warm_store(tmp_path)
        digest = fingerprint(PROFILE_32)
        victim = store.root / "profiles" / (digest + ".npz")
        faults.truncate(victim)
        faults.restamp(store, "profiles", digest, ".npz")

        assert ArtifactStore(tmp_path).load_profile(PROFILE_32) is None
        assert "undecodable" in quarantine_reasons(store, "profiles")


class TestDigestCache:
    def test_verified_loads_hash_at_most_once(self, tmp_path, monkeypatch):
        # Disable T0 so every load goes through envelope verification.
        monkeypatch.setenv("REPRO_STORE_MEMORY", "0")
        warm_store(tmp_path)
        tiers.clear_process_caches()

        cache = tiers.digest_cache()
        before = cache.stats()
        assert ArtifactStore(tmp_path).load_profile(PROFILE_32) is not None
        after_first = cache.stats()
        hashed = after_first["misses"] - before["misses"]
        assert hashed >= 1  # payload actually hashed once

        for _ in range(3):
            assert ArtifactStore(tmp_path).load_profile(PROFILE_32) \
                is not None
        after = cache.stats()
        assert after["misses"] == after_first["misses"]  # never re-hashed
        assert after["hits"] > after_first["hits"]

    def test_publish_seeds_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_MEMORY", "0")
        warm_store(tmp_path)  # publish records digests as a side effect
        cache = tiers.digest_cache()
        before = cache.stats()
        assert ArtifactStore(tmp_path).load_profile(PROFILE_32) is not None
        after = cache.stats()
        # The very first verified load costs a stat, not a hash.
        assert after["misses"] == before["misses"]

    def test_verify_always_bypasses_the_cache(self, tmp_path, monkeypatch):
        warm_store(tmp_path)
        monkeypatch.setenv("REPRO_STORE_MEMORY", "0")
        monkeypatch.setenv("REPRO_STORE_VERIFY", "always")
        tiers.clear_process_caches()
        cache = tiers.digest_cache()
        before = cache.stats()
        for _ in range(2):
            assert ArtifactStore(tmp_path).load_profile(PROFILE_32) \
                is not None
        after = cache.stats()
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]


class TestRemoteTier:
    @pytest.fixture()
    def remote_root(self, tmp_path, monkeypatch):
        remote = tmp_path / "remote"
        remote.mkdir()
        monkeypatch.setenv("REPRO_STORE_REMOTE", str(remote))
        return remote

    def test_read_through_renders_nothing(self, tmp_path, remote_root):
        _, engine = warm_store(tmp_path / "origin")
        reference = engine.streams(SPEC, LAYOUT).profile(32)
        assert (remote_root / "profiles").is_dir()  # publish happened
        tiers.clear_process_caches()

        cold_root = tmp_path / "cold"
        before = render_calls()
        fetched = Engine(store=ArtifactStore(cold_root)) \
            .streams(SPEC, LAYOUT).profile(32)
        assert render_calls() == before  # zero renders: T2 served it
        np.testing.assert_array_equal(fetched.counts, reference.counts)
        # Write-back: the cold store now holds its own verified copy.
        report = ArtifactStore(cold_root).verify()
        assert report["clean"] and report["ok"] >= 1

    def test_remote_corruption_quarantines_locally(self, tmp_path,
                                                   remote_root):
        _, engine = warm_store(tmp_path / "origin")
        reference = engine.streams(SPEC, LAYOUT).profile(32)
        tiers.clear_process_caches()
        digest = fingerprint(PROFILE_32)
        faults.flip_bit(remote_root / "profiles" / (digest + ".npz"))

        cold = ArtifactStore(tmp_path / "cold")
        assert cold.load_profile(PROFILE_32) is None
        assert "mismatch" in quarantine_reasons(cold, "profiles")
        # ... and the engine transparently falls back to recompute.
        recomputed = Engine(store=cold).streams(SPEC, LAYOUT).profile(32)
        np.testing.assert_array_equal(recomputed.counts, reference.counts)

    def test_unreachable_remote_degrades_to_recompute(self, tmp_path,
                                                      monkeypatch):
        # A path *under a file* cannot be mkdir'd into existence by a
        # publish, unlike a merely missing directory: a dead mount.
        blocker = tmp_path / "blocker"
        blocker.write_bytes(b"")
        monkeypatch.setenv("REPRO_STORE_REMOTE",
                           str(blocker / "no-such-mount"))
        store, engine = warm_store(tmp_path / "local")
        assert engine.streams(SPEC, LAYOUT).profile(32) is not None
        remote = store.stats()["remote"]
        assert remote["configured"] and not remote["reachable"]

    def test_concurrent_read_throughs_dedup(self, tmp_path, remote_root):
        warm_store(tmp_path / "origin")
        tiers.clear_process_caches()
        cold_root = tmp_path / "cold"
        results, errors = [], []

        def fetch():
            try:
                results.append(
                    ArtifactStore(cold_root).load_profile(PROFILE_32))
            except Exception as fault:  # pragma: no cover
                errors.append(fault)

        threads = [threading.Thread(target=fetch) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(result is not None for result in results)
        for result in results[1:]:
            np.testing.assert_array_equal(result.counts,
                                          results[0].counts)
        digest = fingerprint(PROFILE_32)
        # One verified local copy, no .tmp litter left behind.
        assert (cold_root / "profiles" / (digest + ".npz")).is_file()
        report = ArtifactStore(cold_root).verify()
        assert report["clean"] and report["tmp"] == 0

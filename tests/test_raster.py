"""Unit tests for the triangle rasterizer (repro.raster.triangle)."""

import numpy as np
import pytest

from repro.raster.triangle import rasterize_triangle


def raster(screen, width=64, height=64, inv_w=None, uv=None, z=None,
           texture_size=(64, 64), colors=None):
    screen = np.asarray(screen, dtype=float)
    if inv_w is None:
        inv_w = np.ones(3)
    if uv is None:
        uv = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    if z is None:
        z = np.zeros(3)
    return rasterize_triangle(screen, np.asarray(z, float), np.asarray(inv_w, float),
                              np.asarray(uv, float), texture_size, width, height,
                              colors=colors)


class TestCoverage:
    def test_axis_aligned_right_triangle(self):
        batch = raster([[0, 0], [8, 0], [0, 8]])
        # Pixel centers strictly inside the triangle: (x+0.5) + (y+0.5) < 8.
        expected = sum(1 for x in range(8) for y in range(8) if x + y + 1 < 8)
        assert batch.n_fragments == expected

    def test_winding_independent(self):
        ccw = raster([[0, 0], [8, 0], [0, 8]])
        cw = raster([[0, 0], [0, 8], [8, 0]])
        assert ccw.n_fragments == cw.n_fragments
        assert set(zip(ccw.x.tolist(), ccw.y.tolist())) == \
               set(zip(cw.x.tolist(), cw.y.tolist()))

    def test_shared_edge_no_overlap_no_hole(self):
        # A quad split along the diagonal: every covered pixel exactly once.
        corners = [[2.3, 1.7], [50.2, 3.1], [48.9, 55.5], [1.2, 52.8]]
        t1 = raster([corners[0], corners[1], corners[2]])
        t2 = raster([corners[0], corners[2], corners[3]])
        pixels1 = set(zip(t1.x.tolist(), t1.y.tolist()))
        pixels2 = set(zip(t2.x.tolist(), t2.y.tolist()))
        assert not pixels1 & pixels2
        # The union matches rasterizing with reversed diagonal too.
        t3 = raster([corners[0], corners[1], corners[3]])
        t4 = raster([corners[1], corners[2], corners[3]])
        pixels_other = set(zip(t3.x.tolist(), t3.y.tolist())) | \
            set(zip(t4.x.tolist(), t4.y.tolist()))
        assert (pixels1 | pixels2) == pixels_other

    def test_degenerate_returns_none(self):
        assert raster([[0, 0], [8, 8], [16, 16]]) is None

    def test_offscreen_returns_none(self):
        assert raster([[-20, -20], [-10, -20], [-20, -10]]) is None

    def test_scissor_clamps_to_screen(self):
        batch = raster([[-10, -10], [100, -10], [-10, 100]], width=32, height=32)
        assert batch.x.min() >= 0
        assert batch.y.min() >= 0
        assert batch.x.max() <= 31
        assert batch.y.max() <= 31


class TestInterpolation:
    def test_affine_uv_interpolation(self):
        batch = raster([[0, 0], [64, 0], [0, 64]])
        # With unit inv_w, u must equal x/64 at pixel centers.
        assert np.allclose(batch.u, (batch.x + 0.5) / 64.0, atol=1e-12)
        assert np.allclose(batch.v, (batch.y + 0.5) / 64.0, atol=1e-12)

    def test_perspective_correct_uv(self):
        # Vertex 1 twice as far (w=2 -> inv_w=0.5): at the screen-space
        # midpoint of the edge, u is NOT 0.5 but 1/3 (projective).
        batch = raster(
            [[0, 0], [64, 0], [0, 64]],
            inv_w=[1.0, 0.5, 1.0],
            uv=np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]),
        )
        row0 = batch.y == 0
        xs = batch.x[row0]
        us = batch.u[row0]
        mid = np.argmin(np.abs(xs - 32))
        expected = (32.5 / 64 * 0.5) / (1.0 - 32.5 / 64 * 0.5)
        assert us[mid] == pytest.approx(expected, abs=0.01)

    def test_depth_linear_in_screen_space(self):
        batch = raster([[0, 0], [64, 0], [0, 64]], z=[0.0, 1.0, 0.0])
        assert np.allclose(batch.z, (batch.x + 0.5) / 64.0, atol=1e-12)

    def test_color_interpolation(self):
        colors = np.array([[1.0, 0, 0], [0, 1.0, 0], [0, 0, 1.0]])
        batch = raster([[0, 0], [64, 0], [0, 64]], colors=colors)
        assert batch.color is not None
        assert np.allclose(batch.color.sum(axis=1), 1.0, atol=1e-9)

    def test_no_color_when_absent(self):
        assert raster([[0, 0], [8, 0], [0, 8]]).color is None


class TestLevelOfDetail:
    def test_screen_aligned_unit_mapping(self):
        # 64-texel texture across 64 pixels: one texel per pixel -> lod 0.
        batch = raster([[0, 0], [64, 0], [0, 64]], texture_size=(64, 64))
        assert np.allclose(batch.lod, 0.0, atol=1e-9)

    def test_minification_positive_lod(self):
        # 128 texels across 64 pixels: lod = 1.
        batch = raster([[0, 0], [64, 0], [0, 64]], texture_size=(128, 128))
        assert np.allclose(batch.lod, 1.0, atol=1e-9)

    def test_magnification_negative_lod(self):
        batch = raster([[0, 0], [64, 0], [0, 64]], texture_size=(16, 16))
        assert np.allclose(batch.lod, -2.0, atol=1e-9)

    def test_anisotropy_takes_max(self):
        # u spans 2 texture copies, v spans one half: rho_x dominates.
        uv = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 0.5]])
        batch = raster([[0, 0], [64, 0], [0, 64]], uv=uv, texture_size=(64, 64))
        assert np.allclose(batch.lod, 1.0, atol=1e-9)

    def test_perspective_lod_varies(self):
        batch = raster([[0, 0], [64, 0], [0, 64]], inv_w=[1.0, 0.2, 1.0])
        assert batch.lod.max() - batch.lod.min() > 0.5


class TestReordered:
    def test_permutation_applies_to_all_fields(self):
        batch = raster([[0, 0], [8, 0], [0, 8]])
        order = np.argsort(-batch.x, kind="stable")
        flipped = batch.reordered(order)
        assert flipped.x.tolist() == batch.x[order].tolist()
        assert flipped.u.tolist() == batch.u[order].tolist()
        assert flipped.n_fragments == batch.n_fragments

"""Unit tests for traversal orders (repro.raster.order)."""

import numpy as np
import pytest

from repro.raster.order import (
    HilbertOrder,
    HorizontalOrder,
    TiledOrder,
    VerticalOrder,
    make_order,
    _hilbert_d,
)


@pytest.fixture
def grid16():
    ys, xs = np.mgrid[0:16, 0:16]
    return xs.ravel(), ys.ravel()


def shuffled(x, y, seed=0):
    rng = np.random.default_rng(seed)
    perm = rng.permutation(len(x))
    return x[perm], y[perm]


class TestHorizontalVertical:
    def test_horizontal_row_major(self, grid16):
        x, y = shuffled(*grid16)
        order = HorizontalOrder().argsort(x, y)
        xs, ys = x[order], y[order]
        assert (np.diff(ys) >= 0).all()
        rows = ys * 16 + xs
        assert (np.diff(rows) > 0).all()

    def test_vertical_column_major(self, grid16):
        x, y = shuffled(*grid16)
        order = VerticalOrder().argsort(x, y)
        xs, ys = x[order], y[order]
        cols = xs * 16 + ys
        assert (np.diff(cols) > 0).all()

    def test_orders_are_permutations(self, grid16):
        x, y = grid16
        for order_obj in (HorizontalOrder(), VerticalOrder(),
                          TiledOrder(4), HilbertOrder(4)):
            perm = order_obj.argsort(x, y)
            assert sorted(perm.tolist()) == list(range(len(x)))


class TestTiled:
    def test_tiles_visited_contiguously(self, grid16):
        x, y = shuffled(*grid16)
        order = TiledOrder(tile_w=4, tile_h=4).argsort(x, y)
        tiles = (y[order] // 4) * 4 + (x[order] // 4)
        # Each tile id appears as one contiguous run.
        changes = np.count_nonzero(np.diff(tiles) != 0)
        assert changes == 15  # 16 tiles -> 15 transitions

    def test_row_major_within_tile(self, grid16):
        x, y = shuffled(*grid16)
        order = TiledOrder(tile_w=8, tile_h=8, within="row").argsort(x, y)
        xs, ys = x[order], y[order]
        first_tile = slice(0, 64)
        rows = ys[first_tile] * 8 + xs[first_tile]
        assert (np.diff(rows) > 0).all()

    def test_col_major_within_tile(self, grid16):
        x, y = shuffled(*grid16)
        order = TiledOrder(tile_w=8, tile_h=8, within="col").argsort(x, y)
        xs, ys = x[order], y[order]
        cols = xs[:64] * 8 + ys[:64]
        assert (np.diff(cols) > 0).all()

    def test_across_column_major(self, grid16):
        x, y = shuffled(*grid16)
        order = TiledOrder(tile_w=4, tile_h=4, across="col").argsort(x, y)
        tile_x = x[order] // 4
        tile_y = y[order] // 4
        tile_cols = tile_x * 4 + tile_y
        assert (np.diff(tile_cols) >= 0).all()

    def test_rectangular_tiles(self, grid16):
        x, y = grid16
        order = TiledOrder(tile_w=8, tile_h=2).argsort(x, y)
        tiles = (y[order] // 2) * 2 + (x[order] // 8)
        assert np.count_nonzero(np.diff(tiles) != 0) == 15

    def test_validation(self):
        with pytest.raises(ValueError):
            TiledOrder(0)
        with pytest.raises(ValueError):
            TiledOrder(8, within="diagonal")

    def test_name(self):
        assert TiledOrder(8).name == "tiled8x8"
        assert "col" in TiledOrder(8, within="col", across="col").name


class TestHilbert:
    def test_curve_is_bijective(self):
        ys, xs = np.mgrid[0:8, 0:8]
        d = _hilbert_d(3, xs.ravel(), ys.ravel())
        assert sorted(d.tolist()) == list(range(64))

    def test_curve_is_continuous(self):
        # Consecutive curve positions are 4-neighbors.
        ys, xs = np.mgrid[0:16, 0:16]
        x, y = xs.ravel(), ys.ravel()
        order = HilbertOrder(4).argsort(x, y)
        dx = np.abs(np.diff(x[order]))
        dy = np.abs(np.diff(y[order]))
        assert ((dx + dy) == 1).all()

    def test_rejects_oversized_screen(self):
        x = np.array([40])
        y = np.array([0])
        with pytest.raises(ValueError):
            HilbertOrder(5).argsort(x, y)
        HilbertOrder(6).argsort(x, y)  # fits

    def test_validation(self):
        with pytest.raises(ValueError):
            HilbertOrder(0)


class TestMakeOrder:
    def test_dispatch(self):
        assert isinstance(make_order("horizontal"), HorizontalOrder)
        assert isinstance(make_order("vertical"), VerticalOrder)
        assert make_order("tiled", tile_w=16).tile_w == 16
        assert isinstance(make_order("hilbert"), HilbertOrder)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_order("boustrophedon")

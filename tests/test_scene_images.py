"""Structural image checks for the benchmark scenes.

These are loose "does the picture look like the scene" guards --
dominant palettes, object placement -- not pixel-exact goldens, so they
survive numerical noise while catching gross regressions (flipped
textures, broken z-buffer, wrong cameras).
"""

import numpy as np
import pytest

from repro.pipeline.renderer import Renderer
from repro.scenes import FlightScene, GobletScene, GuitarScene, TownScene

SCALE = 0.15


@pytest.fixture(scope="module")
def frames():
    out = {}
    for cls in (GobletScene, GuitarScene, TownScene, FlightScene):
        scene = cls().build(scale=SCALE)
        out[scene.name] = Renderer(produce_image=True).render(scene)
    return out


def region(frame, y0, y1, x0, x1):
    pixels = frame.framebuffer.pixels
    height, width = pixels.shape[:2]
    return pixels[int(y0 * height):int(y1 * height),
                  int(x0 * width):int(x1 * width)].astype(float)


class TestGobletImage:
    def test_marble_goblet_centered(self, frames):
        center = region(frames["goblet"], 0.35, 0.65, 0.4, 0.6)
        # Marble is bright and near-grey.
        assert center.mean() > 110
        assert abs(center[..., 0].mean() - center[..., 2].mean()) < 25

    def test_dark_background_corners(self, frames):
        corner = region(frames["goblet"], 0.0, 0.1, 0.0, 0.1)
        assert corner.mean() < 80


class TestGuitarImage:
    def test_wood_table_edges(self, frames):
        edge = region(frames["guitar"], 0.0, 0.08, 0.0, 0.08)
        # Wood: red clearly above blue.
        assert edge[..., 0].mean() > edge[..., 2].mean() + 40

    def test_frame_fully_covered(self, frames):
        pixels = frames["guitar"].framebuffer.pixels.astype(float)
        background = np.array([30, 30, 40], dtype=float)
        distance = np.abs(pixels - background).sum(axis=2)
        assert (distance < 10).mean() < 0.02  # almost no background


class TestTownImage:
    def test_sky_on_top(self, frames):
        sky = region(frames["town"], 0.0, 0.05, 0.45, 0.55)
        assert sky.mean() < 80

    def test_road_at_bottom_grey(self, frames):
        road = region(frames["town"], 0.9, 1.0, 0.4, 0.6)
        spread = road.mean(axis=(0, 1)).max() - road.mean(axis=(0, 1)).min()
        assert spread < 20  # grey: channels close together

    def test_facades_brick_toned(self, frames):
        facade = region(frames["town"], 0.3, 0.5, 0.05, 0.25)
        assert facade[..., 0].mean() > facade[..., 2].mean()


class TestFlightImage:
    def test_terrain_fills_lower_half(self, frames):
        terrain = region(frames["flight"], 0.6, 1.0, 0.2, 0.8)
        background = np.array([30, 30, 40], dtype=float)
        distance = np.abs(terrain - background).sum(axis=2)
        assert (distance > 30).mean() > 0.95

    def test_vegetation_green_dominant(self, frames):
        terrain = region(frames["flight"], 0.7, 1.0, 0.3, 0.7)
        assert terrain[..., 1].mean() > terrain[..., 2].mean()

    def test_sky_above_horizon(self, frames):
        sky = region(frames["flight"], 0.0, 0.05, 0.3, 0.7)
        assert sky.mean() < 80


class TestDeterminism:
    def test_identical_rerenders(self, frames):
        scene = GobletScene().build(scale=SCALE)
        again = Renderer(produce_image=True).render(scene)
        assert again.framebuffer.checksum() == \
            frames["goblet"].framebuffer.checksum()

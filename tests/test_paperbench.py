"""Tests for the benchmark-harness infrastructure (benchmarks/paperbench)."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from paperbench import (  # noqa: E402
    SceneBank,
    kb,
    layout_from_spec,
    order_from_spec,
    scaled_cache,
)


class TestScaledCache:
    def test_identity_at_scale_one(self, monkeypatch):
        import paperbench
        monkeypatch.setattr(paperbench, "SCALE", 1.0)
        assert paperbench.scaled_cache(32 * 1024) == 32 * 1024

    def test_quarter_scale(self, monkeypatch):
        import paperbench
        monkeypatch.setattr(paperbench, "SCALE", 0.25)
        assert paperbench.scaled_cache(32 * 1024) == 8 * 1024
        assert paperbench.scaled_cache(4 * 1024) == 1024

    def test_floor(self, monkeypatch):
        import paperbench
        monkeypatch.setattr(paperbench, "SCALE", 0.1)
        assert paperbench.scaled_cache(1024) == 512

    def test_power_of_two(self):
        for paper in (1024, 4096, 32768, 131072):
            size = scaled_cache(paper)
            assert size & (size - 1) == 0


class TestSpecs:
    def test_order_specs(self):
        assert order_from_spec(("horizontal",)).name == "horizontal"
        assert order_from_spec(("tiled", 16)).tile_w == 16
        tiled = order_from_spec(("tiled", 8, "col", "col"))
        assert tiled.within == "col"
        assert order_from_spec(("hilbert", 9)).order_bits == 9

    def test_layout_specs(self):
        assert layout_from_spec(("nonblocked",)).name == "nonblocked"
        assert layout_from_spec(("blocked", 4)).block_w == 4
        padded = layout_from_spec(("padded", 8, 2))
        assert padded.pad_blocks == 2
        six = layout_from_spec(("blocked6d", 8, 16384))
        assert six.superblock_nbytes == 16384
        assert layout_from_spec(("williams",)).accesses_per_texel == 3

    def test_kb(self):
        assert kb(8192) == "8KB"
        assert kb(512) == "512B"


class TestSceneBank:
    @pytest.fixture(scope="class")
    def bank(self):
        return SceneBank(scale=0.1)

    def test_scene_memoized(self, bank):
        assert bank.scene("goblet") is bank.scene("goblet")

    def test_render_memoized_per_order(self, bank):
        a = bank.render("goblet", ("horizontal",))
        b = bank.render("goblet", ("horizontal",))
        c = bank.render("goblet", ("vertical",))
        assert a is b
        assert a is not c

    def test_streams_cached(self, bank):
        first = bank.streams("goblet", ("horizontal",), ("blocked", 4))
        second = bank.streams("goblet", ("horizontal",), ("blocked", 4))
        assert first is second

    def test_paper_order_spec(self, bank):
        assert bank.paper_order_spec("town") == ("vertical",)
        assert bank.paper_order_spec("goblet") == ("horizontal",)

    def test_addresses_nonempty(self, bank):
        streams = bank.streams("goblet", ("horizontal",), ("nonblocked",))
        assert streams.stream(32).total_accesses > 0

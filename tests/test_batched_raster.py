"""Golden-equivalence suite for the triangle-batched rasterizer.

``Renderer(raster="batched")`` must reproduce the per-triangle
reference path bit-for-bit -- every :class:`TexelTrace` column, the
per-triangle fragment counts and the framebuffer pixels -- on the
paper scenes and across traversal orders and filtering modes.  The
second half unit-tests the vectorized building blocks the batched path
leans on: the grouped traversal sort and its packed radix key,
optional-field reordering, and the flat-probe access generators.
"""

import numpy as np
import pytest

from repro.engine import order_from_spec, paper_order_spec
from repro.pipeline.renderer import RASTER_PATHS, Renderer
from repro.raster.order import (
    HilbertOrder,
    HorizontalOrder,
    TiledOrder,
    VerticalOrder,
    _composite_key,
)
from repro.raster.triangle import FragmentBatch
from repro.scenes import make_scene
from repro.texture.filtering import (
    _generate_accesses_aniso_looped,
    generate_accesses,
    generate_accesses_aniso,
)
from tests.test_renderer import tiny_scene, two_quad_scene

TRACE_FIELDS = ("texture_id", "level", "tu", "tv", "tu_raw", "tv_raw", "kind")
PAPER_SCENES = ("flight", "goblet", "guitar", "town")
SCALE = 0.05


def render_both(scene, order, produce_image=False, max_anisotropy=1,
                use_mipmaps=True):
    """The same render through both raster paths."""
    return [
        Renderer(order=order, produce_image=produce_image,
                 max_anisotropy=max_anisotropy, use_mipmaps=use_mipmaps,
                 raster=raster).render(scene)
        for raster in ("reference", "batched")
    ]


def assert_equivalent(reference, batched, image=False):
    for name in TRACE_FIELDS:
        assert np.array_equal(getattr(reference.trace, name),
                              getattr(batched.trace, name)), name
    assert reference.trace.n_fragments == batched.trace.n_fragments
    assert reference.n_fragments == batched.n_fragments
    assert np.array_equal(reference.per_triangle_fragments,
                          batched.per_triangle_fragments)
    if image:
        assert np.array_equal(reference.framebuffer.pixels,
                              batched.framebuffer.pixels)


class TestPaperScenes:
    """Bit-identical traces on the four benchmark scenes."""

    @pytest.fixture(scope="class", params=PAPER_SCENES)
    def named_scene(self, request):
        return request.param, make_scene(request.param).build(scale=SCALE)

    def test_paper_order_trace(self, named_scene):
        name, scene = named_scene
        order = order_from_spec(paper_order_spec(name))
        reference, batched = render_both(scene, order)
        assert_equivalent(reference, batched)
        assert batched.n_fragments > 0

    def test_framebuffer(self, named_scene):
        name, scene = named_scene
        order = order_from_spec(paper_order_spec(name))
        reference, batched = render_both(scene, order, produce_image=True)
        assert_equivalent(reference, batched, image=True)


class TestOrdersAndModes:
    """Equivalence across traversal orders and filtering modes."""

    @pytest.fixture(scope="class")
    def scene(self):
        return tiny_scene()

    @pytest.mark.parametrize("order", [
        HorizontalOrder(),
        VerticalOrder(),
        TiledOrder(8),
        TiledOrder(4, within="col", across="col"),
        HilbertOrder(7),
    ], ids=lambda order: order.name)
    def test_orders(self, scene, order):
        reference, batched = render_both(scene, order)
        assert_equivalent(reference, batched)

    def test_anisotropic(self, scene):
        reference, batched = render_both(scene, HorizontalOrder(),
                                         max_anisotropy=4)
        assert_equivalent(reference, batched)

    def test_no_mipmaps(self, scene):
        reference, batched = render_both(scene, HorizontalOrder(),
                                         use_mipmaps=False)
        assert_equivalent(reference, batched)

    def test_zbuffer_resolve(self):
        # Two overlapping quads: the depth test and winner selection
        # must agree, not just the access stream.
        reference, batched = render_both(two_quad_scene(), VerticalOrder(),
                                         produce_image=True)
        assert_equivalent(reference, batched, image=True)

    def test_phase_timers_populated(self, scene):
        result = Renderer(order=HorizontalOrder(), produce_image=False,
                          raster="batched").render(scene)
        assert set(result.phase_ms) == {"clip", "raster", "access_gen",
                                        "filter"}
        assert result.phase_ms["raster"] > 0.0

    def test_unknown_raster_rejected(self):
        with pytest.raises(ValueError, match="unknown raster path"):
            Renderer(raster="scanline")
        assert set(RASTER_PATHS) == {"batched", "reference"}


def per_group_argsort(order, x, y, group):
    """The scalar-API oracle: argsort each group, concatenate."""
    perm = []
    for g in np.unique(group):
        members = np.flatnonzero(group == g)
        perm.append(members[order.argsort(x[members], y[members])])
    return np.concatenate(perm)


class TestGroupedArgsort:
    @pytest.fixture(scope="class")
    def points(self):
        rng = np.random.default_rng(7)
        n = 600
        return (rng.integers(0, 48, n), rng.integers(0, 48, n),
                rng.integers(0, 13, n))

    @pytest.mark.parametrize("order", [
        HorizontalOrder(),
        VerticalOrder(),
        TiledOrder(8),
        TiledOrder(4, within="col", across="col"),
        HilbertOrder(6),
    ], ids=lambda order: order.name)
    def test_matches_per_group(self, points, order):
        x, y, group = points
        got = order.grouped_argsort(x, y, group)
        assert np.array_equal(got, per_group_argsort(order, x, y, group))

    def test_rowmajor_fast_path(self):
        # Groups interleaved at random, but each group's members arrive
        # row-major -- the precondition the batched rasterizer
        # guarantees and the fast path relies on.
        rng = np.random.default_rng(11)
        per_group = []
        for g in range(5):
            pts = rng.integers(0, 24, (40, 2))
            pts = pts[np.lexsort((pts[:, 0], pts[:, 1]))]
            per_group.append(pts)
        taken = [0] * 5
        rows = []
        for g in rng.permutation(np.repeat(np.arange(5), 40)):
            rows.append((g, *per_group[g][taken[g]]))
            taken[g] += 1
        group, x, y = map(np.array, zip(*rows))

        horizontal = HorizontalOrder()
        fast = horizontal.grouped_argsort(x, y, group, within_rowmajor=True)
        assert np.array_equal(fast, per_group_argsort(horizontal, x, y, group))
        # Non-row-major orders must ignore the hint and sort for real.
        vertical = VerticalOrder()
        keyed = vertical.grouped_argsort(x, y, group, within_rowmajor=True)
        assert np.array_equal(keyed, per_group_argsort(vertical, x, y, group))


class TestCompositeKey:
    def test_argsort_equals_lexsort(self):
        rng = np.random.default_rng(3)
        keys = tuple(rng.integers(-50, 2000, 800) for _ in range(3))
        packed = _composite_key(keys)
        assert packed is not None
        assert np.array_equal(np.argsort(packed, kind="stable"),
                              np.lexsort(keys))

    def test_small_range_packs_to_int32(self):
        keys = (np.arange(100), np.arange(100) % 7)
        assert _composite_key(keys).dtype == np.int32

    def test_wide_range_stays_int64(self):
        keys = (np.array([0, 1 << 20]), np.array([0, 1 << 20]))
        packed = _composite_key(keys)
        assert packed.dtype == np.int64
        assert np.array_equal(np.argsort(packed, kind="stable"),
                              np.lexsort(keys))

    def test_float_keys_fall_back(self):
        assert _composite_key((np.array([0.5, 1.5]),)) is None

    def test_overflow_falls_back(self):
        huge = np.array([0, 1 << 32])
        assert _composite_key((huge, huge)) is None

    def test_empty_keys_fall_back(self):
        assert _composite_key((np.array([], dtype=np.int64),)) is None


class TestFragmentBatchReordered:
    def test_optional_none_stays_none(self):
        n = 5
        batch = FragmentBatch(x=np.arange(n), y=np.arange(n),
                              z=np.arange(n, dtype=float),
                              u=np.arange(n, dtype=float),
                              v=np.arange(n, dtype=float),
                              lod=np.zeros(n))
        flipped = batch.reordered(np.arange(n)[::-1])
        assert flipped.color is None and flipped.dudx is None
        assert flipped.dvdx is None and flipped.dudy is None
        assert flipped.dvdy is None
        assert np.array_equal(flipped.x, np.arange(n)[::-1])

    def test_present_fields_permute(self):
        n = 4
        perm = np.array([2, 0, 3, 1])
        batch = FragmentBatch(x=np.arange(n), y=np.arange(n),
                              z=np.arange(n, dtype=float),
                              u=np.arange(n, dtype=float),
                              v=np.arange(n, dtype=float),
                              lod=np.zeros(n),
                              color=np.arange(n, dtype=float),
                              dudx=np.arange(n, dtype=float) + 10)
        flipped = batch.reordered(perm)
        assert np.array_equal(flipped.color, perm.astype(float))
        assert np.array_equal(flipped.dudx, perm.astype(float) + 10)
        assert flipped.dudy is None


def assert_accesses_equal(a, b):
    for name in ("level", "tu", "tv", "tu_raw", "tv_raw", "kind",
                 "fragment_index"):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name


class TestAccessGenerators:
    def test_aniso_flat_matches_looped_oracle(self):
        rng = np.random.default_rng(5)
        n = 300
        u, v = rng.random(n), rng.random(n)
        dudx, dvdx = rng.normal(0, 6, n), rng.normal(0, 6, n)
        dudy, dvdy = rng.normal(0, 6, n), rng.normal(0, 6, n)
        flat = generate_accesses_aniso(u, v, dudx, dvdx, dudy, dvdy,
                                       7, 64, 64, max_aniso=4)
        looped = _generate_accesses_aniso_looped(u, v, dudx, dvdx, dudy, dvdy,
                                                 7, 64, 64, max_aniso=4)
        assert_accesses_equal(flat, looped)

    def test_scalar_and_array_geometry_agree(self):
        # The batched renderer streams all textures at once, passing the
        # pyramid geometry as per-fragment arrays; the result must match
        # the scalar (single-texture) call fragment for fragment.
        rng = np.random.default_rng(9)
        n = 400
        u, v = rng.random(n) * 3 - 1, rng.random(n) * 3 - 1
        lod = rng.uniform(-1, 6, n)
        scalar = generate_accesses(u, v, lod, 7, 64, 32)
        arrays = generate_accesses(
            u, v, lod, np.full(n, 7), np.full(n, 64), np.full(n, 32))
        assert_accesses_equal(scalar, arrays)

"""Tests for the anisotropic filtering extension."""

import numpy as np
import pytest

from repro.pipeline.renderer import Renderer
from repro.texture.filtering import (
    KIND_LOWER,
    generate_accesses,
    generate_accesses_aniso,
)
from tests.test_renderer import tiny_scene


def aniso(u, v, dudx, dvdx, dudy, dvdy, max_aniso=4, n_levels=7, size=64):
    return generate_accesses_aniso(
        np.asarray(u, float), np.asarray(v, float),
        np.asarray(dudx, float), np.asarray(dvdx, float),
        np.asarray(dudy, float), np.asarray(dvdy, float),
        n_levels, size, size, max_aniso=max_aniso,
    )


class TestGenerateAccessesAniso:
    def test_isotropic_footprint_single_probe(self):
        # Square footprint (rho_x == rho_y): one trilinear probe at the
        # same lod as the isotropic path.
        accesses = aniso([0.5], [0.5], [4.0], [0.0], [0.0], [4.0])
        reference = generate_accesses(np.array([0.5]), np.array([0.5]),
                                      np.array([2.0]), 7, 64, 64)
        assert accesses.n_accesses == 8
        assert accesses.level.tolist() == reference.level.tolist()

    def test_anisotropic_footprint_multiple_probes(self):
        # 8:1 footprint at max_aniso 4: four probes, 32 accesses.
        accesses = aniso([0.5], [0.5], [8.0], [0.0], [0.0], [1.0])
        assert accesses.n_accesses == 4 * 8
        assert (accesses.fragment_index == 0).all()

    def test_probe_count_clamped(self):
        two = aniso([0.5], [0.5], [8.0], [0.0], [0.0], [1.0], max_aniso=2)
        assert two.n_accesses == 2 * 8

    def test_lod_from_minor_axis(self):
        # rho_max 8, rho_min 2, 4 probes: lod = log2(8/4) = 1 -> levels
        # 1 and 2, sharper than the isotropic log2(8) = 3.
        accesses = aniso([0.5], [0.5], [8.0], [0.0], [0.0], [2.0])
        lower_levels = set(accesses.level[accesses.kind == KIND_LOWER].tolist())
        assert lower_levels == {1}

    def test_probes_spread_along_major_axis(self):
        # Major axis along u: probe tu centers differ, tv stays put.
        accesses = aniso([0.5], [0.5], [16.0], [0.0], [0.0], [1.0])
        lower = accesses.kind == KIND_LOWER
        assert len(set(accesses.tu[lower].tolist())) > 4
        assert len(set(accesses.tv[lower].tolist())) <= 2

    def test_fragment_order_preserved(self):
        accesses = aniso([0.2, 0.8], [0.5, 0.5], [8.0, 2.0], [0.0, 0.0],
                         [0.0, 0.0], [1.0, 2.0])
        fragments = accesses.fragment_index
        assert (np.diff(fragments) >= 0).all()
        assert set(fragments.tolist()) == {0, 1}

    def test_mixed_probe_counts(self):
        accesses = aniso([0.2, 0.8], [0.5, 0.5], [8.0, 2.0], [0.0, 0.0],
                         [0.0, 0.0], [1.0, 2.0], max_aniso=8)
        per_fragment = np.bincount(accesses.fragment_index)
        # Fragment 0: 8 probes whose per-probe lod log2(8/8) = 0 makes
        # each probe bilinear (4 texels).  Fragment 1: one trilinear
        # probe at lod 1.
        assert per_fragment[0] == 8 * 4
        assert per_fragment[1] == 1 * 8


class TestRendererAniso:
    def test_traffic_grows_with_anisotropy(self):
        scene = tiny_scene()
        iso = Renderer(produce_image=False).render(tiny_scene())
        # Tilt is absent in the facing quad, so craft anisotropy via a
        # grazing view.
        from repro.geometry.transform import look_at, perspective
        scene.view = look_at((0.0, -2.6, 0.9), (0.0, 0.0, 0.0))
        scene.projection = perspective(50.0, 1.0, 0.2, 10.0)
        iso_grazing = Renderer(produce_image=False).render(scene)
        aniso_grazing = Renderer(produce_image=False,
                                 max_anisotropy=8).render(scene)
        assert aniso_grazing.n_accesses > 1.5 * iso_grazing.n_accesses
        assert aniso_grazing.n_fragments == iso_grazing.n_fragments
        assert iso.n_fragments > 0

    def test_facing_quad_unaffected(self):
        # No anisotropy on a screen-parallel quad: identical traces.
        iso = Renderer(produce_image=False).render(tiny_scene())
        an = Renderer(produce_image=False, max_anisotropy=8).render(tiny_scene())
        assert an.n_accesses == iso.n_accesses

    def test_sharper_mip_levels_at_grazing(self):
        from repro.geometry.transform import look_at, perspective
        scene = tiny_scene(tex=64)
        scene.view = look_at((0.0, -2.6, 0.9), (0.0, 0.0, 0.0))
        scene.projection = perspective(50.0, 1.0, 0.2, 10.0)
        iso = Renderer(produce_image=False).render(scene)
        an = Renderer(produce_image=False, max_anisotropy=8).render(scene)
        assert an.trace.level.mean() < iso.trace.level.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            Renderer(max_anisotropy=0)


class TestLodBias:
    def test_positive_bias_coarsens_levels(self):
        from repro.scenes import GobletScene
        scene = GobletScene().build(scale=0.1)
        base = Renderer(produce_image=False).render(scene)
        coarse = Renderer(produce_image=False, lod_bias=1.0).render(scene)
        assert coarse.trace.level.mean() > base.trace.level.mean() + 0.5

    def test_negative_bias_sharpens(self):
        from repro.scenes import FlightScene
        scene = FlightScene().build(scale=0.1)
        base = Renderer(produce_image=False).render(scene)
        sharp = Renderer(produce_image=False, lod_bias=-1.0).render(scene)
        assert sharp.trace.level.mean() < base.trace.level.mean() - 0.5

    def test_bias_reduces_minified_footprint(self):
        from repro.scenes import FlightScene
        from repro.scenes.stats import distinct_texels
        scene = FlightScene().build(scale=0.1)
        base = Renderer(produce_image=False).render(scene)
        coarse = Renderer(produce_image=False, lod_bias=1.0).render(scene)
        assert distinct_texels(coarse.trace) < 0.6 * distinct_texels(base.trace)

    def test_bias_applies_to_aniso_path(self):
        from repro.scenes import FlightScene
        scene = FlightScene().build(scale=0.1)
        base = Renderer(produce_image=False, max_anisotropy=4).render(scene)
        coarse = Renderer(produce_image=False, max_anisotropy=4,
                          lod_bias=1.0).render(scene)
        assert coarse.trace.level.mean() > base.trace.level.mean() + 0.5

"""Shared test wiring: keep the artifact store out of the repo tree.

Every :class:`~repro.engine.Engine` (and therefore every SceneBank and
CLI invocation under test) resolves its default store root through
``REPRO_CACHE_DIR``.  Point it at a session-scoped temporary directory
so tests are hermetic and never touch ``benchmarks/.cache/``.

A plain session fixture (not monkeypatch) because monkeypatch is
function-scoped and the bank fixtures in test_paperbench are not.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_cache_dir(tmp_path_factory):
    if os.environ.get("REPRO_TEST_KEEP_CACHE_DIR"):
        # CI's degraded-mode job points REPRO_CACHE_DIR at a read-only
        # directory on purpose; honour it instead of isolating.
        yield
        return
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous

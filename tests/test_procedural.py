"""Unit tests for repro.texture.procedural."""

import numpy as np
import pytest

from repro.texture.procedural import (
    brick,
    checkerboard,
    fractal_noise,
    gradient,
    make_texture,
    marble,
    satellite,
    wood,
)


class TestFractalNoise:
    def test_range(self):
        noise = fractal_noise(32, 16, seed=1)
        assert noise.shape == (16, 32)
        assert noise.min() >= 0.0
        assert noise.max() <= 1.0

    def test_deterministic(self):
        a = fractal_noise(16, 16, seed=7)
        b = fractal_noise(16, 16, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self):
        a = fractal_noise(16, 16, seed=1)
        b = fractal_noise(16, 16, seed=2)
        assert not np.array_equal(a, b)


class TestGenerators:
    @pytest.mark.parametrize("generator", [satellite, brick, wood, marble])
    def test_shape_and_dtype(self, generator):
        image = generator(32, 16, seed=0)
        assert image.texels.shape == (16, 32, 4)
        assert image.texels.dtype == np.uint8

    @pytest.mark.parametrize("generator", [satellite, brick, wood, marble])
    def test_deterministic(self, generator):
        a = generator(16, 16, seed=3)
        b = generator(16, 16, seed=3)
        assert np.array_equal(a.texels, b.texels)

    def test_checkerboard_pattern(self):
        image = checkerboard(8, 8, squares=2, color_a=(255, 255, 255),
                             color_b=(0, 0, 0))
        # Top-left square is color_a, adjacent square color_b.
        assert (image.texels[0, 0, :3] == 255).all()
        assert (image.texels[0, 4, :3] == 0).all()
        assert (image.texels[4, 0, :3] == 0).all()
        assert (image.texels[4, 4, :3] == 255).all()

    def test_gradient_orientation(self):
        image = gradient(16, 16)
        assert image.texels[0, 0, 0] < image.texels[0, 15, 0]
        assert image.texels[0, 0, 1] < image.texels[15, 0, 1]

    def test_make_texture_dispatch(self):
        image = make_texture("wood", 16, 16, seed=1)
        assert image.width == 16

    def test_make_texture_unknown(self):
        with pytest.raises(ValueError):
            make_texture("granite", 16, 16)

    def test_make_texture_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            make_texture("wood", 15, 16)

    def test_brick_has_mortar_lines(self):
        image = brick(64, 64, seed=0)
        # Mortar rows are brighter than brick interior on average.
        row_means = image.texels[..., 0].astype(float).mean(axis=1)
        assert row_means.max() - row_means.min() > 20

"""Unit tests for the banked-cache model (paper Section 7.1.2)."""

import numpy as np
import pytest

from repro.core.banking import (
    N_BANKS,
    analyze_banking,
    linear_bank,
    morton_bank,
    quad_is_conflict_free,
)
from repro.pipeline.trace import TraceBuilder
from repro.texture.filtering import generate_accesses


def trilinear_trace(us, vs, lods, n_levels=7, width=64, height=64):
    builder = TraceBuilder()
    accesses = generate_accesses(np.asarray(us, float), np.asarray(vs, float),
                                 np.asarray(lods, float), n_levels, width, height)
    builder.append(0, accesses, len(us))
    return builder.build()


class TestMortonBank:
    def test_four_banks(self):
        assert N_BANKS == 4
        tu, tv = np.mgrid[0:8, 0:8]
        banks = morton_bank(tu.ravel(), tv.ravel())
        assert set(banks.tolist()) == {0, 1, 2, 3}

    def test_any_2x2_quad_conflict_free(self):
        # The paper's claim: EVERY axis-aligned 2x2 footprint, aligned
        # or straddling block boundaries, touches four distinct banks.
        for base_u in range(5):
            for base_v in range(5):
                tu = np.array([base_u, base_u + 1, base_u, base_u + 1])
                tv = np.array([base_v, base_v, base_v + 1, base_v + 1])
                assert quad_is_conflict_free(tu, tv), (base_u, base_v)

    def test_same_row_pairs_conflict(self):
        # Four texels in one row only cover two banks.
        tu = np.array([0, 1, 2, 3])
        tv = np.zeros(4, dtype=int)
        assert not quad_is_conflict_free(tu, tv)


class TestLinearBank:
    def test_vertical_neighbors_conflict(self):
        # Row-major interleaving with a width that is a multiple of the
        # bank count puts vertically adjacent texels in the same bank.
        tu = np.array([5, 5])
        tv = np.array([3, 4])
        banks = linear_bank(tu, tv, np.array([64, 64]))
        assert banks[0] == banks[1]

    def test_horizontal_neighbors_differ(self):
        banks = linear_bank(np.array([4, 5]), np.array([0, 0]), np.array([64, 64]))
        assert banks[0] != banks[1]


class TestAnalyzeBanking:
    def test_trilinear_quads_are_conflict_free_morton(self):
        trace = trilinear_trace([0.3, 0.61, 0.25], [0.4, 0.37, 0.8],
                                [1.5, 2.3, 0.7])
        stats = analyze_banking(trace, "morton")
        assert stats.n_quads == 6  # three fragments x two quads
        assert stats.conflict_free_fraction == 1.0
        assert stats.mean_cycles_per_quad == 1.0

    def test_bilinear_quads_also_conflict_free(self):
        trace = trilinear_trace([0.3, 0.6], [0.4, 0.2], [-0.5, -1.0])
        stats = analyze_banking(trace, "morton")
        assert stats.n_quads == 2
        assert stats.conflict_free_fraction == 1.0

    def test_linear_scheme_conflicts(self):
        trace = trilinear_trace([0.3, 0.61, 0.25, 0.77], [0.4, 0.37, 0.8, 0.1],
                                [1.5, 2.3, 0.7, 3.1])
        stats = analyze_banking(trace, "linear", level0_width=64)
        assert stats.conflict_free_fraction < 1.0
        assert stats.mean_cycles_per_quad > 1.0

    def test_linear_needs_width(self):
        trace = trilinear_trace([0.5], [0.5], [1.0])
        with pytest.raises(ValueError):
            analyze_banking(trace, "linear")

    def test_unknown_scheme(self):
        trace = trilinear_trace([0.5], [0.5], [1.0])
        with pytest.raises(ValueError):
            analyze_banking(trace, "xor")

    def test_empty_trace(self):
        stats = analyze_banking(TraceBuilder().build(), "morton")
        assert stats.n_quads == 0
        assert stats.conflict_free_fraction == 1.0


class TestBankingThroughput:
    def test_conflict_free_reaches_machine_peak(self):
        from repro.core.banking import BankingStats, fragments_per_second
        from repro.core.machine import PAPER_MACHINE
        perfect = BankingStats(n_quads=100, conflict_free_quads=100,
                               total_extra_cycles=0)
        assert fragments_per_second(perfect, PAPER_MACHINE) == \
            PAPER_MACHINE.peak_fragments_per_second

    def test_serialized_quads_halve_throughput(self):
        from repro.core.banking import BankingStats, fragments_per_second
        from repro.core.machine import PAPER_MACHINE
        # Every quad needs two cycles (pairwise bank sharing).
        conflicted = BankingStats(n_quads=100, conflict_free_quads=0,
                                  total_extra_cycles=100)
        assert fragments_per_second(conflicted, PAPER_MACHINE) == \
            PAPER_MACHINE.peak_fragments_per_second / 2

    def test_real_trace_morton_sustains_peak(self):
        from repro.core.banking import analyze_banking, fragments_per_second
        from repro.core.machine import PAPER_MACHINE
        trace = trilinear_trace([0.31, 0.62, 0.13, 0.87], [0.44, 0.21, 0.7, 0.1],
                                [1.4, 2.2, 0.8, 3.0])
        stats = analyze_banking(trace, "morton")
        assert fragments_per_second(stats, PAPER_MACHINE) == \
            PAPER_MACHINE.peak_fragments_per_second

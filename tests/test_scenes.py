"""Tests for the benchmark scenes (repro.scenes)."""

import numpy as np
import pytest

from repro.pipeline.renderer import render_trace
from repro.scenes import (
    ALL_SCENES,
    FlightScene,
    GobletScene,
    GuitarScene,
    TownScene,
    make_scene,
)
from repro.scenes.base import scaled_count, scaled_pow2
from repro.scenes.stats import characterize, distinct_texels, texture_used_nbytes

SCALE = 0.125


@pytest.fixture(scope="module")
def built():
    scenes = {}
    for name, cls in ALL_SCENES.items():
        scene = cls().build(scale=SCALE)
        scenes[name] = (scene, render_trace(scene))
    return scenes


class TestScaleHelpers:
    def test_scaled_pow2(self):
        assert scaled_pow2(512, 1.0) == 512
        assert scaled_pow2(512, 0.5) == 256
        assert scaled_pow2(512, 0.25) == 128
        assert scaled_pow2(16, 0.1, minimum=8) == 8

    def test_scaled_pow2_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            scaled_pow2(100, 0.5)

    def test_scaled_count(self):
        assert scaled_count(60, 0.5) == 30
        assert scaled_count(3, 0.01, minimum=2) == 2


class TestRegistry:
    def test_make_scene(self):
        assert isinstance(make_scene("goblet"), GobletScene)
        assert isinstance(make_scene("flight", seed=9), FlightScene)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_scene("teapot")

    def test_paper_rasterization_directions(self):
        # Section 5.2.3: worst-case vertical for Town, horizontal else.
        assert TownScene.paper_rasterization == "vertical"
        assert FlightScene.paper_rasterization == "horizontal"
        assert GuitarScene.paper_rasterization == "horizontal"
        assert GobletScene.paper_rasterization == "horizontal"


class TestSceneConstruction:
    def test_all_scenes_render(self, built):
        for name, (scene, result) in built.items():
            assert result.n_fragments > 500, name
            assert result.n_accesses > 2000, name

    def test_texture_counts_match_paper(self, built):
        expected = {"flight": 15, "town": 51, "guitar": 8, "goblet": 1}
        for name, (scene, _) in built.items():
            assert scene.n_textures == expected[name]

    def test_frame_aspect_ratios(self, built):
        for name, (scene, _) in built.items():
            cls = ALL_SCENES[name]
            paper_aspect = cls.paper_width / cls.paper_height
            assert scene.width / scene.height == pytest.approx(paper_aspect, rel=0.15)

    def test_goblet_has_smallest_triangles(self, built):
        areas = {}
        for name, (scene, result) in built.items():
            areas[name] = result.n_fragments / max(result.n_triangles_rasterized, 1)
        assert areas["goblet"] < areas["town"]
        assert areas["goblet"] < areas["guitar"]
        assert areas["flight"] < areas["guitar"]

    def test_deterministic(self):
        a = GobletScene().build(scale=SCALE)
        b = GobletScene().build(scale=SCALE)
        assert np.array_equal(a.mesh.positions, b.mesh.positions)
        assert np.array_equal(a.textures[0].texels, b.textures[0].texels)

    def test_flight_uses_every_texture(self, built):
        scene, result = built["flight"]
        assert len(np.unique(result.trace.texture_id)) >= 10

    def test_flight_lod_variation(self, built):
        # "Large variations in level-of-detail" -- many levels touched.
        _, result = built["flight"]
        assert len(np.unique(result.trace.level)) >= 5


class TestCharacterize:
    def test_table_4_1_shape(self, built):
        scene, result = built["goblet"]
        row = characterize(scene, result)
        assert row.name == "goblet"
        assert row.n_textures == 1
        assert 0.0 < row.texture_used_fraction <= 1.0
        assert row.pixels_textured_millions > 0
        assert len(row.row()) == 11

    def test_used_less_than_storage(self, built):
        for name, (scene, result) in built.items():
            used = texture_used_nbytes(result.trace)
            assert 0 < used <= scene.texture_storage_nbytes

    def test_distinct_texels_counts(self):
        from repro.pipeline.trace import TraceBuilder
        from repro.texture.filtering import generate_accesses
        builder = TraceBuilder()
        accesses = generate_accesses(np.array([0.5, 0.5]), np.array([0.5, 0.5]),
                                     np.array([1.5, 1.5]), 5, 16, 16)
        builder.append(0, accesses, 2)
        trace = builder.build()
        # Identical fragments touch identical texels.
        assert distinct_texels(trace) == 8

"""Unit tests for the prefetch/latency-hiding model (paper Section
7.1.1)."""

import numpy as np
import pytest

from repro.core.cache import CacheConfig
from repro.core.machine import MachineModel
from repro.core.prefetch import (
    PrefetchPipeline,
    fragment_miss_counts,
    sweep_fifo_depths,
)

MACHINE = MachineModel()


class TestFragmentMissCounts:
    def test_streaming_pattern(self):
        # 8 accesses/fragment over fresh 4-byte texels: one 32-byte
        # line miss per fragment.
        addresses = np.arange(0, 512 * 8 * 4, 4)
        counts = fragment_miss_counts(addresses, CacheConfig(1024, 32), 8)
        assert counts.sum() == len(addresses) * 4 // 32
        assert counts.max() <= 8

    def test_all_hits_after_warmup(self):
        addresses = np.tile(np.arange(0, 64, 4), 16)
        counts = fragment_miss_counts(addresses, CacheConfig(1024, 32), 8)
        # 16 accesses span two 32-byte lines: one cold miss in each of
        # the first two fragments, hits everywhere after.
        assert counts[0] == 1
        assert counts[1] == 1
        assert counts[2:].sum() == 0

    def test_trailing_partial_fragment_dropped(self):
        addresses = np.arange(0, 10 * 4, 4)  # 10 accesses, 8/fragment
        counts = fragment_miss_counts(addresses, CacheConfig(1024, 32), 8)
        assert len(counts) == 1


class TestPrefetchPipeline:
    def test_no_misses_runs_at_peak(self):
        counts = np.zeros(1000, dtype=np.int64)
        result = PrefetchPipeline(MACHINE, fifo_depth=16).run(counts, 128)
        assert result.efficiency == pytest.approx(1.0)
        assert result.fragments_per_second == pytest.approx(
            MACHINE.peak_fragments_per_second)

    def test_no_prefetch_exposes_latency(self):
        counts = np.ones(1000, dtype=np.int64)
        blocking = PrefetchPipeline(MACHINE, fifo_depth=0).run(counts, 128)
        # Every fragment waits the full 50-cycle fill: efficiency is
        # roughly consume / (consume + latency) = 2 / 52.
        assert blocking.efficiency < 0.08
        assert blocking.stall_cycles > 0

    def test_deep_fifo_hides_latency_when_bandwidth_allows(self):
        # One miss every 16 fragments: memory needs 32 cycles per 16
        # fragments of 2 cycles each -- bandwidth-feasible, so a deep
        # FIFO reaches (near) peak.
        counts = np.zeros(4096, dtype=np.int64)
        counts[::16] = 1
        deep = PrefetchPipeline(MACHINE, fifo_depth=64).run(counts, 128)
        shallow = PrefetchPipeline(MACHINE, fifo_depth=1).run(counts, 128)
        assert deep.efficiency > 0.95
        assert deep.efficiency > shallow.efficiency

    def test_bandwidth_bound_when_missing_every_fragment(self):
        # A miss per fragment: memory serves a 128B line every 32
        # cycles but fragments only need 2 -- memory-bound at ~2/32.
        counts = np.ones(2048, dtype=np.int64)
        result = PrefetchPipeline(MACHINE, fifo_depth=256).run(counts, 128)
        assert result.efficiency == pytest.approx(2 / 32, rel=0.1)

    def test_efficiency_monotonic_in_depth(self):
        rng = np.random.default_rng(3)
        counts = (rng.random(4096) < 0.08).astype(np.int64)
        results = sweep_fifo_depths(counts, 128, [0, 1, 4, 16, 64], MACHINE)
        efficiencies = [results[d].efficiency for d in (0, 1, 4, 16, 64)]
        assert all(a <= b + 1e-9 for a, b in zip(efficiencies, efficiencies[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefetchPipeline(MACHINE, fifo_depth=-1)
        with pytest.raises(ValueError):
            PrefetchPipeline(MACHINE, kernel="magic")


class TestKernelEquivalence:
    """The blocked-scan path must time every stream exactly like the
    per-fragment reference loop (both use integer-valued float64
    cycles for the machine model's parameters)."""

    @pytest.mark.parametrize("seed", range(5))
    def test_randomized_streams(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(0, 400))
        counts = rng.integers(0, 4, size=n).astype(np.int64)
        for depth in (0, 1, 3, 32, 500):
            for line_size in (32, 128):
                fast = PrefetchPipeline(MACHINE, fifo_depth=depth).run(
                    counts, line_size)
                slow = PrefetchPipeline(MACHINE, fifo_depth=depth,
                                        kernel="reference").run(
                    counts, line_size)
                assert fast.total_cycles == slow.total_cycles, depth
                assert fast.stall_cycles == slow.stall_cycles, depth
                assert fast.n_fragments == slow.n_fragments

    def test_depth_zero_backpressure_fallback(self):
        # fill_interval > latency + consume: memory back-pressure can
        # outlive a fragment, the regime where the depth-0 closed form
        # does not apply and the vectorized path defers to the loop.
        machine = MachineModel(miss_setup_cycles=0.0,
                               dram_bytes_per_cycle=0.5)
        counts = np.asarray([2, 2, 0, 1, 2], dtype=np.int64)
        fast = PrefetchPipeline(machine, fifo_depth=0).run(counts, 64)
        slow = PrefetchPipeline(machine, fifo_depth=0,
                                kernel="reference").run(counts, 64)
        assert fast.total_cycles == slow.total_cycles
        assert fast.stall_cycles == slow.stall_cycles

    def test_sweep_threads_kernel(self):
        rng = np.random.default_rng(9)
        counts = (rng.random(600) < 0.1).astype(np.int64)
        fast = sweep_fifo_depths(counts, 128, [0, 2, 8], MACHINE)
        slow = sweep_fifo_depths(counts, 128, [0, 2, 8], MACHINE,
                                 kernel="reference")
        for depth in (0, 2, 8):
            assert fast[depth].total_cycles == slow[depth].total_cycles

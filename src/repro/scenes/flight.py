"""The Flight scene (paper Figure 4.1, Table 4.1).

"Uses several 1024x1024 pixel satellite images as textures and maps
these textures onto a geometric model of the terrain.  An important
characteristic of the Flight scene is that it has large variations in
level-of-detail as a result of the mountainous terrain."

Paper characteristics: 1280x1024 pixels, 9152 triangles of ~294 px
average area, 15 textures totalling 56 MB, no texel repetition (1.0x),
trilinear filtering, horizontal rasterization.
"""

from __future__ import annotations

import numpy as np

from ..geometry.mesh import Mesh, make_grid
from ..geometry.transform import look_at, perspective
from ..texture.image import TextureSet
from ..texture.procedural import fractal_noise, satellite
from .base import Scene, SceneData, scaled_count, scaled_pow2


def _terrain_heights(rows: int, cols: int, amplitude: float, seed: int) -> np.ndarray:
    """Mountainous fractal heights over the full terrain grid."""
    noise = fractal_noise(cols, rows, octaves=5, seed=seed)
    ridges = 1.0 - np.abs(2.0 * noise - 1.0)  # ridge-line sharpening
    return amplitude * (0.35 * noise + 0.65 * ridges**2)


class FlightScene(Scene):
    """A low-altitude flight over mountainous satellite-textured
    terrain, split into patches each mapped to its own texture."""

    name = "flight"
    paper_width = 1280
    paper_height = 1024
    paper_rasterization = "horizontal"

    def __init__(self, seed: int = 1):
        self.seed = seed

    def build(self, scale: float = 0.5, time: float = 0.0) -> SceneData:
        """Build the scene; ``time`` (seconds) flies the camera forward
        across the terrain."""
        width, height = self.frame_size(scale)

        # Paper: 15 textures, mostly 1024x1024 -> 56 MB mip-mapped.
        tex_side = scaled_pow2(1024, scale)
        textures = TextureSet()
        patch_grid = 4  # 4x4 texture patches (one shared), 15 satellite maps
        texture_grid = np.arange(patch_grid * patch_grid) % 15
        for index in range(15):
            textures.add(satellite(tex_side, tex_side, seed=self.seed * 50 + index,
                                   name=f"satellite-{index}"))

        # Terrain: paper has 9152 triangles; a 4x4 grid of patches with
        # n x n quads each gives 2 * 16 * n^2 -> n = 17 at scale 1.
        patch_quads = scaled_count(17, scale, minimum=4)
        cell_size = 1.0
        patch_span = patch_quads * cell_size
        amplitude = 0.22 * patch_span * patch_grid

        rows = cols = patch_grid * patch_quads + 1
        heights = _terrain_heights(rows, cols, amplitude, seed=self.seed)

        meshes = []
        for py in range(patch_grid):
            for px in range(patch_grid):
                r0 = py * patch_quads
                c0 = px * patch_quads
                patch_heights = heights[r0:r0 + patch_quads + 1, c0:c0 + patch_quads + 1]
                texture_id = int(texture_grid[py * patch_grid + px])
                meshes.append(make_grid(
                    patch_heights, cell_size=cell_size, texture_id=texture_id,
                    uv_scale=1.0,
                    origin=(c0 * cell_size, 0.0, r0 * cell_size),
                ))
        mesh = Mesh.concat(meshes)

        # Camera: low over the terrain near one edge, looking across it
        # toward the horizon -- strong level-of-detail variation.
        span = patch_grid * patch_span
        advance = 0.02 * span * time
        eye = (span * 0.5, amplitude * 1.25, span * 0.98 - advance)
        target = (span * 0.5, amplitude * 0.25, span * 0.05 - advance)
        view = look_at(eye=eye, target=target)
        projection = perspective(60.0, width / height, near=0.1 * patch_span,
                                 far=4.0 * span)
        return SceneData(
            name=self.name, width=width, height=height,
            mesh=mesh, textures=textures,
            view=view, projection=projection, scale=scale,
            paper_rasterization=self.paper_rasterization,
        )

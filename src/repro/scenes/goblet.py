"""The Goblet scene (paper Figure 4.4, Table 4.1).

"A single texture wrapped around a goblet ... characterized by its use
of small triangles to make up the curved surface and by the variations
in level-of-detail that occur when the surface becomes 90 degrees to
the viewing angle."

Paper characteristics: 800x800 pixels, 7200 triangles of ~41 px average
area, one texture, 1.4 MB texture storage, trilinear filtering,
horizontal rasterization.
"""

from __future__ import annotations

import numpy as np

from ..geometry.mesh import Mesh
from ..geometry.transform import look_at, perspective
from ..texture.image import TextureSet
from ..texture.procedural import marble
from .base import Scene, SceneData, scaled_count, scaled_pow2


def _goblet_profile(t: np.ndarray) -> np.ndarray:
    """Radius of the goblet surface as a function of height fraction
    ``t`` in [0, 1]: base, stem, then a flaring bowl."""
    radius = np.empty_like(t)
    base = t < 0.12
    stem = (t >= 0.12) & (t < 0.45)
    bowl = t >= 0.45
    radius[base] = 0.50 - 2.8 * t[base]
    radius[stem] = 0.16 + 0.02 * np.sin((t[stem] - 0.12) * 12.0)
    tb = (t[bowl] - 0.45) / 0.55
    radius[bowl] = 0.18 + 0.42 * np.sqrt(tb) * (1.0 - 0.25 * tb)
    return radius


def surface_of_revolution(
    n_around: int, n_rings: int, height: float = 2.0, texture_id: int = 0
) -> Mesh:
    """Revolve the goblet profile around the Y axis.

    ``u`` wraps once around the circumference, ``v`` runs along the
    profile; the closing seam reuses texture coordinates past 1.0
    (GL_REPEAT), giving the paper's slight (~1.1x) texel repetition.
    """
    t = np.linspace(0.0, 1.0, n_rings + 1)
    angles = np.linspace(0.0, 2.0 * np.pi, n_around + 1)

    aa, tt = np.meshgrid(angles, t, indexing="xy")
    rr = _goblet_profile(tt)
    positions = np.stack(
        [rr * np.cos(aa), tt * height, rr * np.sin(aa)], axis=-1
    ).reshape(-1, 3)
    uvs = np.stack([aa / (2.0 * np.pi), tt], axis=-1).reshape(-1, 2)

    cols = n_around + 1
    triangles = []
    for ring in range(n_rings):
        for seg in range(n_around):
            a = ring * cols + seg
            b = a + 1
            c = a + cols
            d = c + 1
            triangles.append((a, b, d))
            triangles.append((a, d, c))
    triangles = np.asarray(triangles, dtype=np.int64)
    texture_ids = np.full(len(triangles), texture_id, dtype=np.int64)
    return Mesh(positions=positions, uvs=uvs, triangles=triangles, texture_ids=texture_ids)


class GobletScene(Scene):
    """Surface-of-revolution goblet with one marble texture."""

    name = "goblet"
    paper_width = 800
    paper_height = 800
    paper_rasterization = "horizontal"

    def __init__(self, seed: int = 4):
        self.seed = seed

    def build(self, scale: float = 0.5, time: float = 0.0) -> SceneData:
        """Build the scene; ``time`` (seconds) orbits the camera a few
        degrees per second for multi-frame studies."""
        width, height = self.frame_size(scale)
        # Paper: 7200 triangles = 2 * 60 * 60 at scale 1.
        n_around = scaled_count(60, scale, minimum=8)
        n_rings = scaled_count(60, scale, minimum=8)
        mesh = surface_of_revolution(n_around, n_rings, texture_id=0)

        # Paper: 1.4 MB mip-mapped storage -> one 512x512 texture.
        tex_side = scaled_pow2(512, scale)
        textures = TextureSet()
        textures.add(marble(tex_side, tex_side, seed=self.seed, name="goblet-marble"))

        angle = np.radians(6.0) * time
        radius = 3.9
        eye = (radius * np.sin(angle), 1.8, radius * np.cos(angle))
        view = look_at(eye=eye, target=(0.0, 0.95, 0.0))
        projection = perspective(45.0, width / height, near=0.5, far=20.0)
        return SceneData(
            name=self.name, width=width, height=height,
            mesh=mesh, textures=textures,
            view=view, projection=projection, scale=scale,
            paper_rasterization=self.paper_rasterization,
        )

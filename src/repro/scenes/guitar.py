"""The Guitar scene (paper Figure 4.3, Table 4.1).

"Another application where textures are mapped onto flat surfaces.  It
differs from the Town scene in that the textures are larger and they do
not appear uniformly oriented in the image of the scene."

Paper characteristics: 800x800 pixels, 719 triangles of ~1867 px
average area (large triangles), 8 textures totalling 4.9 MB, 1.7x
texel repetition, trilinear filtering, horizontal rasterization.
"""

from __future__ import annotations

import numpy as np

from ..geometry.mesh import Mesh, make_quad
from ..geometry.transform import look_at, perspective, rotate_z
from ..texture.image import TextureSet
from ..texture.procedural import marble, wood
from .base import Scene, SceneData, scaled_count, scaled_pow2


def _ellipse_fan(
    center, rx: float, ry: float, n_segments: int, texture_id: int,
    uv_scale: float = 1.0, z: float = 0.0,
) -> Mesh:
    """A filled ellipse in the XY plane as a triangle fan."""
    angles = np.linspace(0.0, 2.0 * np.pi, n_segments + 1)
    ring = np.stack([
        center[0] + rx * np.cos(angles),
        center[1] + ry * np.sin(angles),
        np.full_like(angles, z),
    ], axis=-1)
    positions = np.concatenate([[np.array([center[0], center[1], z])], ring])
    uvs = np.empty((len(positions), 2))
    uvs[:, 0] = (positions[:, 0] - (center[0] - rx)) / (2 * rx) * uv_scale
    uvs[:, 1] = (positions[:, 1] - (center[1] - ry)) / (2 * ry) * uv_scale
    triangles = np.array([
        [0, i + 1, i + 2] for i in range(n_segments)
    ], dtype=np.int64)
    texture_ids = np.full(len(triangles), texture_id, dtype=np.int64)
    return Mesh(positions=positions, uvs=uvs, triangles=triangles, texture_ids=texture_ids)


class GuitarScene(Scene):
    """A guitar of large wood-textured surfaces at mixed orientations,
    lying on a textured tabletop."""

    name = "guitar"
    paper_width = 800
    paper_height = 800
    paper_rasterization = "horizontal"

    def __init__(self, seed: int = 3):
        self.seed = seed

    def build(self, scale: float = 0.5, time: float = 0.0) -> SceneData:
        """Build the scene; ``time`` (seconds) dollies the camera in
        slowly for multi-frame studies."""
        width, height = self.frame_size(scale)

        # Paper: 8 textures totalling 4.9 MB mip-mapped -> mostly
        # 512x512 plus a couple of 512x256.
        tex = scaled_pow2(512, scale)
        half = scaled_pow2(256, scale)
        textures = TextureSet()
        table_id = textures.add(wood(tex, tex, seed=self.seed, name="tabletop"))
        body_id = textures.add(wood(tex, tex, seed=self.seed + 1, name="body"))
        pickguard_id = textures.add(marble(half, half, seed=self.seed + 2, name="pickguard"))
        neck_id = textures.add(wood(half, tex, seed=self.seed + 3, name="neck"))
        head_id = textures.add(wood(half, half, seed=self.seed + 4, name="head"))
        bridge_id = textures.add(marble(half, half, seed=self.seed + 5, name="bridge"))
        cloth_id = textures.add(marble(tex, tex, seed=self.seed + 6, name="cloth"))
        trim_id = textures.add(wood(tex, half, seed=self.seed + 7, name="trim"))

        subdivide = max(scaled_count(6, scale, minimum=1), 1)
        fan_segments = scaled_count(140, scale, minimum=16)
        meshes = []

        # Tabletop fills the frame, texture repeated ~2x: the paper's
        # 1.7x average repetition comes mostly from here.
        meshes.append(make_quad(
            np.array([
                [-6.0, -6.0, -1.0],
                [6.0, -6.0, -1.0],
                [6.0, 6.0, -1.0],
                [-6.0, 6.0, -1.0],
            ]),
            texture_id=table_id, uv_rect=(0.0, 0.0, 2.0, 2.0),
            subdivide=subdivide,
        ))
        # A cloth under the guitar, rotated ~20 degrees.
        cloth = make_quad(
            np.array([
                [-3.4, -3.2, -0.5],
                [3.4, -3.2, -0.5],
                [3.4, 3.2, -0.5],
                [-3.4, 3.2, -0.5],
            ]),
            texture_id=cloth_id, uv_rect=(0.0, 0.0, 1.5, 1.5),
            subdivide=subdivide,
        ).transformed(rotate_z(np.radians(20.0)))
        meshes.append(cloth)

        # Guitar body: two overlapping ellipse fans, rotated ~40 deg.
        tilt = rotate_z(np.radians(-40.0))
        lower_bout = _ellipse_fan((0.0, -1.0), 1.9, 1.6, fan_segments, body_id).transformed(tilt)
        upper_bout = _ellipse_fan((0.0, 0.9), 1.5, 1.25, fan_segments, body_id).transformed(tilt)
        meshes.extend([lower_bout, upper_bout])

        # Pickguard (small rotated quad on the body).
        meshes.append(make_quad(
            np.array([
                [0.3, -1.9, 0.1],
                [1.5, -1.6, 0.1],
                [1.3, -0.2, 0.1],
                [0.1, -0.5, 0.1],
            ]),
            texture_id=pickguard_id, subdivide=max(subdivide // 2, 1),
        ).transformed(tilt))

        # Neck: a long thin quad at yet another angle (~50 degrees).
        neck = make_quad(
            np.array([
                [-0.35, 0.0, 0.1],
                [0.35, 0.0, 0.1],
                [0.28, 4.6, 0.1],
                [-0.28, 4.6, 0.1],
            ]),
            texture_id=neck_id, uv_rect=(0.0, 0.0, 1.0, 3.0),
            subdivide=subdivide,
        ).transformed(rotate_z(np.radians(-40.0)))
        meshes.append(neck.transformed(np.eye(4)))

        # Headstock at the end of the neck.
        head = make_quad(
            np.array([
                [-0.55, 4.6, 0.15],
                [0.55, 4.6, 0.15],
                [0.45, 5.9, 0.15],
                [-0.45, 5.9, 0.15],
            ]),
            texture_id=head_id, subdivide=max(subdivide // 2, 1),
        ).transformed(rotate_z(np.radians(-40.0)))
        meshes.append(head)

        # Bridge and a trim strip, differently oriented again.
        meshes.append(make_quad(
            np.array([
                [-0.8, -2.3, 0.12],
                [0.8, -2.3, 0.12],
                [0.8, -1.8, 0.12],
                [-0.8, -1.8, 0.12],
            ]),
            texture_id=bridge_id, subdivide=max(subdivide // 2, 1),
        ).transformed(tilt))
        meshes.append(make_quad(
            np.array([
                [-5.6, -5.6, -0.8],
                [5.6, -5.6, -0.8],
                [5.6, -4.6, -0.8],
                [-5.6, -4.6, -0.8],
            ]),
            texture_id=trim_id, uv_rect=(0.0, 0.0, 2.0, 1.0),
            subdivide=max(subdivide // 2, 1),
        ).transformed(rotate_z(np.radians(70.0))))

        mesh = Mesh.concat(meshes)
        view = look_at(eye=(0.0, 0.0, 12.0 - 0.4 * time), target=(0.0, 0.0, 0.0))
        projection = perspective(45.0, width / height, near=1.0, far=50.0)
        return SceneData(
            name=self.name, width=width, height=height,
            mesh=mesh, textures=textures,
            view=view, projection=projection, scale=scale,
            paper_rasterization=self.paper_rasterization,
        )

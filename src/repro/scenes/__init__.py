"""The four benchmark scenes (paper Section 4.2, Table 4.1) and scene
characterization."""

from .base import Scene, SceneData, scaled_count, scaled_pow2
from .flight import FlightScene
from .town import TownScene
from .guitar import GuitarScene
from .goblet import GobletScene
from .stats import (
    SceneCharacteristics,
    characterize,
    distinct_texels,
    texture_used_nbytes,
)

#: Scene registry in the paper's Table 4.1 order.
ALL_SCENES = {
    "flight": FlightScene,
    "town": TownScene,
    "guitar": GuitarScene,
    "goblet": GobletScene,
}


def make_scene(name: str, **kwargs) -> Scene:
    """Construct a scene generator by name."""
    try:
        cls = ALL_SCENES[name]
    except KeyError:
        raise ValueError(
            f"unknown scene {name!r}; expected one of {sorted(ALL_SCENES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "Scene",
    "SceneData",
    "scaled_count",
    "scaled_pow2",
    "FlightScene",
    "TownScene",
    "GuitarScene",
    "GobletScene",
    "SceneCharacteristics",
    "characterize",
    "distinct_texels",
    "texture_used_nbytes",
    "ALL_SCENES",
    "make_scene",
]

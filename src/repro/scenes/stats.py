"""Scene characterization (paper Table 4.1).

Re-measures, for any scene, the properties the paper tabulates:
triangle count and average area/width/height in pixels, texture count,
mip-mapped texture storage, the amount and fraction of texture actually
referenced, and the number of textured pixels.  The benchmark harness
uses this to validate that the procedural scenes land near the paper's
published characteristics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.clip import clip_triangles_near
from ..geometry.transform import ndc_to_screen
from ..pipeline.renderer import RenderResult
from ..texture.image import TEXEL_NBYTES
from .base import SceneData


@dataclass
class SceneCharacteristics:
    """Table 4.1's row for one scene."""

    name: str
    width: int
    height: int
    n_triangles: int
    avg_triangle_area: float
    avg_triangle_width: float
    avg_triangle_height: float
    n_textures: int
    texture_storage_mb: float
    texture_used_mb: float
    texture_used_fraction: float
    pixels_textured_millions: float

    def row(self) -> list:
        """Values in Table 4.1's column order."""
        return [
            self.name,
            f"{self.width}x{self.height}",
            self.n_triangles,
            round(self.avg_triangle_area),
            round(self.avg_triangle_width),
            round(self.avg_triangle_height),
            self.n_textures,
            round(self.texture_storage_mb, 2),
            round(self.texture_used_mb, 2),
            f"{100 * self.texture_used_fraction:.0f}%",
            round(self.pixels_textured_millions, 2),
        ]


def distinct_texels(trace) -> int:
    """Number of distinct (texture, level, texel) tuples referenced."""
    if trace.n_accesses == 0:
        return 0
    key = (
        (trace.texture_id.astype(np.int64) * 64 + trace.level) << 40
    ) | (trace.tv.astype(np.int64) << 20) | trace.tu.astype(np.int64)
    return len(np.unique(key))


def texture_used_nbytes(trace) -> int:
    """Bytes of texture data actually referenced by the frame."""
    return distinct_texels(trace) * TEXEL_NBYTES


def _triangle_screen_stats(scene: SceneData) -> tuple:
    """Average on-screen bbox width/height of the scene's triangles."""
    mesh = scene.mesh
    mvp = scene.projection @ scene.view
    homogeneous = np.concatenate([mesh.positions, np.ones((mesh.n_vertices, 1))], axis=1)
    clip_vertices = homogeneous @ mvp.T
    tri_clip = clip_vertices[mesh.triangles]
    dummy_attrs = np.zeros((len(tri_clip), 3, 1))
    clipped = clip_triangles_near(tri_clip, dummy_attrs)
    if clipped.n_triangles == 0:
        return 0.0, 0.0
    screen, _, _ = ndc_to_screen(clipped.clip.reshape(-1, 4), scene.width, scene.height)
    screen = screen.reshape(-1, 3, 2)
    x = np.clip(screen[:, :, 0], 0, scene.width)
    y = np.clip(screen[:, :, 1], 0, scene.height)
    widths = x.max(axis=1) - x.min(axis=1)
    heights = y.max(axis=1) - y.min(axis=1)
    visible = (widths > 0) & (heights > 0)
    if not visible.any():
        return 0.0, 0.0
    return float(widths[visible].mean()), float(heights[visible].mean())


def characterize(scene: SceneData, result: RenderResult) -> SceneCharacteristics:
    """Measure Table 4.1's characteristics from a rendered frame."""
    rasterized = max(result.n_triangles_rasterized, 1)
    avg_area = result.n_fragments / rasterized
    avg_width, avg_height = _triangle_screen_stats(scene)
    storage = scene.texture_storage_nbytes
    used = texture_used_nbytes(result.trace)
    return SceneCharacteristics(
        name=scene.name,
        width=scene.width,
        height=scene.height,
        n_triangles=result.n_triangles_submitted,
        avg_triangle_area=avg_area,
        avg_triangle_width=avg_width,
        avg_triangle_height=avg_height,
        n_textures=scene.n_textures,
        texture_storage_mb=storage / (1 << 20),
        texture_used_mb=used / (1 << 20),
        texture_used_fraction=used / storage if storage else 0.0,
        pixels_textured_millions=result.n_fragments / 1e6,
    )

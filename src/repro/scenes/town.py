"""The Town scene (paper Figure 4.2, Table 4.1).

"Maps many smaller textures onto flat surfaces and these textures
appear upright in the image of the scene."  The upright orientation is
what makes vertical rasterization the worst case for the nonblocked
representation (Section 5.2.3), so the paper reports Town with
*vertical* rasterization.

Paper characteristics: 1280x1024 pixels, 5317 triangles of ~1149 px
average area, 51 textures totalling 4.7 MB, 2.9x average texel
repetition (repeated facade textures), trilinear filtering.
"""

from __future__ import annotations

import numpy as np

from ..geometry.mesh import Mesh, make_quad
from ..geometry.transform import look_at, perspective
from ..texture.image import TextureSet
from ..texture.procedural import brick, checkerboard
from .base import Scene, SceneData, scaled_count, scaled_pow2


class TownScene(Scene):
    """Rows of upright building facades seen from street level."""

    name = "town"
    paper_width = 1280
    paper_height = 1024
    paper_rasterization = "vertical"

    def __init__(self, seed: int = 2):
        self.seed = seed

    def build(self, scale: float = 0.5, time: float = 0.0) -> SceneData:
        """Build the scene; ``time`` (seconds) walks the camera down
        the street at ~1.5 world units per second."""
        width, height = self.frame_size(scale)
        rng = np.random.default_rng(self.seed)

        # Paper: 51 textures averaging ~92 KB mip-mapped -> 128x128.
        tex_side = scaled_pow2(128, scale)
        textures = TextureSet()
        n_facade_textures = 50
        for index in range(n_facade_textures):
            textures.add(brick(tex_side, tex_side, seed=self.seed * 100 + index,
                               name=f"facade-{index}"))
        road_side = scaled_pow2(256, scale)
        road_id = textures.add(checkerboard(road_side, road_side, squares=4,
                                            color_a=(90, 90, 95), color_b=(70, 70, 75),
                                            name="road"))

        # Buildings on both sides of a street receding in depth.  Each
        # facade faces the camera (normal along +Z), so with an
        # unrolled camera its texture appears upright on screen.
        meshes = []
        # Minimum 2: facades must stay smaller than Guitar's surfaces
        # (Table 4.1's size ordering) even at tiny reproduction scales.
        subdivide = scaled_count(4, scale, minimum=2)
        n_rows = 11
        buildings_per_row = 8
        for row in range(n_rows):
            depth = -14.0 - row * 7.0
            for slot in range(buildings_per_row):
                side = -1.0 if slot % 2 == 0 else 1.0
                lane = slot // 2
                x_center = side * (7.0 + lane * 9.0 + rng.uniform(-1.5, 1.5))
                width_w = rng.uniform(5.0, 9.0)
                height_w = rng.uniform(7.0, 16.0)
                x0 = x_center - width_w / 2.0
                x1 = x_center + width_w / 2.0
                z = depth + rng.uniform(-2.0, 2.0)
                corners = np.array([
                    [x0, 0.0, z],
                    [x1, 0.0, z],
                    [x1, height_w, z],
                    [x0, height_w, z],
                ])
                # Brick courses have a fixed world size, so the facade
                # texture repeats vertically in proportion to the wall
                # height (~3-5 copies) and occasionally horizontally:
                # this produces the paper's ~2.9x average repetition
                # and keeps texel density roughly constant.
                repeat_u = 1.0 if width_w < 8.0 else 2.0
                repeat_v = float(np.clip(round(height_w / 3.5), 2, 5))
                texture_id = int(rng.integers(0, n_facade_textures))
                meshes.append(make_quad(
                    corners, texture_id=texture_id,
                    uv_rect=(0.0, 0.0, repeat_u, repeat_v),
                    subdivide=subdivide,
                ))

        # The street itself: a long repeated-texture strip.
        street = make_quad(
            np.array([
                [-12.0, 0.0, -5.0],
                [12.0, 0.0, -5.0],
                [12.0, 0.0, -90.0],
                [-12.0, 0.0, -90.0],
            ]),
            texture_id=road_id,
            uv_rect=(0.0, 0.0, 2.0, 7.0),
            subdivide=subdivide,
        )
        meshes.append(street)

        mesh = Mesh.concat(meshes)

        # Upright camera: no roll, mild pitch, so facades stay
        # screen-axis aligned.
        advance = 1.5 * time
        view = look_at(eye=(0.0, 5.5, 4.0 - advance),
                       target=(0.0, 4.0, -40.0 - advance))
        projection = perspective(55.0, width / height, near=1.0, far=300.0)
        return SceneData(
            name=self.name, width=width, height=height,
            mesh=mesh, textures=textures,
            view=view, projection=projection, scale=scale,
            paper_rasterization=self.paper_rasterization,
        )

"""Scene infrastructure.

The paper's four benchmarks (Table 4.1) are single frames of real
applications traced from the SGI demo suite.  Those scenes are not
redistributable, so each of ours is a procedural generator matched to
the published characteristics that drive cache behaviour: image
resolution, triangle count and size statistics, texture count and
sizes, texture repetition, and level-of-detail variation.  The Table
4.1 benchmark harness re-measures these properties for validation.

Every scene takes a ``scale`` parameter: 1.0 reproduces the paper's
resolution; smaller scales shrink the screen, the texture dimensions
and the tessellation together, preserving per-triangle pixel statistics
and the texel:pixel ratio (and therefore mip level selection), so curve
*shapes* survive while trace lengths drop quadratically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..geometry.mesh import Mesh
from ..texture.image import TextureSet, is_power_of_two
from ..texture.mipmap import build_mipmaps


@dataclass
class SceneData:
    """A fully-built scene: geometry, textures and camera."""

    name: str
    width: int
    height: int
    mesh: Mesh
    textures: TextureSet
    view: np.ndarray
    projection: np.ndarray
    scale: float = 1.0
    #: The rasterization direction the paper reports for this scene
    #: (Section 5.2.3: vertical for Town -- worst case -- horizontal
    #: for Flight, Guitar, Goblet).
    paper_rasterization: str = "horizontal"
    _mipmaps: Optional[list] = field(default=None, repr=False)

    def get_mipmaps(self) -> list:
        """Mip pyramids for all textures, built once and cached."""
        if self._mipmaps is None:
            self._mipmaps = build_mipmaps(list(self.textures))
        return self._mipmaps

    @property
    def n_triangles(self) -> int:
        return self.mesh.n_triangles

    @property
    def n_textures(self) -> int:
        return len(self.textures)

    @property
    def texture_storage_nbytes(self) -> int:
        """Mip-mapped storage across all textures."""
        return sum(mm.nbytes for mm in self.get_mipmaps())


class Scene(ABC):
    """A reproducible scene generator."""

    name: str = "scene"
    #: Paper frame dimensions at scale 1.0.
    paper_width: int = 800
    paper_height: int = 800
    paper_rasterization: str = "horizontal"

    @abstractmethod
    def build(self, scale: float = 0.5, time: float = 0.0) -> SceneData:
        """Generate the scene at ``scale``.

        ``time`` (seconds) advances the scene's camera animation; the
        default 0.0 is the frame the paper's tables describe.  Nearby
        times produce the consecutive frames used by the inter-frame
        temporal locality study.
        """

    def frame_size(self, scale: float) -> tuple:
        """Screen dimensions at ``scale`` (multiples of 8 so tile grids
        stay aligned)."""
        width = max(int(round(self.paper_width * scale / 8)) * 8, 16)
        height = max(int(round(self.paper_height * scale / 8)) * 8, 16)
        return width, height


def scaled_pow2(base: int, scale: float, minimum: int = 8) -> int:
    """Scale a power-of-two texture dimension, rounding to the nearest
    power of two (keeps texel:pixel ratios roughly constant)."""
    if not is_power_of_two(base):
        raise ValueError("base must be a power of two")
    target = max(base * scale, minimum)
    exponent = int(round(np.log2(target)))
    return max(1 << exponent, minimum)


def scaled_count(base: int, scale: float, minimum: int = 1) -> int:
    """Scale a tessellation count linearly (per axis)."""
    return max(int(round(base * scale)), minimum)

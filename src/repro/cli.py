"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``render``
    Render a benchmark scene to a PNG/PPM and print trace statistics.
``simulate``
    Render (or reuse) a scene and simulate one cache configuration;
    prints miss breakdown and memory bandwidth.
``sweep``
    Print a miss-rate curve along one axis (cache size, line size,
    associativity, or screen tile size).
``scenes``
    List the benchmark scenes and their headline characteristics.
``costs``
    Print the Table 2.1 fragment-generator cost model for a layout.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis import format_table
from .core import (
    CacheConfig,
    PAPER_CACHE_SIZES,
    cached_bandwidth,
    classify_misses,
    mbytes_per_second,
    miss_rate_curve,
    simulate,
    uncached_bandwidth,
)
from .pipeline import Renderer, fragment_cost
from .pipeline.costs import PHASE_TABLE
from .raster import make_order
from .scenes import ALL_SCENES, make_scene
from .texture import make_layout, place_textures


def _add_scene_arguments(parser):
    parser.add_argument("scene", choices=sorted(ALL_SCENES),
                        help="benchmark scene")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="reproduction scale (1.0 = paper resolution)")
    parser.add_argument("--time", type=float, default=0.0,
                        help="animation time in seconds")
    parser.add_argument("--order", default="paper",
                        choices=["paper", "horizontal", "vertical", "tiled", "hilbert"],
                        help="rasterization order (paper = the direction the "
                             "paper reports for this scene)")
    parser.add_argument("--tile", type=int, default=8,
                        help="tile size for --order tiled")
    parser.add_argument("--aniso", type=int, default=1,
                        help="max anisotropy (1 = trilinear)")
    parser.add_argument("--lod-bias", type=float, default=0.0,
                        help="level-of-detail bias (+1 = coarser mips)")
    parser.add_argument("--no-mipmaps", action="store_true",
                        help="GL_LINEAR ablation: bilinear from level 0")


def _add_layout_arguments(parser):
    parser.add_argument("--layout", default="padded",
                        choices=["nonblocked", "blocked", "padded", "blocked6d",
                                 "williams"],
                        help="texture memory representation")
    parser.add_argument("--block", type=int, default=4,
                        help="block dimension in texels for blocked layouts")
    parser.add_argument("--pad", type=int, default=4,
                        help="pad blocks per row for the padded layout")


def _build_order(args, scene_data):
    if args.order == "paper":
        return make_order(scene_data.paper_rasterization)
    if args.order == "tiled":
        return make_order("tiled", tile_w=args.tile)
    if args.order == "hilbert":
        bits = int(np.ceil(np.log2(max(scene_data.width, scene_data.height))))
        return make_order("hilbert", order_bits=bits)
    return make_order(args.order)


def _build_layout(args, cache_size: int = 32 * 1024):
    if args.layout == "blocked":
        return make_layout("blocked", block_w=args.block)
    if args.layout == "padded":
        return make_layout("padded", block_w=args.block, pad_blocks=args.pad)
    if args.layout == "blocked6d":
        return make_layout("blocked6d", block_w=args.block,
                           superblock_nbytes=cache_size)
    return make_layout(args.layout)


def _render(args) -> int:
    scene = make_scene(args.scene).build(scale=args.scale, time=args.time)
    order = _build_order(args, scene)
    renderer = Renderer(order=order, produce_image=args.out is not None,
                        max_anisotropy=args.aniso, lod_bias=args.lod_bias,
                        use_mipmaps=not args.no_mipmaps)
    result = renderer.render(scene)
    if args.out:
        if args.out.endswith(".ppm"):
            result.framebuffer.to_ppm(args.out)
        else:
            result.framebuffer.to_png(args.out)
        print(f"wrote {args.out}")
    if args.save_trace:
        from .pipeline.traceio import save_trace
        save_trace(args.save_trace, result.trace)
        print(f"wrote {args.save_trace}")
    print(f"{scene.name}: {scene.width}x{scene.height}, "
          f"{result.n_triangles_rasterized}/{result.n_triangles_submitted} "
          f"triangles rasterized, {result.n_fragments:,} fragments, "
          f"{result.n_accesses:,} texel fetches ({order.name} order)")
    return 0


def _simulate(args) -> int:
    scene = make_scene(args.scene).build(scale=args.scale, time=args.time)
    order = _build_order(args, scene)
    result = Renderer(order=order, produce_image=False,
                      max_anisotropy=args.aniso, lod_bias=args.lod_bias,
                      use_mipmaps=not args.no_mipmaps).render(scene)
    layout = _build_layout(args, cache_size=args.cache_size)
    placements = place_textures(scene.get_mipmaps(), layout)
    addresses = result.trace.byte_addresses(placements)
    config = CacheConfig(args.cache_size, args.line_size,
                         None if args.assoc == 0 else args.assoc)
    stats = classify_misses(addresses, config)
    bandwidth = cached_bandwidth(stats.miss_rate, args.line_size)
    print(f"{scene.name} / {layout.name} / {order.name} / {config.label()}")
    print(f"  accesses        {stats.accesses:,}")
    print(f"  miss rate       {100 * stats.miss_rate:.3f}%")
    print(f"  cold misses     {stats.cold_misses:,}")
    print(f"  capacity misses {stats.capacity_misses:,}")
    print(f"  conflict misses {stats.conflict_misses:,}")
    print(f"  bandwidth       {mbytes_per_second(bandwidth):.0f} MB/s at 50M "
          f"fragments/s ({uncached_bandwidth() / max(bandwidth, 1e-9):.1f}x "
          "less than uncached)")
    return 0


def _sweep(args) -> int:
    scene = make_scene(args.scene).build(scale=args.scale, time=args.time)
    order = _build_order(args, scene)
    result = Renderer(order=order, produce_image=False).render(scene)
    layout = _build_layout(args)
    placements = place_textures(scene.get_mipmaps(), layout)
    addresses = result.trace.byte_addresses(placements)

    if args.axis == "cache":
        curve = miss_rate_curve(addresses, args.line_size, PAPER_CACHE_SIZES)
        rows = [[f"{int(s) // 1024}KB", f"{100 * r:.3f}%"]
                for s, r in zip(curve.sizes, curve.miss_rates)]
        print(format_table(["cache size", "miss rate"], rows,
                           title=f"{scene.name}, {layout.name}, fully associative, "
                                 f"{args.line_size}B lines"))
    elif args.axis == "line":
        rows = []
        for line in (16, 32, 64, 128, 256):
            curve = miss_rate_curve(addresses, line, [args.cache_size])
            rows.append([f"{line}B", f"{100 * curve.miss_rates[0]:.3f}%"])
        print(format_table(["line size", "miss rate"], rows,
                           title=f"{scene.name}, {layout.name}, "
                                 f"{args.cache_size // 1024}KB fully associative"))
    else:  # assoc
        rows = []
        for assoc in (1, 2, 4, 8, None):
            config = CacheConfig(args.cache_size, args.line_size, assoc)
            stats = simulate(addresses, config)
            label = "full" if assoc is None else f"{assoc}-way"
            rows.append([label, f"{100 * stats.miss_rate:.3f}%"])
        print(format_table(["associativity", "miss rate"], rows,
                           title=f"{scene.name}, {layout.name}, "
                                 f"{args.cache_size // 1024}KB, "
                                 f"{args.line_size}B lines"))
    return 0


def _parallel(args) -> int:
    from .core.parallel import (
        ScanlineInterleave, StripSplit, TileInterleave, simulate_parallel,
    )
    scene = make_scene(args.scene).build(scale=args.scale, time=args.time)
    order = _build_order(args, scene)
    renderer = Renderer(order=order, produce_image=False, record_positions=True)
    trace = renderer.render(scene).trace
    layout = _build_layout(args, cache_size=args.cache_size)
    placements = place_textures(scene.get_mipmaps(), layout)
    config = CacheConfig(args.cache_size, args.line_size, 2)
    rows = []
    for distribution in (ScanlineInterleave(args.generators),
                         TileInterleave(args.generators, tile=8),
                         TileInterleave(args.generators, tile=32),
                         StripSplit(args.generators, height=scene.height)):
        stats = simulate_parallel(trace, placements, distribution, config)
        rows.append([
            distribution.name,
            f"{100 * stats.aggregate_miss_rate:.3f}%",
            f"{stats.redundancy:.2f}x",
            f"{stats.load_imbalance:.2f}x",
            f"{stats.shared_memory_bandwidth() / 2**20:.0f} MB/s",
        ])
    print(format_table(
        ["distribution", "miss rate", "redundancy", "imbalance", "shared BW"],
        rows,
        title=(f"{scene.name}: {args.generators} generators, private "
               f"{config.label()} caches"),
    ))
    return 0


def _hierarchy(args) -> int:
    from .core.hierarchy import hierarchy_bandwidths, simulate_hierarchy
    from .core.machine import PAPER_MACHINE
    scene = make_scene(args.scene).build(scale=args.scale, time=args.time)
    order = _build_order(args, scene)
    result = Renderer(order=order, produce_image=False).render(scene)
    layout = _build_layout(args, cache_size=args.l2_size)
    placements = place_textures(scene.get_mipmaps(), layout)
    addresses = result.trace.byte_addresses(placements)
    configs = [CacheConfig(args.l1_size, 32, 2),
               CacheConfig(args.l2_size, args.line_size, 2)]
    stats = simulate_hierarchy(addresses, configs)
    bandwidths = hierarchy_bandwidths(stats, PAPER_MACHINE)
    print(f"{scene.name} / {layout.name} / L1 {configs[0].label()} "
          f"+ L2 {configs[1].label()}")
    for level, (level_stats, bandwidth) in enumerate(zip(stats.levels, bandwidths)):
        boundary = "DRAM" if level == len(bandwidths) - 1 else f"L{level + 2}"
        print(f"  L{level + 1}: local miss {100 * level_stats.miss_rate:.3f}%  "
              f"-> {boundary} traffic {bandwidth / 2**20:.0f} MB/s")
    print(f"  memory miss rate {100 * stats.memory_miss_rate:.3f}% of all accesses")
    return 0


def _scenes(args) -> int:
    rows = []
    for name, cls in ALL_SCENES.items():
        rows.append([
            name,
            f"{cls.paper_width}x{cls.paper_height}",
            cls.paper_rasterization,
            cls.__doc__.strip().splitlines()[0],
        ])
    print(format_table(["scene", "paper resolution", "paper order", "description"],
                       rows, title="Benchmark scenes (paper Table 4.1):"))
    return 0


def _costs(args) -> int:
    rows = [
        [name, ops.adds, ops.shifts, ops.multiplies, ops.divides,
         ops.memory_accesses or "-"]
        for name, ops in PHASE_TABLE.items()
    ]
    print(format_table(
        ["phase", "add/sub", "shift", "mult", "div", "mem accesses"],
        rows, title="Table 2.1: fragment generator costs"))
    layout = _build_layout(args)
    total = fragment_cost(layout)
    print(f"\nper-fragment total with {layout.name} addressing: "
          f"{total.adds} adds, {total.shifts} shifts, {total.multiplies} mults, "
          f"{total.memory_accesses} texel fetches")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Texture cache architecture reproduction "
                    "(Hakura & Gupta, ISCA 1997)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    render = subparsers.add_parser("render", help="render a scene to an image")
    _add_scene_arguments(render)
    render.add_argument("--out", default=None, help="output .png or .ppm path")
    render.add_argument("--save-trace", default=None,
                        help="also save the texel trace (.trace.npz)")
    render.set_defaults(func=_render)

    sim = subparsers.add_parser("simulate", help="simulate one cache config")
    _add_scene_arguments(sim)
    _add_layout_arguments(sim)
    sim.add_argument("--cache-size", type=int, default=32 * 1024)
    sim.add_argument("--line-size", type=int, default=64)
    sim.add_argument("--assoc", type=int, default=2,
                     help="ways per set; 0 = fully associative")
    sim.set_defaults(func=_simulate)

    sweep = subparsers.add_parser("sweep", help="sweep one cache axis")
    _add_scene_arguments(sweep)
    _add_layout_arguments(sweep)
    sweep.add_argument("--axis", choices=["cache", "line", "assoc"],
                       default="cache")
    sweep.add_argument("--cache-size", type=int, default=32 * 1024)
    sweep.add_argument("--line-size", type=int, default=64)
    sweep.set_defaults(func=_sweep)

    parallel = subparsers.add_parser(
        "parallel", help="multi-generator caching study (Section 8)")
    _add_scene_arguments(parallel)
    _add_layout_arguments(parallel)
    parallel.add_argument("--generators", type=int, default=4)
    parallel.add_argument("--cache-size", type=int, default=8 * 1024)
    parallel.add_argument("--line-size", type=int, default=64)
    parallel.set_defaults(func=_parallel)

    hierarchy = subparsers.add_parser(
        "hierarchy", help="two-level cache hierarchy study")
    _add_scene_arguments(hierarchy)
    _add_layout_arguments(hierarchy)
    hierarchy.add_argument("--l1-size", type=int, default=4 * 1024)
    hierarchy.add_argument("--l2-size", type=int, default=32 * 1024)
    hierarchy.add_argument("--line-size", type=int, default=128)
    hierarchy.set_defaults(func=_hierarchy)

    scenes = subparsers.add_parser("scenes", help="list benchmark scenes")
    scenes.set_defaults(func=_scenes)

    costs = subparsers.add_parser("costs", help="print the Table 2.1 cost model")
    _add_layout_arguments(costs)
    costs.set_defaults(func=_costs)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``render``
    Render a benchmark scene to a PNG/PPM and print trace statistics.
``simulate``
    Render (or reuse) a scene and simulate one cache configuration;
    prints miss breakdown and memory bandwidth.
``sweep``
    Print a miss-rate curve along one axis (cache size, line size,
    associativity, or screen tile size).
``cache``
    Inspect (``stats``), integrity-scan (``verify``), self-heal
    (``repair``) or empty (``clear``) the shared on-disk artifact
    store.
``scenes``
    List the benchmark scenes and their headline characteristics.
``costs``
    Print the Table 2.1 fragment-generator cost model for a layout.

Every trace-consuming command goes through :mod:`repro.engine`, so
renders, byte-address streams and distance profiles are reused from
the content-addressed store (``benchmarks/.cache/`` by default,
``REPRO_CACHE_DIR`` to relocate) across invocations and with the
benchmark harnesses.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis import format_table
from .core import (
    CacheConfig,
    KERNELS,
    PAPER_CACHE_SIZES,
    cached_bandwidth,
    classify_misses,
    mbytes_per_second,
    uncached_bandwidth,
)
from .engine import (
    ArtifactStore,
    Engine,
    ExperimentSpec,
    TraceSpec,
    layout_from_spec,
    order_from_spec,
)
from .pipeline import fragment_cost
from .pipeline.costs import PHASE_TABLE
from .pipeline.renderer import RASTER_PATHS
from .scenes import ALL_SCENES, make_scene


def _add_scene_arguments(parser):
    parser.add_argument("scene", choices=sorted(ALL_SCENES),
                        help="benchmark scene")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="reproduction scale (1.0 = paper resolution)")
    parser.add_argument("--time", type=float, default=0.0,
                        help="animation time in seconds")
    parser.add_argument("--order", default="paper",
                        choices=["paper", "horizontal", "vertical", "tiled", "hilbert"],
                        help="rasterization order (paper = the direction the "
                             "paper reports for this scene)")
    parser.add_argument("--tile", type=int, default=8,
                        help="tile size for --order tiled")
    parser.add_argument("--aniso", type=int, default=1,
                        help="max anisotropy (1 = trilinear)")
    parser.add_argument("--lod-bias", type=float, default=0.0,
                        help="level-of-detail bias (+1 = coarser mips)")
    parser.add_argument("--no-mipmaps", action="store_true",
                        help="GL_LINEAR ablation: bilinear from level 0")
    parser.add_argument("--raster", default="batched",
                        choices=list(RASTER_PATHS),
                        help="rasterization path: the triangle-batched "
                             "vectorized kernel or the per-triangle "
                             "reference (both produce bit-identical traces)")


def _add_layout_arguments(parser):
    parser.add_argument("--layout", default="padded",
                        choices=["nonblocked", "blocked", "padded", "blocked6d",
                                 "williams"],
                        help="texture memory representation")
    parser.add_argument("--block", type=int, default=4,
                        help="block dimension in texels for blocked layouts")
    parser.add_argument("--pad", type=int, default=4,
                        help="pad blocks per row for the padded layout")


def _add_kernel_argument(parser):
    parser.add_argument("--kernel", default="vectorized",
                        choices=sorted(KERNELS),
                        help="LRU simulation path: batched stack-distance "
                             "kernels or the sequential reference simulator")


def _add_streaming_arguments(parser):
    parser.add_argument("--chunk-size", type=int, default=None,
                        metavar="ACCESSES",
                        help="stream the pipeline in blocks of at most this "
                             "many texel accesses: bit-identical results at "
                             "peak memory bounded by the chunk, independent "
                             "of trace length")
    parser.add_argument("--shards", type=int, default=0,
                        help="fan the streaming profile fold across this "
                             "many processes (implies streaming)")
    parser.add_argument("--stream-workers", type=int, default=0,
                        help="pipeline the streaming fold: partition cold "
                             "renders across this many persistent worker "
                             "processes and fold blocks as they arrive over "
                             "shared memory (implies streaming; >= 2 to "
                             "engage, falls back to the serial streamed "
                             "path on any pipeline failure)")
    parser.add_argument("--audit-parts", type=int, default=0,
                        metavar="N",
                        help="spot-audit N sampled parts of every streamed "
                             "trace against a sequential reference oracle "
                             "(requires streaming)")


def _streaming_requested(args) -> bool:
    return bool(getattr(args, "chunk_size", None)) or \
        getattr(args, "shards", 0) > 0 or \
        getattr(args, "stream_workers", 0) > 0


def _order_spec(args, scene_name: str) -> tuple:
    """The traversal-order spec tuple selected by the CLI flags."""
    if args.order == "paper":
        return (ALL_SCENES[scene_name].paper_rasterization,)
    if args.order == "tiled":
        return ("tiled", args.tile)
    if args.order == "hilbert":
        width, height = make_scene(scene_name).frame_size(args.scale)
        return ("hilbert", int(np.ceil(np.log2(max(width, height)))))
    return (args.order,)


def _layout_spec(args, cache_size: int = 32 * 1024) -> tuple:
    if args.layout == "blocked":
        return ("blocked", args.block)
    if args.layout == "padded":
        return ("padded", args.block, args.pad)
    if args.layout == "blocked6d":
        return ("blocked6d", args.block, cache_size)
    return (args.layout,)


def _trace_spec(args, record_positions: bool = False) -> TraceSpec:
    return TraceSpec(
        scene=args.scene, scale=args.scale, order=_order_spec(args, args.scene),
        time=args.time, max_anisotropy=args.aniso, lod_bias=args.lod_bias,
        use_mipmaps=not args.no_mipmaps, record_positions=record_positions,
        raster=args.raster,
    )


def _print_recovery(stream_report, store=None) -> None:
    """Surface degraded-run evidence (pipelined recoveries, store
    demotions/quarantines) in command summaries instead of leaving
    them as RuntimeWarnings scrolled off the screen."""
    if stream_report is not None and not stream_report.clean:
        print(f"note: {stream_report.summary()}")
        for event in stream_report.events[:8]:
            print(f"  recovery: {event}")
        hidden = len(stream_report.events) - 8
        if hidden > 0:
            print(f"  ... and {hidden} more recovery event(s)")
    events = getattr(store, "recovery_events", None) or ()
    if events:
        print(f"note: the artifact store degraded during this run "
              f"({len(events)} event(s)):")
        for event in events[:8]:
            print(f"  store: {event}")


def _render(args) -> int:
    engine = Engine()
    spec = _trace_spec(args)
    result = engine.render(spec, produce_image=args.out is not None,
                           fresh=args.profile)
    if args.out:
        if args.out.endswith(".ppm"):
            result.framebuffer.to_ppm(args.out)
        else:
            result.framebuffer.to_png(args.out)
        print(f"wrote {args.out}")
    if args.save_trace:
        result.trace.save(args.save_trace)
        print(f"wrote {args.save_trace}")
    scene = engine.scene(args.scene, args.scale, args.time)
    print(f"{scene.name}: {scene.width}x{scene.height}, "
          f"{result.n_triangles_rasterized}/{result.n_triangles_submitted} "
          f"triangles rasterized, {result.n_fragments:,} fragments, "
          f"{result.trace.n_accesses:,} texel fetches "
          f"({order_from_spec(spec.order).name} order)")
    if args.profile and result.phase_ms is not None:
        total = sum(result.phase_ms.values())
        print(f"phase timings ({spec.raster} raster):")
        for phase, ms in result.phase_ms.items():
            print(f"  {phase:11s} {ms:8.1f} ms")
        print(f"  {'total':11s} {total:8.1f} ms")
    _print_recovery(None, engine.store)
    return 0


def _simulate(args) -> int:
    engine = Engine()
    spec = _trace_spec(args)
    layout_spec = _layout_spec(args, cache_size=args.cache_size)
    config = CacheConfig(args.cache_size, args.line_size,
                         None if args.assoc == 0 else args.assoc)
    if _streaming_requested(args):
        if args.kernel != "vectorized":
            print("error: --chunk-size/--shards/--stream-workers require "
                  "--kernel vectorized", file=sys.stderr)
            return 2
        from .engine import classify_streamed
        streams = engine.streamed(spec, layout_spec,
                                  chunk_size=args.chunk_size,
                                  shards=args.shards,
                                  stream_workers=args.stream_workers)
        stats = classify_streamed(streams, config)
        if args.audit_parts:
            report = streams.audit([(config.line_size, 1),
                                    (config.line_size, config.n_sets)],
                                   parts=args.audit_parts)
            print(f"audit: {len(report.parts)}/{report.n_parts} parts vs "
                  f"the sequential oracle, {len(report.pairs)} pair(s), "
                  f"{report.accesses:,} accesses checked -- OK")
    elif args.audit_parts:
        print("error: --audit-parts requires streaming "
              "(--chunk-size/--shards/--stream-workers)", file=sys.stderr)
        return 2
    else:
        addresses = engine.addresses(spec, layout_spec)
        stats = classify_misses(addresses, config, kernel=args.kernel)
    bandwidth = cached_bandwidth(stats.miss_rate, args.line_size)
    print(f"{args.scene} / {layout_from_spec(layout_spec).name} / "
          f"{order_from_spec(spec.order).name} / {config.label()}")
    print(f"  accesses        {stats.accesses:,}")
    print(f"  miss rate       {100 * stats.miss_rate:.3f}%")
    print(f"  cold misses     {stats.cold_misses:,}")
    print(f"  capacity misses {stats.capacity_misses:,}")
    print(f"  conflict misses {stats.conflict_misses:,}")
    print(f"  bandwidth       {mbytes_per_second(bandwidth):.0f} MB/s at 50M "
          f"fragments/s ({uncached_bandwidth() / max(bandwidth, 1e-9):.1f}x "
          "less than uncached)")
    if _streaming_requested(args):
        _print_recovery(getattr(streams, "stream_report", None),
                        engine.store)
    return 0


def _sweep(args) -> int:
    engine = Engine()
    spec = _trace_spec(args)
    layout_spec = _layout_spec(args)
    layout_name = layout_from_spec(layout_spec).name
    grid = dict(scenes=(args.scene,), orders=(spec.order,),
                layouts=(layout_spec,), scale=args.scale, time=args.time,
                max_anisotropy=args.aniso, lod_bias=args.lod_bias,
                use_mipmaps=not args.no_mipmaps)
    if _streaming_requested(args) and args.kernel != "vectorized":
        print("error: --chunk-size/--shards/--stream-workers require "
              "--kernel vectorized", file=sys.stderr)
        return 2
    if args.audit_parts and not _streaming_requested(args):
        print("error: --audit-parts requires streaming "
              "(--chunk-size/--shards/--stream-workers)", file=sys.stderr)
        return 2
    run_kwargs = dict(kernel=args.kernel, chunk_size=args.chunk_size,
                      shards=args.shards, stream_workers=args.stream_workers,
                      audit_parts=args.audit_parts)

    if args.axis == "cache":
        result = engine.run(ExperimentSpec(
            cache_sizes=PAPER_CACHE_SIZES, line_sizes=(args.line_size,), **grid),
            **run_kwargs)
        rows = [[f"{row.config.size // 1024}KB",
                 f"{100 * row.stats.miss_rate:.3f}%"] for row in result.rows]
        print(format_table(["cache size", "miss rate"], rows,
                           title=f"{args.scene}, {layout_name}, fully associative, "
                                 f"{args.line_size}B lines"))
    elif args.axis == "line":
        result = engine.run(ExperimentSpec(
            cache_sizes=(args.cache_size,), line_sizes=(16, 32, 64, 128, 256),
            **grid), **run_kwargs)
        rows = [[f"{row.config.line_size}B",
                 f"{100 * row.stats.miss_rate:.3f}%"] for row in result.rows]
        print(format_table(["line size", "miss rate"], rows,
                           title=f"{args.scene}, {layout_name}, "
                                 f"{args.cache_size // 1024}KB fully associative"))
    else:  # assoc
        result = engine.run(ExperimentSpec(
            cache_sizes=(args.cache_size,), line_sizes=(args.line_size,),
            assocs=(1, 2, 4, 8, None), **grid), **run_kwargs)
        rows = [["full" if row.config.assoc is None else f"{row.config.assoc}-way",
                 f"{100 * row.stats.miss_rate:.3f}%"] for row in result.rows]
        print(format_table(["associativity", "miss rate"], rows,
                           title=f"{args.scene}, {layout_name}, "
                                 f"{args.cache_size // 1024}KB, "
                                 f"{args.line_size}B lines"))
    _print_recovery(result.stream_report, engine.store)
    return 0


def _parallel(args) -> int:
    from .core.parallel import (
        ScanlineInterleave, StripSplit, TileInterleave, simulate_parallel,
    )
    engine = Engine()
    spec = _trace_spec(args, record_positions=True)
    trace = engine.trace(spec)
    layout_spec = _layout_spec(args, cache_size=args.cache_size)
    placements = engine.placements(args.scene, args.scale, layout_spec,
                                   time=args.time)
    height = engine.scene(args.scene, args.scale, args.time).height
    config = CacheConfig(args.cache_size, args.line_size, 2)
    rows = []
    for distribution in (ScanlineInterleave(args.generators),
                         TileInterleave(args.generators, tile=8),
                         TileInterleave(args.generators, tile=32),
                         StripSplit(args.generators, height=height)):
        stats = simulate_parallel(trace, placements, distribution, config,
                                  kernel=args.kernel)
        rows.append([
            distribution.name,
            f"{100 * stats.aggregate_miss_rate:.3f}%",
            f"{stats.redundancy:.2f}x",
            f"{stats.load_imbalance:.2f}x",
            f"{stats.shared_memory_bandwidth() / 2**20:.0f} MB/s",
        ])
    print(format_table(
        ["distribution", "miss rate", "redundancy", "imbalance", "shared BW"],
        rows,
        title=(f"{args.scene}: {args.generators} generators, private "
               f"{config.label()} caches"),
    ))
    return 0


def _hierarchy(args) -> int:
    from .core.hierarchy import hierarchy_bandwidths, simulate_hierarchy
    from .core.machine import PAPER_MACHINE
    engine = Engine()
    spec = _trace_spec(args)
    layout_spec = _layout_spec(args, cache_size=args.l2_size)
    addresses = engine.addresses(spec, layout_spec)
    configs = [CacheConfig(args.l1_size, 32, 2),
               CacheConfig(args.l2_size, args.line_size, 2)]
    stats = simulate_hierarchy(addresses, configs, kernel=args.kernel)
    bandwidths = hierarchy_bandwidths(stats, PAPER_MACHINE)
    print(f"{args.scene} / {layout_from_spec(layout_spec).name} / "
          f"L1 {configs[0].label()} + L2 {configs[1].label()}")
    for level, (level_stats, bandwidth) in enumerate(zip(stats.levels, bandwidths)):
        boundary = "DRAM" if level == len(bandwidths) - 1 else f"L{level + 2}"
        print(f"  L{level + 1}: local miss {100 * level_stats.miss_rate:.3f}%  "
              f"-> {boundary} traffic {bandwidth / 2**20:.0f} MB/s")
    print(f"  memory miss rate {100 * stats.memory_miss_rate:.3f}% of all accesses")
    return 0


def _csv_ints(text):
    return [int(field) for field in text.split(",") if field]


def _timing(args) -> int:
    from .core.dram import PAPER_DRAM
    from .core.machine import PAPER_MACHINE
    from .core.texcache import (
        fragment_fill_streams,
        simulate_texcache,
        sweep_texcache,
    )

    engine = Engine()
    spec = _trace_spec(args)
    layout_spec = _layout_spec(args, cache_size=args.cache_size)
    config = CacheConfig(args.cache_size, args.line_size,
                         None if args.assoc == 0 else args.assoc)
    addresses = engine.addresses(spec, layout_spec)
    dram = PAPER_DRAM if args.dram_services else None
    counts, services = fragment_fill_streams(addresses, config, dram=dram,
                                             kernel=args.kernel)
    params = PAPER_MACHINE.texcache_params(
        args.line_size, fragment_fifo=args.fragment_fifo,
        request_fifo=args.request_fifo, reorder_buffer=args.reorder_buffer)
    service_note = "page-mode DRAM" if dram is not None else \
        f"uniform {params.fill_interval}-cycle"
    print(f"{args.scene} / {layout_from_spec(layout_spec).name} / "
          f"{config.label()}: {len(counts):,} fragments, "
          f"{int(counts.sum()):,} line fills ({service_note} services)")
    if args.depths or args.latencies:
        depths = _csv_ints(args.depths) if args.depths \
            else [params.fragment_fifo]
        latencies = _csv_ints(args.latencies) if args.latencies \
            else [params.fill_latency]
        results = sweep_texcache(counts, params, depths, latencies,
                                 services=services, kernel=args.kernel)
        rows = [[depth, latency,
                 f"{cell.total_cycles:,}",
                 f"{cell.stall_cycles:,}",
                 f"{cell.fragments_per_second / 1e6:.1f}M",
                 f"{100 * cell.efficiency:.1f}%"]
                for (depth, latency), cell in results.items()]
        print(format_table(
            ["frag FIFO", "latency", "total cycles", "stall cycles",
             "frag/s", "efficiency"], rows,
            title="Latency tolerance (Igehy et al. 1998 three-queue "
                  "model):"))
    else:
        result = simulate_texcache(counts, params, services=services,
                                   kernel=args.kernel)
        print(f"  fragment FIFO   {params.fragment_fifo} entries "
              f"(avg occupancy {result.avg_fragment_fifo:.1f})")
        print(f"  request FIFO    {params.request_fifo} entries "
              f"(avg occupancy {result.avg_request_fifo:.1f})")
        print(f"  reorder buffer  {params.reorder_buffer} slots "
              f"(avg occupancy {result.avg_reorder_buffer:.1f})")
        print(f"  fill latency    {params.fill_latency} cycles")
        print(f"  total cycles    {result.total_cycles:,} "
              f"(ideal {result.ideal_cycles:,}, "
              f"stall {result.stall_cycles:,})")
        print(f"  fragment rate   {result.fragments_per_second / 1e6:.1f}M/s "
              f"({100 * result.efficiency:.1f}% of the stall-free "
              "pipeline)")
    _print_recovery(getattr(engine, "last_stream_report", None),
                    engine.store)
    return 0


def _cache(args) -> int:
    store = ArtifactStore(args.dir) if args.dir else ArtifactStore()
    if args.action == "stats":
        report = store.stats()
        rows = [[kind, entry["files"], f"{entry['bytes'] / 2**20:.2f} MB",
                 entry["parts"], f"{entry['part_bytes'] / 2**20:.2f} MB",
                 entry["tmp"]]
                for kind, entry in report["kinds"].items()]
        rows.append(["total", report["total_files"] - report["part_files"],
                     f"{(report['total_bytes'] - report['part_bytes']) / 2**20:.2f} MB",
                     report["part_files"],
                     f"{report['part_bytes'] / 2**20:.2f} MB",
                     report["tmp_files"]])
        print(format_table(
            ["artifact kind", "files", "size", "parts", "part size", "tmp"],
            rows, title=f"artifact store at {report['root']}"))
        if report["tmp_files"]:
            print(f"note: {report['tmp_files']} orphaned temp file(s) from "
                  "interrupted writers; `repro cache repair` purges them")
        if report["orphaned_parts"]:
            print(f"note: {report['orphaned_parts']} orphaned chunked-trace "
                  "part(s) from interrupted streaming writers; "
                  "`repro cache repair` purges stale ones")
        if report["resumable_parts"]:
            print(f"note: {report['resumable_parts']} resumable part(s) "
                  "from an interrupted pipelined run; the next cold fold "
                  "resumes from them instead of re-rendering")
        if report["quarantined"]:
            print(f"note: {report['quarantined']} file(s) in quarantine/ "
                  "(see the *.reason.json records alongside them)")
        memory = report["memory"]
        state = "" if memory["enabled"] else " [disabled]"
        print(f"memory tier (T0): {memory['entries']} entries, "
              f"{memory['bytes'] / 2**20:.2f} MB of "
              f"{memory['max_bytes'] / 2**20:.0f} MB, "
              f"hit rate {memory['hit_rate']:.0%} "
              f"({memory['hits']} hits / {memory['misses']} misses)"
              f"{state}")
        digests = report["digest_cache"]
        print(f"digest cache: {digests['entries']} entries, "
              f"hit rate {digests['hit_rate']:.0%} (verify-once loads)")
        print(_remote_line(report["remote"]))
    elif args.action == "verify":
        report = store.verify()
        rows = [[kind, entry["ok"], len(entry["bad"]), entry["pending"],
                 len(entry["tmp"]), len(entry["orphaned_parts"]),
                 len(entry["resumable"])]
                for kind, entry in report["kinds"].items()]
        print(format_table(["artifact kind", "ok", "bad", "pending", "tmp",
                            "orphaned parts", "resumable"], rows,
                           title=f"integrity scan of {report['root']}"))
        for kind, entry in report["kinds"].items():
            for problem in entry["bad"]:
                print(f"  BAD {kind}/{problem['file']}: {problem['reason']}")
        if report["tmp"]:
            print(f"note: {report['tmp']} temp file(s); "
                  "`repro cache repair` purges stale ones")
        if report["orphaned_parts"]:
            print(f"note: {report['orphaned_parts']} stale orphaned "
                  "chunked-trace part(s); `repro cache repair` purges them")
        if report["resumable"]:
            print(f"note: {report['resumable']} resumable part(s) from an "
                  "interrupted pipelined run (verified against their "
                  "completion records); the next cold fold resumes from "
                  "them")
        print(_remote_line(report["remote"]))
        if report["bad"]:
            print(f"{report['bad']} corrupt artifact(s); "
                  "run `repro cache repair` to quarantine them")
            return 1
        print(f"store verified clean ({report['ok']} artifacts)")
    elif args.action == "repair":
        report = store.repair()
        print(f"quarantined {len(report['quarantined'])} artifact(s), "
              f"purged {len(report['purged_tmp'])} stale temp file(s), "
              f"{len(report['purged_parts'])} orphaned part file(s) and "
              f"{len(report['purged_resume'])} stale resume record(s) "
              f"from {report['root']}")
        if report["kept_resumable"]:
            print(f"kept {report['kept_resumable']} resumable part(s) for "
                  "the next pipelined fold to resume from")
        for name in report["quarantined"]:
            print(f"  quarantined {name}")
    else:  # clear
        tier = getattr(args, "tier", None)
        report = store.clear(tier=tier)
        if tier == "memory":
            memory = report["memory"]
            print(f"cleared {memory['entries']} in-memory tier entries "
                  f"({memory['bytes'] / 2**20:.2f} MB) and the digest "
                  f"cache; disk artifacts at {report['root']} kept")
        else:
            scope = " (disk tier only)" if tier == "disk" else ""
            print(f"cleared {report['total_files']} artifacts "
                  f"({report['total_bytes'] / 2**20:.2f} MB) "
                  f"from {report['root']}{scope}")
    return 0


def _remote_line(remote: dict) -> str:
    """One-line remote-tier (T2) status for cache stats/verify."""
    if not remote["configured"]:
        return "remote tier (T2): not configured (set REPRO_STORE_REMOTE)"
    state = "reachable" if remote["reachable"] else "UNREACHABLE"
    return f"remote tier (T2): {remote['root']} [{state}]"


def _scenes(args) -> int:
    rows = []
    for name, cls in ALL_SCENES.items():
        rows.append([
            name,
            f"{cls.paper_width}x{cls.paper_height}",
            cls.paper_rasterization,
            cls.__doc__.strip().splitlines()[0],
        ])
    print(format_table(["scene", "paper resolution", "paper order", "description"],
                       rows, title="Benchmark scenes (paper Table 4.1):"))
    return 0


def _costs(args) -> int:
    rows = [
        [name, ops.adds, ops.shifts, ops.multiplies, ops.divides,
         ops.memory_accesses or "-"]
        for name, ops in PHASE_TABLE.items()
    ]
    print(format_table(
        ["phase", "add/sub", "shift", "mult", "div", "mem accesses"],
        rows, title="Table 2.1: fragment generator costs"))
    layout = layout_from_spec(_layout_spec(args))
    total = fragment_cost(layout)
    print(f"\nper-fragment total with {layout.name} addressing: "
          f"{total.adds} adds, {total.shifts} shifts, {total.multiplies} mults, "
          f"{total.memory_accesses} texel fetches")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Texture cache architecture reproduction "
                    "(Hakura & Gupta, ISCA 1997)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    render = subparsers.add_parser("render", help="render a scene to an image")
    _add_scene_arguments(render)
    render.add_argument("--out", default=None, help="output .png or .ppm path")
    render.add_argument("--save-trace", default=None,
                        help="also save the texel trace (.trace.npz)")
    render.add_argument("--profile", action="store_true",
                        help="force a fresh render and print per-phase "
                             "wall-clock timings (clip/raster/access-gen/"
                             "filter)")
    render.set_defaults(func=_render)

    sim = subparsers.add_parser("simulate", help="simulate one cache config")
    _add_scene_arguments(sim)
    _add_layout_arguments(sim)
    sim.add_argument("--cache-size", type=int, default=32 * 1024)
    sim.add_argument("--line-size", type=int, default=64)
    sim.add_argument("--assoc", type=int, default=2,
                     help="ways per set; 0 = fully associative")
    _add_kernel_argument(sim)
    _add_streaming_arguments(sim)
    sim.set_defaults(func=_simulate)

    sweep = subparsers.add_parser("sweep", help="sweep one cache axis")
    _add_scene_arguments(sweep)
    _add_layout_arguments(sweep)
    sweep.add_argument("--axis", choices=["cache", "line", "assoc"],
                       default="cache")
    sweep.add_argument("--cache-size", type=int, default=32 * 1024)
    sweep.add_argument("--line-size", type=int, default=64)
    _add_kernel_argument(sweep)
    _add_streaming_arguments(sweep)
    sweep.set_defaults(func=_sweep)

    parallel = subparsers.add_parser(
        "parallel", help="multi-generator caching study (Section 8)")
    _add_scene_arguments(parallel)
    _add_layout_arguments(parallel)
    parallel.add_argument("--generators", type=int, default=4)
    parallel.add_argument("--cache-size", type=int, default=8 * 1024)
    parallel.add_argument("--line-size", type=int, default=64)
    _add_kernel_argument(parallel)
    parallel.set_defaults(func=_parallel)

    hierarchy = subparsers.add_parser(
        "hierarchy", help="two-level cache hierarchy study")
    _add_scene_arguments(hierarchy)
    _add_layout_arguments(hierarchy)
    hierarchy.add_argument("--l1-size", type=int, default=4 * 1024)
    hierarchy.add_argument("--l2-size", type=int, default=32 * 1024)
    hierarchy.add_argument("--line-size", type=int, default=128)
    _add_kernel_argument(hierarchy)
    hierarchy.set_defaults(func=_hierarchy)

    timing = subparsers.add_parser(
        "timing", help="cycle-level prefetching texture cache timing "
                       "(Igehy et al. 1998 three-queue model)")
    _add_scene_arguments(timing)
    _add_layout_arguments(timing)
    timing.add_argument("--cache-size", type=int, default=32 * 1024)
    timing.add_argument("--line-size", type=int, default=64)
    timing.add_argument("--assoc", type=int, default=2,
                        help="ways per set; 0 = fully associative")
    timing.add_argument("--fragment-fifo", type=int, default=32,
                        help="fragment FIFO depth (0 = no prefetching)")
    timing.add_argument("--request-fifo", type=int, default=None,
                        help="pending line-fill bound (default: one "
                             "fragment's worst case)")
    timing.add_argument("--reorder-buffer", type=int, default=None,
                        help="reorder-buffer line slots (default: one "
                             "fragment's worst case)")
    timing.add_argument("--depths", default=None, metavar="D1,D2,...",
                        help="sweep these fragment-FIFO depths")
    timing.add_argument("--latencies", default=None, metavar="L1,L2,...",
                        help="sweep these fill latencies (cycles)")
    timing.add_argument("--dram-services", action="store_true",
                        help="per-fill page-mode DRAM service times "
                             "instead of the uniform fill interval")
    _add_kernel_argument(timing)
    timing.set_defaults(func=_timing)

    cache = subparsers.add_parser(
        "cache", help="inspect, verify, repair or clear the shared "
                      "artifact store")
    cache.add_argument("action",
                       choices=["stats", "verify", "repair", "clear"],
                       help="stats = per-kind counts/sizes; verify = "
                            "integrity-scan every artifact's checksum "
                            "envelope (exit 1 on corruption); repair = "
                            "quarantine corrupt artifacts and purge stale "
                            "temp litter; clear = delete all")
    cache.add_argument("--tier", choices=["memory", "disk"], default=None,
                       help="scope `clear` to one tier: the in-process "
                            "memory tier (T0 + digest cache) or the "
                            "on-disk artifact directory (default: both)")
    cache.add_argument("--dir", default=None,
                       help="store directory (default: REPRO_CACHE_DIR or "
                            "benchmarks/.cache)")
    cache.set_defaults(func=_cache)

    scenes = subparsers.add_parser("scenes", help="list benchmark scenes")
    scenes.set_defaults(func=_scenes)

    costs = subparsers.add_parser("costs", help="print the Table 2.1 cost model")
    _add_layout_arguments(costs)
    costs.set_defaults(func=_costs)

    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Mip Map pyramids (Williams, SIGGRAPH'83; paper Section 2).

A Mip Map represents a texture as an image pyramid: level 0 is the
original image and each subsequent level is a box-filtered, 2x
down-sampled version of its predecessor, ending at a 1x1 level.
Trilinear interpolation reads four texels from each of the two pyramid
levels bracketing the desired level of detail.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .image import TEXEL_NBYTES, TextureImage, log2_int


def downsample(texels: np.ndarray) -> np.ndarray:
    """Box-filter a ``(h, w, 4)`` uint8 image down by 2x per axis.

    Dimensions of 1 are preserved (non-square pyramids narrow one axis
    at a time, as in OpenGL).
    """
    height, width = texels.shape[:2]
    new_h = max(height // 2, 1)
    new_w = max(width // 2, 1)
    wide = texels.astype(np.uint16)
    if width > 1:
        wide = (wide[:, 0::2] + wide[:, 1::2] + 1) // 2
    if height > 1:
        wide = (wide[0::2, :] + wide[1::2, :] + 1) // 2
    result = wide.astype(np.uint8)
    assert result.shape[:2] == (new_h, new_w)
    return result


@dataclass
class MipMap:
    """A full image pyramid for one texture.

    Attributes
    ----------
    levels:
        List of ``(h, w, 4)`` uint8 arrays, level 0 first (most detailed).
    name:
        Inherited from the source :class:`TextureImage`.
    """

    levels: list
    name: str = "texture"

    @classmethod
    def build(cls, image: TextureImage) -> "MipMap":
        """Construct the pyramid for ``image`` down to 1x1."""
        levels = [image.texels]
        current = image.texels
        while current.shape[0] > 1 or current.shape[1] > 1:
            current = downsample(current)
            levels.append(current)
        return cls(levels=levels, name=image.name)

    @property
    def n_levels(self) -> int:
        """Number of pyramid levels, including the 1x1 top."""
        return len(self.levels)

    @property
    def max_level(self) -> int:
        """Index of the coarsest (1x1) level."""
        return len(self.levels) - 1

    def level_shape(self, level: int) -> tuple:
        """``(width, height)`` of ``level`` in texels."""
        texels = self.levels[level]
        return texels.shape[1], texels.shape[0]

    def level_log2(self, level: int) -> tuple:
        """``(log2(width), log2(height))`` of ``level``."""
        width, height = self.level_shape(level)
        return log2_int(width), log2_int(height)

    @property
    def nbytes(self) -> int:
        """Total pyramid storage in bytes (~4/3 the level-0 size)."""
        return sum(
            lvl.shape[0] * lvl.shape[1] * TEXEL_NBYTES for lvl in self.levels
        )

    def sample(self, level: int, tu: np.ndarray, tv: np.ndarray) -> np.ndarray:
        """Gather texel colors ``(n, 4) float`` at integer coords.

        Coordinates must already be wrapped into the level's range.
        """
        texels = self.levels[level]
        return texels[tv, tu].astype(np.float64)


def build_mipmaps(images) -> list:
    """Build a pyramid per image, preserving texture-id order."""
    return [MipMap.build(image) for image in images]

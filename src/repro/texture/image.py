"""Texture images.

A :class:`TextureImage` is a two-dimensional RGBA image with
power-of-two dimensions, the in-memory unit the paper's pipeline
texture-maps from.  The paper allocates 32 bits per texel (Section 4.1);
we store texels as ``uint8`` RGBA quadruples, i.e. 4 bytes per texel.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Bytes occupied by one texel (RGBA, 8 bits per component) -- Section 4.1.
TEXEL_NBYTES = 4


def is_power_of_two(value: int) -> bool:
    """Return True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Return log2 of a positive power of two, raising on other input."""
    if not is_power_of_two(value):
        raise ValueError(f"{value!r} is not a positive power of two")
    return value.bit_length() - 1


@dataclass
class TextureImage:
    """An RGBA texture image with power-of-two dimensions.

    Parameters
    ----------
    texels:
        ``(height, width, 4)`` uint8 array.  Indexed ``texels[tv, tu]``.
    name:
        Human-readable identifier used in scene statistics.
    """

    texels: np.ndarray
    name: str = "texture"

    def __post_init__(self) -> None:
        texels = np.asarray(self.texels)
        if texels.ndim != 3 or texels.shape[2] != 4:
            raise ValueError(
                f"texels must have shape (height, width, 4), got {texels.shape}"
            )
        if texels.dtype != np.uint8:
            raise ValueError(f"texels must be uint8, got {texels.dtype}")
        height, width = texels.shape[:2]
        if not (is_power_of_two(width) and is_power_of_two(height)):
            raise ValueError(
                f"texture dimensions must be powers of two, got {width}x{height}"
            )
        self.texels = texels

    @property
    def width(self) -> int:
        """Width in texels."""
        return self.texels.shape[1]

    @property
    def height(self) -> int:
        """Height in texels."""
        return self.texels.shape[0]

    @property
    def nbytes(self) -> int:
        """Storage for this single image (no mip levels), in bytes."""
        return self.width * self.height * TEXEL_NBYTES

    @classmethod
    def from_rgb(cls, rgb: np.ndarray, name: str = "texture") -> "TextureImage":
        """Build a texture from an ``(h, w, 3)`` RGB array, alpha = 255."""
        rgb = np.asarray(rgb, dtype=np.uint8)
        if rgb.ndim != 3 or rgb.shape[2] != 3:
            raise ValueError(f"rgb must have shape (h, w, 3), got {rgb.shape}")
        alpha = np.full(rgb.shape[:2] + (1,), 255, dtype=np.uint8)
        return cls(np.concatenate([rgb, alpha], axis=2), name=name)

    @classmethod
    def solid(
        cls, width: int, height: int, rgba=(128, 128, 128, 255), name: str = "solid"
    ) -> "TextureImage":
        """Build a constant-color texture (useful in tests)."""
        texels = np.empty((height, width, 4), dtype=np.uint8)
        texels[:, :] = np.asarray(rgba, dtype=np.uint8)
        return cls(texels, name=name)


@dataclass
class TextureSet:
    """An ordered collection of textures referenced by integer id.

    Triangle records in a :class:`repro.geometry.mesh.Mesh` carry texture
    ids that index into the scene's texture set.
    """

    textures: list = field(default_factory=list)

    def add(self, image: TextureImage) -> int:
        """Add ``image`` and return its texture id."""
        self.textures.append(image)
        return len(self.textures) - 1

    def __getitem__(self, texture_id: int) -> TextureImage:
        return self.textures[texture_id]

    def __len__(self) -> int:
        return len(self.textures)

    def __iter__(self):
        return iter(self.textures)

    @property
    def total_nbytes(self) -> int:
        """Total level-0 storage across all textures, in bytes."""
        return sum(t.nbytes for t in self.textures)

"""Texture memory representations (paper Sections 5.1-5.3, 6.2).

A *layout* maps a texel coordinate ``(level, tu, tv)`` within one
texture to a byte offset inside that texture's allocation.  The paper
studies five representations:

* :class:`WilliamsLayout` -- Williams' original scheme (Section 5.1):
  color components stored separately at power-of-two offsets inside a
  single 2W x 2H canvas holding the whole pyramid.  Reading one texel
  takes three separate accesses.
* :class:`NonblockedLayout` -- the paper's base representation
  (Section 5.2): RGBA packed per texel, each mip level its own
  row-major 2D array.
* :class:`BlockedLayout` -- the tiled 4D representation (Section 5.3):
  square bw x bh texel blocks stored consecutively.
* :class:`PaddedBlockedLayout` -- blocked plus pad blocks appended to
  each row of blocks so vertically-adjacent blocks cannot conflict
  (Section 6.2, Figure 6.3a).
* :class:`Blocked6DLayout` -- two-level blocking: square superblocks of
  blocks, superblock size matched to the cache size
  (Section 6.2, Figure 6.3b).

All address math follows the paper's shift/mask formulas, vectorized
over numpy arrays of texel coordinates.  Offsets are texel-indexed then
scaled by ``TEXEL_NBYTES`` (the paper's 32-bit texels).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from .image import TEXEL_NBYTES, is_power_of_two, log2_int


@dataclass(frozen=True)
class AddressingCost:
    """Per-texel addressing hardware cost (Table 2.1's 'texel address
    calculation' row, resolved per representation).

    ``shifts`` counts variable-amount shifts; ``const_shifts`` counts
    shifts whose amount is fixed by the (constant) block dimensions and
    are therefore free in hardware wiring terms; ``masks`` counts
    bitwise-AND extractions (also wiring).  ``accesses_per_texel`` is 3
    for Williams' separated components, 1 otherwise.
    """

    adds: int
    shifts: int
    const_shifts: int = 0
    masks: int = 0
    accesses_per_texel: int = 1


@dataclass
class PlacedLevel:
    """One mip level's placement inside a texture allocation.

    ``base`` is a byte offset relative to the texture's base address.
    ``meta`` carries layout-specific parameters (strides, block counts).
    """

    base: int
    width: int
    height: int
    meta: dict = field(default_factory=dict)


@dataclass
class TexturePlan:
    """A full texture placement: total allocation size plus one
    :class:`PlacedLevel` per mip level (level 0 first)."""

    total_nbytes: int
    levels: list


def _check_pow2_shape(width: int, height: int) -> None:
    if not (is_power_of_two(width) and is_power_of_two(height)):
        raise ValueError(f"level dimensions must be powers of two, got {width}x{height}")


class TextureLayout(ABC):
    """Maps texel coordinates to byte offsets within a texture."""

    name: str = "layout"
    accesses_per_texel: int = 1

    @abstractmethod
    def place_texture(self, level_shapes) -> TexturePlan:
        """Plan the allocation for a pyramid with ``level_shapes`` --
        a list of ``(width, height)`` pairs, level 0 first."""

    @abstractmethod
    def addresses(self, level: PlacedLevel, tu: np.ndarray, tv: np.ndarray) -> np.ndarray:
        """Byte offsets (relative to the texture base) for texel
        coordinates ``tu``, ``tv`` (already wrapped into the level's
        range).  Shape ``(n,)``, or ``(n, k)`` when the layout needs
        ``k > 1`` accesses per texel (Williams)."""

    @abstractmethod
    def addressing_cost(self) -> AddressingCost:
        """Hardware cost of one texel address calculation."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class NonblockedLayout(TextureLayout):
    """Base representation (Section 5.2): each level is a row-major 2D
    array of packed RGBA texels.

    ``Texel address = base + ((tv << lw) + tu) * 4`` where
    ``lw = log2(width)``.
    """

    name = "nonblocked"

    def place_texture(self, level_shapes) -> TexturePlan:
        levels = []
        offset = 0
        for width, height in level_shapes:
            _check_pow2_shape(width, height)
            levels.append(PlacedLevel(base=offset, width=width, height=height,
                                      meta={"lw": log2_int(width)}))
            offset += width * height * TEXEL_NBYTES
        return TexturePlan(total_nbytes=offset, levels=levels)

    def addresses(self, level: PlacedLevel, tu, tv):
        tu = np.asarray(tu, dtype=np.int64)
        tv = np.asarray(tv, dtype=np.int64)
        return level.base + ((tv << level.meta["lw"]) + tu) * TEXEL_NBYTES

    def addressing_cost(self) -> AddressingCost:
        return AddressingCost(adds=2, shifts=1)


class BlockedLayout(TextureLayout):
    """Tiled 4D representation (Section 5.3).

    Texels inside a ``block_w x block_h`` square are consecutive in
    memory; blocks are laid out row-major.  Levels smaller than one
    block are padded up to a full block (the paper keeps block
    dimensions fixed across all Mip Map levels).

    Paper formulas (Section 5.3.1)::

        bx = tu >> lbw;  by = tv >> lbh
        block address = base + (by << rs) + (bx << bs)
        sx = tu & (bw - 1);  sy = tv & (bh - 1)
        texel address = block address + (sy << lbw) + sx
    """

    name = "blocked"

    def __init__(self, block_w: int = 8, block_h: int = None):
        if block_h is None:
            block_h = block_w
        if not (is_power_of_two(block_w) and is_power_of_two(block_h)):
            raise ValueError("block dimensions must be powers of two")
        self.block_w = block_w
        self.block_h = block_h
        self.lbw = log2_int(block_w)
        self.lbh = log2_int(block_h)
        self.block_texels = block_w * block_h
        self.name = f"blocked{block_w}x{block_h}"

    @property
    def block_nbytes(self) -> int:
        """Memory occupied by one block of texels."""
        return self.block_texels * TEXEL_NBYTES

    def _blocks_across(self, width: int, height: int) -> tuple:
        blocks_per_row = max(width >> self.lbw, 1)
        block_rows = max(height >> self.lbh, 1)
        return blocks_per_row, block_rows

    def _row_pad_blocks(self, blocks_per_row: int) -> int:
        """Unused blocks appended to each block row (none here;
        overridden by :class:`PaddedBlockedLayout`)."""
        return 0

    def place_texture(self, level_shapes) -> TexturePlan:
        levels = []
        offset = 0
        for width, height in level_shapes:
            _check_pow2_shape(width, height)
            blocks_per_row, block_rows = self._blocks_across(width, height)
            row_stride_blocks = blocks_per_row + self._row_pad_blocks(blocks_per_row)
            levels.append(PlacedLevel(
                base=offset, width=width, height=height,
                meta={"blocks_per_row": blocks_per_row,
                      "row_stride_blocks": row_stride_blocks},
            ))
            offset += row_stride_blocks * block_rows * self.block_nbytes
        return TexturePlan(total_nbytes=offset, levels=levels)

    def addresses(self, level: PlacedLevel, tu, tv):
        tu = np.asarray(tu, dtype=np.int64)
        tv = np.asarray(tv, dtype=np.int64)
        bx = tu >> self.lbw
        by = tv >> self.lbh
        sx = tu & (self.block_w - 1)
        sy = tv & (self.block_h - 1)
        block_index = by * level.meta["row_stride_blocks"] + bx
        texel_index = block_index * self.block_texels + (sy << self.lbw) + sx
        return level.base + texel_index * TEXEL_NBYTES

    def addressing_cost(self) -> AddressingCost:
        # Two additions over the base representation (Section 5.3.1):
        # the block-address sum gains one add and the sub-block offset
        # another.  bs/lbw shifts are constant-amount; tu>>lbw and
        # tv>>lbh are likewise constant because block dims are fixed.
        return AddressingCost(adds=4, shifts=1, const_shifts=4, masks=2)


class PaddedBlockedLayout(BlockedLayout):
    """Blocked representation with pad blocks at the end of each block
    row (Section 6.2, Figure 6.3a) so that vertically-neighboring
    blocks never map to the same cache line.

    ``Texel address = blocked address + (by << ps)`` with
    ``ps = log2(bw * bh * pad_blocks)``; one extra addition per texel.
    """

    def __init__(self, block_w: int = 8, block_h: int = None, pad_blocks: int = 4):
        super().__init__(block_w, block_h)
        if not is_power_of_two(pad_blocks):
            raise ValueError("pad_blocks must be a power of two")
        self.pad_blocks = pad_blocks
        self.name = f"padded{self.block_w}x{self.block_h}+{pad_blocks}"

    def _row_pad_blocks(self, blocks_per_row: int) -> int:
        return self.pad_blocks

    def addressing_cost(self) -> AddressingCost:
        base = super().addressing_cost()
        return AddressingCost(adds=base.adds + 1, shifts=base.shifts,
                              const_shifts=base.const_shifts + 1, masks=base.masks)


class Blocked6DLayout(BlockedLayout):
    """Two-level ("6D") blocking (Section 6.2, Figure 6.3b).

    Square superblocks of ``S x S`` blocks are stored consecutively;
    ``S`` is chosen as the largest power of two such that a superblock
    occupies at most ``superblock_nbytes`` (the cache size), ensuring a
    square region of blocks maps into the cache without conflicts.
    """

    def __init__(self, block_w: int = 8, block_h: int = None,
                 superblock_nbytes: int = 32 * 1024):
        super().__init__(block_w, block_h)
        max_blocks = superblock_nbytes // self.block_nbytes
        if max_blocks < 1:
            raise ValueError("superblock smaller than one block")
        side = 1
        while (side * 2) * (side * 2) <= max_blocks:
            side *= 2
        self.super_side = side
        self.ls = log2_int(side)
        self.superblock_nbytes = superblock_nbytes
        self.name = f"blocked6d{self.block_w}x{self.block_h}/{side}"

    def place_texture(self, level_shapes) -> TexturePlan:
        levels = []
        offset = 0
        side = self.super_side
        for width, height in level_shapes:
            _check_pow2_shape(width, height)
            blocks_per_row, block_rows = self._blocks_across(width, height)
            supers_per_row = max((blocks_per_row + side - 1) // side, 1)
            super_rows = max((block_rows + side - 1) // side, 1)
            levels.append(PlacedLevel(
                base=offset, width=width, height=height,
                meta={"blocks_per_row": blocks_per_row,
                      "supers_per_row": supers_per_row},
            ))
            offset += supers_per_row * super_rows * side * side * self.block_nbytes
        return TexturePlan(total_nbytes=offset, levels=levels)

    def addresses(self, level: PlacedLevel, tu, tv):
        tu = np.asarray(tu, dtype=np.int64)
        tv = np.asarray(tv, dtype=np.int64)
        bx = tu >> self.lbw
        by = tv >> self.lbh
        sx = tu & (self.block_w - 1)
        sy = tv & (self.block_h - 1)
        super_x = bx >> self.ls
        super_y = by >> self.ls
        sub_bx = bx & (self.super_side - 1)
        sub_by = by & (self.super_side - 1)
        super_index = super_y * level.meta["supers_per_row"] + super_x
        block_index = (super_index << (2 * self.ls)) + (sub_by << self.ls) + sub_bx
        texel_index = block_index * self.block_texels + (sy << self.lbw) + sx
        return level.base + texel_index * TEXEL_NBYTES

    def addressing_cost(self) -> AddressingCost:
        base = BlockedLayout.addressing_cost(self)
        # Two extra additions over plain blocking (Section 6.2).
        return AddressingCost(adds=base.adds + 2, shifts=base.shifts,
                              const_shifts=base.const_shifts + 3, masks=base.masks + 2)


class WilliamsLayout(TextureLayout):
    """Williams' Mip Map arrangement (Section 5.1, Figure 5.1a).

    The whole pyramid lives in one ``2W x 2H`` canvas of 1-byte color
    components.  Level ``L`` occupies a square of side ``2 * W_L`` whose
    origin advances along the diagonal; within it the R, G, B component
    planes (each ``W_L x H_L``) sit in three quadrants and the next
    level nests in the fourth.  Component planes of one texel are
    separated by power-of-two strides -- the property the paper blames
    for cache conflicts -- and each texel read costs three accesses.
    """

    name = "williams"
    accesses_per_texel = 3

    def place_texture(self, level_shapes) -> TexturePlan:
        width0, height0 = level_shapes[0]
        _check_pow2_shape(width0, height0)
        canvas_w = 2 * width0
        canvas_h = 2 * height0
        levels = []
        origin_x = 0
        origin_y = 0
        for level_index, (width, height) in enumerate(level_shapes):
            _check_pow2_shape(width, height)
            levels.append(PlacedLevel(
                base=origin_y * canvas_w + origin_x,
                width=width, height=height,
                meta={"stride": canvas_w, "dx": width, "dy": height},
            ))
            origin_x += width
            origin_y += height
        return TexturePlan(total_nbytes=canvas_w * canvas_h, levels=levels)

    def addresses(self, level: PlacedLevel, tu, tv):
        tu = np.asarray(tu, dtype=np.int64)
        tv = np.asarray(tv, dtype=np.int64)
        stride = level.meta["stride"]
        red = level.base + tv * stride + tu
        green = red + level.meta["dx"]
        blue = red + level.meta["dy"] * stride
        return np.stack([red, green, blue], axis=-1)

    def addressing_cost(self) -> AddressingCost:
        # Three component addresses, each base + (tv << lw') + tu plus
        # the constant quadrant offset.
        return AddressingCost(adds=6, shifts=3, accesses_per_texel=3)


#: Layout registry keyed by a short construction spec, used by example
#: scripts and benchmark harnesses.
def make_layout(spec: str, **kwargs) -> TextureLayout:
    """Construct a layout from a short name.

    ``spec`` is one of ``nonblocked``, ``blocked``, ``padded``,
    ``blocked6d``, ``williams``; keyword arguments are forwarded to the
    layout constructor (``block_w``, ``pad_blocks``,
    ``superblock_nbytes``).
    """
    registry = {
        "nonblocked": NonblockedLayout,
        "blocked": BlockedLayout,
        "padded": PaddedBlockedLayout,
        "blocked6d": Blocked6DLayout,
        "williams": WilliamsLayout,
    }
    try:
        cls = registry[spec]
    except KeyError:
        raise ValueError(f"unknown layout {spec!r}; expected one of {sorted(registry)}") from None
    return cls(**kwargs)

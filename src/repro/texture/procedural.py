"""Procedural texture synthesis.

The paper's benchmark scenes use texture content we cannot redistribute
(SGI demo-suite satellite photos, building facades, wood grain).  Cache
behaviour depends only on *addresses*, not colors, but the renderer still
produces real images for visual verification, so these generators create
plausible stand-ins: value-noise "satellite terrain", brick facades, wood
grain, marble, and checkerboards.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

import numpy as np

from .image import TextureImage, is_power_of_two


def _lattice_noise(width: int, height: int, cell: int, rng: np.random.Generator):
    """Bilinearly-interpolated value noise on a ``cell``-spaced lattice.

    Returns a float array in [0, 1) of shape ``(height, width)``.
    """
    gw = max(width // cell, 1) + 1
    gh = max(height // cell, 1) + 1
    grid = rng.random((gh, gw))
    ys = np.arange(height) / cell
    xs = np.arange(width) / cell
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    fy = (ys - y0)[:, None]
    fx = xs - x0
    y0 = np.clip(y0, 0, gh - 2)
    x0 = np.clip(x0, 0, gw - 2)
    # Separable evaluation: interpolate along x on the (small) lattice
    # first, then gather and blend rows at full resolution.  Each output
    # element is the same float expression as the naive 2-D gather
    # (grid[y0, x0] * (1-fx) + ... per corner), so results are
    # bit-identical, but the full-size work drops from four gathers and
    # nine elementwise passes to two gathers and three passes.
    xinterp = grid[:, x0] * (1 - fx) + grid[:, x0 + 1] * fx
    out = xinterp[y0]
    out *= 1 - fy
    bottom = xinterp[y0 + 1]
    bottom *= fy
    out += bottom
    return out


def fractal_noise(
    width: int, height: int, octaves: int = 4, seed: int = 0
) -> np.ndarray:
    """Multi-octave value noise in [0, 1], shape ``(height, width)``."""
    rng = np.random.default_rng(seed)
    total = np.zeros((height, width))
    amplitude = 1.0
    norm = 0.0
    cell = max(min(width, height) // 4, 1)
    for _ in range(octaves):
        total += amplitude * _lattice_noise(width, height, max(cell, 1), rng)
        norm += amplitude
        amplitude *= 0.5
        cell = max(cell // 2, 1)
    return total / norm


def checkerboard(
    width: int,
    height: int,
    squares: int = 8,
    color_a=(220, 220, 220),
    color_b=(40, 40, 40),
    name: str = "checker",
) -> TextureImage:
    """A classic checkerboard, ``squares`` squares across each axis."""
    ys, xs = np.mgrid[0:height, 0:width]
    sq_w = max(width // squares, 1)
    sq_h = max(height // squares, 1)
    mask = ((xs // sq_w) + (ys // sq_h)) % 2 == 0
    rgb = np.where(mask[..., None], np.uint8(color_a), np.uint8(color_b))
    return TextureImage.from_rgb(rgb.astype(np.uint8), name=name)


def satellite(width: int, height: int, seed: int = 0, name: str = "satellite") -> TextureImage:
    """Terrain-photo stand-in: noise-driven green/brown/grey bands.

    Used by the Flight scene in place of the paper's satellite imagery.
    """
    elevation = fractal_noise(width, height, octaves=5, seed=seed)
    moisture = fractal_noise(width, height, octaves=4, seed=seed + 1)
    rgb = np.empty((height, width, 3))
    # Low elevation: vegetation green; mid: brown earth; high: grey rock.
    rgb[..., 0] = 60 + 140 * elevation
    rgb[..., 1] = 90 + 90 * moisture - 40 * elevation
    rgb[..., 2] = 40 + 120 * np.clip(elevation - 0.6, 0, 1)
    return TextureImage.from_rgb(np.clip(rgb, 0, 255).astype(np.uint8), name=name)


def brick(width: int, height: int, seed: int = 0, name: str = "brick") -> TextureImage:
    """Brick-wall facade stand-in used by the Town scene."""
    rng = np.random.default_rng(seed)
    brick_h = max(height // 16, 2)
    brick_w = max(width // 8, 2)
    ys, xs = np.mgrid[0:height, 0:width]
    row = ys // brick_h
    # Offset alternate courses by half a brick.
    col = (xs + (row % 2) * (brick_w // 2)) // brick_w
    mortar = ((ys % brick_h) < 1) | (((xs + (row % 2) * (brick_w // 2)) % brick_w) < 1)
    base = np.array([110.0, 45.0, 32.0])
    variation = rng.random((row.max() + 1, col.max() + 1))
    tint = variation[row, col]
    rgb = np.empty((height, width, 3))
    for channel in range(3):
        rgb[..., channel] = base[channel] + 50 * tint
    rgb[mortar] = (190, 185, 175)
    return TextureImage.from_rgb(np.clip(rgb, 0, 255).astype(np.uint8), name=name)


def wood(width: int, height: int, seed: int = 0, name: str = "wood") -> TextureImage:
    """Wood-grain stand-in used by the Guitar scene."""
    noise = fractal_noise(width, height, octaves=4, seed=seed)
    xs = np.arange(width)[None, :]
    rings = np.sin((xs / width * 18.0 + 4.0 * noise) * np.pi)
    shade = 0.5 + 0.5 * rings
    rgb = np.empty((height, width, 3))
    rgb[..., 0] = 110 + 70 * shade
    rgb[..., 1] = 60 + 45 * shade
    rgb[..., 2] = 25 + 25 * shade
    return TextureImage.from_rgb(np.clip(rgb, 0, 255).astype(np.uint8), name=name)


def marble(width: int, height: int, seed: int = 0, name: str = "marble") -> TextureImage:
    """Marble stand-in used by the Goblet scene."""
    noise = fractal_noise(width, height, octaves=5, seed=seed)
    ys = np.arange(height)[:, None]
    veins = np.abs(np.sin((ys / height * 6.0 + 5.0 * noise) * np.pi))
    shade = 1.0 - 0.7 * veins**3
    rgb = np.empty((height, width, 3))
    rgb[..., 0] = 235 * shade
    rgb[..., 1] = 230 * shade
    rgb[..., 2] = 225 * shade
    return TextureImage.from_rgb(np.clip(rgb, 0, 255).astype(np.uint8), name=name)


def gradient(width: int, height: int, name: str = "gradient") -> TextureImage:
    """A horizontal+vertical gradient; handy for debugging orientation."""
    ys, xs = np.mgrid[0:height, 0:width]
    rgb = np.empty((height, width, 3))
    rgb[..., 0] = 255 * xs / max(width - 1, 1)
    rgb[..., 1] = 255 * ys / max(height - 1, 1)
    rgb[..., 2] = 128
    return TextureImage.from_rgb(rgb.astype(np.uint8), name=name)


_GENERATORS = {
    "checker": checkerboard,
    "satellite": satellite,
    "brick": brick,
    "wood": wood,
    "marble": marble,
}


def make_texture(kind: str, width: int, height: int, seed: int = 0) -> TextureImage:
    """Dispatch to a named generator; ``kind`` is one of

    ``checker``, ``satellite``, ``brick``, ``wood``, ``marble``.
    """
    if not (is_power_of_two(width) and is_power_of_two(height)):
        raise ValueError("texture dimensions must be powers of two")
    try:
        generator = _GENERATORS[kind]
    except KeyError:
        raise ValueError(
            f"unknown texture kind {kind!r}; expected one of {sorted(_GENERATORS)}"
        ) from None
    if kind == "checker":
        return generator(width, height, name=f"{kind}-{seed}")
    return generator(width, height, seed=seed, name=f"{kind}-{seed}")

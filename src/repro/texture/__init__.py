"""Texture substrate: images, mip maps, memory representations,
allocation, and filtering (paper Sections 2, 4.1, 5, 6.2)."""

from .image import TEXEL_NBYTES, TextureImage, TextureSet, is_power_of_two, log2_int
from .mipmap import MipMap, build_mipmaps, downsample
from .layout import (
    AddressingCost,
    Blocked6DLayout,
    BlockedLayout,
    NonblockedLayout,
    PaddedBlockedLayout,
    PlacedLevel,
    TextureLayout,
    TexturePlan,
    WilliamsLayout,
    make_layout,
)
from .memory import AddressMapper, PlacedTexture, TextureMemory, place_textures
from .filtering import (
    KIND_BILINEAR,
    KIND_LOWER,
    KIND_UPPER,
    TexelAccesses,
    filter_colors,
    generate_accesses,
)
from .compression import (
    VQCompressedLayout,
    VQTexture,
    compress,
    decompress,
)
from .rendertarget import framebuffer_to_texture, flush_for_texture_update
from . import procedural

__all__ = [
    "TEXEL_NBYTES",
    "TextureImage",
    "TextureSet",
    "is_power_of_two",
    "log2_int",
    "MipMap",
    "build_mipmaps",
    "downsample",
    "AddressingCost",
    "TextureLayout",
    "NonblockedLayout",
    "BlockedLayout",
    "PaddedBlockedLayout",
    "Blocked6DLayout",
    "WilliamsLayout",
    "PlacedLevel",
    "TexturePlan",
    "make_layout",
    "AddressMapper",
    "PlacedTexture",
    "TextureMemory",
    "place_textures",
    "KIND_BILINEAR",
    "KIND_LOWER",
    "KIND_UPPER",
    "TexelAccesses",
    "filter_colors",
    "generate_accesses",
    "VQCompressedLayout",
    "VQTexture",
    "compress",
    "decompress",
    "framebuffer_to_texture",
    "flush_for_texture_update",
    "procedural",
]

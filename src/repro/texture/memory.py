"""Texture memory allocation.

The paper assigns textures memory "using the malloc() system call"
(Section 4.1) and allocates 32 bits per texel.  :class:`TextureMemory`
is the equivalent substrate: a flat byte address space with a bump
allocator.  Because texture array dimensions are powers of two, the
resulting placements reproduce the power-of-two address relationships
responsible for the paper's conflict-miss behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layout import TextureLayout, TexturePlan
from .mipmap import MipMap


@dataclass
class PlacedTexture:
    """One texture pyramid placed in memory under a given layout."""

    texture_id: int
    base: int
    plan: TexturePlan
    layout: TextureLayout

    @property
    def total_nbytes(self) -> int:
        """Bytes occupied by this texture's allocation."""
        return self.plan.total_nbytes

    @property
    def n_levels(self) -> int:
        return len(self.plan.levels)

    def addresses(self, level: int, tu: np.ndarray, tv: np.ndarray) -> np.ndarray:
        """Absolute byte addresses for texels of mip ``level``.

        Returns shape ``(n,)`` or ``(n, k)`` for multi-access layouts.
        """
        placed_level = self.plan.levels[level]
        return self.base + self.layout.addresses(placed_level, tu, tv)


class TextureMemory:
    """A flat texture address space with a bump allocator.

    Parameters
    ----------
    alignment:
        Allocation alignment in bytes.  The default, 16, mimics a
        typical ``malloc``; conflict behaviour is dominated by the
        power-of-two array dimensions, not the base alignment.
    """

    def __init__(self, alignment: int = 16):
        if alignment < 1:
            raise ValueError("alignment must be >= 1")
        self.alignment = alignment
        self._next_free = 0
        self.placements = []

    def alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes`` and return the base address."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        base = -(-self._next_free // self.alignment) * self.alignment
        self._next_free = base + nbytes
        return base

    @property
    def used_nbytes(self) -> int:
        """High-water mark of the address space."""
        return self._next_free

    def place(self, mipmap: MipMap, layout: TextureLayout, texture_id: int = None) -> PlacedTexture:
        """Allocate and place a mip pyramid under ``layout``."""
        shapes = [mipmap.level_shape(level) for level in range(mipmap.n_levels)]
        plan = layout.place_texture(shapes)
        base = self.alloc(plan.total_nbytes)
        if texture_id is None:
            texture_id = len(self.placements)
        placed = PlacedTexture(texture_id=texture_id, base=base, plan=plan, layout=layout)
        self.placements.append(placed)
        return placed


#: Stride separating texture ids in the packed (texture, level) group
#: key; mip chains never exceed 64 levels.
_LEVEL_STRIDE = 64


class AddressMapper:
    """Vectorized (texture id, level, tu, tv) -> byte-address mapping.

    Groups accesses by (texture, level) with a single stable argsort --
    one O(n log n) pass regardless of how many (texture, level) pairs
    the trace touches -- and dispatches each group to its placement's
    layout formula.  Shared by
    :meth:`repro.pipeline.trace.TexelTrace.byte_addresses` and the
    :mod:`repro.core` callers that remap sub-traces, so the grouping
    logic lives in exactly one place.
    """

    def __init__(self, placements):
        self.placements = list(placements)
        self.accesses_per_texel = (
            self.placements[0].layout.accesses_per_texel
            if self.placements else 1)

    def map(self, texture_id: np.ndarray, level: np.ndarray,
            tu: np.ndarray, tv: np.ndarray) -> np.ndarray:
        """Byte addresses in input order; shape ``(n,)`` or ``(n, k)``
        for layouts needing ``k`` accesses per texel."""
        n = len(texture_id)
        k = self.accesses_per_texel
        addresses = np.empty((n,) if k == 1 else (n, k), dtype=np.int64)
        if n == 0:
            return addresses
        group_key = texture_id.astype(np.int64) * _LEVEL_STRIDE + level
        # Group keys are bounded by textures * 64 levels, far below
        # 2**16, so numpy's radix sort applies (stable mergesort on
        # int64 keys cost several times more and dominated mapping).
        from ..core.kernels import _argsort_bounded
        order = _argsort_bounded(group_key,
                                 len(self.placements) * _LEVEL_STRIDE)
        sorted_key = group_key[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sorted_key[1:] != sorted_key[:-1])))
        if len(starts) == 1:
            # One (texture, level) group: the gather/scatter through
            # ``order`` would be the identity permutation's worth of
            # work, and per-element address formulas make it a no-op.
            texture, level_index = divmod(int(sorted_key[0]), _LEVEL_STRIDE)
            addresses[...] = self.placements[texture].addresses(
                level_index, tu, tv)
            return addresses
        bounds = np.append(starts, n)
        for begin, end in zip(bounds[:-1], bounds[1:]):
            rows = order[begin:end]
            texture, level_index = divmod(int(sorted_key[begin]), _LEVEL_STRIDE)
            addresses[rows] = self.placements[texture].addresses(
                level_index, tu[rows], tv[rows])
        return addresses

    def map_trace(self, trace) -> np.ndarray:
        """Map a :class:`~repro.pipeline.trace.TexelTrace` (or any
        object with the same columns), keeping the per-texel shape."""
        return self.map(trace.texture_id, trace.level, trace.tu, trace.tv)


def place_textures(mipmaps, layout: TextureLayout, alignment: int = 16) -> list:
    """Place every pyramid in ``mipmaps`` into a fresh address space.

    Returns placements in texture-id order.  This is the entry point
    used to re-map one rendered texel trace onto different memory
    representations without re-rendering.
    """
    memory = TextureMemory(alignment=alignment)
    return [memory.place(mm, layout, texture_id=i) for i, mm in enumerate(mipmaps)]

"""Texture memory allocation.

The paper assigns textures memory "using the malloc() system call"
(Section 4.1) and allocates 32 bits per texel.  :class:`TextureMemory`
is the equivalent substrate: a flat byte address space with a bump
allocator.  Because texture array dimensions are powers of two, the
resulting placements reproduce the power-of-two address relationships
responsible for the paper's conflict-miss behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layout import TextureLayout, TexturePlan
from .mipmap import MipMap


@dataclass
class PlacedTexture:
    """One texture pyramid placed in memory under a given layout."""

    texture_id: int
    base: int
    plan: TexturePlan
    layout: TextureLayout

    @property
    def total_nbytes(self) -> int:
        """Bytes occupied by this texture's allocation."""
        return self.plan.total_nbytes

    @property
    def n_levels(self) -> int:
        return len(self.plan.levels)

    def addresses(self, level: int, tu: np.ndarray, tv: np.ndarray) -> np.ndarray:
        """Absolute byte addresses for texels of mip ``level``.

        Returns shape ``(n,)`` or ``(n, k)`` for multi-access layouts.
        """
        placed_level = self.plan.levels[level]
        return self.base + self.layout.addresses(placed_level, tu, tv)


class TextureMemory:
    """A flat texture address space with a bump allocator.

    Parameters
    ----------
    alignment:
        Allocation alignment in bytes.  The default, 16, mimics a
        typical ``malloc``; conflict behaviour is dominated by the
        power-of-two array dimensions, not the base alignment.
    """

    def __init__(self, alignment: int = 16):
        if alignment < 1:
            raise ValueError("alignment must be >= 1")
        self.alignment = alignment
        self._next_free = 0
        self.placements = []

    def alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes`` and return the base address."""
        if nbytes < 0:
            raise ValueError("cannot allocate a negative size")
        base = -(-self._next_free // self.alignment) * self.alignment
        self._next_free = base + nbytes
        return base

    @property
    def used_nbytes(self) -> int:
        """High-water mark of the address space."""
        return self._next_free

    def place(self, mipmap: MipMap, layout: TextureLayout, texture_id: int = None) -> PlacedTexture:
        """Allocate and place a mip pyramid under ``layout``."""
        shapes = [mipmap.level_shape(level) for level in range(mipmap.n_levels)]
        plan = layout.place_texture(shapes)
        base = self.alloc(plan.total_nbytes)
        if texture_id is None:
            texture_id = len(self.placements)
        placed = PlacedTexture(texture_id=texture_id, base=base, plan=plan, layout=layout)
        self.placements.append(placed)
        return placed


def place_textures(mipmaps, layout: TextureLayout, alignment: int = 16) -> list:
    """Place every pyramid in ``mipmaps`` into a fresh address space.

    Returns placements in texture-id order.  This is the entry point
    used to re-map one rendered texel trace onto different memory
    representations without re-rendering.
    """
    memory = TextureMemory(alignment=alignment)
    return [memory.place(mm, layout, texture_id=i) for i, mm in enumerate(mipmaps)]

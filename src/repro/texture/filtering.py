"""Texture filtering: trilinear / bilinear sample generation.

The paper's fragment generator performs OpenGL-style filtering
(Section 2): given per-fragment texture coordinates ``(u, v)`` and a
screen-pixel-to-texel ratio ``d`` (here expressed as ``lod = log2(d)``),

* ``lod > 0`` -- *trilinear* interpolation: the weighted average of the
  eight texels closest to ``(u, v, d)``, four from each of the two mip
  levels bracketing ``d``;
* ``lod <= 0`` (magnification) -- *bilinear* interpolation: four texels
  from level 0.

:func:`generate_accesses` produces the exact texel access stream
(the cache-simulator input); :func:`filter_colors` performs the actual
color arithmetic for image output.  Access order within a fragment is
the paper's: the four lower-level (more detailed) texels first, then
the four upper-level texels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Access-kind codes recorded per texel fetch, used by the Section 3.1.2
#: locality metrics (accesses per texel for lower / upper / bilinear).
KIND_BILINEAR = 0
KIND_LOWER = 1
KIND_UPPER = 2

KIND_NAMES = {KIND_BILINEAR: "bilinear", KIND_LOWER: "lower", KIND_UPPER: "upper"}


@dataclass
class TexelAccesses:
    """A flat, ordered stream of texel fetches for one batch of
    fragments.  All arrays share length ``n_accesses``.

    ``tu``/``tv`` are wrapped into the level's range (GL_REPEAT);
    ``tu_raw``/``tv_raw`` are pre-wrap coordinates, kept so the texture
    repetition factor (Section 3.1.2) can be measured.
    """

    level: np.ndarray
    tu: np.ndarray
    tv: np.ndarray
    tu_raw: np.ndarray
    tv_raw: np.ndarray
    kind: np.ndarray
    fragment_index: np.ndarray

    @property
    def n_accesses(self) -> int:
        return len(self.level)


def _level_dims(width0, height0, levels: np.ndarray) -> tuple:
    """Per-fragment level dimensions, clamped at 1.

    ``width0``/``height0`` may be scalars (one texture) or per-fragment
    arrays (a multi-texture fragment stream); the arithmetic is
    elementwise either way.
    """
    widths = np.maximum(width0 >> levels, 1)
    heights = np.maximum(height0 >> levels, 1)
    return widths, heights


def _corner_coords(u, v, widths, heights):
    """The 2x2 bilinear footprint at per-fragment level dims.

    Returns raw (unwrapped) integer coordinate arrays of shape
    ``(n, 4)`` ordered (i0,j0), (i1,j0), (i0,j1), (i1,j1).
    """
    x = u * widths - 0.5
    y = v * heights - 0.5
    i0 = np.floor(x).astype(np.int64)
    j0 = np.floor(y).astype(np.int64)
    tu_raw = np.stack([i0, i0 + 1, i0, i0 + 1], axis=1)
    tv_raw = np.stack([j0, j0, j0 + 1, j0 + 1], axis=1)
    return tu_raw, tv_raw


def _wrap(raw, dims):
    """GL_REPEAT wrap: power-of-two dims allow a mask."""
    return raw & (dims - 1)


def generate_accesses(
    u: np.ndarray,
    v: np.ndarray,
    lod: np.ndarray,
    n_levels: int,
    width0: int,
    height0: int,
) -> TexelAccesses:
    """Generate the texel fetch stream for fragments in order.

    Parameters
    ----------
    u, v:
        Normalized texture coordinates (may exceed [0, 1): GL_REPEAT).
    lod:
        Per-fragment level of detail, ``log2`` of the screen-pixel to
        texel ratio.
    n_levels, width0, height0:
        Pyramid geometry of the texture being sampled: scalars for a
        single texture, or per-fragment arrays for a mixed-texture
        fragment stream (the batched renderer).  Every computation is
        elementwise, so the two spellings produce bit-identical
        accesses fragment by fragment.

    Returns
    -------
    TexelAccesses
        Eight accesses per trilinear fragment (lower level first), four
        per magnified (bilinear) fragment, concatenated in fragment
        order.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    lod = np.asarray(lod, dtype=np.float64)
    n = len(u)
    max_level = n_levels - 1

    trilinear = lod > 0.0
    lower = np.clip(np.floor(lod), 0, max_level).astype(np.int64)
    lower = np.where(trilinear, lower, 0)
    upper = np.minimum(lower + 1, max_level)

    lo_w, lo_h = _level_dims(width0, height0, lower)
    hi_w, hi_h = _level_dims(width0, height0, upper)

    if trilinear.all():
        # Every fragment emits all eight accesses: assemble (n, 8)
        # tables -- lower-level quad then upper-level quad -- by direct
        # column writes in the *output* dtypes, so the flatten is a
        # zero-copy reshape.  Keeping the tables at output width
        # (int32/int16/uint8 rather than int64) halves the pages the
        # kernel touches; the int64 -> int32 assignment casts truncate
        # exactly like the reference's later ``astype`` did.
        tu_raw = np.empty((n, 8), dtype=np.int32)
        tv_raw = np.empty((n, 8), dtype=np.int32)
        tu_wrapped = np.empty((n, 8), dtype=np.int32)
        tv_wrapped = np.empty((n, 8), dtype=np.int32)
        level8 = np.empty((n, 8), dtype=np.int16)
        for base, widths, heights, levels in ((0, lo_w, lo_h, lower),
                                              (4, hi_w, hi_h, upper)):
            i0 = np.floor(u * widths - 0.5).astype(np.int64)
            j0 = np.floor(v * heights - 0.5).astype(np.int64)
            i1 = i0 + 1
            j1 = j0 + 1
            quad = slice(base, base + 4)
            tu_raw[:, base] = i0
            tu_raw[:, base + 1] = i1
            tu_raw[:, base + 2] = i0
            tu_raw[:, base + 3] = i1
            tv_raw[:, base] = j0
            tv_raw[:, base + 1] = j0
            tv_raw[:, base + 2] = j1
            tv_raw[:, base + 3] = j1
            # Power-of-two wrap commutes with the int32 truncation:
            # the mask is < 2**31, so (x & mask) keeps only low bits
            # either way.
            tu_wrapped[:, quad] = (tu_raw[:, quad]
                                   & (widths - 1).astype(np.int32)[:, None])
            tv_wrapped[:, quad] = (tv_raw[:, quad]
                                   & (heights - 1).astype(np.int32)[:, None])
            level8[:, quad] = levels[:, None]
        kind8 = np.empty((n, 8), dtype=np.uint8)
        kind8[:, :4] = KIND_LOWER
        kind8[:, 4:] = KIND_UPPER
        return TexelAccesses(
            level=level8.reshape(-1),
            tu=tu_wrapped.reshape(-1),
            tv=tv_wrapped.reshape(-1),
            tu_raw=tu_raw.reshape(-1),
            tv_raw=tv_raw.reshape(-1),
            kind=kind8.reshape(-1),
            fragment_index=np.repeat(np.arange(n, dtype=np.int64), 8),
        )

    # Mixed trilinear/bilinear: magnified fragments emit only the lower
    # quad.  Rather than assembling dense (n, 8) tables and gathering
    # the sparse subset, treat the output as a sequence of emitted
    # *quads* -- each fragment contributes its lower quad and, when
    # trilinear, its upper quad, so every column is a per-quad value
    # (from interleaved (lower, upper) per-fragment pair tables)
    # expanded four ways, plus fixed 4-periodic slot bits advancing
    # i and j.  All per-access arithmetic runs at the output width
    # (int32): the int64 -> int32 assignment into the pair tables
    # truncates exactly like the reference's ``astype``,
    # two's-complement ``+ 1`` commutes with that truncation, and the
    # power-of-two wrap mask (< 2**31) keeps only low bits either way.
    i0_lo = np.floor(u * lo_w - 0.5).astype(np.int64)
    j0_lo = np.floor(v * lo_h - 0.5).astype(np.int64)
    i0_hi = np.floor(u * hi_w - 0.5).astype(np.int64)
    j0_hi = np.floor(v * hi_h - 0.5).astype(np.int64)

    def pairs(lo_values, hi_values, dtype=np.int32):
        table = np.empty((n, 2), dtype=dtype)
        table[:, 0] = lo_values
        table[:, 1] = hi_values
        return table.ravel()

    # Emission always covers whole quads, so every per-access column is
    # a per-quad value expanded four ways (plus the fixed 4-periodic
    # slot bits for i/j).  Selecting emitted quads first keeps the
    # gathers at quad granularity -- a quarter of the access count.
    # ``qidx`` stays at the platform intp width: it indexes six
    # gathers, and numpy re-casts narrower fancy indices on every one.
    qemit = np.empty((n, 2), dtype=bool)
    qemit[:, 0] = True
    qemit[:, 1] = trilinear
    qidx = np.flatnonzero(qemit.ravel())

    def quad(values):
        # Expand a per-quad column to its four accesses.
        return np.repeat(values, 4)

    # Broadcast the slot bits against per-quad (nq, 1) columns: each
    # output is one fused pass over an (nq, 4) block whose C-order
    # ravel is already the flat access stream (a free view), instead
    # of separate repeat + tile + op passes over the full stream.
    bits_i = np.array([0, 1, 0, 1], dtype=np.int32)
    bits_j = np.array([0, 0, 1, 1], dtype=np.int32)
    tu_raw = pairs(i0_lo, i0_hi)[qidx][:, None] + bits_i
    tv_raw = pairs(j0_lo, j0_hi)[qidx][:, None] + bits_j
    return TexelAccesses(
        level=quad(pairs(lower, upper, dtype=np.int16)[qidx]),
        tu=(tu_raw & pairs(lo_w - 1, hi_w - 1)[qidx][:, None]).reshape(-1),
        tv=(tv_raw & pairs(lo_h - 1, hi_h - 1)[qidx][:, None]).reshape(-1),
        tu_raw=tu_raw.reshape(-1),
        tv_raw=tv_raw.reshape(-1),
        kind=quad(pairs(np.where(trilinear, KIND_LOWER, KIND_BILINEAR),
                        KIND_UPPER, dtype=np.uint8)[qidx]),
        fragment_index=quad(qidx >> 1),
    )


def generate_accesses_aniso(
    u: np.ndarray,
    v: np.ndarray,
    dudx: np.ndarray,
    dvdx: np.ndarray,
    dudy: np.ndarray,
    dvdy: np.ndarray,
    n_levels: int,
    width0: int,
    height0: int,
    max_aniso: int = 4,
) -> TexelAccesses:
    """Anisotropic filtering access generation (GPU-style extension).

    The paper's trilinear filter assumes a roughly square pixel
    footprint in texture space; at grazing angles (the Flight terrain)
    the footprint is a long ellipse and trilinear either blurs (lod
    from the major axis) or aliases.  Anisotropic filtering takes up to
    ``max_aniso`` trilinear probes spaced along the major axis, each at
    the *minor*-axis level of detail -- multiplying texture traffic by
    the probe count, which is exactly the cache-pressure question this
    library exists to answer.

    Derivatives are in texel units (as produced by the rasterizer).
    Returns the concatenated probe accesses in fragment order;
    ``fragment_index`` maps each access back to its source fragment.
    Like :func:`generate_accesses`, the pyramid geometry arguments may
    be scalars or per-fragment arrays.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    probes, lod, step_u, step_v = _aniso_setup(
        dudx, dvdx, dudy, dvdy, width0, height0, max_aniso)

    # One flat probe index: probe j of fragment i sits at position
    # starts[i] + j, so the output is already in (fragment, probe)
    # order -- no per-count loop, no stitch sort.
    n = len(u)
    owner = np.repeat(np.arange(n, dtype=np.int64), probes)
    starts = np.cumsum(probes) - probes
    j = np.arange(len(owner), dtype=np.int64) - starts[owner]
    count = probes[owner]
    offsets = (j + 0.5) / count - 0.5
    accesses = generate_accesses(
        u[owner] + offsets * step_u[owner],
        v[owner] + offsets * step_v[owner],
        lod[owner],
        _per_probe(n_levels, owner),
        _per_probe(width0, owner),
        _per_probe(height0, owner),
    )
    accesses.fragment_index = owner[accesses.fragment_index]
    return accesses


def _aniso_setup(dudx, dvdx, dudy, dvdy, width0, height0, max_aniso):
    """Probe count, probe lod and major-axis step per fragment."""
    rho_x = np.hypot(np.asarray(dudx, float), np.asarray(dvdx, float))
    rho_y = np.hypot(np.asarray(dudy, float), np.asarray(dvdy, float))
    rho_max = np.maximum(np.maximum(rho_x, rho_y), 1e-12)
    rho_min = np.maximum(np.minimum(rho_x, rho_y), 1e-12)
    probes = np.clip(np.ceil(rho_max / rho_min), 1, max_aniso).astype(np.int64)
    lod = np.log2(np.maximum(rho_max / probes, 1e-12))

    # Major-axis step vector in normalized uv units.
    x_major = rho_x >= rho_y
    step_u = np.where(x_major, np.asarray(dudx, float), np.asarray(dudy, float)) / width0
    step_v = np.where(x_major, np.asarray(dvdx, float), np.asarray(dvdy, float)) / height0
    return probes, lod, step_u, step_v


def _per_probe(value, owner):
    """Broadcast a scalar through, gather an array by probe owner."""
    array = np.asarray(value)
    return array if array.ndim == 0 else array[owner]


def _generate_accesses_aniso_looped(
    u, v, dudx, dvdx, dudy, dvdy, n_levels, width0, height0, max_aniso=4
) -> TexelAccesses:
    """The original per-(probe count, offset) loop over masked subsets,
    kept (scalar geometry only) as the equivalence oracle for the flat
    probe index in :func:`generate_accesses_aniso`."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    probes, lod, step_u, step_v = _aniso_setup(
        dudx, dvdx, dudy, dvdy, width0, height0, max_aniso)

    pieces = []
    for count in np.unique(probes):
        mask = probes == count
        offsets = (np.arange(count) + 0.5) / count - 0.5
        for offset in offsets:
            accesses = generate_accesses(
                u[mask] + offset * step_u[mask],
                v[mask] + offset * step_v[mask],
                lod[mask], n_levels, width0, height0,
            )
            owners = np.nonzero(mask)[0]
            pieces.append((owners[accesses.fragment_index], accesses))

    if not pieces:
        return generate_accesses(u, v, lod, n_levels, width0, height0)

    # Stitch the probe pieces back into fragment order.
    owner = np.concatenate([owners for owners, _ in pieces])
    order = np.argsort(owner, kind="stable")
    def gather(field):
        return np.concatenate([getattr(acc, field) for _, acc in pieces])[order]
    return TexelAccesses(
        level=gather("level"),
        tu=gather("tu"),
        tv=gather("tv"),
        tu_raw=gather("tu_raw"),
        tv_raw=gather("tv_raw"),
        kind=gather("kind"),
        fragment_index=owner[order],
    )


def _bilinear_colors(mipmap, levels, u, v):
    """Per-fragment bilinear color at per-fragment ``levels``."""
    n = len(u)
    colors = np.zeros((n, 4), dtype=np.float64)
    widths, heights = _level_dims(mipmap.level_shape(0)[0], mipmap.level_shape(0)[1], levels)
    x = u * widths - 0.5
    y = v * heights - 0.5
    i0 = np.floor(x).astype(np.int64)
    j0 = np.floor(y).astype(np.int64)
    fx = x - i0
    fy = y - j0
    weights = [
        (1 - fx) * (1 - fy),
        fx * (1 - fy),
        (1 - fx) * fy,
        fx * fy,
    ]
    corners = [(i0, j0), (i0 + 1, j0), (i0, j0 + 1), (i0 + 1, j0 + 1)]
    for level in np.unique(levels):
        mask = levels == level
        for (ci, cj), weight in zip(corners, weights):
            tu = _wrap(ci[mask], widths[mask])
            tv = _wrap(cj[mask], heights[mask])
            colors[mask] += weight[mask, None] * mipmap.sample(int(level), tu, tv)
    return colors


def filter_colors(mipmap, u, v, lod) -> np.ndarray:
    """Trilinear/bilinear filtered RGBA colors, shape ``(n, 4)`` float
    in [0, 255].  Matches the access pattern of
    :func:`generate_accesses`."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    lod = np.asarray(lod, dtype=np.float64)
    max_level = mipmap.max_level

    trilinear = lod > 0.0
    lower = np.clip(np.floor(lod), 0, max_level).astype(np.int64)
    lower = np.where(trilinear, lower, 0)
    upper = np.minimum(lower + 1, max_level)
    frac = np.where(trilinear, np.clip(lod - lower, 0.0, 1.0), 0.0)

    lower_color = _bilinear_colors(mipmap, lower, u, v)
    upper_color = _bilinear_colors(mipmap, upper, u, v)
    return lower_color * (1 - frac[:, None]) + upper_color * frac[:, None]

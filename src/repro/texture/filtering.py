"""Texture filtering: trilinear / bilinear sample generation.

The paper's fragment generator performs OpenGL-style filtering
(Section 2): given per-fragment texture coordinates ``(u, v)`` and a
screen-pixel-to-texel ratio ``d`` (here expressed as ``lod = log2(d)``),

* ``lod > 0`` -- *trilinear* interpolation: the weighted average of the
  eight texels closest to ``(u, v, d)``, four from each of the two mip
  levels bracketing ``d``;
* ``lod <= 0`` (magnification) -- *bilinear* interpolation: four texels
  from level 0.

:func:`generate_accesses` produces the exact texel access stream
(the cache-simulator input); :func:`filter_colors` performs the actual
color arithmetic for image output.  Access order within a fragment is
the paper's: the four lower-level (more detailed) texels first, then
the four upper-level texels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Access-kind codes recorded per texel fetch, used by the Section 3.1.2
#: locality metrics (accesses per texel for lower / upper / bilinear).
KIND_BILINEAR = 0
KIND_LOWER = 1
KIND_UPPER = 2

KIND_NAMES = {KIND_BILINEAR: "bilinear", KIND_LOWER: "lower", KIND_UPPER: "upper"}


@dataclass
class TexelAccesses:
    """A flat, ordered stream of texel fetches for one batch of
    fragments.  All arrays share length ``n_accesses``.

    ``tu``/``tv`` are wrapped into the level's range (GL_REPEAT);
    ``tu_raw``/``tv_raw`` are pre-wrap coordinates, kept so the texture
    repetition factor (Section 3.1.2) can be measured.
    """

    level: np.ndarray
    tu: np.ndarray
    tv: np.ndarray
    tu_raw: np.ndarray
    tv_raw: np.ndarray
    kind: np.ndarray
    fragment_index: np.ndarray

    @property
    def n_accesses(self) -> int:
        return len(self.level)


def _level_dims(width0: int, height0: int, levels: np.ndarray) -> tuple:
    """Per-fragment level dimensions, clamped at 1."""
    widths = np.maximum(width0 >> levels, 1)
    heights = np.maximum(height0 >> levels, 1)
    return widths, heights


def _corner_coords(u, v, widths, heights):
    """The 2x2 bilinear footprint at per-fragment level dims.

    Returns raw (unwrapped) integer coordinate arrays of shape
    ``(n, 4)`` ordered (i0,j0), (i1,j0), (i0,j1), (i1,j1).
    """
    x = u * widths - 0.5
    y = v * heights - 0.5
    i0 = np.floor(x).astype(np.int64)
    j0 = np.floor(y).astype(np.int64)
    tu_raw = np.stack([i0, i0 + 1, i0, i0 + 1], axis=1)
    tv_raw = np.stack([j0, j0, j0 + 1, j0 + 1], axis=1)
    return tu_raw, tv_raw


def _wrap(raw, dims):
    """GL_REPEAT wrap: power-of-two dims allow a mask."""
    return raw & (dims - 1)


def generate_accesses(
    u: np.ndarray,
    v: np.ndarray,
    lod: np.ndarray,
    n_levels: int,
    width0: int,
    height0: int,
) -> TexelAccesses:
    """Generate the texel fetch stream for fragments in order.

    Parameters
    ----------
    u, v:
        Normalized texture coordinates (may exceed [0, 1): GL_REPEAT).
    lod:
        Per-fragment level of detail, ``log2`` of the screen-pixel to
        texel ratio.
    n_levels, width0, height0:
        Pyramid geometry of the texture being sampled.

    Returns
    -------
    TexelAccesses
        Eight accesses per trilinear fragment (lower level first), four
        per magnified (bilinear) fragment, concatenated in fragment
        order.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    lod = np.asarray(lod, dtype=np.float64)
    n = len(u)
    max_level = n_levels - 1

    trilinear = lod > 0.0
    lower = np.clip(np.floor(lod), 0, max_level).astype(np.int64)
    lower = np.where(trilinear, lower, 0)
    upper = np.minimum(lower + 1, max_level)

    lo_w, lo_h = _level_dims(width0, height0, lower)
    hi_w, hi_h = _level_dims(width0, height0, upper)

    lo_tu_raw, lo_tv_raw = _corner_coords(u, v, lo_w, lo_h)
    hi_tu_raw, hi_tv_raw = _corner_coords(u, v, hi_w, hi_h)

    # Assemble an (n, 8) table: lower-level quad then upper-level quad.
    tu_raw = np.concatenate([lo_tu_raw, hi_tu_raw], axis=1)
    tv_raw = np.concatenate([lo_tv_raw, hi_tv_raw], axis=1)
    level8 = np.concatenate(
        [np.repeat(lower[:, None], 4, axis=1), np.repeat(upper[:, None], 4, axis=1)],
        axis=1,
    )
    widths8 = np.concatenate(
        [np.repeat(lo_w[:, None], 4, axis=1), np.repeat(hi_w[:, None], 4, axis=1)], axis=1
    )
    heights8 = np.concatenate(
        [np.repeat(lo_h[:, None], 4, axis=1), np.repeat(hi_h[:, None], 4, axis=1)], axis=1
    )
    kind8 = np.where(
        trilinear[:, None],
        np.concatenate(
            [np.full((n, 4), KIND_LOWER, np.uint8), np.full((n, 4), KIND_UPPER, np.uint8)],
            axis=1,
        ),
        np.full((n, 8), KIND_BILINEAR, np.uint8),
    )
    fragment8 = np.repeat(np.arange(n, dtype=np.int64)[:, None], 8, axis=1)

    # Magnified fragments emit only the level-0 quad (first 4 columns).
    emit = np.ones((n, 8), dtype=bool)
    emit[~trilinear, 4:] = False
    flat = emit.ravel()

    tu_wrapped = _wrap(tu_raw, widths8)
    tv_wrapped = _wrap(tv_raw, heights8)

    return TexelAccesses(
        level=level8.ravel()[flat].astype(np.int16),
        tu=tu_wrapped.ravel()[flat].astype(np.int32),
        tv=tv_wrapped.ravel()[flat].astype(np.int32),
        tu_raw=tu_raw.ravel()[flat].astype(np.int32),
        tv_raw=tv_raw.ravel()[flat].astype(np.int32),
        kind=kind8.ravel()[flat],
        fragment_index=fragment8.ravel()[flat].astype(np.int64),
    )


def generate_accesses_aniso(
    u: np.ndarray,
    v: np.ndarray,
    dudx: np.ndarray,
    dvdx: np.ndarray,
    dudy: np.ndarray,
    dvdy: np.ndarray,
    n_levels: int,
    width0: int,
    height0: int,
    max_aniso: int = 4,
) -> TexelAccesses:
    """Anisotropic filtering access generation (GPU-style extension).

    The paper's trilinear filter assumes a roughly square pixel
    footprint in texture space; at grazing angles (the Flight terrain)
    the footprint is a long ellipse and trilinear either blurs (lod
    from the major axis) or aliases.  Anisotropic filtering takes up to
    ``max_aniso`` trilinear probes spaced along the major axis, each at
    the *minor*-axis level of detail -- multiplying texture traffic by
    the probe count, which is exactly the cache-pressure question this
    library exists to answer.

    Derivatives are in texel units (as produced by the rasterizer).
    Returns the concatenated probe accesses in fragment order;
    ``fragment_index`` maps each access back to its source fragment.
    """
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    rho_x = np.hypot(np.asarray(dudx, float), np.asarray(dvdx, float))
    rho_y = np.hypot(np.asarray(dudy, float), np.asarray(dvdy, float))
    rho_max = np.maximum(np.maximum(rho_x, rho_y), 1e-12)
    rho_min = np.maximum(np.minimum(rho_x, rho_y), 1e-12)
    probes = np.clip(np.ceil(rho_max / rho_min), 1, max_aniso).astype(np.int64)
    lod = np.log2(np.maximum(rho_max / probes, 1e-12))

    # Major-axis step vector in normalized uv units.
    x_major = rho_x >= rho_y
    step_u = np.where(x_major, np.asarray(dudx, float), np.asarray(dudy, float)) / width0
    step_v = np.where(x_major, np.asarray(dvdx, float), np.asarray(dvdy, float)) / height0

    pieces = []
    for count in np.unique(probes):
        mask = probes == count
        offsets = (np.arange(count) + 0.5) / count - 0.5
        for offset in offsets:
            accesses = generate_accesses(
                u[mask] + offset * step_u[mask],
                v[mask] + offset * step_v[mask],
                lod[mask], n_levels, width0, height0,
            )
            owners = np.nonzero(mask)[0]
            pieces.append((owners[accesses.fragment_index], accesses))

    if not pieces:
        return generate_accesses(u, v, lod, n_levels, width0, height0)

    # Stitch the probe pieces back into fragment order.
    owner = np.concatenate([owners for owners, _ in pieces])
    order = np.argsort(owner, kind="stable")
    def gather(field):
        return np.concatenate([getattr(acc, field) for _, acc in pieces])[order]
    return TexelAccesses(
        level=gather("level"),
        tu=gather("tu"),
        tv=gather("tv"),
        tu_raw=gather("tu_raw"),
        tv_raw=gather("tv_raw"),
        kind=gather("kind"),
        fragment_index=owner[order],
    )


def _bilinear_colors(mipmap, levels, u, v):
    """Per-fragment bilinear color at per-fragment ``levels``."""
    n = len(u)
    colors = np.zeros((n, 4), dtype=np.float64)
    widths, heights = _level_dims(mipmap.level_shape(0)[0], mipmap.level_shape(0)[1], levels)
    x = u * widths - 0.5
    y = v * heights - 0.5
    i0 = np.floor(x).astype(np.int64)
    j0 = np.floor(y).astype(np.int64)
    fx = x - i0
    fy = y - j0
    weights = [
        (1 - fx) * (1 - fy),
        fx * (1 - fy),
        (1 - fx) * fy,
        fx * fy,
    ]
    corners = [(i0, j0), (i0 + 1, j0), (i0, j0 + 1), (i0 + 1, j0 + 1)]
    for level in np.unique(levels):
        mask = levels == level
        for (ci, cj), weight in zip(corners, weights):
            tu = _wrap(ci[mask], widths[mask])
            tv = _wrap(cj[mask], heights[mask])
            colors[mask] += weight[mask, None] * mipmap.sample(int(level), tu, tv)
    return colors


def filter_colors(mipmap, u, v, lod) -> np.ndarray:
    """Trilinear/bilinear filtered RGBA colors, shape ``(n, 4)`` float
    in [0, 255].  Matches the access pattern of
    :func:`generate_accesses`."""
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    lod = np.asarray(lod, dtype=np.float64)
    max_level = mipmap.max_level

    trilinear = lod > 0.0
    lower = np.clip(np.floor(lod), 0, max_level).astype(np.int64)
    lower = np.where(trilinear, lower, 0)
    upper = np.minimum(lower + 1, max_level)
    frac = np.where(trilinear, np.clip(lod - lower, 0.0, 1.0), 0.0)

    lower_color = _bilinear_colors(mipmap, lower, u, v)
    upper_color = _bilinear_colors(mipmap, upper, u, v)
    return lower_color * (1 - frac[:, None]) + upper_color * frac[:, None]

"""Vector-quantized compressed textures (paper Section 8 future work).

"A promising approach for rendering directly from compressed textures
has been proposed in the literature [Beers, Agrawala, Chaddha,
SIGGRAPH'96].  In future work, it would be interesting to study the
interaction between compressed representations of textures and cache
architectures."

This module implements that study's substrate: Beers-style vector
quantization.  Texels are grouped into 2x2 blocks; each block is
replaced by a one-byte index into a per-texture codebook of 256
representative blocks.  The memory system then only ever fetches the
*index plane* (a 16:1 compression of the RGBA data); the 4 KB codebook
lives on chip next to the filter (as in TexRAM-style designs), so its
accesses never reach the cache.

Two pieces are provided:

* :class:`VQCompressedLayout` -- a :class:`TextureLayout` mapping texel
  coordinates to index-plane byte addresses, with the index plane
  itself stored in square blocks (composing Section 5.3's blocking
  with compression);
* :func:`compress` / :func:`decompress` -- an actual VQ encoder
  (greedy codebook from sampled blocks + nearest-neighbor assignment)
  so image output and quality measurements are real, not stubbed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .image import TextureImage, is_power_of_two, log2_int
from .layout import AddressingCost, PlacedLevel, TexturePlan, TextureLayout

#: Compressed block dimensions (Beers et al. use 2x2 RGB blocks).
VQ_BLOCK = 2
#: Codebook entries addressable by a one-byte index.
CODEBOOK_SIZE = 256
#: Bytes per codebook entry (2x2 RGBA texels).
CODEBOOK_ENTRY_NBYTES = VQ_BLOCK * VQ_BLOCK * 4


class VQCompressedLayout(TextureLayout):
    """Address layout for VQ-compressed textures.

    Each 2x2 texel block is one byte in the index plane; index planes
    are stored per mip level in square ``index_block_w`` blocks (the
    Section 5.3 blocking, applied to indices).  Four texels therefore
    share one byte of memory traffic -- the compression the paper's
    future-work section wants to study against the cache.
    """

    name = "vq-compressed"

    def __init__(self, index_block_w: int = 8):
        if not is_power_of_two(index_block_w):
            raise ValueError("index_block_w must be a power of two")
        self.index_block_w = index_block_w
        self.lbw = log2_int(index_block_w)
        self.block_bytes = index_block_w * index_block_w
        self.name = f"vq{index_block_w}x{index_block_w}"

    def place_texture(self, level_shapes) -> TexturePlan:
        levels = []
        offset = 0
        for width, height in level_shapes:
            index_w = max(width >> 1, 1)
            index_h = max(height >> 1, 1)
            blocks_per_row = max(index_w >> self.lbw, 1)
            block_rows = max(index_h >> self.lbh_for(index_h), 1)
            levels.append(PlacedLevel(
                base=offset, width=width, height=height,
                meta={"blocks_per_row": blocks_per_row},
            ))
            offset += blocks_per_row * block_rows * self.block_bytes
        return TexturePlan(total_nbytes=offset, levels=levels)

    def lbh_for(self, index_h: int) -> int:
        """Block rows use the same (square) block dimension."""
        return self.lbw

    def addresses(self, level: PlacedLevel, tu, tv):
        tu = np.asarray(tu, dtype=np.int64)
        tv = np.asarray(tv, dtype=np.int64)
        index_u = tu >> 1
        index_v = tv >> 1
        block_x = index_u >> self.lbw
        block_y = index_v >> self.lbw
        sub_x = index_u & (self.index_block_w - 1)
        sub_y = index_v & (self.index_block_w - 1)
        block_index = block_y * level.meta["blocks_per_row"] + block_x
        return (level.base + block_index * self.block_bytes
                + (sub_y << self.lbw) + sub_x)

    def addressing_cost(self) -> AddressingCost:
        # One extra constant shift pair over the blocked representation
        # (the >>1 block-coordinate extraction is wiring).
        return AddressingCost(adds=4, shifts=1, const_shifts=6, masks=2)


@dataclass
class VQTexture:
    """A VQ-compressed image: per-block codebook indices + codebook."""

    indices: np.ndarray  # (index_h, index_w) uint8
    codebook: np.ndarray  # (CODEBOOK_SIZE, VQ_BLOCK, VQ_BLOCK, 4) uint8
    width: int
    height: int

    @property
    def compressed_nbytes(self) -> int:
        """Index plane bytes (the part that lives in texture memory)."""
        return self.indices.size

    @property
    def codebook_nbytes(self) -> int:
        return self.codebook.size

    @property
    def compression_ratio(self) -> float:
        """Original texel bytes over fetched (index) bytes."""
        return (self.width * self.height * 4) / self.compressed_nbytes


def _blocks_of(texels: np.ndarray) -> np.ndarray:
    """Reshape an (h, w, 4) image into (n_blocks, 2, 2, 4) blocks."""
    height, width = texels.shape[:2]
    blocked = texels.reshape(height // VQ_BLOCK, VQ_BLOCK,
                             width // VQ_BLOCK, VQ_BLOCK, 4)
    return blocked.transpose(0, 2, 1, 3, 4).reshape(-1, VQ_BLOCK, VQ_BLOCK, 4)


def compress(image: TextureImage, seed: int = 0) -> VQTexture:
    """Vector-quantize ``image`` with a 256-entry codebook.

    Codebook construction: sample candidate blocks, then one Lloyd
    refinement pass (enough for the address-level study; Beers et al.
    use a full tree-structured VQ for quality).
    """
    if image.width < VQ_BLOCK or image.height < VQ_BLOCK:
        raise ValueError("image smaller than the VQ block")
    blocks = _blocks_of(image.texels).astype(np.float64)
    flat = blocks.reshape(len(blocks), -1)
    rng = np.random.default_rng(seed)
    picks = rng.choice(len(flat), size=min(CODEBOOK_SIZE, len(flat)),
                       replace=False)
    codebook = flat[picks]
    if len(codebook) < CODEBOOK_SIZE:
        codebook = np.tile(codebook, (-(-CODEBOOK_SIZE // len(codebook)), 1))
        codebook = codebook[:CODEBOOK_SIZE]

    for _ in range(2):  # assignment + one Lloyd refinement
        assignment = _nearest(flat, codebook)
        for entry in range(CODEBOOK_SIZE):
            members = flat[assignment == entry]
            if len(members):
                codebook[entry] = members.mean(axis=0)
    assignment = _nearest(flat, codebook)

    index_h = image.height // VQ_BLOCK
    index_w = image.width // VQ_BLOCK
    return VQTexture(
        indices=assignment.reshape(index_h, index_w).astype(np.uint8),
        codebook=np.clip(codebook, 0, 255).astype(np.uint8).reshape(
            CODEBOOK_SIZE, VQ_BLOCK, VQ_BLOCK, 4),
        width=image.width,
        height=image.height,
    )


def _nearest(flat: np.ndarray, codebook: np.ndarray) -> np.ndarray:
    """Nearest codebook entry per block (chunked to bound memory)."""
    assignment = np.empty(len(flat), dtype=np.int64)
    for start in range(0, len(flat), 4096):
        chunk = flat[start:start + 4096]
        distances = ((chunk[:, None, :] - codebook[None, :, :]) ** 2).sum(axis=2)
        assignment[start:start + 4096] = distances.argmin(axis=1)
    return assignment


def decompress(vq: VQTexture) -> TextureImage:
    """Reconstruct the (lossy) image from indices + codebook."""
    index_h, index_w = vq.indices.shape
    blocks = vq.codebook[vq.indices.ravel()]
    blocked = blocks.reshape(index_h, index_w, VQ_BLOCK, VQ_BLOCK, 4)
    texels = blocked.transpose(0, 2, 1, 3, 4).reshape(vq.height, vq.width, 4)
    return TextureImage(np.ascontiguousarray(texels), name="vq")


def mean_squared_error(a: TextureImage, b: TextureImage) -> float:
    """Reconstruction error between two images (RGB, per component)."""
    da = a.texels[..., :3].astype(np.float64)
    db = b.texels[..., :3].astype(np.float64)
    return float(((da - db) ** 2).mean())

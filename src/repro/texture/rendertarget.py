"""Rendered images as textures (paper Section 3.2).

"A recent trend in computer graphics has been the use of rendered
images as textures [TexRAM].  As a result, it has become desirable to
unify the framebuffer and texture memories to avoid copying data
between the two.  A fragment generator connected to an SRAM texture
cache does not necessarily require a dedicated texture memory...  The
caches can be flushed if necessary when the textures change."

This module closes that loop: a rendered :class:`Framebuffer` becomes a
:class:`TextureImage` (resampled to power-of-two dimensions), ready to
be texture-mapped by a subsequent pass -- the render-to-texture path a
unified memory system enables.
"""

from __future__ import annotations

import numpy as np

from ..raster.framebuffer import Framebuffer
from .image import TextureImage, is_power_of_two


def _pow2_at_most(value: int) -> int:
    if value < 1:
        raise ValueError("dimension must be positive")
    return 1 << (value.bit_length() - 1)


def framebuffer_to_texture(
    framebuffer: Framebuffer, name: str = "rendered",
    size: int = None,
) -> TextureImage:
    """Turn a rendered frame into a texture.

    The frame is point-resampled to ``size`` (square, power of two;
    default the largest power of two not exceeding the smaller frame
    dimension).  Alpha is set opaque.
    """
    if size is None:
        size = _pow2_at_most(min(framebuffer.width, framebuffer.height))
    if not is_power_of_two(size):
        raise ValueError("size must be a power of two")
    rows = (np.arange(size) + 0.5) / size * framebuffer.height
    cols = (np.arange(size) + 0.5) / size * framebuffer.width
    sampled = framebuffer.pixels[rows.astype(int)[:, None],
                                 cols.astype(int)[None, :]]
    return TextureImage.from_rgb(sampled, name=name)


def flush_for_texture_update(caches) -> None:
    """Flush texture caches after their backing texture changed.

    The paper's coherence story: texture data is read-only during a
    frame, so no coherence protocol is needed -- caches are simply
    flushed when a texture is redefined (e.g. by a render-to-texture
    pass).  Works on any object exposing ``flush()`` or on
    :class:`~repro.core.cache.LRUCache` instances.
    """
    for cache in caches:
        if hasattr(cache, "flush"):
            cache.flush()
        else:
            raise TypeError(f"{type(cache).__name__} cannot be flushed")

"""Texel access traces.

"Whenever the software-based fragment generator accesses a texel from
memory, it also makes a call to the cache simulator passing the address
of the texel as a parameter" (paper Section 4.1).  We decouple the two:
the renderer records a *layout-independent* trace of
``(texture id, level, tu, tv)`` tuples in access order, and
:meth:`TexelTrace.byte_addresses` maps the same trace onto any memory
representation afterwards.  One render therefore serves every layout
and cache configuration studied against that scene and rasterization
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..texture.filtering import KIND_BILINEAR, KIND_LOWER, KIND_UPPER, TexelAccesses
from ..texture.memory import AddressMapper


@dataclass
class TexelTrace:
    """A frame's complete texel access stream, in access order.

    Columns share length ``n_accesses``.  ``tu_raw``/``tv_raw`` are the
    pre-wrap coordinates (texture repetition measurements);
    ``kind`` distinguishes trilinear lower/upper level and bilinear
    accesses (Section 3.1.2's locality metrics).
    """

    texture_id: np.ndarray
    level: np.ndarray
    tu: np.ndarray
    tv: np.ndarray
    tu_raw: np.ndarray
    tv_raw: np.ndarray
    kind: np.ndarray
    n_fragments: int = 0
    #: Optional per-access screen position of the owning fragment
    #: (recorded when the renderer is asked to; needed by the parallel
    #: fragment-generator study in :mod:`repro.core.parallel`).
    x: Optional[np.ndarray] = None
    y: Optional[np.ndarray] = None

    @property
    def n_accesses(self) -> int:
        return len(self.texture_id)

    def byte_addresses(self, placements) -> np.ndarray:
        """Map the trace onto placed textures (one layout).

        ``placements`` is a list indexed by texture id (from
        :func:`repro.texture.memory.place_textures`).  Returns a flat
        ``int64`` byte-address stream; layouts requiring k accesses per
        texel (Williams) contribute k consecutive addresses.
        """
        if self.n_accesses == 0:
            return np.empty(0, dtype=np.int64)
        return AddressMapper(placements).map_trace(self).reshape(-1)

    @property
    def has_positions(self) -> bool:
        return self.x is not None

    def save(self, path: str) -> None:
        """Persist this trace (see :mod:`repro.pipeline.traceio`)."""
        from .traceio import save_trace
        save_trace(path, self)

    @classmethod
    def load(cls, path: str) -> "TexelTrace":
        """Load a trace written by :meth:`save`/:func:`save_trace`."""
        from .traceio import load_trace
        return load_trace(path)

    def slice(self, start: int, stop: int) -> "TexelTrace":
        """A sub-trace of accesses ``[start, stop)`` (used by tests).

        ``n_fragments`` is carried over *unscaled*: the trace does not
        record fragment boundaries, so the slice cannot know how many
        fragments its accesses span.  Treat the field as the frame
        total, not a per-slice count; :meth:`subset` accepts an
        explicit ``n_fragments`` when the caller knows better.
        """
        return TexelTrace(
            texture_id=self.texture_id[start:stop],
            level=self.level[start:stop],
            tu=self.tu[start:stop],
            tv=self.tv[start:stop],
            tu_raw=self.tu_raw[start:stop],
            tv_raw=self.tv_raw[start:stop],
            kind=self.kind[start:stop],
            n_fragments=self.n_fragments,
            x=None if self.x is None else self.x[start:stop],
            y=None if self.y is None else self.y[start:stop],
        )

    def subset(self, mask: np.ndarray,
               n_fragments: Optional[int] = None) -> "TexelTrace":
        """The sub-trace selected by a boolean ``mask``, order
        preserved (used to split work among parallel generators)."""
        return TexelTrace(
            texture_id=self.texture_id[mask],
            level=self.level[mask],
            tu=self.tu[mask],
            tv=self.tv[mask],
            tu_raw=self.tu_raw[mask],
            tv_raw=self.tv_raw[mask],
            kind=self.kind[mask],
            n_fragments=self.n_fragments if n_fragments is None else n_fragments,
            x=None if self.x is None else self.x[mask],
            y=None if self.y is None else self.y[mask],
        )


class TraceBuilder:
    """Accumulates per-triangle access batches into one TexelTrace."""

    def __init__(self, record_positions: bool = False) -> None:
        self._texture_id = []
        self._level = []
        self._tu = []
        self._tv = []
        self._tu_raw = []
        self._tv_raw = []
        self._kind = []
        self._x = [] if record_positions else None
        self._y = [] if record_positions else None
        self.n_fragments = 0

    @property
    def record_positions(self) -> bool:
        return self._x is not None

    def append(self, texture_id: int, accesses: TexelAccesses, n_fragments: int,
               fragment_x: np.ndarray = None, fragment_y: np.ndarray = None) -> None:
        """Record the accesses of one triangle (a single texture).

        ``fragment_x``/``fragment_y`` are the per-*fragment* screen
        positions; each access inherits its owning fragment's position
        via ``accesses.fragment_index``.
        """
        n = accesses.n_accesses
        if n == 0:
            return
        self._texture_id.append(np.full(n, texture_id, dtype=np.int16))
        self._level.append(accesses.level)
        self._tu.append(accesses.tu)
        self._tv.append(accesses.tv)
        self._tu_raw.append(accesses.tu_raw)
        self._tv_raw.append(accesses.tv_raw)
        self._kind.append(accesses.kind)
        if self._x is not None:
            if fragment_x is None or fragment_y is None:
                raise ValueError("record_positions builder needs fragment_x/y")
            self._x.append(fragment_x[accesses.fragment_index].astype(np.int16))
            self._y.append(fragment_y[accesses.fragment_index].astype(np.int16))
        self.n_fragments += n_fragments

    def append_stream(self, texture_id: np.ndarray, accesses: TexelAccesses,
                      n_fragments: int, fragment_x: np.ndarray = None,
                      fragment_y: np.ndarray = None) -> None:
        """Record a pre-stitched multi-texture access stream (the
        batched rasterizer's path).

        Identical to :meth:`append` except ``texture_id`` is a
        per-*access* array (the stream may interleave textures) and
        ``accesses.fragment_index`` already refers to frame-global
        fragment positions.
        """
        n = accesses.n_accesses
        if n == 0:
            return
        self._texture_id.append(np.asarray(texture_id, dtype=np.int16))
        self._level.append(accesses.level)
        self._tu.append(accesses.tu)
        self._tv.append(accesses.tv)
        self._tu_raw.append(accesses.tu_raw)
        self._tv_raw.append(accesses.tv_raw)
        self._kind.append(accesses.kind)
        if self._x is not None:
            if fragment_x is None or fragment_y is None:
                raise ValueError("record_positions builder needs fragment_x/y")
            self._x.append(fragment_x[accesses.fragment_index].astype(np.int16))
            self._y.append(fragment_y[accesses.fragment_index].astype(np.int16))
        self.n_fragments += n_fragments

    def build(self) -> TexelTrace:
        if not self._texture_id:
            empty32 = np.empty(0, dtype=np.int32)
            empty16 = np.empty(0, dtype=np.int16)
            return TexelTrace(
                texture_id=np.empty(0, dtype=np.int16),
                level=np.empty(0, dtype=np.int16),
                tu=empty32, tv=empty32, tu_raw=empty32, tv_raw=empty32,
                kind=np.empty(0, dtype=np.uint8),
                n_fragments=0,
                x=empty16 if self._x is not None else None,
                y=empty16 if self._y is not None else None,
            )
        merge = self._merge
        return TexelTrace(
            texture_id=merge(self._texture_id),
            level=merge(self._level),
            tu=merge(self._tu),
            tv=merge(self._tv),
            tu_raw=merge(self._tu_raw),
            tv_raw=merge(self._tv_raw),
            kind=merge(self._kind),
            n_fragments=self.n_fragments,
            x=merge(self._x) if self._x is not None else None,
            y=merge(self._y) if self._y is not None else None,
        )

    @staticmethod
    def _merge(parts: list) -> np.ndarray:
        # A single batch (the batched rasterizer's stitched stream)
        # needs no concatenate copy.
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


__all__ = [
    "TexelTrace",
    "TraceBuilder",
    "KIND_BILINEAR",
    "KIND_LOWER",
    "KIND_UPPER",
]

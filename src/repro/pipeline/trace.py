"""Texel access traces.

"Whenever the software-based fragment generator accesses a texel from
memory, it also makes a call to the cache simulator passing the address
of the texel as a parameter" (paper Section 4.1).  We decouple the two:
the renderer records a *layout-independent* trace of
``(texture id, level, tu, tv)`` tuples in access order, and
:meth:`TexelTrace.byte_addresses` maps the same trace onto any memory
representation afterwards.  One render therefore serves every layout
and cache configuration studied against that scene and rasterization
order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..texture.filtering import KIND_BILINEAR, KIND_LOWER, KIND_UPPER, TexelAccesses
from ..texture.memory import AddressMapper


def count_fragments(kind: np.ndarray, start: int = 0,
                    stop: Optional[int] = None) -> int:
    """Fragments with at least one access in ``kind[start:stop)``.

    Every filter probe emits an aligned quad of four same-kind
    accesses -- a bilinear quad, or a lower quad followed by its upper
    quad -- so a frame's kind column is a sequence of 4-aligned quads
    and a fragment begins at every quad whose kind is not
    :data:`KIND_UPPER`.  The count is exact for traces built by the
    pipeline (quad-aligned from index 0) with isotropic filtering; an
    anisotropic fragment spans several probes, each of which counts
    once (an upper bound on fragments).
    """
    n = len(kind)
    if stop is None:
        stop = n
    start = max(0, min(int(start), n))
    stop = max(start, min(int(stop), n))
    if stop == start:
        return 0
    first_quad = start // 4
    last_quad = (stop - 1) // 4
    quad_kinds = kind[first_quad * 4:last_quad * 4 + 1:4]
    covered = int(np.count_nonzero(quad_kinds != KIND_UPPER))
    if quad_kinds[0] == KIND_UPPER:
        # The slice opens inside a trilinear fragment whose lower quad
        # precedes it; that fragment is covered too.
        covered += 1
    return covered


def fragment_starts(kind: np.ndarray) -> np.ndarray:
    """Access indices where a new fragment (or anisotropic probe)
    begins; see :func:`count_fragments` for the quad structure."""
    quad_kinds = kind[::4]
    return np.flatnonzero(quad_kinds != KIND_UPPER).astype(np.int64) * 4


@dataclass
class TexelTrace:
    """A frame's complete texel access stream, in access order.

    Columns share length ``n_accesses``.  ``tu_raw``/``tv_raw`` are the
    pre-wrap coordinates (texture repetition measurements);
    ``kind`` distinguishes trilinear lower/upper level and bilinear
    accesses (Section 3.1.2's locality metrics).
    """

    texture_id: np.ndarray
    level: np.ndarray
    tu: np.ndarray
    tv: np.ndarray
    tu_raw: np.ndarray
    tv_raw: np.ndarray
    kind: np.ndarray
    n_fragments: int = 0
    #: Optional per-access screen position of the owning fragment
    #: (recorded when the renderer is asked to; needed by the parallel
    #: fragment-generator study in :mod:`repro.core.parallel`).
    x: Optional[np.ndarray] = None
    y: Optional[np.ndarray] = None

    @property
    def n_accesses(self) -> int:
        return len(self.texture_id)

    def byte_addresses(self, placements) -> np.ndarray:
        """Map the trace onto placed textures (one layout).

        ``placements`` is a list indexed by texture id (from
        :func:`repro.texture.memory.place_textures`).  Returns a flat
        ``int64`` byte-address stream; layouts requiring k accesses per
        texel (Williams) contribute k consecutive addresses.
        """
        if self.n_accesses == 0:
            return np.empty(0, dtype=np.int64)
        return AddressMapper(placements).map_trace(self).reshape(-1)

    @property
    def has_positions(self) -> bool:
        return self.x is not None

    def save(self, path: str) -> None:
        """Persist this trace (see :mod:`repro.pipeline.traceio`)."""
        from .traceio import save_trace
        save_trace(path, self)

    @classmethod
    def load(cls, path: str) -> "TexelTrace":
        """Load a trace written by :meth:`save`/:func:`save_trace`."""
        from .traceio import load_trace
        return load_trace(path)

    def slice(self, start: int, stop: int) -> "TexelTrace":
        """A sub-trace of accesses ``[start, stop)``.

        ``n_fragments`` reports the fragments actually covered by the
        slice -- those with at least one access inside it -- recovered
        from the kind column's quad structure
        (:func:`count_fragments`), so slicing a frame into pieces
        yields per-piece counts that sum to the frame total whenever
        the cuts land on fragment boundaries.
        """
        return TexelTrace(
            texture_id=self.texture_id[start:stop],
            level=self.level[start:stop],
            tu=self.tu[start:stop],
            tv=self.tv[start:stop],
            tu_raw=self.tu_raw[start:stop],
            tv_raw=self.tv_raw[start:stop],
            kind=self.kind[start:stop],
            n_fragments=count_fragments(self.kind, start, stop),
            x=None if self.x is None else self.x[start:stop],
            y=None if self.y is None else self.y[start:stop],
        )

    def subset(self, mask: np.ndarray,
               n_fragments: Optional[int] = None) -> "TexelTrace":
        """The sub-trace selected by a boolean ``mask``, order
        preserved (used to split work among parallel generators)."""
        return TexelTrace(
            texture_id=self.texture_id[mask],
            level=self.level[mask],
            tu=self.tu[mask],
            tv=self.tv[mask],
            tu_raw=self.tu_raw[mask],
            tv_raw=self.tv_raw[mask],
            kind=self.kind[mask],
            n_fragments=self.n_fragments if n_fragments is None else n_fragments,
            x=None if self.x is None else self.x[mask],
            y=None if self.y is None else self.y[mask],
        )


@dataclass
class FragmentBlock(TexelTrace):
    """One bounded chunk of a frame's access stream: the streaming
    pipeline's unit of flow.

    Same columns and semantics as :class:`TexelTrace`, plus a sequence
    ``index`` within the frame.  Blocks are cut at fragment
    boundaries, so ``n_fragments`` counts the fragments fully
    contained in the block, block counts sum to the frame total, and
    concatenating a frame's blocks in index order reproduces the
    in-RAM trace bit-identically (:func:`concat_blocks`).
    """

    index: int = 0


def concat_blocks(blocks) -> TexelTrace:
    """Concatenate an iterable of blocks (or traces) back into one
    in-RAM :class:`TexelTrace`; the inverse of block streaming."""
    blocks = list(blocks)
    builder = TraceBuilder()
    if not blocks:
        return builder.build()
    has_positions = blocks[0].has_positions

    def merged(column):
        parts = [getattr(block, column) for block in blocks]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    return TexelTrace(
        texture_id=merged("texture_id"),
        level=merged("level"),
        tu=merged("tu"),
        tv=merged("tv"),
        tu_raw=merged("tu_raw"),
        tv_raw=merged("tv_raw"),
        kind=merged("kind"),
        n_fragments=sum(block.n_fragments for block in blocks),
        x=merged("x") if has_positions else None,
        y=merged("y") if has_positions else None,
    )


def iter_blocks(trace: TexelTrace, chunk_size: int):
    """Stream an in-RAM (or memory-mapped) trace as
    :class:`FragmentBlock` chunks of at most ``chunk_size`` accesses,
    cut at fragment boundaries (a block only exceeds ``chunk_size``
    when a single fragment does).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be positive")
    n = trace.n_accesses
    if n == 0:
        return
    starts = fragment_starts(trace.kind)
    begin = 0
    index = 0
    while begin < n:
        target = begin + chunk_size
        if target >= n:
            end = n
        else:
            # Largest fragment boundary in (begin, target]; fall
            # forward to the next one if a single fragment overflows
            # the chunk.
            cut = int(np.searchsorted(starts, target, side="right")) - 1
            end = int(starts[cut]) if starts[cut] > begin else (
                int(starts[cut + 1]) if cut + 1 < len(starts) else n)
        piece = trace.slice(begin, end)
        yield FragmentBlock(
            texture_id=piece.texture_id, level=piece.level,
            tu=piece.tu, tv=piece.tv,
            tu_raw=piece.tu_raw, tv_raw=piece.tv_raw,
            kind=piece.kind, n_fragments=piece.n_fragments,
            x=piece.x, y=piece.y, index=index)
        index += 1
        begin = end


class TraceBuilder:
    """Accumulates per-triangle access batches into one TexelTrace."""

    def __init__(self, record_positions: bool = False) -> None:
        self._texture_id = []
        self._level = []
        self._tu = []
        self._tv = []
        self._tu_raw = []
        self._tv_raw = []
        self._kind = []
        self._x = [] if record_positions else None
        self._y = [] if record_positions else None
        self.n_fragments = 0

    @property
    def record_positions(self) -> bool:
        return self._x is not None

    def append(self, texture_id: int, accesses: TexelAccesses, n_fragments: int,
               fragment_x: np.ndarray = None, fragment_y: np.ndarray = None) -> None:
        """Record the accesses of one triangle (a single texture).

        ``fragment_x``/``fragment_y`` are the per-*fragment* screen
        positions; each access inherits its owning fragment's position
        via ``accesses.fragment_index``.
        """
        n = accesses.n_accesses
        if n == 0:
            return
        self._texture_id.append(np.full(n, texture_id, dtype=np.int16))
        self._level.append(accesses.level)
        self._tu.append(accesses.tu)
        self._tv.append(accesses.tv)
        self._tu_raw.append(accesses.tu_raw)
        self._tv_raw.append(accesses.tv_raw)
        self._kind.append(accesses.kind)
        if self._x is not None:
            if fragment_x is None or fragment_y is None:
                raise ValueError("record_positions builder needs fragment_x/y")
            self._x.append(fragment_x[accesses.fragment_index].astype(np.int16))
            self._y.append(fragment_y[accesses.fragment_index].astype(np.int16))
        self.n_fragments += n_fragments

    def append_stream(self, texture_id: np.ndarray, accesses: TexelAccesses,
                      n_fragments: int, fragment_x: np.ndarray = None,
                      fragment_y: np.ndarray = None) -> None:
        """Record a pre-stitched multi-texture access stream (the
        batched rasterizer's path).

        Identical to :meth:`append` except ``texture_id`` is a
        per-*access* array (the stream may interleave textures) and
        ``accesses.fragment_index`` already refers to frame-global
        fragment positions.
        """
        n = accesses.n_accesses
        if n == 0:
            return
        self._texture_id.append(np.asarray(texture_id, dtype=np.int16))
        self._level.append(accesses.level)
        self._tu.append(accesses.tu)
        self._tv.append(accesses.tv)
        self._tu_raw.append(accesses.tu_raw)
        self._tv_raw.append(accesses.tv_raw)
        self._kind.append(accesses.kind)
        if self._x is not None:
            if fragment_x is None or fragment_y is None:
                raise ValueError("record_positions builder needs fragment_x/y")
            self._x.append(fragment_x[accesses.fragment_index].astype(np.int16))
            self._y.append(fragment_y[accesses.fragment_index].astype(np.int16))
        self.n_fragments += n_fragments

    def build(self) -> TexelTrace:
        if not self._texture_id:
            empty32 = np.empty(0, dtype=np.int32)
            empty16 = np.empty(0, dtype=np.int16)
            return TexelTrace(
                texture_id=np.empty(0, dtype=np.int16),
                level=np.empty(0, dtype=np.int16),
                tu=empty32, tv=empty32, tu_raw=empty32, tv_raw=empty32,
                kind=np.empty(0, dtype=np.uint8),
                n_fragments=0,
                x=empty16 if self._x is not None else None,
                y=empty16 if self._y is not None else None,
            )
        merge = self._merge
        return TexelTrace(
            texture_id=merge(self._texture_id),
            level=merge(self._level),
            tu=merge(self._tu),
            tv=merge(self._tv),
            tu_raw=merge(self._tu_raw),
            tv_raw=merge(self._tv_raw),
            kind=merge(self._kind),
            n_fragments=self.n_fragments,
            x=merge(self._x) if self._x is not None else None,
            y=merge(self._y) if self._y is not None else None,
        )

    @staticmethod
    def _merge(parts: list) -> np.ndarray:
        # A single batch (the batched rasterizer's stitched stream)
        # needs no concatenate copy.
        return parts[0] if len(parts) == 1 else np.concatenate(parts)


__all__ = [
    "FragmentBlock",
    "TexelTrace",
    "TraceBuilder",
    "KIND_BILINEAR",
    "KIND_LOWER",
    "KIND_UPPER",
    "concat_blocks",
    "count_fragments",
    "fragment_starts",
    "iter_blocks",
]

"""Fragment-generator computational cost model (paper Table 2.1).

"Typical unoptimized computational costs for each of the operations of
a fragment generator" -- per-fragment except triangle setup.  The texel
address calculation row is "dependent upon memory representation"; we
resolve it from the layout's :class:`AddressingCost`, performed once
per texel fetch (8 for trilinear, 4 for bilinear).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..texture.layout import TextureLayout


@dataclass(frozen=True)
class OpCounts:
    """Operation counts for one phase of the fragment generator."""

    adds: int = 0
    shifts: int = 0
    multiplies: int = 0
    divides: int = 0
    memory_accesses: int = 0

    def __add__(self, other: "OpCounts") -> "OpCounts":
        return OpCounts(
            adds=self.adds + other.adds,
            shifts=self.shifts + other.shifts,
            multiplies=self.multiplies + other.multiplies,
            divides=self.divides + other.divides,
            memory_accesses=self.memory_accesses + other.memory_accesses,
        )

    def __mul__(self, factor: int) -> "OpCounts":
        return OpCounts(
            adds=self.adds * factor,
            shifts=self.shifts * factor,
            multiplies=self.multiplies * factor,
            divides=self.divides * factor,
            memory_accesses=self.memory_accesses * factor,
        )

    __rmul__ = __mul__

    @property
    def total_ops(self) -> int:
        return self.adds + self.shifts + self.multiplies + self.divides


#: Table 2.1, row by row.  Triangle setup is per triangle; the rest are
#: per fragment.
TRIANGLE_SETUP = OpCounts(adds=89, multiplies=64, divides=1)
RASTER_AND_SHADING = OpCounts(adds=11, multiplies=1)
LEVEL_OF_DETAIL = OpCounts(adds=9, multiplies=9)
TEXEL_COORDINATES = OpCounts(adds=5, multiplies=5)
NEAREST_UVD = OpCounts(adds=14)
TRILINEAR_INTERPOLATION = OpCounts(adds=56, shifts=28, memory_accesses=8)
BILINEAR_INTERPOLATION = OpCounts(adds=24, shifts=12, memory_accesses=4)
MODULATION = OpCounts(adds=8, multiplies=4)

PHASE_TABLE = {
    "triangle setup (per triangle)": TRIANGLE_SETUP,
    "rasterization and shading": RASTER_AND_SHADING,
    "level-of-detail": LEVEL_OF_DETAIL,
    "texel coordinates": TEXEL_COORDINATES,
    "nearest (u,v,d)": NEAREST_UVD,
    "trilinear interpolation": TRILINEAR_INTERPOLATION,
    "bilinear interpolation": BILINEAR_INTERPOLATION,
    "modulation with fragment color": MODULATION,
}


def addressing_ops(layout: TextureLayout, interpolation: str = "trilinear") -> OpCounts:
    """Texel address calculation cost per fragment for ``layout``.

    Performed once per texel fetch: 8 fetches for trilinear, 4 for
    bilinear (Section 5.2.1: "the texel addressing calculations must be
    performed eight times per fragment").
    """
    per_texel = layout.addressing_cost()
    fetches = 8 if interpolation == "trilinear" else 4
    return OpCounts(adds=per_texel.adds, shifts=per_texel.shifts) * fetches


def fragment_cost(
    layout: TextureLayout = None, interpolation: str = "trilinear"
) -> OpCounts:
    """Total per-fragment operation count (all phases except setup)."""
    if interpolation == "trilinear":
        interp = TRILINEAR_INTERPOLATION
    elif interpolation == "bilinear":
        interp = BILINEAR_INTERPOLATION
    else:
        raise ValueError("interpolation must be 'trilinear' or 'bilinear'")
    total = (
        RASTER_AND_SHADING
        + LEVEL_OF_DETAIL
        + TEXEL_COORDINATES
        + NEAREST_UVD
        + interp
        + MODULATION
    )
    if layout is not None:
        total = total + addressing_ops(layout, interpolation)
    return total


def frame_cost(
    n_triangles: int,
    n_fragments: int,
    layout: TextureLayout = None,
    interpolation: str = "trilinear",
) -> OpCounts:
    """Whole-frame operation count: setup per triangle plus per-fragment
    work."""
    return TRIANGLE_SETUP * n_triangles + fragment_cost(layout, interpolation) * n_fragments

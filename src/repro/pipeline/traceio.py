"""Trace persistence.

The paper's methodology separates trace *capture* from cache
*simulation* (Section 4.1: gldebug traces fed to the pipeline feeding
the cache simulator).  These helpers give the same workflow to library
users: render once, save the texel trace, and replay it against any
number of layouts and cache configurations later -- or on another
machine -- without re-rendering.

Format: a single ``.npz`` (zipped numpy) archive holding the trace
columns plus a small metadata record.  Loading validates column
lengths, so truncated files fail loudly.
"""

from __future__ import annotations

import numpy as np

from .trace import TexelTrace

#: Bumped when the on-disk layout changes.
FORMAT_VERSION = 1


def save_trace(path: str, trace: TexelTrace) -> None:
    """Write ``trace`` to ``path`` (conventionally ``*.trace.npz``)."""
    columns = {
        "texture_id": trace.texture_id,
        "level": trace.level,
        "tu": trace.tu,
        "tv": trace.tv,
        "tu_raw": trace.tu_raw,
        "tv_raw": trace.tv_raw,
        "kind": trace.kind,
        "meta": np.array([FORMAT_VERSION, trace.n_fragments,
                          1 if trace.has_positions else 0], dtype=np.int64),
    }
    if trace.has_positions:
        columns["x"] = trace.x
        columns["y"] = trace.y
    np.savez_compressed(path, **columns)


def load_trace(path: str) -> TexelTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as archive:
        try:
            meta = archive["meta"]
            columns = {name: archive[name] for name in
                       ("texture_id", "level", "tu", "tv",
                        "tu_raw", "tv_raw", "kind")}
        except KeyError as error:
            raise ValueError(f"{path!r} is not a texel trace file") from error
        version, n_fragments, has_positions = meta.tolist()
        if version != FORMAT_VERSION:
            raise ValueError(
                f"trace format version {version} unsupported "
                f"(expected {FORMAT_VERSION})")
        lengths = {len(column) for column in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"{path!r} has inconsistent column lengths")
        x = y = None
        if has_positions:
            x = archive["x"]
            y = archive["y"]
            if len(x) != len(columns["tu"]) or len(y) != len(columns["tu"]):
                raise ValueError(f"{path!r} has inconsistent position columns")
    return TexelTrace(n_fragments=int(n_fragments), x=x, y=y, **columns)

"""Trace persistence.

The paper's methodology separates trace *capture* from cache
*simulation* (Section 4.1: gldebug traces fed to the pipeline feeding
the cache simulator).  These helpers give the same workflow to library
users: render once, save the texel trace, and replay it against any
number of layouts and cache configurations later -- or on another
machine -- without re-rendering.

Format: a single ``.npz`` (zipped numpy) archive holding the trace
columns plus a small metadata record.  Loading validates column
lengths, so truncated files fail loudly.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from .trace import FragmentBlock, TexelTrace, concat_blocks

#: Bumped when the on-disk layout changes.
FORMAT_VERSION = 1

#: Chunked-trace part naming: ``<prefix>.p00000.npz`` ... plus a
#: ``<prefix>.manifest.json`` describing and checksumming every part.
PART_DIGITS = 5


def save_trace(path: str, trace: TexelTrace, compress: bool = True) -> None:
    """Write ``trace`` to ``path`` (conventionally ``*.trace.npz``).

    ``compress=False`` writes a stored (deflate-free) npz: byte for
    byte larger on disk but an order of magnitude cheaper to encode.
    Streaming part files use it -- zlib dominated the cold streamed
    path, and parts are integrity-checked by their envelope's SHA-256
    rather than by the container.  :func:`load_trace` reads either
    encoding transparently.
    """
    columns = {
        "texture_id": trace.texture_id,
        "level": trace.level,
        "tu": trace.tu,
        "tv": trace.tv,
        "tu_raw": trace.tu_raw,
        "tv_raw": trace.tv_raw,
        "kind": trace.kind,
        "meta": np.array([FORMAT_VERSION, trace.n_fragments,
                          1 if trace.has_positions else 0], dtype=np.int64),
    }
    if trace.has_positions:
        columns["x"] = trace.x
        columns["y"] = trace.y
    (np.savez_compressed if compress else np.savez)(path, **columns)


def load_trace(path: str) -> TexelTrace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as archive:
        try:
            meta = archive["meta"]
            columns = {name: archive[name] for name in
                       ("texture_id", "level", "tu", "tv",
                        "tu_raw", "tv_raw", "kind")}
        except KeyError as error:
            raise ValueError(f"{path!r} is not a texel trace file") from error
        version, n_fragments, has_positions = meta.tolist()
        if version != FORMAT_VERSION:
            raise ValueError(
                f"trace format version {version} unsupported "
                f"(expected {FORMAT_VERSION})")
        lengths = {len(column) for column in columns.values()}
        if len(lengths) != 1:
            raise ValueError(f"{path!r} has inconsistent column lengths")
        x = y = None
        if has_positions:
            x = archive["x"]
            y = archive["y"]
            if len(x) != len(columns["tu"]) or len(y) != len(columns["tu"]):
                raise ValueError(f"{path!r} has inconsistent position columns")
    return TexelTrace(n_fragments=int(n_fragments), x=x, y=y, **columns)


def part_name(prefix: str, index: int) -> str:
    """Path of chunk ``index`` of the chunked trace at ``prefix``."""
    return f"{prefix}.p{index:0{PART_DIGITS}d}.npz"


def manifest_name(prefix: str) -> str:
    return f"{prefix}.manifest.json"


def _sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class TraceWriter:
    """Incrementally persist a trace as chunked ``.npz`` parts.

    Each appended block becomes one part file (the same single-trace
    format as :func:`save_trace`, so a part is itself a loadable
    trace); :meth:`finish` seals the sequence with a JSON manifest
    recording per-part sizes and SHA-256 digests plus frame totals.
    Peak memory is one block, never the frame, which is what lets
    traces larger than RAM round-trip through the artifact store.
    """

    def __init__(self, prefix: str):
        self.prefix = str(prefix)
        self.parts = []
        self._n_accesses = 0
        self._n_fragments = 0
        self._has_positions = None
        self._finished = False

    def append(self, block) -> str:
        """Write one block (any :class:`TexelTrace`-shaped chunk);
        returns the part file's path."""
        if self._finished:
            raise RuntimeError("TraceWriter already finished")
        if self._has_positions is None:
            self._has_positions = block.has_positions
        elif block.has_positions != self._has_positions:
            raise ValueError("blocks disagree on position recording")
        path = part_name(self.prefix, len(self.parts))
        save_trace(path, block)
        self.parts.append({
            "name": os.path.basename(path),
            "nbytes": os.path.getsize(path),
            "sha256": _sha256(path),
            "n_accesses": int(block.n_accesses),
            "n_fragments": int(block.n_fragments),
        })
        self._n_accesses += int(block.n_accesses)
        self._n_fragments += int(block.n_fragments)
        return path

    def finish(self) -> dict:
        """Seal the chunked trace; writes and returns the manifest."""
        if self._finished:
            raise RuntimeError("TraceWriter already finished")
        self._finished = True
        manifest = {
            "format_version": FORMAT_VERSION,
            "n_parts": len(self.parts),
            "n_accesses": self._n_accesses,
            "n_fragments": self._n_fragments,
            "has_positions": bool(self._has_positions),
            "parts": self.parts,
        }
        path = manifest_name(self.prefix)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
        return manifest

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.finish()


class TraceReader:
    """Iterate a chunked trace written by :class:`TraceWriter` one
    :class:`FragmentBlock` at a time, verifying each part's size and
    digest against the manifest before deserializing it."""

    def __init__(self, prefix: str, verify: bool = True):
        self.prefix = str(prefix)
        self.verify = verify
        with open(manifest_name(self.prefix), encoding="utf-8") as handle:
            self.manifest = json.load(handle)
        if self.manifest.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"chunked trace format version "
                f"{self.manifest.get('format_version')} unsupported")

    @property
    def n_parts(self) -> int:
        return int(self.manifest["n_parts"])

    @property
    def n_accesses(self) -> int:
        return int(self.manifest["n_accesses"])

    @property
    def n_fragments(self) -> int:
        return int(self.manifest["n_fragments"])

    @property
    def has_positions(self) -> bool:
        return bool(self.manifest["has_positions"])

    def part_path(self, index: int) -> str:
        return os.path.join(os.path.dirname(self.prefix) or ".",
                            self.manifest["parts"][index]["name"])

    def read_part(self, index: int) -> FragmentBlock:
        entry = self.manifest["parts"][index]
        path = self.part_path(index)
        if self.verify:
            nbytes = os.path.getsize(path)
            if nbytes != entry["nbytes"]:
                raise ValueError(
                    f"{path!r}: {nbytes} bytes on disk, manifest says "
                    f"{entry['nbytes']}")
            if _sha256(path) != entry["sha256"]:
                raise ValueError(f"{path!r}: checksum mismatch")
        trace = load_trace(path)
        return FragmentBlock(
            texture_id=trace.texture_id, level=trace.level,
            tu=trace.tu, tv=trace.tv,
            tu_raw=trace.tu_raw, tv_raw=trace.tv_raw,
            kind=trace.kind, n_fragments=trace.n_fragments,
            x=trace.x, y=trace.y, index=index)

    def __iter__(self):
        for index in range(self.n_parts):
            yield self.read_part(index)

    def __len__(self) -> int:
        return self.n_parts

    def read_all(self) -> TexelTrace:
        """Materialize the whole trace in RAM (compatibility path)."""
        return concat_blocks(self)

"""The software graphics pipeline (paper Section 4.1).

Geometry, clipping, lighting of vertices, rasterization, shading,
texture mapping and z-buffering -- the paper's first simulation
component, "similar to the one described in [RealityEngine]" with
texture mapping "based on the OpenGL specification document".

Triangles are rasterized in the order they are specified in the input.
Fragment traversal within each triangle follows the configured
:class:`~repro.raster.order.TraversalOrder` (horizontal, vertical or
tiled); every texel fetched by the trilinear/bilinear filter is
recorded in a :class:`~repro.pipeline.trace.TexelTrace` for the cache
simulator.

Two rasterization paths exist, selected by ``Renderer(raster=...)``:

``"batched"`` (default)
    :mod:`repro.raster.batched` evaluates bins of triangles over flat
    candidate arrays and generates texel accesses once per texture
    instead of once per triangle.  Traces, framebuffers and
    per-triangle fragment counts are **bit-identical** to the
    reference path -- only the wall clock differs.
``"reference"``
    The original per-triangle loop over
    :func:`~repro.raster.triangle.rasterize_triangle`, kept as the
    equivalence oracle.

Both paths accumulate per-phase wall-clock timers (clip / raster /
access-gen / filter) surfaced in :attr:`RenderResult.phase_ms` and via
``python -m repro render --profile``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..geometry.clip import clip_triangles_near
from ..geometry.lighting import DirectionalLight, light_mesh
from ..geometry.transform import ndc_to_screen
from ..raster.batched import rasterize_triangles
from ..raster.framebuffer import Framebuffer
from ..raster.order import HorizontalOrder, TraversalOrder
from ..raster.triangle import rasterize_triangle
from ..raster.zbuffer import ZBuffer
from ..texture.filtering import (
    TexelAccesses,
    filter_colors,
    generate_accesses,
    generate_accesses_aniso,
)
from .trace import FragmentBlock, TexelTrace, TraceBuilder

#: Selectable rasterization paths.
RASTER_PATHS = ("batched", "reference")


def check_raster(raster: str) -> str:
    """Validate a rasterization-path name."""
    if raster not in RASTER_PATHS:
        raise ValueError(
            f"unknown raster path {raster!r}; expected one of {RASTER_PATHS}")
    return raster


class _PhaseTimers:
    """Accumulates wall-clock milliseconds per pipeline phase."""

    PHASES = ("clip", "raster", "access_gen", "filter")

    def __init__(self):
        self.ms = {phase: 0.0 for phase in self.PHASES}
        self._started = None

    def start(self) -> None:
        self._started = time.perf_counter()

    def stop(self, phase: str) -> None:
        self.ms[phase] += 1000.0 * (time.perf_counter() - self._started)
        self._started = None


@dataclass
class RenderResult:
    """Everything produced by rendering one frame."""

    trace: TexelTrace
    framebuffer: Optional[Framebuffer]
    n_fragments: int
    n_triangles_submitted: int
    n_triangles_rasterized: int
    per_triangle_fragments: np.ndarray = field(default=None)
    #: Wall-clock milliseconds per pipeline phase (clip / raster /
    #: access_gen / filter); ``None`` on store-loaded results.
    phase_ms: Optional[dict] = None

    @property
    def n_accesses(self) -> int:
        return self.trace.n_accesses


class Renderer:
    """Renders a scene and records its texel access trace.

    Parameters
    ----------
    order:
        Fragment traversal order (default horizontal scan lines).
    produce_image:
        When False, skips filtering arithmetic and framebuffer writes;
        the access trace is identical, and tracing runs ~2x faster.
        Benchmark harnesses use this.
    lighting:
        Optional :class:`DirectionalLight` applied per vertex when a
        mesh has no baked colors.
    raster:
        ``"batched"`` (default) or ``"reference"``; both produce
        bit-identical output (see the module docstring).
    """

    def __init__(
        self,
        order: TraversalOrder = None,
        produce_image: bool = True,
        lighting: Optional[DirectionalLight] = None,
        record_positions: bool = False,
        max_anisotropy: int = 1,
        lod_bias: float = 0.0,
        use_mipmaps: bool = True,
        raster: str = "batched",
    ):
        if max_anisotropy < 1:
            raise ValueError("max_anisotropy must be >= 1")
        self.order = order if order is not None else HorizontalOrder()
        self.produce_image = produce_image
        self.lighting = lighting
        self.record_positions = record_positions
        #: >1 enables anisotropic filtering for the *access trace*
        #: (up to this many trilinear probes per fragment); the color
        #: path stays isotropic -- the study concerns addresses.
        self.max_anisotropy = max_anisotropy
        #: OpenGL-style level-of-detail bias: positive values select
        #: coarser mip levels (blurrier image, ~4x less texture
        #: footprint per +1), negative values sharper ones.
        self.lod_bias = lod_bias
        #: False models GL_LINEAR filtering without mip maps: every
        #: fragment bilinearly samples level 0 regardless of the
        #: level of detail.  Section 3.1.1 credits mip mapping with
        #: creating texture-space spatial locality; this switch is the
        #: ablation that proves it.
        self.use_mipmaps = use_mipmaps
        self.raster = check_raster(raster)

    def _prepare(self, scene, timers) -> tuple:
        """The shared front half of a frame: lighting, clipping and
        projection, in submission order."""
        timers.start()
        width, height = scene.width, scene.height
        mesh = scene.mesh
        mipmaps = scene.get_mipmaps()

        colors = mesh.colors
        if colors is None and self.lighting is not None:
            colors = light_mesh(mesh, self.lighting)

        mvp = scene.projection @ scene.view
        homogeneous = np.concatenate(
            [mesh.positions, np.ones((mesh.n_vertices, 1))], axis=1
        )
        clip_vertices = homogeneous @ mvp.T

        # Per-triangle vertex data in submission order.
        tri_clip = clip_vertices[mesh.triangles]  # (m, 3, 4)
        attr_list = [mesh.uvs]
        if colors is not None:
            attr_list.append(colors)
        vertex_attrs = np.concatenate(attr_list, axis=1)
        tri_attrs = vertex_attrs[mesh.triangles]  # (m, 3, k)

        clipped = clip_triangles_near(tri_clip, tri_attrs)
        texture_ids = mesh.texture_ids[clipped.triangle_index]

        # Project all clipped vertices at once.
        flat_clip = clipped.clip.reshape(-1, 4)
        screen, ndc_z, inv_w = ndc_to_screen(flat_clip, width, height)
        screen = screen.reshape(-1, 3, 2)
        ndc_z = ndc_z.reshape(-1, 3)
        inv_w = inv_w.reshape(-1, 3)
        timers.stop("clip")
        return mipmaps, clipped, texture_ids, screen, ndc_z, inv_w, \
            colors is not None

    def render(self, scene) -> RenderResult:
        """Render ``scene`` (a :class:`repro.scenes.base.SceneData`)."""
        timers = _PhaseTimers()
        mipmaps, clipped, texture_ids, screen, ndc_z, inv_w, has_colors = \
            self._prepare(scene, timers)
        rasterize = (self._render_batched if self.raster == "batched"
                     else self._render_reference)
        return rasterize(scene, mipmaps, clipped, texture_ids,
                         screen, ndc_z, inv_w, has_colors,
                         scene.width, scene.height, timers)

    # -- per-triangle reference path -------------------------------------

    def _render_reference(self, scene, mipmaps, clipped, texture_ids,
                          screen, ndc_z, inv_w, has_colors,
                          width, height, timers) -> RenderResult:
        framebuffer = Framebuffer(width, height) if self.produce_image else None
        zbuffer = ZBuffer(width, height) if self.produce_image else None

        builder = TraceBuilder(record_positions=self.record_positions)
        rasterized = 0
        per_triangle_fragments = np.zeros(clipped.n_triangles, dtype=np.int64)

        for index in range(clipped.n_triangles):
            timers.start()
            texture_id = int(texture_ids[index])
            mipmap = mipmaps[texture_id]
            tri_colors = None
            uv = clipped.attrs[index, :, :2]
            if has_colors:
                tri_colors = clipped.attrs[index, :, 2:5]
            batch = rasterize_triangle(
                screen[index], ndc_z[index], inv_w[index], uv,
                texture_size=mipmap.level_shape(0),
                width=width, height=height, colors=tri_colors,
            )
            if batch is None or batch.n_fragments == 0:
                timers.stop("raster")
                continue
            rasterized += 1
            per_triangle_fragments[index] = batch.n_fragments
            batch = batch.reordered(self.order.argsort(batch.x, batch.y))
            if self.lod_bias:
                batch.lod = batch.lod + self.lod_bias
            timers.stop("raster")

            timers.start()
            accesses = self._triangle_accesses(batch, mipmap)
            if self.record_positions:
                builder.append(texture_id, accesses, batch.n_fragments,
                               fragment_x=batch.x, fragment_y=batch.y)
            else:
                builder.append(texture_id, accesses, batch.n_fragments)
            timers.stop("access_gen")

            if framebuffer is not None:
                timers.start()
                texel_rgba = filter_colors(mipmap, batch.u, batch.v, batch.lod)
                rgb = texel_rgba[:, :3]
                if batch.color is not None:
                    rgb = rgb * batch.color
                passed = zbuffer.test_and_write(batch.x, batch.y, batch.z)
                framebuffer.write(batch.x[passed], batch.y[passed], rgb[passed])
                timers.stop("filter")

        return RenderResult(
            trace=builder.build(),
            framebuffer=framebuffer,
            n_fragments=builder.n_fragments,
            n_triangles_submitted=scene.mesh.n_triangles,
            n_triangles_rasterized=rasterized,
            per_triangle_fragments=per_triangle_fragments,
            phase_ms=timers.ms,
        )

    def _triangle_accesses(self, batch, mipmap) -> TexelAccesses:
        """The access stream of one triangle's (reordered) fragments."""
        if not self.use_mipmaps:
            # GL_LINEAR: bilinear at level 0, whatever the lod.
            return generate_accesses(
                batch.u, batch.v, np.full(batch.n_fragments, -1.0),
                1, *mipmap.level_shape(0),
            )
        if self.max_anisotropy > 1:
            # LoD bias scales the footprint: 2**bias on derivatives.
            bias_factor = 2.0 ** self.lod_bias if self.lod_bias else 1.0
            return generate_accesses_aniso(
                batch.u, batch.v,
                batch.dudx * bias_factor, batch.dvdx * bias_factor,
                batch.dudy * bias_factor, batch.dvdy * bias_factor,
                mipmap.n_levels, *mipmap.level_shape(0),
                max_aniso=self.max_anisotropy,
            )
        return generate_accesses(
            batch.u, batch.v, batch.lod,
            mipmap.n_levels, *mipmap.level_shape(0),
        )

    # -- batched path ----------------------------------------------------

    def _render_batched(self, scene, mipmaps, clipped, texture_ids,
                        screen, ndc_z, inv_w, has_colors,
                        width, height, timers) -> RenderResult:
        timers.start()
        uv = clipped.attrs[:, :, :2]
        tri_colors = clipped.attrs[:, :, 2:5] if has_colors else None
        level0 = np.array([mipmap.level_shape(0) for mipmap in mipmaps],
                          dtype=np.int64).reshape(-1, 2)
        fragments = rasterize_triangles(
            screen, ndc_z, inv_w, uv,
            texel_w=level0[texture_ids, 0], texel_h=level0[texture_ids, 1],
            width=width, height=height,
            colors=tri_colors if self.produce_image else None,
            with_z=self.produce_image,
            with_derivatives=self.use_mipmaps and self.max_anisotropy > 1,
        )
        # Restore the reference stream order: triangles in submission
        # order, fragments in traversal order within each triangle.
        fragments = fragments.take(self.order.grouped_argsort(
            fragments.x, fragments.y, fragments.triangle,
            within_rowmajor=True))
        if self.lod_bias:
            fragments.lod = fragments.lod + self.lod_bias
        per_triangle_fragments = np.bincount(
            fragments.triangle, minlength=clipped.n_triangles)
        timers.stop("raster")

        timers.start()
        builder = TraceBuilder(record_positions=self.record_positions)
        frag_texture = texture_ids[fragments.triangle]
        # One access-generation call over the whole fragment stream:
        # the filtering kernels are elementwise, so per-fragment pyramid
        # geometry arrays (gathered through the texture id) produce the
        # same accesses as per-texture calls -- already in fragment
        # order, with no grouping or stitch sort.
        accesses = self._stream_accesses(fragments, frag_texture,
                                         mipmaps, level0)
        builder.append_stream(
            frag_texture.astype(np.int16)[accesses.fragment_index],
            accesses, n_fragments=fragments.n_fragments,
            fragment_x=fragments.x, fragment_y=fragments.y)
        timers.stop("access_gen")

        framebuffer = zbuffer = None
        if self.produce_image:
            timers.start()
            framebuffer = Framebuffer(width, height)
            zbuffer = ZBuffer(width, height)
            self._resolve_image(fragments, frag_texture, mipmaps,
                                framebuffer, zbuffer, width)
            timers.stop("filter")

        return RenderResult(
            trace=builder.build(),
            framebuffer=framebuffer,
            n_fragments=builder.n_fragments,
            n_triangles_submitted=scene.mesh.n_triangles,
            n_triangles_rasterized=int((per_triangle_fragments > 0).sum()),
            per_triangle_fragments=per_triangle_fragments,
            phase_ms=timers.ms,
        )

    def _stream_accesses(self, fragments, frag_texture, mipmaps,
                         level0) -> TexelAccesses:
        """Access stream of the whole (multi-texture) fragment stream,
        the array-geometry twin of :meth:`_triangle_accesses`."""
        width0 = level0[frag_texture, 0]
        height0 = level0[frag_texture, 1]
        if not self.use_mipmaps:
            return generate_accesses(
                fragments.u, fragments.v,
                np.full(fragments.n_fragments, -1.0), 1, width0, height0)
        n_levels = np.array([mipmap.n_levels for mipmap in mipmaps],
                            dtype=np.int64)[frag_texture]
        if self.max_anisotropy > 1:
            bias_factor = 2.0 ** self.lod_bias if self.lod_bias else 1.0
            return generate_accesses_aniso(
                fragments.u, fragments.v,
                fragments.dudx * bias_factor, fragments.dvdx * bias_factor,
                fragments.dudy * bias_factor, fragments.dvdy * bias_factor,
                n_levels, width0, height0,
                max_aniso=self.max_anisotropy,
            )
        return generate_accesses(fragments.u, fragments.v, fragments.lod,
                                 n_levels, width0, height0)

    def _resolve_image(self, fragments, frag_texture, mipmaps,
                       framebuffer, zbuffer, width) -> None:
        """Filter colors per texture and resolve visibility in one pass.

        The reference path z-tests triangle by triangle with a strict
        ``z < depth`` comparison, so the surviving fragment per pixel is
        the minimum-z fragment, earliest in the stream among equal
        depths.  A stable lexsort over (pixel, z) picks exactly that
        winner, reproducing the final framebuffer and depth buffer.
        """
        n = fragments.n_fragments
        if n == 0:
            return
        rgb = np.empty((n, 3), dtype=np.float64)
        for texture_id in np.unique(frag_texture):
            where = np.flatnonzero(frag_texture == texture_id)
            rgba = filter_colors(mipmaps[texture_id], fragments.u[where],
                                 fragments.v[where], fragments.lod[where])
            rgb[where] = rgba[:, :3]
        if fragments.color is not None:
            rgb = rgb * fragments.color
        pixel = fragments.y.astype(np.int64) * width + fragments.x
        by_depth = np.lexsort((fragments.z, pixel))
        pixel_sorted = pixel[by_depth]
        first = np.concatenate([[True], pixel_sorted[1:] != pixel_sorted[:-1]])
        winners = by_depth[first]
        zbuffer.depth[fragments.y[winners], fragments.x[winners]] = \
            fragments.z[winners]
        framebuffer.write(fragments.x[winners], fragments.y[winners],
                          rgb[winners])

    # -- streaming (block) path ------------------------------------------

    def render_blocks(self, scene, chunk_size: int, totals: dict = None,
                      triangle_slice: tuple = None):
        """Render ``scene`` as a stream of :class:`FragmentBlock`
        chunks of at most ``chunk_size`` accesses each, cut at
        fragment boundaries.

        Bit-identity: every traversal order sorts the frame's stream
        triangle-major (submission order is the most significant key),
        and per-triangle rasterization setup and access generation are
        elementwise, so rasterizing contiguous triangle ranges and
        concatenating their ordered streams equals
        :meth:`render`'s trace exactly -- the blocks are that stream,
        partitioned.  Peak memory is bounded by the chunk size (plus
        one triangle batch), never the frame.

        ``triangle_slice=(index, count)`` renders only the ``index``-th
        of ``count`` equal contiguous slices of the clipped triangle
        range (the deterministic partition the pipelined streaming
        pool fans out).  Slice bounds depend only on the clipped
        triangle count, so every worker derives the same partition
        independently, and concatenating the slices' block streams in
        slice order is bit-identical to the unsliced stream.

        Streaming skips the framebuffer (construct the renderer with
        ``produce_image=False``); pass ``totals`` (a dict) to receive
        the frame summary -- ``n_fragments``, ``n_triangles_submitted``,
        ``n_triangles_rasterized``, ``per_triangle_fragments`` -- once
        the generator is exhausted.  With a ``triangle_slice`` the
        fragment/rasterized counters cover only the slice (they sum to
        the frame totals across slices); ``n_triangles_submitted``
        stays frame-global.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if self.produce_image:
            raise RuntimeError(
                "streaming render does not produce an image; construct "
                "the Renderer with produce_image=False")
        timers = _PhaseTimers()
        mipmaps, clipped, texture_ids, screen, ndc_z, inv_w, _ = \
            self._prepare(scene, timers)
        lo, hi = triangle_slice_bounds(clipped.n_triangles, triangle_slice)
        per_triangle = np.zeros(clipped.n_triangles, dtype=np.int64)
        if self.raster == "batched":
            chunks = self._batched_chunk_traces(
                mipmaps, clipped, texture_ids, screen, ndc_z, inv_w,
                scene.width, scene.height, chunk_size, per_triangle,
                lo, hi)
        else:
            chunks = self._reference_chunk_traces(
                mipmaps, clipped, texture_ids, screen, ndc_z, inv_w,
                scene.width, scene.height, per_triangle, lo, hi)
        accumulator = _BlockAccumulator(chunk_size)
        for trace, starts in chunks:
            accumulator.add(trace, starts)
            yield from accumulator.drain()
        yield from accumulator.drain(final=True)
        if totals is not None:
            sliced = per_triangle[lo:hi]
            totals.update(
                n_fragments=int(sliced.sum()),
                n_triangles_submitted=scene.mesh.n_triangles,
                n_triangles_rasterized=int((sliced > 0).sum()),
                per_triangle_fragments=per_triangle,
            )

    def _batched_chunk_traces(self, mipmaps, clipped, texture_ids,
                              screen, ndc_z, inv_w, width, height,
                              chunk_size, per_triangle, lo=0, hi=None):
        """Yield ``(chunk trace, fragment start indices)`` for
        contiguous submission-order triangle ranges, sized adaptively
        so each range generates roughly ``chunk_size`` accesses.
        ``[lo, hi)`` restricts the walk to a contiguous clipped-triangle
        slice (the pipelined streaming partition)."""
        uv = clipped.attrs[:, :, :2]
        level0 = np.array([mipmap.level_shape(0) for mipmap in mipmaps],
                          dtype=np.int64).reshape(-1, 2)
        m = clipped.n_triangles if hi is None else hi
        begin = lo
        guess = 256
        seen_triangles = 0
        seen_accesses = 0
        while begin < m:
            end = min(m, begin + guess)
            ids = texture_ids[begin:end]
            fragments = rasterize_triangles(
                screen[begin:end], ndc_z[begin:end], inv_w[begin:end],
                uv[begin:end],
                texel_w=level0[ids, 0], texel_h=level0[ids, 1],
                width=width, height=height, colors=None, with_z=False,
                with_derivatives=self.use_mipmaps and self.max_anisotropy > 1,
            )
            fragments = fragments.take(self.order.grouped_argsort(
                fragments.x, fragments.y, fragments.triangle,
                within_rowmajor=True))
            if self.lod_bias:
                fragments.lod = fragments.lod + self.lod_bias
            per_triangle[begin:end] += np.bincount(
                fragments.triangle, minlength=end - begin)
            frag_texture = ids[fragments.triangle]
            accesses = self._stream_accesses(fragments, frag_texture,
                                             mipmaps, level0)
            builder = TraceBuilder(record_positions=self.record_positions)
            builder.append_stream(
                frag_texture.astype(np.int16)[accesses.fragment_index],
                accesses, n_fragments=fragments.n_fragments,
                fragment_x=fragments.x, fragment_y=fragments.y)
            trace = builder.build()
            yield trace, _fragment_start_indices(accesses.fragment_index)
            seen_triangles += end - begin
            seen_accesses += trace.n_accesses
            per_triangle_accesses = max(1.0, seen_accesses / seen_triangles)
            guess = int(min(max(16, chunk_size / per_triangle_accesses),
                            1 << 16))
            begin = end

    def _reference_chunk_traces(self, mipmaps, clipped, texture_ids,
                                screen, ndc_z, inv_w, width, height,
                                per_triangle, lo=0, hi=None):
        """Per-triangle oracle twin of :meth:`_batched_chunk_traces`."""
        hi = clipped.n_triangles if hi is None else hi
        for index in range(lo, hi):
            texture_id = int(texture_ids[index])
            mipmap = mipmaps[texture_id]
            uv = clipped.attrs[index, :, :2]
            batch = rasterize_triangle(
                screen[index], ndc_z[index], inv_w[index], uv,
                texture_size=mipmap.level_shape(0),
                width=width, height=height, colors=None,
            )
            if batch is None or batch.n_fragments == 0:
                continue
            per_triangle[index] = batch.n_fragments
            batch = batch.reordered(self.order.argsort(batch.x, batch.y))
            if self.lod_bias:
                batch.lod = batch.lod + self.lod_bias
            accesses = self._triangle_accesses(batch, mipmap)
            builder = TraceBuilder(record_positions=self.record_positions)
            if self.record_positions:
                builder.append(texture_id, accesses, batch.n_fragments,
                               fragment_x=batch.x, fragment_y=batch.y)
            else:
                builder.append(texture_id, accesses, batch.n_fragments)
            yield builder.build(), _fragment_start_indices(
                accesses.fragment_index)


def triangle_slice_bounds(n_triangles: int, triangle_slice: tuple = None):
    """The ``[lo, hi)`` clipped-triangle bounds of one slice of an
    ``(index, count)`` equal partition -- the deterministic contract
    between the pipelined streaming pool's workers, who each derive
    their own bounds from nothing but the clipped triangle count."""
    if triangle_slice is None:
        return 0, n_triangles
    index, count = int(triangle_slice[0]), int(triangle_slice[1])
    if count < 1 or not 0 <= index < count:
        raise ValueError(f"bad triangle slice {triangle_slice!r}")
    bounds = np.linspace(0, n_triangles, count + 1).astype(np.int64)
    return int(bounds[index]), int(bounds[index + 1])


def _fragment_start_indices(fragment_index: np.ndarray) -> np.ndarray:
    """Access indices where a new fragment begins, from the generator's
    per-access fragment map (exact under anisotropy, unlike the
    kind-column recovery in :func:`repro.pipeline.trace.count_fragments`)."""
    if len(fragment_index) == 0:
        return np.empty(0, dtype=np.int64)
    change = np.empty(len(fragment_index), dtype=bool)
    change[0] = True
    np.not_equal(fragment_index[1:], fragment_index[:-1], out=change[1:])
    return np.flatnonzero(change).astype(np.int64)


class _BlockAccumulator:
    """Re-chunks triangle-sized trace pieces into fixed-size
    :class:`FragmentBlock` chunks, cutting only at fragment boundaries.

    Pieces always end on a fragment boundary (fragments never span
    triangles), so every pending fragment is complete and the pending
    buffer never holds more than one emitted block plus one piece.
    """

    def __init__(self, chunk_size: int):
        self.chunk_size = chunk_size
        self.pending = None          # TexelTrace-shaped buffer
        self.starts = np.empty(0, dtype=np.int64)
        self.index = 0

    def add(self, trace: TexelTrace, starts: np.ndarray) -> None:
        if trace.n_accesses == 0:
            return
        if self.pending is None:
            self.pending = trace
            self.starts = starts
            return
        offset = self.pending.n_accesses
        merged = {}
        for column in ("texture_id", "level", "tu", "tv",
                       "tu_raw", "tv_raw", "kind", "x", "y"):
            left = getattr(self.pending, column)
            if left is None:
                merged[column] = None
            else:
                merged[column] = np.concatenate(
                    [left, getattr(trace, column)])
        self.pending = TexelTrace(
            n_fragments=self.pending.n_fragments + trace.n_fragments,
            **merged)
        self.starts = np.concatenate([self.starts, starts + offset])

    def drain(self, final: bool = False):
        while self.pending is not None:
            n = self.pending.n_accesses
            if n == 0:
                self.pending = None
                break
            if n < self.chunk_size and not final:
                break
            if final and n <= self.chunk_size:
                cut = n
            else:
                # Largest fragment boundary at or below the chunk size;
                # a single oversized fragment advances to the next
                # boundary (or the end) so progress is guaranteed.
                position = int(np.searchsorted(
                    self.starts, self.chunk_size, side="right")) - 1
                cut = int(self.starts[position])
                if cut == 0:
                    cut = int(self.starts[position + 1]) \
                        if position + 1 < len(self.starts) else n
            n_fragments = int(np.searchsorted(self.starts, cut, side="left"))
            piece = self.pending
            yield FragmentBlock(
                texture_id=piece.texture_id[:cut],
                level=piece.level[:cut],
                tu=piece.tu[:cut], tv=piece.tv[:cut],
                tu_raw=piece.tu_raw[:cut], tv_raw=piece.tv_raw[:cut],
                kind=piece.kind[:cut], n_fragments=n_fragments,
                x=None if piece.x is None else piece.x[:cut],
                y=None if piece.y is None else piece.y[:cut],
                index=self.index)
            self.index += 1
            if cut == n:
                self.pending = None
                self.starts = np.empty(0, dtype=np.int64)
            else:
                self.pending = TexelTrace(
                    texture_id=piece.texture_id[cut:],
                    level=piece.level[cut:],
                    tu=piece.tu[cut:], tv=piece.tv[cut:],
                    tu_raw=piece.tu_raw[cut:], tv_raw=piece.tv_raw[cut:],
                    kind=piece.kind[cut:],
                    n_fragments=piece.n_fragments - n_fragments,
                    x=None if piece.x is None else piece.x[cut:],
                    y=None if piece.y is None else piece.y[cut:])
                self.starts = self.starts[n_fragments:] - cut


def render_trace(scene, order: TraversalOrder = None,
                 raster: str = "batched") -> RenderResult:
    """Convenience: render ``scene`` for tracing only (no image)."""
    return Renderer(order=order, produce_image=False,
                    raster=raster).render(scene)


def render_trace_blocks(scene, chunk_size: int, order: TraversalOrder = None,
                        raster: str = "batched", totals: dict = None,
                        triangle_slice: tuple = None, **renderer_kwargs):
    """Convenience: stream ``scene``'s trace as
    :class:`FragmentBlock` chunks (no image)."""
    renderer = Renderer(order=order, produce_image=False, raster=raster,
                        **renderer_kwargs)
    return renderer.render_blocks(scene, chunk_size, totals=totals,
                                  triangle_slice=triangle_slice)

"""The software graphics pipeline (paper Section 4.1).

Geometry, clipping, lighting of vertices, rasterization, shading,
texture mapping and z-buffering -- the paper's first simulation
component, "similar to the one described in [RealityEngine]" with
texture mapping "based on the OpenGL specification document".

Triangles are rasterized in the order they are specified in the input.
Fragment traversal within each triangle follows the configured
:class:`~repro.raster.order.TraversalOrder` (horizontal, vertical or
tiled); every texel fetched by the trilinear/bilinear filter is
recorded in a :class:`~repro.pipeline.trace.TexelTrace` for the cache
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..geometry.clip import clip_triangles_near
from ..geometry.lighting import DirectionalLight, light_mesh
from ..geometry.transform import ndc_to_screen
from ..raster.framebuffer import Framebuffer
from ..raster.order import HorizontalOrder, TraversalOrder
from ..raster.triangle import rasterize_triangle
from ..raster.zbuffer import ZBuffer
from ..texture.filtering import filter_colors, generate_accesses, generate_accesses_aniso
from .trace import TexelTrace, TraceBuilder


@dataclass
class RenderResult:
    """Everything produced by rendering one frame."""

    trace: TexelTrace
    framebuffer: Optional[Framebuffer]
    n_fragments: int
    n_triangles_submitted: int
    n_triangles_rasterized: int
    per_triangle_fragments: np.ndarray = field(default=None)

    @property
    def n_accesses(self) -> int:
        return self.trace.n_accesses


class Renderer:
    """Renders a scene and records its texel access trace.

    Parameters
    ----------
    order:
        Fragment traversal order (default horizontal scan lines).
    produce_image:
        When False, skips filtering arithmetic and framebuffer writes;
        the access trace is identical, and tracing runs ~2x faster.
        Benchmark harnesses use this.
    lighting:
        Optional :class:`DirectionalLight` applied per vertex when a
        mesh has no baked colors.
    """

    def __init__(
        self,
        order: TraversalOrder = None,
        produce_image: bool = True,
        lighting: Optional[DirectionalLight] = None,
        record_positions: bool = False,
        max_anisotropy: int = 1,
        lod_bias: float = 0.0,
        use_mipmaps: bool = True,
    ):
        if max_anisotropy < 1:
            raise ValueError("max_anisotropy must be >= 1")
        self.order = order if order is not None else HorizontalOrder()
        self.produce_image = produce_image
        self.lighting = lighting
        self.record_positions = record_positions
        #: >1 enables anisotropic filtering for the *access trace*
        #: (up to this many trilinear probes per fragment); the color
        #: path stays isotropic -- the study concerns addresses.
        self.max_anisotropy = max_anisotropy
        #: OpenGL-style level-of-detail bias: positive values select
        #: coarser mip levels (blurrier image, ~4x less texture
        #: footprint per +1), negative values sharper ones.
        self.lod_bias = lod_bias
        #: False models GL_LINEAR filtering without mip maps: every
        #: fragment bilinearly samples level 0 regardless of the
        #: level of detail.  Section 3.1.1 credits mip mapping with
        #: creating texture-space spatial locality; this switch is the
        #: ablation that proves it.
        self.use_mipmaps = use_mipmaps

    def render(self, scene) -> RenderResult:
        """Render ``scene`` (a :class:`repro.scenes.base.SceneData`)."""
        width, height = scene.width, scene.height
        mesh = scene.mesh
        mipmaps = scene.get_mipmaps()

        colors = mesh.colors
        if colors is None and self.lighting is not None:
            colors = light_mesh(mesh, self.lighting)

        mvp = scene.projection @ scene.view
        homogeneous = np.concatenate(
            [mesh.positions, np.ones((mesh.n_vertices, 1))], axis=1
        )
        clip_vertices = homogeneous @ mvp.T

        # Per-triangle vertex data in submission order.
        tri_clip = clip_vertices[mesh.triangles]  # (m, 3, 4)
        attr_list = [mesh.uvs]
        if colors is not None:
            attr_list.append(colors)
        vertex_attrs = np.concatenate(attr_list, axis=1)
        tri_attrs = vertex_attrs[mesh.triangles]  # (m, 3, k)

        clipped = clip_triangles_near(tri_clip, tri_attrs)
        texture_ids = mesh.texture_ids[clipped.triangle_index]

        # Project all clipped vertices at once.
        flat_clip = clipped.clip.reshape(-1, 4)
        screen, ndc_z, inv_w = ndc_to_screen(flat_clip, width, height)
        screen = screen.reshape(-1, 3, 2)
        ndc_z = ndc_z.reshape(-1, 3)
        inv_w = inv_w.reshape(-1, 3)

        framebuffer = Framebuffer(width, height) if self.produce_image else None
        zbuffer = ZBuffer(width, height) if self.produce_image else None

        builder = TraceBuilder(record_positions=self.record_positions)
        rasterized = 0
        per_triangle_fragments = np.zeros(clipped.n_triangles, dtype=np.int64)

        has_colors = colors is not None
        for index in range(clipped.n_triangles):
            texture_id = int(texture_ids[index])
            mipmap = mipmaps[texture_id]
            tri_colors = None
            uv = clipped.attrs[index, :, :2]
            if has_colors:
                tri_colors = clipped.attrs[index, :, 2:5]
            batch = rasterize_triangle(
                screen[index], ndc_z[index], inv_w[index], uv,
                texture_size=mipmap.level_shape(0),
                width=width, height=height, colors=tri_colors,
            )
            if batch is None or batch.n_fragments == 0:
                continue
            rasterized += 1
            per_triangle_fragments[index] = batch.n_fragments
            batch = batch.reordered(self.order.argsort(batch.x, batch.y))
            if self.lod_bias:
                batch.lod = batch.lod + self.lod_bias

            if not self.use_mipmaps:
                # GL_LINEAR: bilinear at level 0, whatever the lod.
                accesses = generate_accesses(
                    batch.u, batch.v, np.full(batch.n_fragments, -1.0),
                    1, *mipmap.level_shape(0),
                )
            elif self.max_anisotropy > 1:
                # LoD bias scales the footprint: 2**bias on derivatives.
                bias_factor = 2.0 ** self.lod_bias if self.lod_bias else 1.0
                accesses = generate_accesses_aniso(
                    batch.u, batch.v,
                    batch.dudx * bias_factor, batch.dvdx * bias_factor,
                    batch.dudy * bias_factor, batch.dvdy * bias_factor,
                    mipmap.n_levels, *mipmap.level_shape(0),
                    max_aniso=self.max_anisotropy,
                )
            else:
                accesses = generate_accesses(
                    batch.u, batch.v, batch.lod,
                    mipmap.n_levels, *mipmap.level_shape(0),
                )
            if self.record_positions:
                builder.append(texture_id, accesses, batch.n_fragments,
                               fragment_x=batch.x, fragment_y=batch.y)
            else:
                builder.append(texture_id, accesses, batch.n_fragments)

            if framebuffer is not None:
                texel_rgba = filter_colors(mipmap, batch.u, batch.v, batch.lod)
                rgb = texel_rgba[:, :3]
                if batch.color is not None:
                    rgb = rgb * batch.color
                passed = zbuffer.test_and_write(batch.x, batch.y, batch.z)
                framebuffer.write(batch.x[passed], batch.y[passed], rgb[passed])

        return RenderResult(
            trace=builder.build(),
            framebuffer=framebuffer,
            n_fragments=builder.n_fragments,
            n_triangles_submitted=mesh.n_triangles,
            n_triangles_rasterized=rasterized,
            per_triangle_fragments=per_triangle_fragments,
        )


def render_trace(scene, order: TraversalOrder = None) -> RenderResult:
    """Convenience: render ``scene`` for tracing only (no image)."""
    return Renderer(order=order, produce_image=False).render(scene)

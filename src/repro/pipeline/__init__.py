"""The full software graphics pipeline, trace recording, and the
Table 2.1 cost model."""

from .trace import TexelTrace, TraceBuilder
from .traceio import load_trace, save_trace
from .renderer import Renderer, RenderResult, render_trace
from .costs import (
    BILINEAR_INTERPOLATION,
    LEVEL_OF_DETAIL,
    MODULATION,
    NEAREST_UVD,
    OpCounts,
    PHASE_TABLE,
    RASTER_AND_SHADING,
    TEXEL_COORDINATES,
    TRIANGLE_SETUP,
    TRILINEAR_INTERPOLATION,
    addressing_ops,
    fragment_cost,
    frame_cost,
)

__all__ = [
    "TexelTrace",
    "TraceBuilder",
    "save_trace",
    "load_trace",
    "Renderer",
    "RenderResult",
    "render_trace",
    "OpCounts",
    "PHASE_TABLE",
    "TRIANGLE_SETUP",
    "RASTER_AND_SHADING",
    "LEVEL_OF_DETAIL",
    "TEXEL_COORDINATES",
    "NEAREST_UVD",
    "TRILINEAR_INTERPOLATION",
    "BILINEAR_INTERPOLATION",
    "MODULATION",
    "addressing_ops",
    "fragment_cost",
    "frame_cost",
]

"""repro: a reproduction of Hakura & Gupta, "The Design and Analysis
of a Cache Architecture for Texture Mapping" (ISCA 1997).

The package implements the paper's complete experimental apparatus:

* :mod:`repro.core` -- the texture cache simulator, stack-distance
  analysis, miss classification, machine model and bandwidth
  accounting (the paper's contribution);
* :mod:`repro.texture` -- texture images, mip maps, the five memory
  representations, allocation, and trilinear/bilinear filtering;
* :mod:`repro.geometry`, :mod:`repro.raster`, :mod:`repro.pipeline` --
  the software graphics pipeline that generates texel access traces;
* :mod:`repro.scenes` -- procedural stand-ins for the paper's four
  benchmark scenes (Flight, Town, Guitar, Goblet);
* :mod:`repro.analysis` -- locality metrics, working-set detection and
  report formatting.

Quickstart::

    from repro import (
        GobletScene, Renderer, TiledOrder, PaddedBlockedLayout,
        place_textures, CacheConfig, simulate,
    )

    scene = GobletScene().build(scale=0.25)
    result = Renderer(order=TiledOrder(8), produce_image=False).render(scene)
    placements = place_textures(scene.get_mipmaps(), PaddedBlockedLayout(8))
    addresses = result.trace.byte_addresses(placements)
    stats = simulate(addresses, CacheConfig(size=32 * 1024, line_size=128, assoc=2))
    print(stats.miss_rate)
"""

from .core import (
    CacheConfig,
    CacheStats,
    DistanceProfile,
    LineStream,
    LRUCache,
    MachineModel,
    MissRateCurve,
    PAPER_ASSOCIATIVITIES,
    PAPER_CACHE_SIZES,
    PAPER_LINE_SIZES,
    PAPER_MACHINE,
    TraceStreams,
    cached_bandwidth,
    classify_misses,
    fully_associative_curve,
    mbytes_per_second,
    miss_rate_curve,
    reduction_factor,
    simulate,
    sweep_associativities,
    sweep_cache_sizes,
    uncached_bandwidth,
)
from .texture import (
    Blocked6DLayout,
    BlockedLayout,
    MipMap,
    NonblockedLayout,
    PaddedBlockedLayout,
    TextureImage,
    TextureMemory,
    TextureSet,
    WilliamsLayout,
    build_mipmaps,
    make_layout,
    place_textures,
)
from .geometry import Mesh, make_grid, make_quad
from .raster import (
    Framebuffer,
    HilbertOrder,
    HorizontalOrder,
    TiledOrder,
    VerticalOrder,
    ZBuffer,
    make_order,
)
from .pipeline import Renderer, RenderResult, TexelTrace, fragment_cost, render_trace
from .scenes import (
    ALL_SCENES,
    FlightScene,
    GobletScene,
    GuitarScene,
    SceneData,
    TownScene,
    characterize,
    make_scene,
)
from .analysis import (
    accesses_per_texel,
    first_working_set,
    format_table,
    mean_texture_runlength,
    repetition_factor,
)
from .engine import (
    ArtifactStore,
    Engine,
    ExperimentSpec,
    TraceSpec,
    run_experiment,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "CacheConfig", "CacheStats", "LineStream", "LRUCache", "DistanceProfile",
    "MissRateCurve", "MachineModel", "PAPER_MACHINE", "TraceStreams",
    "PAPER_CACHE_SIZES", "PAPER_LINE_SIZES", "PAPER_ASSOCIATIVITIES",
    "simulate", "classify_misses", "miss_rate_curve", "fully_associative_curve",
    "sweep_cache_sizes", "sweep_associativities",
    "cached_bandwidth", "uncached_bandwidth", "reduction_factor", "mbytes_per_second",
    # texture
    "TextureImage", "TextureSet", "MipMap", "build_mipmaps",
    "NonblockedLayout", "BlockedLayout", "PaddedBlockedLayout",
    "Blocked6DLayout", "WilliamsLayout", "make_layout",
    "TextureMemory", "place_textures",
    # geometry / raster / pipeline
    "Mesh", "make_quad", "make_grid",
    "HorizontalOrder", "VerticalOrder", "TiledOrder", "HilbertOrder", "make_order",
    "ZBuffer", "Framebuffer",
    "Renderer", "RenderResult", "TexelTrace", "render_trace", "fragment_cost",
    # scenes
    "ALL_SCENES", "make_scene", "SceneData",
    "FlightScene", "TownScene", "GuitarScene", "GobletScene", "characterize",
    # analysis
    "accesses_per_texel", "repetition_factor", "mean_texture_runlength",
    "first_working_set", "format_table",
    # engine
    "ArtifactStore", "Engine", "ExperimentSpec", "TraceSpec", "run_experiment",
]

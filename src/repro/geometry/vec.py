"""Small vector helpers shared by the geometry stage."""

from __future__ import annotations

import numpy as np


def normalize(vectors: np.ndarray, axis: int = -1) -> np.ndarray:
    """Unit-length vectors; zero vectors are returned unchanged."""
    vectors = np.asarray(vectors, dtype=np.float64)
    norms = np.linalg.norm(vectors, axis=axis, keepdims=True)
    safe = np.where(norms == 0.0, 1.0, norms)
    return vectors / safe


def cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cross product, broadcasting over leading axes."""
    return np.cross(np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64))


def dot(a: np.ndarray, b: np.ndarray, axis: int = -1) -> np.ndarray:
    """Dot product along ``axis``."""
    return np.sum(np.asarray(a, dtype=np.float64) * np.asarray(b, dtype=np.float64), axis=axis)


def homogenize(points: np.ndarray) -> np.ndarray:
    """Append w=1 to ``(n, 3)`` points, giving ``(n, 4)``."""
    points = np.asarray(points, dtype=np.float64)
    ones = np.ones((len(points), 1))
    return np.concatenate([points, ones], axis=1)


def triangle_normals(positions: np.ndarray, triangles: np.ndarray) -> np.ndarray:
    """Per-triangle unit normals for a triangle soup."""
    p0 = positions[triangles[:, 0]]
    p1 = positions[triangles[:, 1]]
    p2 = positions[triangles[:, 2]]
    return normalize(np.cross(p1 - p0, p2 - p0))


def vertex_normals(positions: np.ndarray, triangles: np.ndarray) -> np.ndarray:
    """Area-weighted per-vertex normals."""
    p0 = positions[triangles[:, 0]]
    p1 = positions[triangles[:, 1]]
    p2 = positions[triangles[:, 2]]
    face = np.cross(p1 - p0, p2 - p0)  # length = 2 * area: area weighting
    normals = np.zeros_like(positions, dtype=np.float64)
    for corner in range(3):
        np.add.at(normals, triangles[:, corner], face)
    return normalize(normals)

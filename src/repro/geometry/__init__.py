"""Geometry substrate: vectors, transforms, meshes, clipping, lighting
(the pipeline's first stage, paper Section 2)."""

from .vec import cross, dot, homogenize, normalize, triangle_normals, vertex_normals
from .transform import (
    identity,
    look_at,
    ndc_to_screen,
    perspective,
    rotate_x,
    rotate_y,
    rotate_z,
    scale,
    transform_points,
    translate,
)
from .mesh import Mesh, make_grid, make_quad
from .clip import ClippedTriangles, clip_triangles_near
from .lighting import DirectionalLight, light_mesh

__all__ = [
    "normalize",
    "cross",
    "dot",
    "homogenize",
    "triangle_normals",
    "vertex_normals",
    "identity",
    "translate",
    "scale",
    "rotate_x",
    "rotate_y",
    "rotate_z",
    "look_at",
    "perspective",
    "transform_points",
    "ndc_to_screen",
    "Mesh",
    "make_quad",
    "make_grid",
    "ClippedTriangles",
    "clip_triangles_near",
    "DirectionalLight",
    "light_mesh",
]

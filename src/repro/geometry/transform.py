"""Homogeneous 4x4 transforms: the pipeline's geometry stage applies a
perspective mapping of triangles to the 2D display (paper Section 2).

Conventions follow OpenGL: right-handed eye space looking down -Z,
clip space with visible points satisfying ``-w <= x, y, z <= w``.
"""

from __future__ import annotations

import numpy as np

from .vec import normalize


def identity() -> np.ndarray:
    return np.eye(4)


def translate(tx: float, ty: float, tz: float) -> np.ndarray:
    matrix = np.eye(4)
    matrix[:3, 3] = (tx, ty, tz)
    return matrix


def scale(sx: float, sy: float = None, sz: float = None) -> np.ndarray:
    if sy is None:
        sy = sx
    if sz is None:
        sz = sx
    return np.diag([sx, sy, sz, 1.0])


def rotate_x(radians: float) -> np.ndarray:
    c, s = np.cos(radians), np.sin(radians)
    matrix = np.eye(4)
    matrix[1, 1], matrix[1, 2] = c, -s
    matrix[2, 1], matrix[2, 2] = s, c
    return matrix


def rotate_y(radians: float) -> np.ndarray:
    c, s = np.cos(radians), np.sin(radians)
    matrix = np.eye(4)
    matrix[0, 0], matrix[0, 2] = c, s
    matrix[2, 0], matrix[2, 2] = -s, c
    return matrix


def rotate_z(radians: float) -> np.ndarray:
    c, s = np.cos(radians), np.sin(radians)
    matrix = np.eye(4)
    matrix[0, 0], matrix[0, 1] = c, -s
    matrix[1, 0], matrix[1, 1] = s, c
    return matrix


def look_at(eye, target, up=(0.0, 1.0, 0.0)) -> np.ndarray:
    """View matrix placing the camera at ``eye`` looking at ``target``."""
    eye = np.asarray(eye, dtype=np.float64)
    forward = normalize(np.asarray(target, dtype=np.float64) - eye)
    right = normalize(np.cross(forward, np.asarray(up, dtype=np.float64)))
    true_up = np.cross(right, forward)
    matrix = np.eye(4)
    matrix[0, :3] = right
    matrix[1, :3] = true_up
    matrix[2, :3] = -forward
    matrix[:3, 3] = -matrix[:3, :3] @ eye
    return matrix


def perspective(fov_y_degrees: float, aspect: float, near: float, far: float) -> np.ndarray:
    """OpenGL-style perspective projection."""
    if near <= 0 or far <= near:
        raise ValueError("require 0 < near < far")
    f = 1.0 / np.tan(np.radians(fov_y_degrees) / 2.0)
    matrix = np.zeros((4, 4))
    matrix[0, 0] = f / aspect
    matrix[1, 1] = f
    matrix[2, 2] = (far + near) / (near - far)
    matrix[2, 3] = 2.0 * far * near / (near - far)
    matrix[3, 2] = -1.0
    return matrix


def transform_points(matrix: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 4x4 matrix to ``(n, 3)`` points -> ``(n, 4)`` clip coords."""
    points = np.asarray(points, dtype=np.float64)
    homogeneous = np.concatenate([points, np.ones((len(points), 1))], axis=1)
    return homogeneous @ matrix.T


def ndc_to_screen(clip: np.ndarray, width: int, height: int) -> tuple:
    """Perspective divide + viewport transform.

    Returns ``(screen_xy (n,2), ndc_z (n,), inv_w (n,))``.  Screen
    origin is the top-left corner with y growing downward (raster
    convention); a pixel's center is at integer + 0.5.
    """
    w = clip[:, 3]
    inv_w = 1.0 / w
    ndc = clip[:, :3] * inv_w[:, None]
    screen = np.empty((len(clip), 2))
    screen[:, 0] = (ndc[:, 0] + 1.0) * 0.5 * width
    screen[:, 1] = (1.0 - ndc[:, 1]) * 0.5 * height
    return screen, ndc[:, 2], inv_w

"""Vertex lighting (the pipeline's "lighting of vertices", Section 4.1).

A single directional light with ambient and diffuse terms, evaluated
per vertex; the resulting color later modulates the filtered texture
color (Table 2.1's "modulation with fragment color" phase).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .vec import normalize, vertex_normals


@dataclass(frozen=True)
class DirectionalLight:
    """A directional light: ``direction`` points *toward* the light."""

    direction: tuple = (0.3, 1.0, 0.4)
    ambient: float = 0.35
    diffuse: float = 0.65

    def shade(self, normals: np.ndarray) -> np.ndarray:
        """Per-vertex luminance given unit normals, in [0, 1]."""
        light_dir = normalize(np.asarray(self.direction, dtype=np.float64))
        lambert = np.clip(normals @ light_dir, 0.0, 1.0)
        return np.clip(self.ambient + self.diffuse * lambert, 0.0, 1.0)


def light_mesh(mesh, light: DirectionalLight = DirectionalLight()) -> np.ndarray:
    """Compute ``(n_vertices, 3)`` shading colors for ``mesh``."""
    normals = vertex_normals(mesh.positions, mesh.triangles)
    luminance = light.shade(normals)
    return np.repeat(luminance[:, None], 3, axis=1)

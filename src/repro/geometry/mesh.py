"""Triangle meshes with texture coordinates.

Scenes are defined in terms of triangles (paper Section 2); each
triangle carries a texture id, and triangles are rasterized in the
order they are specified (Section 4.1) -- this submission order is what
produces the paper's long same-texture runlengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class Mesh:
    """An indexed triangle mesh.

    Attributes
    ----------
    positions:
        ``(n_vertices, 3)`` float world/object coordinates.
    uvs:
        ``(n_vertices, 2)`` float texture coordinates; values outside
        [0, 1) repeat the texture (GL_REPEAT).
    triangles:
        ``(n_triangles, 3)`` int vertex indices, submission order.
    texture_ids:
        ``(n_triangles,)`` int texture id per triangle.
    colors:
        Optional ``(n_vertices, 3)`` float shading colors in [0, 1];
        defaults to white (texture shown unmodulated).
    """

    positions: np.ndarray
    uvs: np.ndarray
    triangles: np.ndarray
    texture_ids: np.ndarray
    colors: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.uvs = np.asarray(self.uvs, dtype=np.float64)
        self.triangles = np.asarray(self.triangles, dtype=np.int64)
        self.texture_ids = np.asarray(self.texture_ids, dtype=np.int64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions must be (n, 3)")
        if self.uvs.shape != (len(self.positions), 2):
            raise ValueError("uvs must be (n_vertices, 2)")
        if self.triangles.ndim != 2 or self.triangles.shape[1] != 3:
            raise ValueError("triangles must be (m, 3)")
        if self.texture_ids.shape != (len(self.triangles),):
            raise ValueError("texture_ids must be (n_triangles,)")
        if len(self.triangles) and self.triangles.max() >= len(self.positions):
            raise ValueError("triangle index out of range")
        if self.colors is not None:
            self.colors = np.asarray(self.colors, dtype=np.float64)
            if self.colors.shape != (len(self.positions), 3):
                raise ValueError("colors must be (n_vertices, 3)")

    @property
    def n_vertices(self) -> int:
        return len(self.positions)

    @property
    def n_triangles(self) -> int:
        return len(self.triangles)

    def transformed(self, matrix: np.ndarray) -> "Mesh":
        """Apply a 4x4 affine transform to vertex positions."""
        homogeneous = np.concatenate(
            [self.positions, np.ones((self.n_vertices, 1))], axis=1
        )
        moved = homogeneous @ matrix.T
        return Mesh(
            positions=moved[:, :3] / moved[:, 3:4],
            uvs=self.uvs.copy(),
            triangles=self.triangles.copy(),
            texture_ids=self.texture_ids.copy(),
            colors=None if self.colors is None else self.colors.copy(),
        )

    @staticmethod
    def concat(meshes) -> "Mesh":
        """Concatenate meshes, preserving triangle submission order."""
        meshes = list(meshes)
        if not meshes:
            raise ValueError("cannot concat zero meshes")
        offsets = np.cumsum([0] + [m.n_vertices for m in meshes[:-1]])
        has_colors = any(m.colors is not None for m in meshes)
        colors = None
        if has_colors:
            colors = np.concatenate([
                m.colors if m.colors is not None else np.ones((m.n_vertices, 3))
                for m in meshes
            ])
        return Mesh(
            positions=np.concatenate([m.positions for m in meshes]),
            uvs=np.concatenate([m.uvs for m in meshes]),
            triangles=np.concatenate(
                [m.triangles + off for m, off in zip(meshes, offsets)]
            ),
            texture_ids=np.concatenate([m.texture_ids for m in meshes]),
            colors=colors,
        )


def make_quad(
    corners,
    texture_id: int,
    uv_rect=(0.0, 0.0, 1.0, 1.0),
    subdivide: int = 1,
) -> Mesh:
    """A textured quad, optionally subdivided into a grid of triangles.

    ``corners`` is a 4x3 array ordered counter-clockwise:
    bottom-left, bottom-right, top-right, top-left.  ``uv_rect`` is
    ``(u0, v0, u1, v1)``; values beyond 1 repeat the texture.
    """
    corners = np.asarray(corners, dtype=np.float64)
    if corners.shape != (4, 3):
        raise ValueError("corners must be (4, 3)")
    if subdivide < 1:
        raise ValueError("subdivide must be >= 1")
    u0, v0, u1, v1 = uv_rect
    steps = subdivide + 1
    s = np.linspace(0.0, 1.0, steps)
    t = np.linspace(0.0, 1.0, steps)
    ss, tt = np.meshgrid(s, t, indexing="xy")
    bottom = corners[0] + (corners[1] - corners[0]) * ss[..., None]
    top = corners[3] + (corners[2] - corners[3]) * ss[..., None]
    positions = (bottom + (top - bottom) * tt[..., None]).reshape(-1, 3)
    uvs = np.stack(
        [u0 + (u1 - u0) * ss, v0 + (v1 - v0) * tt], axis=-1
    ).reshape(-1, 2)

    triangles = []
    for row in range(subdivide):
        for col in range(subdivide):
            a = row * steps + col
            b = a + 1
            c = a + steps
            d = c + 1
            triangles.append((a, b, d))
            triangles.append((a, d, c))
    triangles = np.asarray(triangles, dtype=np.int64)
    texture_ids = np.full(len(triangles), texture_id, dtype=np.int64)
    return Mesh(positions=positions, uvs=uvs, triangles=triangles, texture_ids=texture_ids)


def make_grid(
    heights: np.ndarray,
    cell_size: float,
    texture_id: int,
    uv_scale: float = 1.0,
    origin=(0.0, 0.0, 0.0),
) -> Mesh:
    """A heightfield terrain patch in the XZ plane.

    ``heights`` is ``(rows, cols)``; vertex ``(r, c)`` sits at
    ``origin + (c * cell, heights[r, c], r * cell)``.  UVs span
    ``uv_scale`` copies of the texture across the patch.
    """
    heights = np.asarray(heights, dtype=np.float64)
    rows, cols = heights.shape
    if rows < 2 or cols < 2:
        raise ValueError("heights must be at least 2x2")
    origin = np.asarray(origin, dtype=np.float64)
    cs, rs = np.meshgrid(np.arange(cols), np.arange(rows), indexing="xy")
    positions = np.stack(
        [
            origin[0] + cs * cell_size,
            origin[1] + heights,
            origin[2] + rs * cell_size,
        ],
        axis=-1,
    ).reshape(-1, 3)
    uvs = np.stack(
        [cs / (cols - 1) * uv_scale, rs / (rows - 1) * uv_scale], axis=-1
    ).reshape(-1, 2)
    triangles = []
    for row in range(rows - 1):
        for col in range(cols - 1):
            a = row * cols + col
            b = a + 1
            c = a + cols
            d = c + 1
            triangles.append((a, b, d))
            triangles.append((a, d, c))
    triangles = np.asarray(triangles, dtype=np.int64)
    texture_ids = np.full(len(triangles), texture_id, dtype=np.int64)
    return Mesh(positions=positions, uvs=uvs, triangles=triangles, texture_ids=texture_ids)

"""Near-plane clipping in homogeneous clip space.

Triangles that cross the near plane must be clipped before the
perspective divide (a vertex with w <= 0 has no screen position).  We
clip each triangle against ``z >= -w + eps`` with Sutherland-Hodgman,
interpolating all vertex attributes linearly in clip space, which is
exact for projective attributes.  Fully-outside triangles vanish;
crossing triangles become one or two triangles, keeping the original
submission order (clipped pieces stay adjacent in the stream).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class ClippedTriangles:
    """Clip-space triangle soup after near-plane clipping.

    ``clip`` is ``(n, 3, 4)`` clip coordinates; ``attrs`` is
    ``(n, 3, k)`` interpolated attributes; ``triangle_index`` maps each
    output triangle back to its input triangle (texture lookup, order).
    """

    clip: np.ndarray
    attrs: np.ndarray
    triangle_index: np.ndarray

    @property
    def n_triangles(self) -> int:
        return len(self.clip)


def _distance(clip_vertices: np.ndarray, eps: float) -> np.ndarray:
    """Signed distance to the near clip half-space ``z + w >= eps``."""
    return clip_vertices[..., 2] + clip_vertices[..., 3] - eps


def clip_triangles_near(
    clip: np.ndarray, attrs: np.ndarray, eps: float = 1e-6
) -> ClippedTriangles:
    """Clip ``(n, 3, 4)`` clip-space triangles against the near plane.

    ``attrs`` carries per-vertex attributes ``(n, 3, k)`` (uv, color,
    ...), interpolated at the clip boundary.
    """
    clip = np.asarray(clip, dtype=np.float64)
    attrs = np.asarray(attrs, dtype=np.float64)
    if clip.ndim != 3 or clip.shape[1:] != (3, 4):
        raise ValueError("clip must be (n, 3, 4)")
    if attrs.shape[:2] != clip.shape[:2]:
        raise ValueError("attrs must be (n, 3, k)")

    distance = _distance(clip, eps)
    inside = distance > 0.0
    n_inside = inside.sum(axis=1)

    out_clip = []
    out_attrs = []
    out_index = []

    # Fast path: fully-inside triangles pass through unchanged.
    full = n_inside == 3
    if full.any():
        out_clip.append(clip[full])
        out_attrs.append(attrs[full])
        out_index.append(np.nonzero(full)[0])

    # Crossing triangles: clip one at a time (they are rare).
    crossing = np.nonzero((n_inside > 0) & (n_inside < 3))[0]
    extra_clip = []
    extra_attrs = []
    extra_index = []
    for tri in crossing:
        polygon = []
        for corner in range(3):
            current = corner
            previous = (corner + 2) % 3
            cur_in = inside[tri, current]
            prev_in = inside[tri, previous]
            if cur_in != prev_in:
                d_cur = distance[tri, current]
                d_prev = distance[tri, previous]
                t = d_prev / (d_prev - d_cur)
                new_clip = clip[tri, previous] + t * (clip[tri, current] - clip[tri, previous])
                new_attr = attrs[tri, previous] + t * (attrs[tri, current] - attrs[tri, previous])
                polygon.append((new_clip, new_attr))
            if cur_in:
                polygon.append((clip[tri, current], attrs[tri, current]))
        # Fan-triangulate the resulting polygon (3 or 4 vertices).
        for second in range(1, len(polygon) - 1):
            extra_clip.append(np.stack([
                polygon[0][0], polygon[second][0], polygon[second + 1][0]
            ]))
            extra_attrs.append(np.stack([
                polygon[0][1], polygon[second][1], polygon[second + 1][1]
            ]))
            extra_index.append(tri)

    if extra_clip:
        out_clip.append(np.stack(extra_clip))
        out_attrs.append(np.stack(extra_attrs))
        out_index.append(np.asarray(extra_index, dtype=np.int64))

    if not out_clip:
        k = attrs.shape[2]
        return ClippedTriangles(
            clip=np.empty((0, 3, 4)),
            attrs=np.empty((0, 3, k)),
            triangle_index=np.empty(0, dtype=np.int64),
        )

    merged_clip = np.concatenate(out_clip)
    merged_attrs = np.concatenate(out_attrs)
    merged_index = np.concatenate(out_index)
    # Restore submission order: sort by source triangle index (stable),
    # so clipped pieces slot in where the original triangle was.
    order = np.argsort(merged_index, kind="stable")
    return ClippedTriangles(
        clip=merged_clip[order],
        attrs=merged_attrs[order],
        triangle_index=merged_index[order],
    )

"""Fragment traversal orders (paper Sections 5.2.3 and 6).

"The order in which screen pixels are traversed ... is the
rasterization order.  The rasterization order effects the texture
access pattern and consequently, it can influence the cache behavior"
(Section 6).  The paper studies:

* horizontal scan lines (row-major) -- Figure 5.2(a);
* vertical scan lines (column-major) -- Figure 5.2(b), the worst case
  for the Town scene's upright textures;
* tiled rasterization (Figure 6.1b): the screen is statically
  decomposed into tiles and a triangle's fragments are visited tile by
  tile, shrinking the working set for large triangles;
* a Peano-Hilbert path -- the paper's footnote 1 conjectures it
  minimizes the working set; we implement it as an ablation.

Orders are expressed as a permutation of a triangle's fragments, so a
single rasterizer serves every order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class TraversalOrder(ABC):
    """A rule ordering a triangle's fragments on screen."""

    name: str = "order"

    @abstractmethod
    def argsort(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Permutation putting fragments at ``(x, y)`` in traversal
        order."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class HorizontalOrder(TraversalOrder):
    """Row-major: left-to-right within a scan line, top-to-bottom."""

    name = "horizontal"

    def argsort(self, x, y):
        return np.lexsort((x, y))


class VerticalOrder(TraversalOrder):
    """Column-major: top-to-bottom within a column, left-to-right."""

    name = "vertical"

    def argsort(self, x, y):
        return np.lexsort((y, x))


class TiledOrder(TraversalOrder):
    """Tiled rasterization (Figure 6.1b).

    The screen is statically decomposed into ``tile_w x tile_h`` pixel
    tiles.  A triangle's fragments are traversed tile by tile;
    ``within`` picks the scan direction inside a tile and ``across``
    the tile visiting order ("row" = row-major, "col" = column-major --
    Figure 6.4(a) uses column-major within and between tiles).
    """

    def __init__(self, tile_w: int = 8, tile_h: int = None,
                 within: str = "row", across: str = "row"):
        if tile_h is None:
            tile_h = tile_w
        if tile_w < 1 or tile_h < 1:
            raise ValueError("tile dimensions must be positive")
        if within not in ("row", "col") or across not in ("row", "col"):
            raise ValueError("within/across must be 'row' or 'col'")
        self.tile_w = tile_w
        self.tile_h = tile_h
        self.within = within
        self.across = across
        suffix = "" if (within, across) == ("row", "row") else f"-{within}/{across}"
        self.name = f"tiled{tile_w}x{tile_h}{suffix}"

    def argsort(self, x, y):
        tile_x = x // self.tile_w
        tile_y = y // self.tile_h
        if self.within == "row":
            inner = (x, y)  # lexsort: last key is primary
        else:
            inner = (y, x)
        if self.across == "row":
            outer = (tile_x, tile_y)
        else:
            outer = (tile_y, tile_x)
        return np.lexsort(inner + outer)


def _hilbert_d(order_bits: int, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Vectorized Hilbert-curve index of points on a 2^bits grid."""
    rx = np.zeros_like(x)
    ry = np.zeros_like(y)
    d = np.zeros(x.shape, dtype=np.int64)
    x = x.astype(np.int64).copy()
    y = y.astype(np.int64).copy()
    s = 1 << (order_bits - 1)
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate quadrant.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = x.copy()
        x[flip] = s - 1 - x[flip]
        y[flip] = s - 1 - y[flip]
        x_sw = x[swap].copy()
        x[swap] = y[swap]
        y[swap] = x_sw
        del x_f
        s >>= 1
    return d


class HilbertOrder(TraversalOrder):
    """Peano-Hilbert traversal (the paper's footnote 1 conjecture).

    ``order_bits`` must cover the screen: the curve lives on a
    ``2^bits`` square grid.
    """

    def __init__(self, order_bits: int = 11):
        if order_bits < 1 or order_bits > 20:
            raise ValueError("order_bits must be in [1, 20]")
        self.order_bits = order_bits
        self.name = f"hilbert{order_bits}"

    def argsort(self, x, y):
        side = 1 << self.order_bits
        if len(x) and (x.max() >= side or y.max() >= side):
            raise ValueError(
                f"screen exceeds the 2^{self.order_bits} Hilbert grid"
            )
        return np.argsort(_hilbert_d(self.order_bits, x, y), kind="stable")


def make_order(spec: str, **kwargs) -> TraversalOrder:
    """Construct an order from a short name: ``horizontal``,
    ``vertical``, ``tiled`` (kwargs ``tile_w``, ``tile_h``, ``within``,
    ``across``) or ``hilbert`` (kwarg ``order_bits``)."""
    registry = {
        "horizontal": HorizontalOrder,
        "vertical": VerticalOrder,
        "tiled": TiledOrder,
        "hilbert": HilbertOrder,
    }
    try:
        cls = registry[spec]
    except KeyError:
        raise ValueError(
            f"unknown order {spec!r}; expected one of {sorted(registry)}"
        ) from None
    return cls(**kwargs)

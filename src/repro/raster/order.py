"""Fragment traversal orders (paper Sections 5.2.3 and 6).

"The order in which screen pixels are traversed ... is the
rasterization order.  The rasterization order effects the texture
access pattern and consequently, it can influence the cache behavior"
(Section 6).  The paper studies:

* horizontal scan lines (row-major) -- Figure 5.2(a);
* vertical scan lines (column-major) -- Figure 5.2(b), the worst case
  for the Town scene's upright textures;
* tiled rasterization (Figure 6.1b): the screen is statically
  decomposed into tiles and a triangle's fragments are visited tile by
  tile, shrinking the working set for large triangles;
* a Peano-Hilbert path -- the paper's footnote 1 conjectures it
  minimizes the working set; we implement it as an ablation.

Orders are expressed as a permutation of a triangle's fragments, so a
single rasterizer serves every order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np


class TraversalOrder(ABC):
    """A rule ordering a triangle's fragments on screen."""

    name: str = "order"

    #: True when the traversal equals row-major (y, then x) order --
    #: lets :meth:`grouped_argsort` skip per-fragment keys entirely for
    #: input that is already row-major within each group.
    is_rowmajor: bool = False

    @abstractmethod
    def argsort(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Permutation putting fragments at ``(x, y)`` in traversal
        order."""

    def sort_keys(self, x: np.ndarray, y: np.ndarray):
        """``np.lexsort`` keys (least to most significant) realizing
        :meth:`argsort`, or ``None`` if the order cannot express itself
        as lexsort keys.  Orders that can supply keys let the batched
        rasterizer sort *every* triangle's fragments with one stable
        lexsort (triangle index appended as the most significant key)
        instead of one ``argsort`` call per triangle.
        """
        return None

    def grouped_argsort(self, x: np.ndarray, y: np.ndarray,
                        group: np.ndarray,
                        within_rowmajor: bool = False) -> np.ndarray:
        """Permutation sorting fragments by ``group`` ascending and in
        traversal order within each group.

        Equivalent to concatenating ``argsort`` applied to each group
        separately (groups need not arrive contiguous).  Stability
        matches the per-group path: ties inside a group keep their
        relative input order.  ``within_rowmajor=True`` asserts each
        group's fragments already arrive in row-major order (the
        batched rasterizer's enumeration); a row-major traversal then
        reduces to one stable sort by group.
        """
        if within_rowmajor and self.is_rowmajor:
            return np.argsort(group, kind="stable")
        keys = self.sort_keys(x, y)
        if keys is not None:
            composite = _composite_key(tuple(keys) + (group,))
            if composite is not None:
                return np.argsort(composite, kind="stable")
            return np.lexsort(tuple(keys) + (group,))
        # Generic fallback for orders without lexsort keys: stable-sort
        # by group, then argsort each group through the scalar API.
        base = np.argsort(group, kind="stable")
        grouped = group[base]
        starts = np.flatnonzero(
            np.concatenate([[True], grouped[1:] != grouped[:-1]]))
        ends = np.concatenate([starts[1:], [len(grouped)]])
        perm = np.empty(len(base), dtype=np.int64)
        for start, end in zip(starts, ends):
            members = base[start:end]
            perm[start:end] = members[self.argsort(x[members], y[members])]
        return perm

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


def _composite_key(keys):
    """Pack integer lexsort ``keys`` (least to most significant) into
    one int64 sort key, or ``None`` when a key is non-integer or the
    packed range would overflow.

    A single stable argsort of the packed key yields exactly the
    ``np.lexsort`` permutation -- ties in the composite are ties in
    every component, so stability preserves the same input order --
    while sorting one int64 array beats lexsort's pass per key.
    """
    stride = 1
    total = None
    for key in keys:
        key = np.asarray(key)
        if key.size == 0 or not np.issubdtype(key.dtype, np.integer):
            return None
        low = int(key.min())
        span = int(key.max()) - low + 1
        if stride > (1 << 62) // span:
            return None
        shifted = (key.astype(np.int64) - low) * stride
        total = shifted if total is None else total + shifted
        stride *= span
    if stride <= np.iinfo(np.int32).max:
        return total.astype(np.int32)  # halves the radix-sort passes
    return total


class HorizontalOrder(TraversalOrder):
    """Row-major: left-to-right within a scan line, top-to-bottom."""

    name = "horizontal"
    is_rowmajor = True

    def argsort(self, x, y):
        return np.lexsort((x, y))

    def sort_keys(self, x, y):
        return (x, y)


class VerticalOrder(TraversalOrder):
    """Column-major: top-to-bottom within a column, left-to-right."""

    name = "vertical"

    def argsort(self, x, y):
        return np.lexsort((y, x))

    def sort_keys(self, x, y):
        return (y, x)


class TiledOrder(TraversalOrder):
    """Tiled rasterization (Figure 6.1b).

    The screen is statically decomposed into ``tile_w x tile_h`` pixel
    tiles.  A triangle's fragments are traversed tile by tile;
    ``within`` picks the scan direction inside a tile and ``across``
    the tile visiting order ("row" = row-major, "col" = column-major --
    Figure 6.4(a) uses column-major within and between tiles).
    """

    def __init__(self, tile_w: int = 8, tile_h: int = None,
                 within: str = "row", across: str = "row"):
        if tile_h is None:
            tile_h = tile_w
        if tile_w < 1 or tile_h < 1:
            raise ValueError("tile dimensions must be positive")
        if within not in ("row", "col") or across not in ("row", "col"):
            raise ValueError("within/across must be 'row' or 'col'")
        self.tile_w = tile_w
        self.tile_h = tile_h
        self.within = within
        self.across = across
        suffix = "" if (within, across) == ("row", "row") else f"-{within}/{across}"
        self.name = f"tiled{tile_w}x{tile_h}{suffix}"

    def argsort(self, x, y):
        return np.lexsort(self.sort_keys(x, y))

    def sort_keys(self, x, y):
        tile_x = x // self.tile_w
        tile_y = y // self.tile_h
        if self.within == "row":
            inner = (x, y)  # lexsort: last key is primary
        else:
            inner = (y, x)
        if self.across == "row":
            outer = (tile_x, tile_y)
        else:
            outer = (tile_y, tile_x)
        return inner + outer


def _hilbert_d(order_bits: int, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Vectorized Hilbert-curve index of points on a 2^bits grid."""
    rx = np.zeros_like(x)
    ry = np.zeros_like(y)
    d = np.zeros(x.shape, dtype=np.int64)
    x = x.astype(np.int64).copy()
    y = y.astype(np.int64).copy()
    s = 1 << (order_bits - 1)
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate quadrant.
        swap = ry == 0
        flip = swap & (rx == 1)
        x_f = x.copy()
        x[flip] = s - 1 - x[flip]
        y[flip] = s - 1 - y[flip]
        x_sw = x[swap].copy()
        x[swap] = y[swap]
        y[swap] = x_sw
        del x_f
        s >>= 1
    return d


class HilbertOrder(TraversalOrder):
    """Peano-Hilbert traversal (the paper's footnote 1 conjecture).

    ``order_bits`` must cover the screen: the curve lives on a
    ``2^bits`` square grid.
    """

    def __init__(self, order_bits: int = 11):
        if order_bits < 1 or order_bits > 20:
            raise ValueError("order_bits must be in [1, 20]")
        self.order_bits = order_bits
        self.name = f"hilbert{order_bits}"

    def argsort(self, x, y):
        return np.argsort(self.sort_keys(x, y)[0], kind="stable")

    def sort_keys(self, x, y):
        side = 1 << self.order_bits
        if len(x) and (x.max() >= side or y.max() >= side):
            raise ValueError(
                f"screen exceeds the 2^{self.order_bits} Hilbert grid"
            )
        return (_hilbert_d(self.order_bits, x, y),)


def make_order(spec: str, **kwargs) -> TraversalOrder:
    """Construct an order from a short name: ``horizontal``,
    ``vertical``, ``tiled`` (kwargs ``tile_w``, ``tile_h``, ``within``,
    ``across``) or ``hilbert`` (kwarg ``order_bits``)."""
    registry = {
        "horizontal": HorizontalOrder,
        "vertical": VerticalOrder,
        "tiled": TiledOrder,
        "hilbert": HilbertOrder,
    }
    try:
        cls = registry[spec]
    except KeyError:
        raise ValueError(
            f"unknown order {spec!r}; expected one of {sorted(registry)}"
        ) from None
    return cls(**kwargs)

"""Z-buffer hidden surface removal (the pipeline's third stage).

The paper's pipeline textures every generated fragment and resolves
visibility afterwards with a z-buffer (Section 2), so texture traffic
is independent of occlusion; the z-buffer here only decides which
fragment colors land in the framebuffer.
"""

from __future__ import annotations

import numpy as np


class ZBuffer:
    """A floating-point depth buffer; smaller NDC z is closer."""

    def __init__(self, width: int, height: int):
        if width < 1 or height < 1:
            raise ValueError("zbuffer dimensions must be positive")
        self.width = width
        self.height = height
        self.depth = np.full((height, width), np.inf)

    def clear(self) -> None:
        self.depth.fill(np.inf)

    def test_and_write(self, x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Depth-test fragments and update the buffer.

        Fragments must have unique ``(x, y)`` within one call (true for
        the fragments of a single triangle).  Returns the boolean pass
        mask.
        """
        current = self.depth[y, x]
        passed = z < current
        self.depth[y[passed], x[passed]] = z[passed]
        return passed

"""Fragment generation substrate: rasterization, traversal orders,
depth test and framebuffer (paper Sections 2 and 6)."""

from .triangle import FragmentBatch, rasterize_triangle
from .batched import BatchedFragments, rasterize_triangles
from .order import (
    HilbertOrder,
    HorizontalOrder,
    TiledOrder,
    TraversalOrder,
    VerticalOrder,
    make_order,
)
from .zbuffer import ZBuffer
from .framebuffer import Framebuffer

__all__ = [
    "FragmentBatch",
    "rasterize_triangle",
    "BatchedFragments",
    "rasterize_triangles",
    "TraversalOrder",
    "HorizontalOrder",
    "VerticalOrder",
    "TiledOrder",
    "HilbertOrder",
    "make_order",
    "ZBuffer",
    "Framebuffer",
]

"""Triangle-batched rasterization: the cold render path, vectorized.

:func:`repro.raster.triangle.rasterize_triangle` is exact but pays the
per-item-Python price: one call per triangle on arrays that average a
few hundred candidates.  This module evaluates *bins* of triangles at
once -- every edge function, barycentric weight and perspective-correct
attribute computed over one flat ``(n_candidates,)`` array -- while
producing **bit-identical** fragments:

* per-candidate work gathers each triangle's setup scalars through the
  candidate's owner index, so every fragment undergoes exactly the same
  sequence of IEEE-754 operations as the per-triangle path (elementwise
  numpy arithmetic is value-identical whether the other operand is a
  broadcast scalar or a gathered array);
* candidates enumerate each bounding box row-major, matching the
  reference ``meshgrid`` flattening, so fragments come out in the same
  within-triangle order;
* triangles are binned by bounding-box area class (chunked under a
  candidate budget to bound peak memory), and the renderer restores
  global (submission, traversal) order afterwards with a single stable
  lexsort -- see :meth:`repro.raster.order.TraversalOrder.grouped_argsort`.

The reference path remains selectable (``Renderer(raster="reference")``)
and the golden-equivalence suite asserts the two produce identical
traces, framebuffers and per-triangle fragment counts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional

import numpy as np

from .triangle import _plane_gradients


@dataclass
class BatchedFragments:
    """Fragments of many triangles in one structure-of-arrays.

    Arrays share length ``n_fragments``; ``triangle`` maps every
    fragment back to the (clipped) triangle that produced it.  Fresh
    from :func:`rasterize_triangles` the fragments are grouped by size
    bin, row-major within each triangle; apply
    ``order.grouped_argsort(x, y, triangle)`` (via :meth:`take`) to
    obtain the reference renderer's (submission, traversal) order.

    ``z``, the texel-space derivatives and ``color`` are present only
    when requested from :func:`rasterize_triangles` -- a trace-only
    render without anisotropy needs none of them, and skipping the
    interpolation, concatenation and permutation of five float64
    columns is a measurable slice of the cold render.
    """

    x: np.ndarray
    y: np.ndarray
    u: np.ndarray
    v: np.ndarray
    lod: np.ndarray
    triangle: np.ndarray
    z: Optional[np.ndarray] = None
    dudx: Optional[np.ndarray] = None
    dvdx: Optional[np.ndarray] = None
    dudy: Optional[np.ndarray] = None
    dvdy: Optional[np.ndarray] = None
    color: Optional[np.ndarray] = None

    @property
    def n_fragments(self) -> int:
        return len(self.x)

    def take(self, perm: np.ndarray) -> "BatchedFragments":
        """The fragments permuted by ``perm``."""
        return BatchedFragments(**{
            f.name: None if (value := getattr(self, f.name)) is None
            else value[perm]
            for f in fields(self)})


def _empty_fragments(has_colors: bool, with_z: bool,
                     with_derivatives: bool) -> BatchedFragments:
    f64 = np.empty(0, dtype=np.float64)
    derivs = ({name: f64.copy() for name in ("dudx", "dvdx", "dudy", "dvdy")}
              if with_derivatives else {})
    return BatchedFragments(
        x=np.empty(0, dtype=np.int32), y=np.empty(0, dtype=np.int32),
        u=f64.copy(), v=f64.copy(), lod=f64.copy(),
        triangle=np.empty(0, dtype=np.int64),
        z=f64.copy() if with_z else None,
        color=np.empty((0, 3), dtype=np.float64) if has_colors else None,
        **derivs,
    )


def _budget_chunks(sizes: np.ndarray, budget: int) -> list:
    """Split ``range(len(sizes))`` into consecutive chunks whose sizes
    sum to at most ``budget`` (a chunk always takes at least one
    item)."""
    boundaries = [0]
    acc = 0
    for index, size in enumerate(sizes):
        if acc and acc + size > budget:
            boundaries.append(index)
            acc = 0
        acc += int(size)
    boundaries.append(len(sizes))
    return [(boundaries[i], boundaries[i + 1])
            for i in range(len(boundaries) - 1)]


def rasterize_triangles(
    screen: np.ndarray,
    ndc_z: np.ndarray,
    inv_w: np.ndarray,
    uv: np.ndarray,
    texel_w: np.ndarray,
    texel_h: np.ndarray,
    width: int,
    height: int,
    colors: Optional[np.ndarray] = None,
    bin_candidate_budget: int = 1 << 20,
    with_z: bool = True,
    with_derivatives: bool = True,
) -> BatchedFragments:
    """Rasterize ``m`` screen-space triangles in area-class bins.

    Parameters mirror :func:`~repro.raster.triangle.rasterize_triangle`
    lifted to a leading triangle axis: ``screen`` is ``(m, 3, 2)``,
    ``ndc_z``/``inv_w`` are ``(m, 3)``, ``uv`` is ``(m, 3, 2)``,
    ``colors`` optionally ``(m, 3, 3)``.  ``texel_w``/``texel_h`` give
    each triangle's texture level-0 dimensions (the per-triangle
    ``texture_size`` of the reference API).  ``bin_candidate_budget``
    caps the flat candidate array evaluated at once, bounding peak
    memory independent of scene scale.  ``with_z=False`` /
    ``with_derivatives=False`` skip interpolating depth / carrying the
    texel-space derivative columns (a trace-only render without
    anisotropic filtering needs neither).
    """
    screen = np.asarray(screen, dtype=np.float64)
    m = len(screen)
    has_colors = colors is not None
    if m == 0:
        return _empty_fragments(has_colors, with_z, with_derivatives)

    # Per-triangle setup, winding normalized exactly like the
    # per-triangle path (swap vertices 1 and 2, negate the area).
    sx = screen[:, :, 0].astype(np.float64, copy=True)
    sy = screen[:, :, 1].astype(np.float64, copy=True)
    ndc_z = np.array(ndc_z, dtype=np.float64, copy=True)
    inv_w = np.array(inv_w, dtype=np.float64, copy=True)
    uv = np.array(uv, dtype=np.float64, copy=True)
    if has_colors:
        colors = np.array(colors, dtype=np.float64, copy=True)

    area2 = ((sx[:, 1] - sx[:, 0]) * (sy[:, 2] - sy[:, 0])
             - (sx[:, 2] - sx[:, 0]) * (sy[:, 1] - sy[:, 0]))
    flip = area2 < 0.0
    if flip.any():
        swap = np.array([0, 2, 1])
        for array in (sx, sy, ndc_z, inv_w, uv) + ((colors,) if has_colors else ()):
            array[flip] = array[flip][:, swap]
        area2 = np.where(flip, -area2, area2)

    min_x = np.maximum(np.floor(sx.min(axis=1)).astype(np.int64), 0)
    max_x = np.minimum(np.ceil(sx.max(axis=1)).astype(np.int64), width - 1)
    min_y = np.maximum(np.floor(sy.min(axis=1)).astype(np.int64), 0)
    max_y = np.minimum(np.ceil(sy.max(axis=1)).astype(np.int64), height - 1)
    valid = (area2 != 0.0) & (min_x <= max_x) & (min_y <= max_y)
    bbox_w = max_x - min_x + 1
    counts = np.where(valid, bbox_w * (max_y - min_y + 1), 0)

    if not valid.any():
        return _empty_fragments(has_colors, with_z, with_derivatives)

    # Screen-space attribute gradients (shared by every fragment of a
    # triangle), computed once over the valid subset.  _plane_gradients
    # runs elementwise, so feeding (3, m) vertex-major arrays performs
    # the identical arithmetic the per-triangle scalars see.
    grad = {}
    live = np.flatnonzero(valid)
    for name, values in (("u", uv[live, :, 0] * inv_w[live]),
                         ("v", uv[live, :, 1] * inv_w[live]),
                         ("q", inv_w[live])):
        gx = np.zeros(m)
        gy = np.zeros(m)
        gx[live], gy[live] = _plane_gradients(
            sx[live].T, sy[live].T, values.T, area2[live])
        grad[name] = (gx, gy)

    # Per-triangle edge setup, hoisted out of the per-bin loop as flat
    # contiguous arrays (one fancy-index gather per field per bin).
    edge_sx, edge_sy, edge_ex, edge_ey, edge_tl = [], [], [], [], []
    for i in range(3):
        j = (i + 1) % 3
        ex = sx[:, j] - sx[:, i]
        ey = sy[:, j] - sy[:, i]
        edge_sx.append(np.ascontiguousarray(sx[:, i]))
        edge_sy.append(np.ascontiguousarray(sy[:, i]))
        edge_ex.append(ex)
        edge_ey.append(ey)
        edge_tl.append((ey < 0.0) | ((ey == 0.0) & (ex > 0.0)))

    # Clamped bounds and bin indices fit comfortably in int32 (screen
    # coordinates and triangle counts); the narrower candidate-stage
    # arithmetic in _rasterize_bin halves its memory traffic.  Vertex
    # attributes are stored as contiguous 1D columns: gathering a
    # strided view like ``uv[tri, 0, 0]`` costs about twice a
    # contiguous-source gather.
    setup = dict(edge_sx=edge_sx, edge_sy=edge_sy, edge_ex=edge_ex,
                 edge_ey=edge_ey, edge_tl=edge_tl,
                 ndc_z=[np.ascontiguousarray(ndc_z[:, k]) for k in range(3)],
                 inv_w=[np.ascontiguousarray(inv_w[:, k]) for k in range(3)],
                 uv=[[np.ascontiguousarray(uv[:, k, j]) for j in (0, 1)]
                     for k in range(3)],
                 colors=colors, area2=area2,
                 min_x=min_x.astype(np.int32), min_y=min_y.astype(np.int32),
                 bbox_w=bbox_w.astype(np.int32),
                 bbox_h=(max_y - min_y + 1).astype(np.int32),
                 counts=counts, grad=grad,
                 texel_w=np.asarray(texel_w, dtype=np.int64),
                 texel_h=np.asarray(texel_h, dtype=np.int64),
                 with_z=with_z, with_derivatives=with_derivatives)

    # Bin by bounding-box area class so one flat pass mixes triangles
    # of comparable candidate counts, chunked under the memory budget.
    classes = np.frexp(counts.astype(np.float64))[1]
    bins = []
    for area_class in np.unique(classes[valid]):
        members = np.flatnonzero(valid & (classes == area_class))
        for start, end in _budget_chunks(counts[members],
                                         max(bin_candidate_budget, 1)):
            bins.append(members[start:end])

    pieces = [piece for tri_idx in bins
              for piece in (_rasterize_bin(tri_idx, setup),)
              if piece["x"].size]
    if not pieces:
        return _empty_fragments(has_colors, with_z, with_derivatives)
    merged = {key: (pieces[0][key] if len(pieces) == 1
                    else np.concatenate([piece[key] for piece in pieces]))
              for key in pieces[0]}
    return BatchedFragments(**merged)


def _bbox_candidates(tri_idx: np.ndarray, setup: dict, bt) -> tuple:
    """Flat candidates covering every bounding-box pixel, row-major."""
    counts = bt(setup["counts"])
    starts = np.cumsum(counts) - counts
    total = int(counts.sum())
    # Flat candidate offsets fit int32 (bins are chunked under the
    # candidate budget); the narrow divmod is several times faster than
    # int64.  Index arrays (local, lin) stay at the platform intp width
    # -- numpy re-casts narrower fancy indices on every gather.
    itype = np.int32 if total <= np.iinfo(np.int32).max else np.int64
    local = np.repeat(np.arange(len(tri_idx)), counts)
    flat = np.arange(total, dtype=itype) - starts.astype(itype)[local]
    row, col = np.divmod(flat, bt(setup["bbox_w"])[local])
    px = (bt(setup["min_x"])[local] + col) + 0.5
    py = (bt(setup["min_y"])[local] + row) + 0.5
    return local, px, py


def _span_candidates(tri_idx: np.ndarray, setup: dict, bt) -> tuple:
    """Flat candidates restricted to conservative per-row column spans.

    Each edge with ``ey != 0`` bounds ``px`` on one side of its line;
    intersecting those half-planes with the bounding box per scan line
    drops most candidates the edge test would reject.  A full pixel of
    slack on every bound plus NaN-ignoring ``fmin``/``fmax`` make the
    spans safe against floating-point rounding (and against overflowing
    ``ex / ey`` on near-horizontal edges), so the candidate *sequence*
    -- row-major per triangle -- loses only pixels that are strictly
    outside, and the downstream edge test stays authoritative.
    """
    bbox_h = bt(setup["bbox_h"])
    rstarts = np.cumsum(bbox_h) - bbox_h
    n_rows = int(bbox_h.sum())
    min_x = bt(setup["min_x"])
    rlocal = np.repeat(np.arange(len(tri_idx)), bbox_h)
    rix = np.arange(n_rows, dtype=np.int32) - rstarts.astype(np.int32)[rlocal]
    py_row = (bt(setup["min_y"])[rlocal] + rix) + 0.5

    hi = np.full(n_rows, np.inf)
    lo = np.full(n_rows, -np.inf)
    for i in range(3):
        ey = bt(setup["edge_ey"][i])
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            slope = np.where(ey != 0.0, bt(setup["edge_ex"][i]) / ey, 0.0)
            bound = (bt(setup["edge_sx"][i])[rlocal]
                     + (py_row - bt(setup["edge_sy"][i])[rlocal])
                     * slope[rlocal]
                     - min_x[rlocal]) - 0.5
        ey_row = ey[rlocal]
        hi = np.where(ey_row > 0.0, np.fmin(hi, np.floor(bound) + 1.0), hi)
        lo = np.where(ey_row < 0.0, np.fmax(lo, np.ceil(bound) - 1.0), lo)
    width_row = bt(setup["bbox_w"])[rlocal]
    lo = np.minimum(np.maximum(lo, 0.0), width_row).astype(np.int32)
    hi = np.minimum(np.maximum(hi, -1.0), width_row - 1).astype(np.int32)
    span = np.maximum(hi - lo + 1, 0)

    starts = np.cumsum(span) - span
    total = int(span.sum())
    cand = np.repeat(np.arange(n_rows), span)
    col = lo[cand] + (np.arange(total, dtype=np.int32)
                      - starts.astype(np.int32)[cand])
    local = rlocal[cand]
    px = (min_x[local] + col) + 0.5
    return local, px, py_row[cand]


def _rasterize_bin(tri_idx: np.ndarray, setup: dict) -> dict:
    """Evaluate one bin of triangles over a flat candidate array."""

    def bt(field):
        # Compact a per-triangle field to a bin-local table: the
        # candidate/fragment-sized gathers below then read small,
        # cache-resident tables through the bin-local owner index.
        return field[tri_idx]

    counts = bt(setup["counts"])
    total_full = int(counts.sum())
    n_rows = int(bt(setup["bbox_h"]).sum())
    # Candidate pixel centers, row-major per bounding box (the
    # reference path's meshgrid flattening order).  Wide bounding boxes
    # go through conservative per-row column spans, which drop
    # candidates that are provably outside before the edge stage; both
    # enumerations yield identical (local, px, py) sequences up to
    # candidates the edge test rejects anyway.
    if total_full >= 4 * n_rows:
        local, px, py = _span_candidates(tri_idx, setup, bt)
    else:
        local, px, py = _bbox_candidates(tri_idx, setup, bt)
    total = len(local)

    inside = np.ones(total, dtype=bool)
    edges = []
    for i in range(3):
        e = ((py - bt(setup["edge_sy"][i])[local])
             * bt(setup["edge_ex"][i])[local]
             - (px - bt(setup["edge_sx"][i])[local])
             * bt(setup["edge_ey"][i])[local])
        inside &= np.where(bt(setup["edge_tl"][i])[local], e >= 0.0, e > 0.0)
        edges.append(e)

    lin = local[inside]  # bin-local owner per surviving fragment
    tri = tri_idx[lin]
    frag_x = (px[inside] - 0.5).astype(np.int32)
    frag_y = (py[inside] - 0.5).astype(np.int32)
    area2 = bt(setup["area2"])[lin]
    l0 = edges[1][inside] / area2
    l1 = edges[2][inside] / area2
    l2 = edges[0][inside] / area2

    iw = [bt(column)[lin] for column in setup["inv_w"]]
    uv = [[bt(column)[lin] for column in vertex] for vertex in setup["uv"]]
    one_over_w = l0 * iw[0] + l1 * iw[1] + l2 * iw[2]
    u_over_w = (l0 * uv[0][0] * iw[0] + l1 * uv[1][0] * iw[1]
                + l2 * uv[2][0] * iw[2])
    v_over_w = (l0 * uv[0][1] * iw[0] + l1 * uv[1][1] * iw[1]
                + l2 * uv[2][1] * iw[2])
    frag_u = u_over_w / one_over_w
    frag_v = v_over_w / one_over_w

    # Exact derivatives of the texel coordinates (texel units), then
    # the level of detail -- same expressions as _level_of_detail.
    (gu_x, gu_y), (gv_x, gv_y), (gq_x, gq_y) = (
        setup["grad"]["u"], setup["grad"]["v"], setup["grad"]["q"])
    texel_w = bt(setup["texel_w"])[lin]
    texel_h = bt(setup["texel_h"])[lin]
    q2 = one_over_w * one_over_w
    du_dx = (bt(gu_x)[lin] * one_over_w - u_over_w * bt(gq_x)[lin]) / q2 * texel_w
    du_dy = (bt(gu_y)[lin] * one_over_w - u_over_w * bt(gq_y)[lin]) / q2 * texel_w
    dv_dx = (bt(gv_x)[lin] * one_over_w - v_over_w * bt(gq_x)[lin]) / q2 * texel_h
    dv_dy = (bt(gv_y)[lin] * one_over_w - v_over_w * bt(gq_y)[lin]) / q2 * texel_h
    rho_x = np.sqrt(du_dx * du_dx + dv_dx * dv_dx)
    rho_y = np.sqrt(du_dy * du_dy + dv_dy * dv_dy)
    rho = np.maximum(np.maximum(rho_x, rho_y), 1e-12)

    piece = dict(x=frag_x, y=frag_y, u=frag_u, v=frag_v,
                 lod=np.log2(rho), triangle=tri)
    if setup["with_z"]:
        ndc_z = setup["ndc_z"]
        piece["z"] = (l0 * bt(ndc_z[0])[lin] + l1 * bt(ndc_z[1])[lin]
                      + l2 * bt(ndc_z[2])[lin])
    if setup["with_derivatives"]:
        piece.update(dudx=du_dx, dvdx=dv_dx, dudy=du_dy, dvdy=dv_dy)
    colors = setup["colors"]
    if colors is not None:
        vertex_colors = bt(colors)
        piece["color"] = (l0[:, None] * vertex_colors[lin, 0]
                         + l1[:, None] * vertex_colors[lin, 1]
                         + l2[:, None] * vertex_colors[lin, 2])
    return piece

"""RGBA framebuffer with PPM/PNG export (the pipeline's display
stage)."""

from __future__ import annotations

import struct
import zlib

import numpy as np


class Framebuffer:
    """An RGB framebuffer storing 8-bit color."""

    def __init__(self, width: int, height: int, clear_color=(30, 30, 40)):
        if width < 1 or height < 1:
            raise ValueError("framebuffer dimensions must be positive")
        self.width = width
        self.height = height
        self.clear_color = np.asarray(clear_color, dtype=np.uint8)
        self.pixels = np.empty((height, width, 3), dtype=np.uint8)
        self.clear()

    def clear(self) -> None:
        self.pixels[:, :] = self.clear_color

    def write(self, x: np.ndarray, y: np.ndarray, rgb: np.ndarray) -> None:
        """Store float RGB in [0, 255] at integer pixel coordinates."""
        self.pixels[y, x] = np.clip(rgb, 0, 255).astype(np.uint8)

    def to_ppm(self, path: str) -> None:
        """Write a binary PPM (P6) image, viewable anywhere."""
        header = f"P6\n{self.width} {self.height}\n255\n".encode("ascii")
        with open(path, "wb") as handle:
            handle.write(header)
            handle.write(self.pixels.tobytes())

    def to_png(self, path: str) -> None:
        """Write a PNG image (pure stdlib: zlib + struct)."""
        raw = b"".join(
            b"\x00" + self.pixels[row].tobytes() for row in range(self.height)
        )
        def chunk(tag: bytes, payload: bytes) -> bytes:
            body = tag + payload
            return struct.pack(">I", len(payload)) + body + struct.pack(
                ">I", zlib.crc32(body) & 0xFFFFFFFF
            )
        header = struct.pack(">IIBBBBB", self.width, self.height, 8, 2, 0, 0, 0)
        with open(path, "wb") as handle:
            handle.write(b"\x89PNG\r\n\x1a\n")
            handle.write(chunk(b"IHDR", header))
            handle.write(chunk(b"IDAT", zlib.compress(raw, 6)))
            handle.write(chunk(b"IEND", b""))

    def checksum(self) -> int:
        """A cheap content hash used by integration tests."""
        return int(np.uint64(self.pixels.astype(np.uint64).sum()))

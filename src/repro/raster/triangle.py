"""Triangle rasterization with perspective-correct interpolation.

Rasterization "involves interpolating screen coordinates, depth,
texture coordinates and shading color across the surface of each
triangle, and identifying the screen pixels that lie inside the
triangles" (paper Section 2).  This module does exactly that, fully
vectorized per triangle:

* coverage by edge functions with the top-left fill rule (shared edges
  hit exactly once);
* perspective-correct attributes: for an attribute ``a``, ``a/w`` and
  ``1/w`` are linear in screen space, so ``a = (a/w) / (1/w)``;
* analytic level of detail from the exact screen-space derivatives of
  the texel coordinates (Section 2's screen-pixel to texel ratio ``d``;
  we carry ``lod = log2(d)``).

Fragment traversal order within the triangle is chosen later by a
:class:`repro.raster.order.TraversalOrder`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass
class FragmentBatch:
    """Fragments of one triangle, in traversal order.

    Arrays share length ``n_fragments``; ``u``/``v`` are normalized
    texture coordinates (GL_REPEAT semantics), ``lod`` is log2 of the
    screen-pixel to texel ratio, ``color`` the shading color in [0, 1].
    """

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    u: np.ndarray
    v: np.ndarray
    lod: np.ndarray
    color: Optional[np.ndarray] = None
    #: Screen-space texel-coordinate derivatives (texel units), used by
    #: anisotropic filtering: du/dx, dv/dx, du/dy, dv/dy.
    dudx: Optional[np.ndarray] = None
    dvdx: Optional[np.ndarray] = None
    dudy: Optional[np.ndarray] = None
    dvdy: Optional[np.ndarray] = None

    @property
    def n_fragments(self) -> int:
        return len(self.x)

    #: Optional fields, permuted only when present (``None`` stays
    #: ``None`` -- no allocation).
    _OPTIONAL_FIELDS = ("color", "dudx", "dvdx", "dudy", "dvdy")

    def reordered(self, order: np.ndarray) -> "FragmentBatch":
        """Apply a traversal-order permutation."""
        picked = {
            name: value[order]
            for name in self._OPTIONAL_FIELDS
            if (value := getattr(self, name)) is not None
        }
        return FragmentBatch(
            x=self.x[order],
            y=self.y[order],
            z=self.z[order],
            u=self.u[order],
            v=self.v[order],
            lod=self.lod[order],
            **picked,
        )


def _plane_gradients(sx, sy, values, area2):
    """Gradient (d/dx, d/dy) of the linear screen-space function taking
    ``values`` at the triangle's vertices ``(sx, sy)``."""
    dx = (
        values[0] * (sy[1] - sy[2])
        + values[1] * (sy[2] - sy[0])
        + values[2] * (sy[0] - sy[1])
    ) / area2
    dy = (
        values[0] * (sx[2] - sx[1])
        + values[1] * (sx[0] - sx[2])
        + values[2] * (sx[1] - sx[0])
    ) / area2
    return dx, dy


def rasterize_triangle(
    screen: np.ndarray,
    ndc_z: np.ndarray,
    inv_w: np.ndarray,
    uv: np.ndarray,
    texture_size: tuple,
    width: int,
    height: int,
    colors: Optional[np.ndarray] = None,
) -> Optional[FragmentBatch]:
    """Rasterize one screen-space triangle.

    Parameters
    ----------
    screen:
        ``(3, 2)`` screen coordinates (pixel units, y down).
    ndc_z:
        ``(3,)`` NDC depth at the vertices (linear in screen space).
    inv_w:
        ``(3,)`` reciprocal clip-space w at the vertices.
    uv:
        ``(3, 2)`` texture coordinates at the vertices.
    texture_size:
        ``(texels_w, texels_h)`` of the texture's level 0, used to
        express the level of detail in texel units.
    width, height:
        Screen dimensions (fragments outside are scissored).
    colors:
        Optional ``(3, 3)`` per-vertex shading colors.

    Returns ``None`` for degenerate, backfacing-degenerate or fully
    scissored triangles.  Fragments come out in row-major order;
    reorder with a :class:`~repro.raster.order.TraversalOrder`.
    """
    sx = screen[:, 0]
    sy = screen[:, 1]

    area2 = (sx[1] - sx[0]) * (sy[2] - sy[0]) - (sx[2] - sx[0]) * (sy[1] - sy[0])
    if area2 == 0.0:
        return None
    if area2 < 0.0:
        # Normalize winding so edge functions are positive inside.
        # (The pipeline renders both windings; no backface culling.)
        order = np.array([0, 2, 1])
        sx = sx[order]
        sy = sy[order]
        ndc_z = ndc_z[order]
        inv_w = inv_w[order]
        uv = uv[order]
        if colors is not None:
            colors = colors[order]
        area2 = -area2

    min_x = max(int(np.floor(sx.min())), 0)
    max_x = min(int(np.ceil(sx.max())), width - 1)
    min_y = max(int(np.floor(sy.min())), 0)
    max_y = min(int(np.ceil(sy.max())), height - 1)
    if min_x > max_x or min_y > max_y:
        return None

    xs = np.arange(min_x, max_x + 1)
    ys = np.arange(min_y, max_y + 1)
    px, py = np.meshgrid(xs + 0.5, ys + 0.5, indexing="xy")

    # Edge functions e_i >= 0 inside; strict > on non-top-left edges.
    lambdas = []
    inside = np.ones(px.shape, dtype=bool)
    for i in range(3):
        j = (i + 1) % 3
        ex = sx[j] - sx[i]
        ey = sy[j] - sy[i]
        e = (py - sy[i]) * ex - (px - sx[i]) * ey
        # Top-left rule (y-down screen, inside-positive winding): a top
        # edge runs exactly horizontal with the interior below it
        # (ey == 0, ex > 0); a left edge points upward (ey < 0).
        top_left = (ey < 0.0) or (ey == 0.0 and ex > 0.0)
        inside &= (e >= 0.0) if top_left else (e > 0.0)
        lambdas.append(e)
    if not inside.any():
        return None

    frag_x = (px[inside] - 0.5).astype(np.int32)
    frag_y = (py[inside] - 0.5).astype(np.int32)

    # Barycentric weights: lambda_i is the edge function opposite
    # vertex i, normalized by twice the area.
    l0 = lambdas[1][inside] / area2
    l1 = lambdas[2][inside] / area2
    l2 = lambdas[0][inside] / area2

    # Perspective-correct interpolation.
    one_over_w = l0 * inv_w[0] + l1 * inv_w[1] + l2 * inv_w[2]
    u_over_w = l0 * uv[0, 0] * inv_w[0] + l1 * uv[1, 0] * inv_w[1] + l2 * uv[2, 0] * inv_w[2]
    v_over_w = l0 * uv[0, 1] * inv_w[0] + l1 * uv[1, 1] * inv_w[1] + l2 * uv[2, 1] * inv_w[2]
    frag_u = u_over_w / one_over_w
    frag_v = v_over_w / one_over_w
    frag_z = l0 * ndc_z[0] + l1 * ndc_z[1] + l2 * ndc_z[2]

    frag_lod, derivatives = _level_of_detail(
        sx, sy, inv_w, uv, area2, one_over_w, u_over_w, v_over_w, texture_size
    )

    frag_color = None
    if colors is not None:
        frag_color = (
            l0[:, None] * colors[0] + l1[:, None] * colors[1] + l2[:, None] * colors[2]
        )

    du_dx, dv_dx, du_dy, dv_dy = derivatives
    return FragmentBatch(
        x=frag_x, y=frag_y, z=frag_z, u=frag_u, v=frag_v, lod=frag_lod,
        color=frag_color, dudx=du_dx, dvdx=dv_dx, dudy=du_dy, dvdy=dv_dy,
    )


def _level_of_detail(
    sx, sy, inv_w, uv, area2, one_over_w, u_over_w, v_over_w, texture_size
):
    """Per-fragment lod = log2(max texel footprint per pixel step).

    With ``P = u/w`` and ``Q = 1/w`` linear in screen space,
    ``du/dx = (P_x Q - P Q_x) / Q^2`` exactly, and likewise for v, y.
    """
    texels_w, texels_h = texture_size
    px_grad = _plane_gradients(sx, sy, uv[:, 0] * inv_w, area2)
    py_grad = _plane_gradients(sx, sy, uv[:, 1] * inv_w, area2)
    q_grad = _plane_gradients(sx, sy, inv_w, area2)

    q2 = one_over_w * one_over_w
    du_dx = (px_grad[0] * one_over_w - u_over_w * q_grad[0]) / q2 * texels_w
    du_dy = (px_grad[1] * one_over_w - u_over_w * q_grad[1]) / q2 * texels_w
    dv_dx = (py_grad[0] * one_over_w - v_over_w * q_grad[0]) / q2 * texels_h
    dv_dy = (py_grad[1] * one_over_w - v_over_w * q_grad[1]) / q2 * texels_h

    rho_x = np.sqrt(du_dx * du_dx + dv_dx * dv_dx)
    rho_y = np.sqrt(du_dy * du_dy + dv_dy * dv_dy)
    rho = np.maximum(np.maximum(rho_x, rho_y), 1e-12)
    return np.log2(rho), (du_dx, dv_dx, du_dy, dv_dy)

"""Content-addressed on-disk artifact store.

Every stage of the render -> trace -> simulate pipeline is a pure
function of its inputs, so each intermediate can be cached on disk and
shared by every process that asks for the same inputs: benchmark
sessions, the CLI and the examples all hit one store instead of
re-rendering per process.

Artifacts are addressed by a SHA-256 fingerprint of a canonical JSON
payload describing *all* the inputs of the stage -- scene name,
reproduction scale, animation time, traversal-order spec, filtering
options, layout spec and a pipeline version stamp -- so artifacts
produced by an older pipeline (or different parameters) simply never
match and stale data self-invalidates.  Four artifact kinds exist:

``traces/``
    Rendered :class:`~repro.pipeline.trace.TexelTrace` archives
    (``.npz`` via :mod:`repro.pipeline.traceio`) plus a ``.json``
    sidecar carrying the render counters and the human-readable key.
``addresses/``
    Per-layout byte-address streams (``.npy``).
``profiles/``
    LRU stack-distance summaries per line size (``.npz``).
``set_profiles/``
    Per-set stack-distance summaries per ``(line_size, n_sets)``
    (``.npz``); one answers every associativity sharing that set
    count, so warm sessions sweep whole grids without a distance pass.

The root directory defaults to ``benchmarks/.cache/`` and is
overridable with the ``REPRO_CACHE_DIR`` environment variable.  Writes
are atomic (temp file + ``os.replace``), so concurrent processes --
including the runner's multiprocessing workers -- can share a store.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

from ..core.kernels import SetDistanceProfile
from ..core.stackdist import DistanceProfile
from ..pipeline import traceio
from ..pipeline.renderer import RenderResult
from .spec import TraceSpec

#: Stamped into every fingerprint; bump when any pipeline stage changes
#: its output (renderer, layouts, trace format, ...) so every existing
#: artifact self-invalidates.
PIPELINE_VERSION = 1

#: Artifact kinds, also the store's subdirectory names.
KINDS = ("traces", "addresses", "profiles", "set_profiles")


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``benchmarks/.cache`` in the
    repository the package is installed from."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "benchmarks" / ".cache"


def fingerprint(payload: dict) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload`` (with the
    pipeline version stamp mixed in)."""
    record = dict(payload)
    record["pipeline_version"] = PIPELINE_VERSION
    record["trace_format"] = traceio.FORMAT_VERSION
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def addresses_payload(trace_spec: TraceSpec, layout_spec, alignment: int = 16) -> dict:
    """Fingerprint payload for a byte-address stream."""
    return {
        "trace": trace_spec.payload(),
        "layout": list(layout_spec),
        "alignment": alignment,
    }


def profile_payload(address_payload: dict, line_size: int) -> dict:
    """Fingerprint payload for a stack-distance profile."""
    return {"addresses": address_payload, "line_size": line_size}


def set_profile_payload(address_payload: dict, line_size: int,
                        n_sets: int) -> dict:
    """Fingerprint payload for a per-set stack-distance profile."""
    return {"addresses": address_payload, "line_size": line_size,
            "n_sets": n_sets}


def _atomic_write(path: Path, write) -> None:
    """Call ``write(temp_path)`` then atomically move into place.

    The temporary name keeps the real extension last so numpy's savers
    (which append ``.npy``/``.npz`` to unrecognized names) write to the
    exact path being renamed.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    descriptor, temp_name = tempfile.mkstemp(dir=path.parent,
                                             suffix=".tmp" + path.suffix)
    os.close(descriptor)
    try:
        write(temp_name)
        os.replace(temp_name, path)
    except BaseException:
        if os.path.exists(temp_name):
            os.unlink(temp_name)
        raise


class ArtifactStore:
    """Content-addressed cache of pipeline intermediates on disk."""

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def _path(self, kind: str, digest: str, suffix: str) -> Path:
        return self.root / kind / (digest + suffix)

    # -- rendered traces -------------------------------------------------

    def load_render(self, spec: TraceSpec) -> Optional[RenderResult]:
        """The cached render for ``spec``, or ``None`` on a miss.

        Reconstructed results carry the trace and the triangle/fragment
        counters; the framebuffer and per-triangle breakdown are only
        available from a fresh render.
        """
        digest = fingerprint(spec.payload())
        path = self._path("traces", digest, ".npz")
        meta_path = self._path("traces", digest, ".json")
        if not path.exists() or not meta_path.exists():
            return None
        try:
            trace = traceio.load_trace(str(path))
            meta = json.loads(meta_path.read_text())
        except (ValueError, OSError, json.JSONDecodeError):
            return None  # torn or foreign file: treat as a miss
        return RenderResult(
            trace=trace,
            framebuffer=None,
            n_fragments=trace.n_fragments,
            n_triangles_submitted=meta["n_triangles_submitted"],
            n_triangles_rasterized=meta["n_triangles_rasterized"],
        )

    def save_render(self, spec: TraceSpec, result: RenderResult) -> Path:
        digest = fingerprint(spec.payload())
        path = self._path("traces", digest, ".npz")
        _atomic_write(path, lambda temp: traceio.save_trace(temp, result.trace))
        meta = {
            "key": spec.payload(),
            "n_triangles_submitted": int(result.n_triangles_submitted),
            "n_triangles_rasterized": int(result.n_triangles_rasterized),
        }
        _atomic_write(self._path("traces", digest, ".json"),
                      lambda temp: Path(temp).write_text(json.dumps(meta, indent=1)))
        return path

    # -- byte-address streams --------------------------------------------

    def load_addresses(self, payload: dict) -> Optional[np.ndarray]:
        path = self._path("addresses", fingerprint(payload), ".npy")
        if not path.exists():
            return None
        try:
            return np.load(path)
        except (ValueError, OSError):
            return None

    def save_addresses(self, payload: dict, addresses: np.ndarray) -> Path:
        digest = fingerprint(payload)
        path = self._path("addresses", digest, ".npy")
        _atomic_write(path, lambda temp: np.save(temp, addresses))

        def write_key(temp):
            Path(temp).write_text(json.dumps({"key": payload}, indent=1))
        _atomic_write(self._path("addresses", digest, ".json"), write_key)
        return path

    # -- stack-distance profiles -----------------------------------------

    def load_profile(self, payload: dict) -> Optional[DistanceProfile]:
        path = self._path("profiles", fingerprint(payload), ".npz")
        if not path.exists():
            return None
        try:
            with np.load(path) as archive:
                counts = archive["counts"]
                cold, duplicate_hits = archive["meta"].tolist()
        except (ValueError, OSError, KeyError):
            return None
        return DistanceProfile(counts=counts, cold=int(cold),
                               duplicate_hits=int(duplicate_hits))

    def save_profile(self, payload: dict, profile: DistanceProfile) -> Path:
        path = self._path("profiles", fingerprint(payload), ".npz")

        def write(temp):
            np.savez_compressed(
                temp, counts=profile.counts,
                meta=np.array([profile.cold, profile.duplicate_hits],
                              dtype=np.int64))
        _atomic_write(path, write)
        return path

    # -- per-set stack-distance profiles ---------------------------------

    def load_set_profile(self, payload: dict) -> Optional[SetDistanceProfile]:
        path = self._path("set_profiles", fingerprint(payload), ".npz")
        if not path.exists():
            return None
        try:
            with np.load(path) as archive:
                counts = archive["counts"]
                line_size, n_sets, cold, duplicate_hits = \
                    archive["meta"].tolist()
        except (ValueError, OSError, KeyError):
            return None
        return SetDistanceProfile(
            line_size=int(line_size), n_sets=int(n_sets), counts=counts,
            cold=int(cold), duplicate_hits=int(duplicate_hits))

    def save_set_profile(self, payload: dict,
                         profile: SetDistanceProfile) -> Path:
        path = self._path("set_profiles", fingerprint(payload), ".npz")

        def write(temp):
            np.savez_compressed(
                temp, counts=profile.counts,
                meta=np.array([profile.line_size, profile.n_sets,
                               profile.cold, profile.duplicate_hits],
                              dtype=np.int64))
        _atomic_write(path, write)
        return path

    # -- maintenance -----------------------------------------------------

    def stats(self) -> dict:
        """Per-kind artifact counts and byte totals."""
        report = {"root": str(self.root), "kinds": {}, "total_bytes": 0,
                  "total_files": 0}
        for kind in KINDS:
            directory = self.root / kind
            files = [f for f in directory.glob("*") if f.is_file()] \
                if directory.is_dir() else []
            nbytes = sum(f.stat().st_size for f in files)
            report["kinds"][kind] = {"files": len(files), "bytes": nbytes}
            report["total_files"] += len(files)
            report["total_bytes"] += nbytes
        return report

    def clear(self) -> dict:
        """Delete every artifact; returns the pre-clear :meth:`stats`."""
        report = self.stats()
        for kind in KINDS:
            shutil.rmtree(self.root / kind, ignore_errors=True)
        return report

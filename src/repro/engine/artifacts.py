"""Content-addressed on-disk artifact store.

Every stage of the render -> trace -> simulate pipeline is a pure
function of its inputs, so each intermediate can be cached on disk and
shared by every process that asks for the same inputs: benchmark
sessions, the CLI and the examples all hit one store instead of
re-rendering per process.

Artifacts are addressed by a SHA-256 fingerprint of a canonical JSON
payload describing *all* the inputs of the stage -- scene name,
reproduction scale, animation time, traversal-order spec, filtering
options, layout spec and a pipeline version stamp -- so artifacts
produced by an older pipeline (or different parameters) simply never
match and stale data self-invalidates.  Four artifact kinds exist:

``traces/``
    Rendered :class:`~repro.pipeline.trace.TexelTrace` archives
    (``.npz`` via :mod:`repro.pipeline.traceio`) plus a ``.json``
    sidecar carrying the render counters and the human-readable key.
``addresses/``
    Per-layout byte-address streams (``.npy``).
``profiles/``
    LRU stack-distance summaries per line size (``.npz``).
``set_profiles/``
    Per-set stack-distance summaries per ``(line_size, n_sets)``
    (``.npz``); one answers every associativity sharing that set
    count, so warm sessions sweep whole grids without a distance pass.

The root directory defaults to ``benchmarks/.cache/`` and is
overridable with the ``REPRO_CACHE_DIR`` environment variable.

Failure model
-------------
The store assumes writers can be killed at any instruction, disks can
fill up or go read-only, and bytes can rot between a write and the
next read.  Its defenses:

* **Atomic publishes.**  Writes go to a ``*.tmp*`` sibling and are
  moved into place with ``os.replace``; readers never observe a
  half-written file, only litter (which :meth:`ArtifactStore.repair`
  purges once it is stale).
* **Integrity envelopes.**  Every payload's ``.json`` sidecar records
  a SHA-256 content digest and byte size.  Every load re-verifies
  them; anything torn, truncated, bit-rotted, foreign or legacy
  (pre-envelope) is moved to ``quarantine/`` with a reason record and
  reported as a miss, so the caller transparently recomputes.
  Missing-counterpart states younger than :data:`TORN_GRACE_S` are
  treated as in-flight writes (a concurrent saver between its two
  publishes) and skipped without quarantining.
* **Single-flight locks.**  :meth:`ArtifactStore.single_flight` takes
  a per-fingerprint ``fcntl`` advisory lock so N racing processes
  perform one render instead of N.  Locks die with their holder; a
  hung holder is abandoned after a timeout (the waiter proceeds and
  computes redundantly but correctly).
* **Degraded mode.**  A save that fails like a broken disk (ENOSPC,
  EROFS, EACCES, ...) demotes the store: one warning, writes become
  no-ops, reads keep working (a warm read-only store still serves
  artifacts) and callers fall back to their in-memory memos.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import shutil
import tempfile
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

import numpy as np

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from ..core.kernels import SetDistanceProfile
from ..core.stackdist import DistanceProfile
from ..pipeline import traceio
from ..pipeline.renderer import RenderResult
from .spec import TraceSpec

#: Stamped into every fingerprint; bump when any pipeline stage changes
#: its output (renderer, layouts, trace format, ...) so every existing
#: artifact self-invalidates.
PIPELINE_VERSION = 1

#: Artifact kinds, also the store's subdirectory names.
KINDS = ("traces", "addresses", "profiles", "set_profiles")

#: Maintenance subdirectories (never fingerprint-addressed).
QUARANTINE_DIR = "quarantine"
LOCKS_DIR = "locks"

#: Age below which a missing-counterpart artifact (payload without
#: sidecar, or the reverse) and ``*.tmp*`` litter are presumed to be a
#: concurrent writer mid-publish rather than a crash, and left alone.
TORN_GRACE_S = 60.0

#: How long :meth:`ArtifactStore.single_flight` waits for a lock before
#: abandoning it (stale-lock takeover) and computing anyway.
LOCK_TIMEOUT_S = 300.0
LOCK_POLL_S = 0.05

#: ``errno`` values that mean "the disk, not the data": the store
#: demotes itself instead of failing the experiment.
_UNAVAILABLE_ERRNOS = frozenset(
    code for code in (
        errno.ENOSPC, errno.EROFS, errno.EACCES, errno.EPERM,
        getattr(errno, "EDQUOT", None),
    ) if code is not None
)


class StoreError(Exception):
    """Base class for artifact-store failures."""


class CorruptArtifact(StoreError):
    """An artifact failed integrity verification.

    ``transient`` marks states a concurrent writer passes through
    (payload published, sidecar not yet) which only count as damage
    once they are older than :data:`TORN_GRACE_S`.
    """

    def __init__(self, message: str, transient: bool = False):
        super().__init__(message)
        self.transient = transient


class StoreUnavailable(StoreError):
    """The store's disk is full, read-only or permission-denied."""


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``benchmarks/.cache`` in the
    repository the package is installed from."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "benchmarks" / ".cache"


def fingerprint(payload: dict) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload`` (with the
    pipeline version stamp mixed in)."""
    record = dict(payload)
    record["pipeline_version"] = PIPELINE_VERSION
    record["trace_format"] = traceio.FORMAT_VERSION
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def addresses_payload(trace_spec: TraceSpec, layout_spec, alignment: int = 16) -> dict:
    """Fingerprint payload for a byte-address stream."""
    return {
        "trace": trace_spec.payload(),
        "layout": list(layout_spec),
        "alignment": alignment,
    }


def profile_payload(address_payload: dict, line_size: int) -> dict:
    """Fingerprint payload for a stack-distance profile."""
    return {"addresses": address_payload, "line_size": line_size}


def set_profile_payload(address_payload: dict, line_size: int,
                        n_sets: int) -> dict:
    """Fingerprint payload for a per-set stack-distance profile."""
    return {"addresses": address_payload, "line_size": line_size,
            "n_sets": n_sets}


def _replace(source: str, destination) -> None:
    """Publish step of an atomic write.  A module-level indirection so
    fault-injection tests can simulate a writer killed (or a disk
    filling up) between payload write and publish."""
    os.replace(source, destination)


def _discard_temp(temp_name: str) -> None:
    """Cleanup step of a failed atomic write; also an indirection so a
    simulated kill can leave realistic ``*.tmp*`` litter behind."""
    if os.path.exists(temp_name):
        os.unlink(temp_name)


def _translate_os_error(fault: OSError) -> None:
    """Re-raise disk-shaped OS errors as :class:`StoreUnavailable`."""
    if fault.errno in _UNAVAILABLE_ERRNOS:
        raise StoreUnavailable(str(fault)) from fault
    raise fault


def _atomic_write(path: Path, write) -> None:
    """Call ``write(temp_path)`` then atomically move into place.

    The temporary name keeps the real extension last so numpy's savers
    (which append ``.npy``/``.npz`` to unrecognized names) write to the
    exact path being renamed.  OS errors that mean a broken disk are
    raised as :class:`StoreUnavailable`.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(dir=path.parent,
                                                 suffix=".tmp" + path.suffix)
        os.close(descriptor)
    except OSError as fault:
        _translate_os_error(fault)
    try:
        write(temp_name)
        _replace(temp_name, path)
    except BaseException as fault:
        _discard_temp(temp_name)
        if isinstance(fault, OSError):
            _translate_os_error(fault)
        raise


def _file_digest(path: Path) -> str:
    """SHA-256 of a file's bytes (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _is_stale(path: Path, grace_s: float = TORN_GRACE_S) -> bool:
    """Whether ``path`` is old enough that no live writer can still be
    mid-publish around it."""
    try:
        return time.time() - path.stat().st_mtime >= grace_s
    except OSError:
        return True  # vanished: nothing left to protect


class ArtifactStore:
    """Content-addressed cache of pipeline intermediates on disk.

    Loads verify the integrity envelope and quarantine damage; saves
    are atomic and, when the disk itself fails, demote the store to a
    warn-once no-op (readers keep working) rather than raising
    mid-experiment.
    """

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._demoted = False
        self._demotion_reason: Optional[str] = None

    def _path(self, kind: str, digest: str, suffix: str) -> Path:
        return self.root / kind / (digest + suffix)

    # -- degraded mode ---------------------------------------------------

    @property
    def available(self) -> bool:
        """False once the store has demoted itself to read-only."""
        return not self._demoted

    def _demote(self, fault: StoreUnavailable) -> None:
        self._demoted = True
        self._demotion_reason = str(fault)
        warnings.warn(
            f"artifact store at {self.root} is unavailable "
            f"({fault}); continuing without persistence -- results are "
            "kept in-memory only for this process",
            RuntimeWarning, stacklevel=4)

    def _guarded_write(self, publish) -> bool:
        """Run ``publish()``; on a disk-shaped failure demote the store
        (warn once) instead of propagating.  Returns True on success."""
        if self._demoted:
            return False
        try:
            publish()
            return True
        except StoreUnavailable as fault:
            self._demote(fault)
            return False

    # -- integrity envelope ----------------------------------------------

    def _write_sidecar(self, kind: str, digest: str, payload_path: Path,
                       key_payload: dict, extra: Optional[dict] = None) -> None:
        """Publish the ``.json`` sidecar: human-readable key, integrity
        envelope of the just-written payload, and kind-specific meta."""
        meta = {
            "key": key_payload,
            "envelope": {
                "kind": kind,
                "digest": _file_digest(payload_path),
                "nbytes": payload_path.stat().st_size,
            },
        }
        if extra:
            meta.update(extra)
        _atomic_write(self._path(kind, digest, ".json"),
                      lambda temp: Path(temp).write_text(json.dumps(meta, indent=1)))

    def _verify_envelope(self, kind: str, path: Path, sidecar: Path) -> dict:
        """Check one artifact's envelope; returns the sidecar meta or
        raises :class:`CorruptArtifact` describing the damage."""
        if not path.exists():
            raise CorruptArtifact("orphaned sidecar (payload missing)",
                                  transient=True)
        if not sidecar.exists():
            raise CorruptArtifact(
                "missing sidecar (legacy artifact or torn write)",
                transient=True)
        try:
            meta = json.loads(sidecar.read_text())
        except (OSError, ValueError) as fault:
            raise CorruptArtifact(f"unreadable sidecar ({fault})") from fault
        envelope = meta.get("envelope") if isinstance(meta, dict) else None
        if not isinstance(envelope, dict):
            raise CorruptArtifact("legacy sidecar (no integrity envelope)")
        try:
            nbytes = path.stat().st_size
        except OSError:
            raise CorruptArtifact("payload vanished during verification",
                                  transient=True)
        if nbytes != envelope.get("nbytes"):
            raise CorruptArtifact(
                f"size mismatch ({nbytes} bytes on disk, "
                f"{envelope.get('nbytes')} recorded -- truncated or torn)")
        if _file_digest(path) != envelope.get("digest"):
            raise CorruptArtifact(
                "content digest mismatch (bit rot or foreign payload)")
        return meta

    def _open_verified(self, kind: str, digest: str, suffix: str):
        """``(path, meta)`` for a verified artifact, or ``None`` on a
        miss.  Damage is quarantined; in-flight writes (younger than
        the grace window) read as a plain miss."""
        path = self._path(kind, digest, suffix)
        sidecar = self._path(kind, digest, ".json")
        if not path.exists() and not sidecar.exists():
            return None
        try:
            meta = self._verify_envelope(kind, path, sidecar)
        except CorruptArtifact as fault:
            survivor = path if path.exists() else sidecar
            if fault.transient and not _is_stale(survivor):
                return None  # concurrent writer mid-publish
            self.quarantine(kind, digest, str(fault))
            return None
        return path, meta

    def quarantine(self, kind: str, digest: str, reason: str) -> None:
        """Move an artifact's files to ``quarantine/<kind>/`` alongside
        a ``<digest>.reason.json`` record.  Best-effort: on an
        unwritable store the damage stays in place and keeps reading as
        a miss."""
        target_dir = self.root / QUARANTINE_DIR / kind
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            moved = []
            for candidate in sorted((self.root / kind).glob(digest + ".*")):
                if ".tmp" in candidate.name:
                    continue
                os.replace(candidate, target_dir / candidate.name)
                moved.append(candidate.name)
            record = {"kind": kind, "digest": digest, "reason": reason,
                      "files": moved, "quarantined_at": time.time()}
            (target_dir / (digest + ".reason.json")).write_text(
                json.dumps(record, indent=1))
        except OSError:
            pass

    # -- single-flight locking -------------------------------------------

    @contextmanager
    def single_flight(self, kind: str, digest: str,
                      timeout: Optional[float] = None):
        """Advisory per-fingerprint lock for miss-path computation.

        Yields True when this process holds the lock.  Yields False --
        and the caller simply computes redundantly, which is always
        correct -- when locking is unavailable (no ``fcntl``, unwritable
        store) or a hung holder did not release within ``timeout``
        (stale-lock takeover; crashed holders release automatically).
        Callers must re-check the store after acquisition: the previous
        holder usually published the artifact.
        """
        if fcntl is None or self._demoted:
            yield False
            return
        lock_path = self.root / LOCKS_DIR / f"{kind}-{digest}.lock"
        try:
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            handle = open(lock_path, "a+")
        except OSError:
            yield False
            return
        acquired = False
        try:
            deadline = time.monotonic() + \
                (LOCK_TIMEOUT_S if timeout is None else timeout)
            while True:
                try:
                    fcntl.flock(handle.fileno(),
                                fcntl.LOCK_EX | fcntl.LOCK_NB)
                    acquired = True
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        break
                    time.sleep(LOCK_POLL_S)
            yield acquired
        finally:
            if acquired:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:
                    pass
            handle.close()

    # -- rendered traces -------------------------------------------------

    def load_render(self, spec: TraceSpec) -> Optional[RenderResult]:
        """The cached render for ``spec``, or ``None`` on a miss.

        Reconstructed results carry the trace and the triangle/fragment
        counters; the framebuffer and per-triangle breakdown are only
        available from a fresh render.
        """
        digest = fingerprint(spec.payload())
        checked = self._open_verified("traces", digest, ".npz")
        if checked is None:
            return None
        path, meta = checked
        try:
            trace = traceio.load_trace(str(path))
            submitted = int(meta["n_triangles_submitted"])
            rasterized = int(meta["n_triangles_rasterized"])
        except (ValueError, OSError, KeyError, TypeError) as fault:
            self.quarantine("traces", digest,
                            f"undecodable trace artifact ({fault!r})")
            return None
        return RenderResult(
            trace=trace,
            framebuffer=None,
            n_fragments=trace.n_fragments,
            n_triangles_submitted=submitted,
            n_triangles_rasterized=rasterized,
        )

    def save_render(self, spec: TraceSpec, result: RenderResult) -> Path:
        digest = fingerprint(spec.payload())
        path = self._path("traces", digest, ".npz")

        def publish():
            _atomic_write(path,
                          lambda temp: traceio.save_trace(temp, result.trace))
            self._write_sidecar("traces", digest, path, spec.payload(), {
                "n_triangles_submitted": int(result.n_triangles_submitted),
                "n_triangles_rasterized": int(result.n_triangles_rasterized),
            })
        self._guarded_write(publish)
        return path

    # -- byte-address streams --------------------------------------------

    def load_addresses(self, payload: dict) -> Optional[np.ndarray]:
        digest = fingerprint(payload)
        checked = self._open_verified("addresses", digest, ".npy")
        if checked is None:
            return None
        path, _ = checked
        try:
            return np.load(path)
        except (ValueError, OSError) as fault:
            self.quarantine("addresses", digest,
                            f"undecodable address stream ({fault!r})")
            return None

    def save_addresses(self, payload: dict, addresses: np.ndarray) -> Path:
        digest = fingerprint(payload)
        path = self._path("addresses", digest, ".npy")

        def publish():
            _atomic_write(path, lambda temp: np.save(temp, addresses))
            self._write_sidecar("addresses", digest, path, payload)
        self._guarded_write(publish)
        return path

    # -- stack-distance profiles -----------------------------------------

    def load_profile(self, payload: dict) -> Optional[DistanceProfile]:
        digest = fingerprint(payload)
        checked = self._open_verified("profiles", digest, ".npz")
        if checked is None:
            return None
        path, _ = checked
        try:
            with np.load(path) as archive:
                counts = archive["counts"]
                cold, duplicate_hits = archive["meta"].tolist()
        except (ValueError, OSError, KeyError) as fault:
            self.quarantine("profiles", digest,
                            f"undecodable profile ({fault!r})")
            return None
        return DistanceProfile(counts=counts, cold=int(cold),
                               duplicate_hits=int(duplicate_hits))

    def save_profile(self, payload: dict, profile: DistanceProfile) -> Path:
        digest = fingerprint(payload)
        path = self._path("profiles", digest, ".npz")

        def write(temp):
            np.savez_compressed(
                temp, counts=profile.counts,
                meta=np.array([profile.cold, profile.duplicate_hits],
                              dtype=np.int64))

        def publish():
            _atomic_write(path, write)
            self._write_sidecar("profiles", digest, path, payload)
        self._guarded_write(publish)
        return path

    # -- per-set stack-distance profiles ---------------------------------

    def load_set_profile(self, payload: dict) -> Optional[SetDistanceProfile]:
        digest = fingerprint(payload)
        checked = self._open_verified("set_profiles", digest, ".npz")
        if checked is None:
            return None
        path, _ = checked
        try:
            with np.load(path) as archive:
                counts = archive["counts"]
                line_size, n_sets, cold, duplicate_hits = \
                    archive["meta"].tolist()
        except (ValueError, OSError, KeyError) as fault:
            self.quarantine("set_profiles", digest,
                            f"undecodable per-set profile ({fault!r})")
            return None
        return SetDistanceProfile(
            line_size=int(line_size), n_sets=int(n_sets), counts=counts,
            cold=int(cold), duplicate_hits=int(duplicate_hits))

    def save_set_profile(self, payload: dict,
                         profile: SetDistanceProfile) -> Path:
        digest = fingerprint(payload)
        path = self._path("set_profiles", digest, ".npz")

        def write(temp):
            np.savez_compressed(
                temp, counts=profile.counts,
                meta=np.array([profile.line_size, profile.n_sets,
                               profile.cold, profile.duplicate_hits],
                              dtype=np.int64))

        def publish():
            _atomic_write(path, write)
            self._write_sidecar("set_profiles", digest, path, payload)
        self._guarded_write(publish)
        return path

    # -- maintenance -----------------------------------------------------

    def _scan_kind(self, kind: str):
        """``(payloads, sidecar_stems, tmp_names)`` for one kind,
        tolerant of files vanishing mid-scan (concurrent ``clear()``)."""
        payloads, sidecars, tmp = {}, set(), []
        directory = self.root / kind
        if not directory.is_dir():
            return payloads, sidecars, tmp
        for entry in sorted(directory.glob("*")):
            try:
                if not entry.is_file():
                    continue
                entry.stat()
            except OSError:
                continue  # deleted between glob and stat: skip
            if ".tmp" in entry.name:
                tmp.append(entry.name)
            elif entry.suffix == ".json":
                sidecars.add(entry.stem)
            else:
                payloads[entry.stem] = entry
        return payloads, sidecars, tmp

    def stats(self) -> dict:
        """Per-kind artifact counts and byte totals, plus orphaned
        ``*.tmp*`` litter and quarantined-file counts."""
        report = {"root": str(self.root), "kinds": {}, "total_bytes": 0,
                  "total_files": 0, "tmp_files": 0,
                  "quarantined": self._count_quarantined()}
        for kind in KINDS:
            files = nbytes = tmp = 0
            directory = self.root / kind
            if directory.is_dir():
                for entry in directory.glob("*"):
                    try:
                        if not entry.is_file():
                            continue
                        size = entry.stat().st_size
                    except OSError:
                        continue  # vanished between glob and stat
                    if ".tmp" in entry.name:
                        tmp += 1
                        continue
                    files += 1
                    nbytes += size
            report["kinds"][kind] = {"files": files, "bytes": nbytes,
                                     "tmp": tmp}
            report["total_files"] += files
            report["total_bytes"] += nbytes
            report["tmp_files"] += tmp
        return report

    def _count_quarantined(self) -> int:
        quarantine_root = self.root / QUARANTINE_DIR
        if not quarantine_root.is_dir():
            return 0
        count = 0
        for entry in quarantine_root.glob("*/*"):
            try:
                if entry.is_file() and not entry.name.endswith(".reason.json"):
                    count += 1
            except OSError:
                continue
        return count

    def verify(self) -> dict:
        """Scan every artifact's integrity envelope without modifying
        anything.  ``bad`` lists verifiable damage; ``pending`` counts
        in-flight (younger than the grace window) torn states; ``tmp``
        lists temp-file litter."""
        report = {"root": str(self.root), "kinds": {},
                  "ok": 0, "bad": 0, "pending": 0, "tmp": 0}
        for kind in KINDS:
            entry = {"ok": 0, "bad": [], "pending": 0, "tmp": []}
            payloads, sidecars, entry["tmp"] = self._scan_kind(kind)
            for stem, path in payloads.items():
                sidecar = self._path(kind, stem, ".json")
                try:
                    self._verify_envelope(kind, path, sidecar)
                except CorruptArtifact as fault:
                    if fault.transient and not _is_stale(path):
                        entry["pending"] += 1
                    else:
                        entry["bad"].append({"file": path.name,
                                             "reason": str(fault)})
                else:
                    entry["ok"] += 1
                sidecars.discard(stem)
            for stem in sorted(sidecars):
                sidecar = self._path(kind, stem, ".json")
                if not _is_stale(sidecar):
                    entry["pending"] += 1
                else:
                    entry["bad"].append({
                        "file": sidecar.name,
                        "reason": "orphaned sidecar (payload missing)"})
            report["kinds"][kind] = entry
            report["ok"] += entry["ok"]
            report["bad"] += len(entry["bad"])
            report["pending"] += entry["pending"]
            report["tmp"] += len(entry["tmp"])
        report["clean"] = report["bad"] == 0
        return report

    def repair(self) -> dict:
        """Self-heal the store: quarantine every artifact that fails
        verification and purge stale ``*.tmp*`` litter left by killed
        writers.  In-flight writes (within the grace window) are left
        alone."""
        scan = self.verify()
        quarantined, purged = [], []
        for kind, entry in scan["kinds"].items():
            for problem in entry["bad"]:
                digest = problem["file"].split(".", 1)[0]
                self.quarantine(kind, digest, problem["reason"])
                quarantined.append(f"{kind}/{problem['file']}")
            for name in entry["tmp"]:
                litter = self.root / kind / name
                if not _is_stale(litter):
                    continue  # a live writer may still publish it
                try:
                    litter.unlink()
                except OSError:
                    continue
                purged.append(f"{kind}/{name}")
        return {"root": str(self.root), "quarantined": quarantined,
                "purged_tmp": purged}

    def clear(self) -> dict:
        """Delete every artifact (including quarantine, locks and temp
        litter); returns the pre-clear :meth:`stats`."""
        report = self.stats()
        for kind in KINDS + (QUARANTINE_DIR, LOCKS_DIR):
            shutil.rmtree(self.root / kind, ignore_errors=True)
        return report

"""Content-addressed on-disk artifact store.

Every stage of the render -> trace -> simulate pipeline is a pure
function of its inputs, so each intermediate can be cached on disk and
shared by every process that asks for the same inputs: benchmark
sessions, the CLI and the examples all hit one store instead of
re-rendering per process.

Artifacts are addressed by a SHA-256 fingerprint of a canonical JSON
payload describing *all* the inputs of the stage -- scene name,
reproduction scale, animation time, traversal-order spec, filtering
options, layout spec and a pipeline version stamp -- so artifacts
produced by an older pipeline (or different parameters) simply never
match and stale data self-invalidates.  Four artifact kinds exist:

``traces/``
    Rendered :class:`~repro.pipeline.trace.TexelTrace` archives
    (``.npz`` via :mod:`repro.pipeline.traceio`) plus a ``.json``
    sidecar carrying the render counters and the human-readable key.
    A trace may instead be stored *chunked* as ``<digest>.pNNNNN.npz``
    part files (one :class:`~repro.pipeline.trace.FragmentBlock` each)
    whose sidecar lists a per-part integrity envelope -- the streaming
    pipeline's representation, written and read one block at a time so
    traces larger than RAM round-trip through the store.
``addresses/``
    Per-layout byte-address streams (``.npy``).
``profiles/``
    LRU stack-distance summaries per line size (``.npz``).
``set_profiles/``
    Per-set stack-distance summaries per ``(line_size, n_sets)``
    (``.npz``); one answers every associativity sharing that set
    count, so warm sessions sweep whole grids without a distance pass.

The root directory defaults to ``benchmarks/.cache/`` and is
overridable with the ``REPRO_CACHE_DIR`` environment variable.

Failure model
-------------
The store assumes writers can be killed at any instruction, disks can
fill up or go read-only, and bytes can rot between a write and the
next read.  Its defenses:

* **Atomic publishes.**  Writes go to a ``*.tmp*`` sibling and are
  moved into place with ``os.replace``; readers never observe a
  half-written file, only litter (which :meth:`ArtifactStore.repair`
  purges once it is stale).
* **Integrity envelopes.**  Every payload's ``.json`` sidecar records
  a SHA-256 content digest and byte size.  Every load re-verifies
  them; anything torn, truncated, bit-rotted, foreign or legacy
  (pre-envelope) is moved to ``quarantine/`` with a reason record and
  reported as a miss, so the caller transparently recomputes.
  Missing-counterpart states younger than :data:`TORN_GRACE_S` are
  treated as in-flight writes (a concurrent saver between its two
  publishes) and skipped without quarantining.
* **Single-flight locks.**  :meth:`ArtifactStore.single_flight` takes
  a per-fingerprint ``fcntl`` advisory lock so N racing processes
  perform one render instead of N.  Locks die with their holder; a
  hung holder is abandoned after a timeout (the waiter proceeds and
  computes redundantly but correctly).
* **Degraded mode.**  A save that fails like a broken disk (ENOSPC,
  EROFS, EACCES, ...) demotes the store: one warning, writes become
  no-ops, reads keep working (a warm read-only store still serves
  artifacts) and callers fall back to their in-memory memos.

Tiered reads
------------
The directory above is tier T1 of a read-through hierarchy (see
:mod:`~repro.engine.tiers`).  Loads consult the process-wide
in-memory tier (T0) first -- deserialized artifacts in a byte-bounded
LRU, revalidated against the payload's ``(size, mtime_ns, inode)`` on
every hit -- and fill it on a verified disk read; integrity
verification consults a verify-once digest cache keyed the same way,
so an unchanged file is SHA-256-hashed at most once per process.  A
local miss can read through to an optional shared remote tier (T2,
``REPRO_STORE_REMOTE``): payload and sidecar are copied down with
atomic renames and then verified exactly like local artifacts, so
remote corruption quarantines locally and falls back to recompute;
local publishes are copied back up best-effort.  None of this changes
fingerprints or bytes -- every tier serves the same checksummed
envelope format.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import re
import shutil
import tempfile
import time
import warnings
import zipfile
from contextlib import contextmanager
from pathlib import Path
from typing import Optional

import numpy as np

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from ..core.kernels import SetDistanceProfile
from ..core.stackdist import DistanceProfile
from ..pipeline import traceio
from ..pipeline.renderer import RenderResult
from ..pipeline.trace import FragmentBlock, concat_blocks
from . import tiers
from .spec import TraceSpec

#: Stamped into every fingerprint; bump when any pipeline stage changes
#: its output (renderer, layouts, trace format, ...) so every existing
#: artifact self-invalidates.
PIPELINE_VERSION = 1

#: Artifact kinds, also the store's subdirectory names.
KINDS = ("traces", "addresses", "profiles", "set_profiles")

#: Maintenance subdirectories (never fingerprint-addressed).
QUARANTINE_DIR = "quarantine"
LOCKS_DIR = "locks"

#: Age below which a missing-counterpart artifact (payload without
#: sidecar, or the reverse) and ``*.tmp*`` litter are presumed to be a
#: concurrent writer mid-publish rather than a crash, and left alone.
TORN_GRACE_S = 60.0

#: How long :meth:`ArtifactStore.single_flight` waits for a lock before
#: abandoning it (stale-lock takeover) and computing anyway.
LOCK_TIMEOUT_S = 300.0
LOCK_POLL_S = 0.05

#: Chunked-trace part files: ``<digest>.pNNNNN.npz`` (the stem a
#: ``Path`` reports is ``<digest>.pNNNNN``).  Parts are only artifacts
#: through the sidecar that lists them; a part no sidecar claims is
#: litter, like a stale ``*.tmp*``.
_PART_STEM = re.compile(r"^([0-9a-f]{64})\.p(\d+)$")

#: Crash-resume metadata of an interrupted pipelined render:
#: ``<digest>.plan.json`` (the range plan written at dispatch) and
#: ``<digest>.rNNNNN.done.json`` (one completion record per finished
#: range).  Their presence marks the digest's strided orphan parts as
#: *resumable* -- the next cold fold re-verifies and folds them warm
#: instead of re-rendering -- so maintenance must not mistake them for
#: damaged artifacts or purge the parts they cover.
_RESUME_STEM = re.compile(r"^([0-9a-f]{64})\.(plan|r\d+\.done)$")
_RANGE_RECORD_INDEX = re.compile(r"\.r(\d+)\.done\.json$")

#: ``errno`` values that mean "the disk, not the data": the store
#: demotes itself instead of failing the experiment.
_UNAVAILABLE_ERRNOS = frozenset(
    code for code in (
        errno.ENOSPC, errno.EROFS, errno.EACCES, errno.EPERM,
        getattr(errno, "EDQUOT", None),
    ) if code is not None
)


class StoreError(Exception):
    """Base class for artifact-store failures."""


class CorruptArtifact(StoreError):
    """An artifact failed integrity verification.

    ``transient`` marks states a concurrent writer passes through
    (payload published, sidecar not yet) which only count as damage
    once they are older than :data:`TORN_GRACE_S`.
    """

    def __init__(self, message: str, transient: bool = False):
        super().__init__(message)
        self.transient = transient


class StoreUnavailable(StoreError):
    """The store's disk is full, read-only or permission-denied."""


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``benchmarks/.cache`` in the
    repository the package is installed from."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(__file__).resolve().parents[3] / "benchmarks" / ".cache"


def fingerprint(payload: dict) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload`` (with the
    pipeline version stamp mixed in)."""
    record = dict(payload)
    record["pipeline_version"] = PIPELINE_VERSION
    record["trace_format"] = traceio.FORMAT_VERSION
    canonical = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def addresses_payload(trace_spec: TraceSpec, layout_spec, alignment: int = 16) -> dict:
    """Fingerprint payload for a byte-address stream."""
    return {
        "trace": trace_spec.payload(),
        "layout": list(layout_spec),
        "alignment": alignment,
    }


def profile_payload(address_payload: dict, line_size: int) -> dict:
    """Fingerprint payload for a stack-distance profile."""
    return {"addresses": address_payload, "line_size": line_size}


def set_profile_payload(address_payload: dict, line_size: int,
                        n_sets: int) -> dict:
    """Fingerprint payload for a per-set stack-distance profile."""
    return {"addresses": address_payload, "line_size": line_size,
            "n_sets": n_sets}


def _replace(source: str, destination) -> None:
    """Publish step of an atomic write.  A module-level indirection so
    fault-injection tests can simulate a writer killed (or a disk
    filling up) between payload write and publish."""
    os.replace(source, destination)


def _discard_temp(temp_name: str) -> None:
    """Cleanup step of a failed atomic write; also an indirection so a
    simulated kill can leave realistic ``*.tmp*`` litter behind."""
    if os.path.exists(temp_name):
        os.unlink(temp_name)


def _translate_os_error(fault: OSError) -> None:
    """Re-raise disk-shaped OS errors as :class:`StoreUnavailable`."""
    if fault.errno in _UNAVAILABLE_ERRNOS:
        raise StoreUnavailable(str(fault)) from fault
    raise fault


def _atomic_write(path: Path, write) -> None:
    """Call ``write(temp_path)`` then atomically move into place.

    The temporary name keeps the real extension last so numpy's savers
    (which append ``.npy``/``.npz`` to unrecognized names) write to the
    exact path being renamed.  OS errors that mean a broken disk are
    raised as :class:`StoreUnavailable`.
    """
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(dir=path.parent,
                                                 suffix=".tmp" + path.suffix)
        os.close(descriptor)
    except OSError as fault:
        _translate_os_error(fault)
    try:
        write(temp_name)
        _replace(temp_name, path)
    except BaseException as fault:
        _discard_temp(temp_name)
        if isinstance(fault, OSError):
            _translate_os_error(fault)
        raise


def _file_digest(path: Path) -> str:
    """SHA-256 of a file's bytes (:func:`hashlib.file_digest` on
    Python >= 3.11, streamed 1 MiB blocks otherwise)."""
    return tiers.file_digest(path)


def _cached_digest(path: Path) -> str:
    """SHA-256 of a file's bytes through the process-wide verify-once
    cache: an unchanged file (same size/mtime_ns/inode) is hashed at
    most once per process."""
    return tiers.digest_cache().digest(path)


def _object_nbytes(value) -> int:
    """Rough deserialized footprint of an artifact for the T0 byte
    budget: its numpy array fields plus a small fixed overhead."""
    total = 256
    try:
        fields = vars(value).values()
    except TypeError:
        return total
    for field in fields:
        if isinstance(field, np.ndarray):
            total += field.nbytes
    return total


def load_part_block(root, name: str, index: int) -> FragmentBlock:
    """Deserialize one chunked-trace part file into a
    :class:`~repro.pipeline.trace.FragmentBlock` -- the loader shared
    by :class:`ChunkedRenderReader` and the pipelined resume fold
    (which works from range-record envelopes instead of a sidecar)."""
    trace = traceio.load_trace(str(Path(root) / "traces" / name))
    return FragmentBlock(
        texture_id=trace.texture_id, level=trace.level,
        tu=trace.tu, tv=trace.tv,
        tu_raw=trace.tu_raw, tv_raw=trace.tv_raw,
        kind=trace.kind, n_fragments=trace.n_fragments,
        x=trace.x, y=trace.y, index=index)


def _is_stale(path: Path, grace_s: float = TORN_GRACE_S) -> bool:
    """Whether ``path`` is old enough that no live writer can still be
    mid-publish around it."""
    try:
        return time.time() - path.stat().st_mtime >= grace_s
    except OSError:
        return True  # vanished: nothing left to protect


class ArtifactStore:
    """Content-addressed cache of pipeline intermediates on disk.

    Loads verify the integrity envelope and quarantine damage; saves
    are atomic and, when the disk itself fails, demote the store to a
    warn-once no-op (readers keep working) rather than raising
    mid-experiment.
    """

    def __init__(self, root=None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self._demoted = False
        self._demotion_reason: Optional[str] = None
        #: Human-readable degradation log (demotions, quarantines) so
        #: CLI summaries can surface what a run survived instead of
        #: burying it in RuntimeWarnings.  Bounded; newest last.
        self.recovery_events: list = []

    def _note_recovery(self, event: str) -> None:
        if len(self.recovery_events) < 100:
            self.recovery_events.append(event)

    def _path(self, kind: str, digest: str, suffix: str) -> Path:
        return self.root / kind / (digest + suffix)

    # -- process tiers (T0 memory, T2 remote) ----------------------------

    def _memory_get(self, kind: str, digest: str):
        """T0 lookup: the deserialized artifact, or ``tiers.MISS``."""
        return tiers.memory_tier().get((str(self.root), kind, digest))

    def _memory_put(self, kind: str, digest: str, suffix: str, value,
                    nbytes: int) -> None:
        """T0 fill/write-through, anchored to the payload file AND the
        ``.json`` sidecar (one file, for chunked artifacts) whose stat
        identities revalidate the entry on every later hit -- so a
        rewrite of either reads as a miss, same as the disk tier."""
        tiers.memory_tier().put((str(self.root), kind, digest),
                                (self._path(kind, digest, suffix),
                                 self._path(kind, digest, ".json")),
                                value, nbytes)

    def _remote(self) -> Optional[tiers.RemoteTier]:
        """The configured T2 (re-read from the environment, so tests
        and benchmark subprocesses can flip it per run)."""
        return tiers.remote_tier()

    def _fetch_remote(self, kind: str, digest: str, suffix: str) -> bool:
        """Read-through: copy a remote artifact (payload or chunked
        parts, then the sidecar) into the local tier.  The caller
        re-runs the normal local verification afterwards, so corrupt
        remote bytes quarantine locally and read as a miss."""
        remote = self._remote()
        if remote is None or self._demoted:
            return False
        sidecar_name = digest + ".json"
        try:
            meta = json.loads(
                (remote.root / kind / sidecar_name).read_text())
        except (OSError, ValueError):
            return False
        if isinstance(meta, dict) and isinstance(meta.get("parts"), list):
            names = [entry.get("name") for entry in meta["parts"]
                     if isinstance(entry, dict)]
            if not all(isinstance(name, str) and os.sep not in name
                       and name.startswith(digest) for name in names):
                return False
        else:
            names = [digest + suffix]
        local_dir = self.root / kind
        for name in names:
            if not remote.fetch(kind, name, local_dir):
                return False
        if not remote.fetch(kind, sidecar_name, local_dir):
            return False
        self._note_recovery(
            f"fetched {kind}/{digest[:12]}… from the remote tier")
        return True

    def _publish_remote(self, kind: str, digest: str, suffix: str) -> None:
        """Write-back: best-effort copy of a locally published
        artifact (payload before sidecar) up to T2."""
        remote = self._remote()
        if remote is None:
            return
        remote.publish(kind, [self._path(kind, digest, suffix),
                              self._path(kind, digest, ".json")])

    # -- degraded mode ---------------------------------------------------

    @property
    def available(self) -> bool:
        """False once the store has demoted itself to read-only."""
        return not self._demoted

    def _demote(self, fault: StoreUnavailable) -> None:
        self._demoted = True
        self._demotion_reason = str(fault)
        self._note_recovery(f"store demoted to in-memory mode: {fault}")
        warnings.warn(
            f"artifact store at {self.root} is unavailable "
            f"({fault}); continuing without persistence -- results are "
            "kept in-memory only for this process",
            RuntimeWarning, stacklevel=4)

    def _guarded_write(self, publish) -> bool:
        """Run ``publish()``; on a disk-shaped failure demote the store
        (warn once) instead of propagating.  Returns True on success."""
        if self._demoted:
            return False
        try:
            publish()
            return True
        except StoreUnavailable as fault:
            self._demote(fault)
            return False

    # -- integrity envelope ----------------------------------------------

    def _write_sidecar(self, kind: str, digest: str, payload_path: Path,
                       key_payload: dict, extra: Optional[dict] = None) -> None:
        """Publish the ``.json`` sidecar: human-readable key, integrity
        envelope of the just-written payload, and kind-specific meta."""
        digest_value = _file_digest(payload_path)
        # The publisher just hashed the final payload: seed the
        # verify-once cache so the first load costs one stat().
        tiers.digest_cache().record(payload_path, digest_value)
        meta = {
            "key": key_payload,
            "envelope": {
                "kind": kind,
                "digest": digest_value,
                "nbytes": payload_path.stat().st_size,
            },
        }
        if extra:
            meta.update(extra)
        _atomic_write(self._path(kind, digest, ".json"),
                      lambda temp: Path(temp).write_text(json.dumps(meta, indent=1)))

    def _verify_envelope(self, kind: str, path: Path, sidecar: Path) -> dict:
        """Check one artifact's envelope; returns the sidecar meta or
        raises :class:`CorruptArtifact` describing the damage.

        Chunked artifacts (sidecars with a ``parts`` list instead of a
        monolithic ``envelope``) verify every listed part's size and
        digest; the monolithic payload path is not consulted."""
        if not sidecar.exists():
            if not path.exists():
                raise CorruptArtifact("orphaned sidecar (payload missing)",
                                      transient=True)
            raise CorruptArtifact(
                "missing sidecar (legacy artifact or torn write)",
                transient=True)
        try:
            meta = json.loads(sidecar.read_text())
        except (OSError, ValueError) as fault:
            raise CorruptArtifact(f"unreadable sidecar ({fault})") from fault
        if isinstance(meta, dict) and isinstance(meta.get("parts"), list):
            self._verify_parts(kind, meta["parts"])
            return meta
        if not path.exists():
            raise CorruptArtifact("orphaned sidecar (payload missing)",
                                  transient=True)
        envelope = meta.get("envelope") if isinstance(meta, dict) else None
        if not isinstance(envelope, dict):
            raise CorruptArtifact("legacy sidecar (no integrity envelope)")
        try:
            nbytes = path.stat().st_size
        except OSError:
            raise CorruptArtifact("payload vanished during verification",
                                  transient=True)
        if nbytes != envelope.get("nbytes"):
            raise CorruptArtifact(
                f"size mismatch ({nbytes} bytes on disk, "
                f"{envelope.get('nbytes')} recorded -- truncated or torn)")
        if _cached_digest(path) != envelope.get("digest"):
            raise CorruptArtifact(
                "content digest mismatch (bit rot or foreign payload)")
        return meta

    def _verify_parts(self, kind: str, parts: list) -> None:
        """Check every part of a chunked artifact against its recorded
        envelope; raises :class:`CorruptArtifact` on the first defect."""
        for entry in parts:
            name = entry.get("name") if isinstance(entry, dict) else None
            if (not isinstance(name, str) or os.sep in name
                    or ".tmp" in name or not _PART_STEM.match(
                        name[:-len(".npz")] if name.endswith(".npz") else name)):
                raise CorruptArtifact("malformed parts manifest")
            part = self.root / kind / name
            try:
                nbytes = part.stat().st_size
            except OSError:
                raise CorruptArtifact(f"missing part {name}", transient=True)
            if nbytes != entry.get("nbytes"):
                raise CorruptArtifact(
                    f"part {name}: size mismatch ({nbytes} bytes on disk, "
                    f"{entry.get('nbytes')} recorded -- truncated or torn)")
            if _cached_digest(part) != entry.get("digest"):
                raise CorruptArtifact(
                    f"part {name}: content digest mismatch "
                    "(bit rot or foreign payload)")

    def _listed_part_names(self, kind: str, digest: str):
        """Part names the digest's sidecar claims, or ``None`` when
        there is no (readable, chunked) sidecar."""
        try:
            meta = json.loads(self._path(kind, digest, ".json").read_text())
        except (OSError, ValueError):
            return None
        parts = meta.get("parts") if isinstance(meta, dict) else None
        if not isinstance(parts, list):
            return None
        return {entry.get("name") for entry in parts
                if isinstance(entry, dict)}

    def _open_verified(self, kind: str, digest: str, suffix: str):
        """``(path, meta)`` for a verified artifact, or ``None`` on a
        miss.  Damage is quarantined; in-flight writes (younger than
        the grace window) read as a plain miss."""
        path = self._path(kind, digest, suffix)
        sidecar = self._path(kind, digest, ".json")
        if not path.exists() and not sidecar.exists():
            if not self._fetch_remote(kind, digest, suffix):
                return None
        try:
            meta = self._verify_envelope(kind, path, sidecar)
        except CorruptArtifact as fault:
            survivor = path if path.exists() else sidecar
            if fault.transient and not _is_stale(survivor):
                return None  # concurrent writer mid-publish
            self.quarantine(kind, digest, str(fault))
            return None
        return path, meta

    def quarantine(self, kind: str, digest: str, reason: str) -> None:
        """Move an artifact's files to ``quarantine/<kind>/`` alongside
        a ``<digest>.reason.json`` record.  Best-effort: on an
        unwritable store the damage stays in place and keeps reading as
        a miss."""
        self._note_recovery(
            f"quarantined {kind}/{digest[:12]}…: {reason}")
        target_dir = self.root / QUARANTINE_DIR / kind
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            moved = []
            for candidate in sorted((self.root / kind).glob(digest + ".*")):
                if ".tmp" in candidate.name:
                    continue
                tiers.invalidate_path(candidate)
                os.replace(candidate, target_dir / candidate.name)
                moved.append(candidate.name)
            record = {"kind": kind, "digest": digest, "reason": reason,
                      "files": moved, "quarantined_at": time.time()}
            (target_dir / (digest + ".reason.json")).write_text(
                json.dumps(record, indent=1))
        except OSError:
            pass

    # -- single-flight locking -------------------------------------------

    @contextmanager
    def single_flight(self, kind: str, digest: str,
                      timeout: Optional[float] = None):
        """Advisory per-fingerprint lock for miss-path computation.

        Yields True when this process holds the lock.  Yields False --
        and the caller simply computes redundantly, which is always
        correct -- when locking is unavailable (no ``fcntl``, unwritable
        store) or a hung holder did not release within ``timeout``
        (stale-lock takeover; crashed holders release automatically).
        Callers must re-check the store after acquisition: the previous
        holder usually published the artifact.
        """
        if fcntl is None or self._demoted:
            yield False
            return
        lock_path = self.root / LOCKS_DIR / f"{kind}-{digest}.lock"
        try:
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            handle = open(lock_path, "a+")
        except OSError:
            yield False
            return
        acquired = False
        try:
            deadline = time.monotonic() + \
                (LOCK_TIMEOUT_S if timeout is None else timeout)
            while True:
                try:
                    fcntl.flock(handle.fileno(),
                                fcntl.LOCK_EX | fcntl.LOCK_NB)
                    acquired = True
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        break
                    time.sleep(LOCK_POLL_S)
            yield acquired
        finally:
            if acquired:
                try:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                except OSError:
                    pass
            handle.close()

    # -- rendered traces -------------------------------------------------

    def load_render(self, spec: TraceSpec) -> Optional[RenderResult]:
        """The cached render for ``spec``, or ``None`` on a miss.

        Reconstructed results carry the trace and the triangle/fragment
        counters; the framebuffer and per-triangle breakdown are only
        available from a fresh render.
        """
        digest = fingerprint(spec.payload())
        cached = self._memory_get("traces", digest)
        if cached is not tiers.MISS:
            return cached
        checked = self._open_verified("traces", digest, ".npz")
        if checked is None:
            return None
        path, meta = checked
        chunked = isinstance(meta.get("parts"), list)
        try:
            if chunked:
                # Chunked representation: materialize for callers that
                # want the whole trace (streaming consumers iterate
                # open_render_blocks instead and never do this).
                trace = concat_blocks(
                    traceio.load_trace(
                        str(self.root / "traces" / entry["name"]))
                    for entry in meta["parts"])
            else:
                trace = traceio.load_trace(str(path))
            submitted = int(meta["n_triangles_submitted"])
            rasterized = int(meta["n_triangles_rasterized"])
        except (ValueError, OSError, KeyError, TypeError,
                zipfile.BadZipFile) as fault:
            self.quarantine("traces", digest,
                            f"undecodable trace artifact ({fault!r})")
            return None
        result = RenderResult(
            trace=trace,
            framebuffer=None,
            n_fragments=trace.n_fragments,
            n_triangles_submitted=submitted,
            n_triangles_rasterized=rasterized,
        )
        # Chunked artifacts anchor T0 revalidation on the sidecar (the
        # one file whose identity covers the whole part set).
        self._memory_put("traces", digest,
                         ".json" if chunked else ".npz",
                         result, _object_nbytes(trace))
        return result

    def save_render(self, spec: TraceSpec, result: RenderResult) -> Path:
        digest = fingerprint(spec.payload())
        path = self._path("traces", digest, ".npz")

        def publish():
            _atomic_write(path,
                          lambda temp: traceio.save_trace(temp, result.trace))
            self._write_sidecar("traces", digest, path, spec.payload(), {
                "n_triangles_submitted": int(result.n_triangles_submitted),
                "n_triangles_rasterized": int(result.n_triangles_rasterized),
            })
        if self._guarded_write(publish):
            self._publish_remote("traces", digest, ".npz")
        return path

    # -- chunked (streaming) traces --------------------------------------

    def open_render_writer(self, spec: TraceSpec,
                           part_base: int = 0) -> "ChunkedRenderWriter":
        """A :class:`ChunkedRenderWriter` that persists ``spec``'s
        render one :class:`~repro.pipeline.trace.FragmentBlock` at a
        time; peak store-side memory is one block.  ``part_base``
        offsets the part numbering so several writers (one per
        pipelined range) can stream the same trace without colliding;
        the parent renumbers densely before publishing the sidecar."""
        return ChunkedRenderWriter(self, spec, part_base=part_base)

    def publish_chunked_sidecar(self, spec: TraceSpec, parts: list,
                                counters: dict) -> bool:
        """Publish the sidecar that turns already-written part files
        into a complete chunked trace artifact -- the single commit
        point shared by the serial :class:`ChunkedRenderWriter` and
        the pipelined parent assembling parts from several writers.
        ``counters`` must carry ``n_triangles_submitted`` /
        ``n_triangles_rasterized`` (and optionally ``has_positions``);
        access/fragment totals come from the part envelopes."""
        digest = fingerprint(spec.payload())
        meta = {
            "key": spec.payload(),
            "parts": list(parts),
            "n_parts": len(parts),
            "n_accesses": sum(int(entry["n_accesses"]) for entry in parts),
            "n_fragments": sum(int(entry["n_fragments"]) for entry in parts),
            "has_positions": bool(counters.get("has_positions", False)),
            "n_triangles_submitted": int(counters["n_triangles_submitted"]),
            "n_triangles_rasterized": int(counters["n_triangles_rasterized"]),
        }

        def publish():
            _atomic_write(
                self._path("traces", digest, ".json"),
                lambda temp: Path(temp).write_text(json.dumps(meta, indent=1)))
        published = self._guarded_write(publish)
        if published:
            remote = self._remote()
            if remote is not None:
                # Every part before the sidecar: a torn upload can
                # never verify as a complete remote artifact.
                remote.publish("traces", [
                    self.root / "traces" / entry["name"]
                    for entry in meta["parts"]
                ] + [self._path("traces", digest, ".json")])
        return published

    def renumber_parts(self, spec: TraceSpec, parts: list):
        """Rename strided part files (``part_base`` writers) into the
        dense ``.p00000``... sequence the sidecar will list, in the
        given order.  Returns the renamed envelopes, or ``None`` when a
        rename failed (the caller then withholds the sidecar and the
        strided parts age out as orphan litter)."""
        digest = fingerprint(spec.payload())
        renamed = []
        for index, entry in enumerate(parts):
            source = self.root / "traces" / entry["name"]
            target = self._path(
                "traces", digest, f".p{index:0{traceio.PART_DIGITS}d}.npz")
            if source != target:
                try:
                    os.replace(source, target)
                except OSError:
                    return None
            renamed.append({**entry, "name": target.name})
        return renamed

    # -- crash-resume metadata (interrupted pipelined renders) -----------

    def save_stream_plan(self, spec: TraceSpec, plan: dict) -> bool:
        """Record the range plan of a pipelined cold render before the
        first block is dispatched: how the clipped-triangle space was
        cut (``n_ranges``, ``chunk_size``, ``part_stride``).  A later
        run killed mid-render re-reads this to reuse the *same* slicing
        geometry, so surviving parts stay valid verbatim."""
        digest = fingerprint(spec.payload())
        meta = {"key": spec.payload(), **plan}
        return self._guarded_write(lambda: _atomic_write(
            self._path("traces", digest, ".plan.json"),
            lambda temp: Path(temp).write_text(json.dumps(meta, indent=1))))

    def load_stream_plan(self, spec: TraceSpec) -> Optional[dict]:
        try:
            return json.loads(
                self._path("traces", fingerprint(spec.payload()),
                           ".plan.json").read_text())
        except (OSError, ValueError):
            return None

    def save_range_record(self, spec: TraceSpec, index: int,
                          payload: dict) -> bool:
        """Atomically record one completed range of a pipelined render:
        its part envelopes and render totals.  The record is what makes
        the range's strided parts *resumable* -- a future run verifies
        the envelopes and folds the parts warm instead of re-rendering
        the slice."""
        digest = fingerprint(spec.payload())
        return self._guarded_write(lambda: _atomic_write(
            self._path("traces", digest, f".r{int(index):05d}.done.json"),
            lambda temp: Path(temp).write_text(
                json.dumps(payload, indent=1))))

    def load_range_records(self, spec: TraceSpec) -> dict:
        """``{range_index: record}`` for every readable completion
        record of ``spec``'s interrupted render (unverified -- callers
        check the envelopes against the parts on disk)."""
        digest = fingerprint(spec.payload())
        records: dict = {}
        directory = self.root / "traces"
        if not directory.is_dir():
            return records
        for path in sorted(directory.glob(digest + ".r*.done.json")):
            match = _RANGE_RECORD_INDEX.search(path.name)
            if match is None:
                continue
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(record, dict):
                records[int(match.group(1))] = record
        return records

    def discard_range_record(self, spec: TraceSpec, index: int,
                             part_names=()) -> None:
        """Drop one range's stale completion record and (optionally)
        the part files it claimed -- the record failed verification, so
        the range re-renders from scratch."""
        digest = fingerprint(spec.payload())
        candidates = [self._path("traces", digest,
                                 f".r{int(index):05d}.done.json")]
        for name in part_names:
            if isinstance(name, str) and os.sep not in name \
                    and name.startswith(digest):
                candidates.append(self.root / "traces" / name)
        for path in candidates:
            try:
                path.unlink()
            except OSError:
                pass

    def discard_resume_state(self, spec: TraceSpec) -> None:
        """Drop every resume-metadata file of ``spec`` (plan and range
        records) -- called after the assembled artifact publishes, when
        there is nothing left to resume.  Part files are not touched:
        published ones belong to the artifact, unpublished ones age out
        as orphan litter."""
        digest = fingerprint(spec.payload())
        directory = self.root / "traces"
        if not directory.is_dir():
            return
        for path in [directory / (digest + ".plan.json"),
                     *directory.glob(digest + ".r*.done.json")]:
            try:
                path.unlink()
            except OSError:
                pass

    def verify_part_list(self, kind: str, parts: list) -> bool:
        """Whether every part envelope in ``parts`` matches the file on
        disk (size and content digest) -- :meth:`_verify_parts` as a
        predicate, for resume-record validation."""
        try:
            self._verify_parts(kind, parts)
        except CorruptArtifact:
            return False
        return True

    def open_render_blocks(self, spec: TraceSpec):
        """A :class:`ChunkedRenderReader` over ``spec``'s chunked trace
        parts, or ``None`` when the store holds no chunked
        representation (monolithic artifact, miss, or damage -- damage
        is quarantined exactly as :meth:`load_render` would).

        Every part's integrity envelope is verified up front (constant
        memory); parts then deserialize lazily, one block per
        :meth:`ChunkedRenderReader.read_part`."""
        digest = fingerprint(spec.payload())
        checked = self._open_verified("traces", digest, ".npz")
        if checked is None:
            return None
        _, meta = checked
        if not isinstance(meta.get("parts"), list):
            return None
        return ChunkedRenderReader(self, meta)

    # -- byte-address streams --------------------------------------------

    def load_addresses(self, payload: dict) -> Optional[np.ndarray]:
        digest = fingerprint(payload)
        cached = self._memory_get("addresses", digest)
        if cached is not tiers.MISS:
            return cached
        checked = self._open_verified("addresses", digest, ".npy")
        if checked is None:
            return None
        path, _ = checked
        try:
            # A read-only map instead of a copy: every consumer derives
            # new arrays (line reduction, collapses) and never writes
            # back, so warm loads cost page-ins, not a full decompress.
            if tiers.mmap_enabled():
                addresses = np.load(path, mmap_mode="r")
            else:
                addresses = np.load(path)
        except (ValueError, OSError) as fault:
            self.quarantine("addresses", digest,
                            f"undecodable address stream ({fault!r})")
            return None
        self._memory_put("addresses", digest, ".npy", addresses,
                         addresses.nbytes)
        return addresses

    def save_addresses(self, payload: dict, addresses: np.ndarray) -> Path:
        digest = fingerprint(payload)
        path = self._path("addresses", digest, ".npy")

        def publish():
            _atomic_write(path, lambda temp: np.save(temp, addresses))
            self._write_sidecar("addresses", digest, path, payload)
        if self._guarded_write(publish):
            self._memory_put("addresses", digest, ".npy", addresses,
                             addresses.nbytes)
            self._publish_remote("addresses", digest, ".npy")
        return path

    # -- stack-distance profiles -----------------------------------------

    def load_profile(self, payload: dict) -> Optional[DistanceProfile]:
        digest = fingerprint(payload)
        cached = self._memory_get("profiles", digest)
        if cached is not tiers.MISS:
            return cached
        checked = self._open_verified("profiles", digest, ".npz")
        if checked is None:
            return None
        path, _ = checked
        try:
            with np.load(path) as archive:
                counts = archive["counts"]
                cold, duplicate_hits = archive["meta"].tolist()
        except (ValueError, OSError, KeyError,
                zipfile.BadZipFile) as fault:
            self.quarantine("profiles", digest,
                            f"undecodable profile ({fault!r})")
            return None
        profile = DistanceProfile(counts=counts, cold=int(cold),
                                  duplicate_hits=int(duplicate_hits))
        self._memory_put("profiles", digest, ".npz", profile,
                         counts.nbytes + 64)
        return profile

    def save_profile(self, payload: dict, profile: DistanceProfile) -> Path:
        digest = fingerprint(payload)
        path = self._path("profiles", digest, ".npz")

        def write(temp):
            # Stored (uncompressed) npz, like the chunked parts: the
            # envelope digest already guards integrity, and skipping
            # deflate keeps both publish and warm load IO-bound.
            np.savez(
                temp, counts=profile.counts,
                meta=np.array([profile.cold, profile.duplicate_hits],
                              dtype=np.int64))

        def publish():
            _atomic_write(path, write)
            self._write_sidecar("profiles", digest, path, payload)
        if self._guarded_write(publish):
            self._memory_put("profiles", digest, ".npz", profile,
                             profile.counts.nbytes + 64)
            self._publish_remote("profiles", digest, ".npz")
        return path

    # -- per-set stack-distance profiles ---------------------------------

    def load_set_profile(self, payload: dict) -> Optional[SetDistanceProfile]:
        digest = fingerprint(payload)
        cached = self._memory_get("set_profiles", digest)
        if cached is not tiers.MISS:
            return cached
        checked = self._open_verified("set_profiles", digest, ".npz")
        if checked is None:
            return None
        path, _ = checked
        try:
            with np.load(path) as archive:
                counts = archive["counts"]
                line_size, n_sets, cold, duplicate_hits = \
                    archive["meta"].tolist()
        except (ValueError, OSError, KeyError,
                zipfile.BadZipFile) as fault:
            self.quarantine("set_profiles", digest,
                            f"undecodable per-set profile ({fault!r})")
            return None
        profile = SetDistanceProfile(
            line_size=int(line_size), n_sets=int(n_sets), counts=counts,
            cold=int(cold), duplicate_hits=int(duplicate_hits))
        self._memory_put("set_profiles", digest, ".npz", profile,
                         counts.nbytes + 64)
        return profile

    def save_set_profile(self, payload: dict,
                         profile: SetDistanceProfile) -> Path:
        digest = fingerprint(payload)
        path = self._path("set_profiles", digest, ".npz")

        def write(temp):
            # Stored (uncompressed) npz -- see save_profile.
            np.savez(
                temp, counts=profile.counts,
                meta=np.array([profile.line_size, profile.n_sets,
                               profile.cold, profile.duplicate_hits],
                              dtype=np.int64))

        def publish():
            _atomic_write(path, write)
            self._write_sidecar("set_profiles", digest, path, payload)
        if self._guarded_write(publish):
            self._memory_put("set_profiles", digest, ".npz", profile,
                             profile.counts.nbytes + 64)
            self._publish_remote("set_profiles", digest, ".npz")
        return path

    # -- maintenance -----------------------------------------------------

    def _scan_kind(self, kind: str):
        """``(payloads, sidecar_stems, tmp_names, parts, resume)`` for
        one kind, tolerant of files vanishing mid-scan (concurrent
        ``clear()``).  ``parts`` maps each digest to its chunked part
        files on disk (listed or not by any sidecar); ``resume`` maps
        each digest to its crash-resume metadata files (plan and range
        records), which must never be mistaken for artifact sidecars."""
        payloads, sidecars, tmp, parts, resume = {}, set(), [], {}, {}
        directory = self.root / kind
        if not directory.is_dir():
            return payloads, sidecars, tmp, parts, resume
        for entry in sorted(directory.glob("*")):
            try:
                if not entry.is_file():
                    continue
                entry.stat()
            except OSError:
                continue  # deleted between glob and stat: skip
            match = _PART_STEM.match(entry.stem)
            resume_match = _RESUME_STEM.match(entry.stem)
            if ".tmp" in entry.name:
                tmp.append(entry.name)
            elif match is not None and entry.suffix == ".npz":
                parts.setdefault(match.group(1), []).append(entry)
            elif resume_match is not None and entry.suffix == ".json":
                resume.setdefault(resume_match.group(1), []).append(entry)
            elif entry.suffix == ".json":
                sidecars.add(entry.stem)
            else:
                payloads[entry.stem] = entry
        return payloads, sidecars, tmp, parts, resume

    def _resumable_part_names(self, kind: str, resume_paths) -> set:
        """Part names claimed by the readable range records among
        ``resume_paths`` -- name-level only (cheap); deep envelope
        verification happens in :meth:`verify` / at resume time."""
        names = set()
        for path in resume_paths:
            if not path.name.endswith(".done.json"):
                continue
            try:
                record = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            envelopes = record.get("envelopes") \
                if isinstance(record, dict) else None
            if not isinstance(envelopes, list):
                continue
            for entry in envelopes:
                if isinstance(entry, dict) and \
                        isinstance(entry.get("name"), str):
                    names.add(entry["name"])
        return names

    def stats(self) -> dict:
        """Per-kind artifact counts and byte totals -- chunked trace
        parts reported separately -- plus orphaned ``*.tmp*`` litter,
        orphaned part files (parts no sidecar lists, counted as
        litter) and quarantined-file counts."""
        remote = self._remote()
        report = {"root": str(self.root), "kinds": {}, "total_bytes": 0,
                  "total_files": 0, "tmp_files": 0,
                  "part_files": 0, "part_bytes": 0, "orphaned_parts": 0,
                  "resumable_parts": 0,
                  "quarantined": self._count_quarantined(),
                  "memory": tiers.memory_tier().stats(),
                  "digest_cache": tiers.digest_cache().stats(),
                  "remote": {
                      "configured": remote is not None,
                      "root": str(remote.root) if remote else None,
                      "reachable": remote.reachable() if remote else False,
                  }}
        for kind in KINDS:
            payloads, sidecars, tmp_names, parts, resume = \
                self._scan_kind(kind)
            files = nbytes = 0
            for entry in list(payloads.values()) + [
                    self._path(kind, stem, ".json") for stem in sidecars]:
                try:
                    size = entry.stat().st_size
                except OSError:
                    continue  # vanished between glob and stat
                files += 1
                nbytes += size
            part_files = part_bytes = orphaned = resumable = 0
            for digest, entries in parts.items():
                listed = self._listed_part_names(kind, digest)
                covered = (self._resumable_part_names(
                    kind, resume.get(digest, ())) if digest in resume
                    else set())
                for part in entries:
                    try:
                        size = part.stat().st_size
                    except OSError:
                        continue
                    part_files += 1
                    part_bytes += size
                    if listed is not None and part.name in listed:
                        continue
                    if part.name in covered:
                        resumable += 1
                    else:
                        orphaned += 1
            report["kinds"][kind] = {
                "files": files, "bytes": nbytes, "tmp": len(tmp_names),
                "parts": part_files, "part_bytes": part_bytes,
                "orphaned_parts": orphaned, "resumable_parts": resumable}
            report["total_files"] += files + part_files
            report["total_bytes"] += nbytes + part_bytes
            report["tmp_files"] += len(tmp_names)
            report["part_files"] += part_files
            report["part_bytes"] += part_bytes
            report["orphaned_parts"] += orphaned
            report["resumable_parts"] += resumable
        return report

    def _count_quarantined(self) -> int:
        quarantine_root = self.root / QUARANTINE_DIR
        if not quarantine_root.is_dir():
            return 0
        count = 0
        for entry in quarantine_root.glob("*/*"):
            try:
                if entry.is_file() and not entry.name.endswith(".reason.json"):
                    count += 1
            except OSError:
                continue
        return count

    def verify(self) -> dict:
        """Scan every artifact's integrity envelope without modifying
        anything.  ``bad`` lists verifiable damage; ``pending`` counts
        in-flight (younger than the grace window) torn states; ``tmp``
        lists temp-file litter; ``orphaned_parts`` lists stale part
        files no sidecar claims (litter, not corruption -- a streaming
        writer died before publishing its sidecar); ``resumable`` lists
        stale unlisted parts that an interrupted pipelined render's
        completion records cover (envelope-verified) -- the next cold
        fold resumes from them, so they are neither damage nor litter
        and :meth:`repair` keeps them."""
        remote = self._remote()
        report = {"root": str(self.root), "kinds": {},
                  "ok": 0, "bad": 0, "pending": 0, "tmp": 0,
                  "orphaned_parts": 0, "resumable": 0,
                  "remote": {
                      "configured": remote is not None,
                      "root": str(remote.root) if remote else None,
                      "reachable": remote.reachable() if remote else False,
                  }}
        for kind in KINDS:
            payloads, sidecars, tmp_names, parts, resume = \
                self._scan_kind(kind)
            entry = {"ok": 0, "bad": [], "pending": 0, "tmp": tmp_names,
                     "orphaned_parts": [], "resumable": [],
                     "stale_resume": []}
            for stem in sorted(set(payloads) | sidecars):
                path = payloads.get(stem, self._path(kind, stem, ".npz"))
                sidecar = self._path(kind, stem, ".json")
                try:
                    self._verify_envelope(kind, path, sidecar)
                except CorruptArtifact as fault:
                    survivor = path if path.exists() else sidecar
                    if fault.transient and not _is_stale(survivor):
                        entry["pending"] += 1
                    else:
                        name = path.name if stem in payloads else sidecar.name
                        entry["bad"].append({"file": name,
                                             "reason": str(fault)})
                else:
                    entry["ok"] += 1
            verified_resumable: dict = {}
            for digest, meta_paths in resume.items():
                covered: set = set()
                for path in meta_paths:
                    if not path.name.endswith(".done.json"):
                        continue
                    try:
                        record = json.loads(path.read_text())
                    except (OSError, ValueError):
                        continue
                    envelopes = record.get("envelopes") \
                        if isinstance(record, dict) else None
                    if isinstance(envelopes, list) \
                            and self.verify_part_list(kind, envelopes):
                        covered.update(
                            item["name"] for item in envelopes
                            if isinstance(item, dict)
                            and isinstance(item.get("name"), str))
                verified_resumable[digest] = covered
                if digest in sidecars:
                    # The artifact published; leftover resume metadata
                    # is stale litter for repair() to purge.
                    entry["stale_resume"].extend(
                        path.name for path in meta_paths
                        if _is_stale(path))
            for digest in sorted(parts):
                listed = self._listed_part_names(kind, digest) or set()
                covered = verified_resumable.get(digest, set())
                for part in parts[digest]:
                    if part.name in listed:
                        continue  # accounted for by its artifact above
                    if not _is_stale(part):
                        entry["pending"] += 1
                    elif part.name in covered:
                        entry["resumable"].append(part.name)
                    else:
                        entry["orphaned_parts"].append(part.name)
            report["kinds"][kind] = entry
            report["ok"] += entry["ok"]
            report["bad"] += len(entry["bad"])
            report["pending"] += entry["pending"]
            report["tmp"] += len(entry["tmp"])
            report["orphaned_parts"] += len(entry["orphaned_parts"])
            report["resumable"] += len(entry["resumable"])
        report["clean"] = report["bad"] == 0
        return report

    def repair(self) -> dict:
        """Self-heal the store: quarantine every artifact that fails
        verification, purge stale ``*.tmp*`` litter left by killed
        writers and stale orphaned part files left by killed streaming
        writers.  In-flight writes (within the grace window) and
        resumable parts of interrupted pipelined renders -- along with
        the resume metadata that covers them -- are left alone; resume
        metadata is only purged once its artifact has published."""
        scan = self.verify()
        quarantined, purged, purged_parts, purged_resume = [], [], [], []
        for kind, entry in scan["kinds"].items():
            for problem in entry["bad"]:
                digest = problem["file"].split(".", 1)[0]
                self.quarantine(kind, digest, problem["reason"])
                quarantined.append(f"{kind}/{problem['file']}")
            for name in entry["tmp"]:
                litter = self.root / kind / name
                if not _is_stale(litter):
                    continue  # a live writer may still publish it
                try:
                    litter.unlink()
                except OSError:
                    continue
                purged.append(f"{kind}/{name}")
            for name in entry["orphaned_parts"]:
                # verify() already held these to the staleness window.
                try:
                    (self.root / kind / name).unlink()
                except OSError:
                    continue
                purged_parts.append(f"{kind}/{name}")
            for name in entry["stale_resume"]:
                try:
                    (self.root / kind / name).unlink()
                except OSError:
                    continue
                purged_resume.append(f"{kind}/{name}")
        return {"root": str(self.root), "quarantined": quarantined,
                "purged_tmp": purged, "purged_parts": purged_parts,
                "purged_resume": purged_resume,
                "kept_resumable": scan["resumable"]}

    def clear(self, tier: Optional[str] = None) -> dict:
        """Delete artifacts; returns the pre-clear :meth:`stats`.

        ``tier=None`` clears everything: the disk tier (including
        quarantine, locks and temp litter) and this store's entries in
        the process tiers.  ``tier="disk"`` touches only the on-disk
        files; ``tier="memory"`` only drops the in-process T0 and
        digest-cache entries, leaving disk intact."""
        if tier not in (None, "memory", "disk"):
            raise ValueError(f"unknown tier {tier!r} "
                             "(expected 'memory' or 'disk')")
        report = self.stats()
        if tier in (None, "disk"):
            for kind in KINDS + (QUARANTINE_DIR, LOCKS_DIR):
                shutil.rmtree(self.root / kind, ignore_errors=True)
        # Cleared disk entries could only ever read as stat-mismatch
        # misses anyway; dropping them keeps the byte budget honest.
        tiers.memory_tier().invalidate_store(str(self.root))
        tiers.digest_cache().invalidate_under(self.root)
        return report


class ChunkedRenderWriter:
    """Stream a render into the store as checksummed part files.

    Feed :meth:`append` each :class:`~repro.pipeline.trace.FragmentBlock`
    as it is produced, then :meth:`finish` with the render counters;
    only then is the sidecar -- the thing that makes the parts an
    artifact -- published.  A writer killed mid-stream leaves orphaned
    parts, which read as a plain miss and are purged by
    :meth:`ArtifactStore.repair` once stale.  On a demoted store every
    method is a no-op and :meth:`finish` returns ``False``; if any
    single part fails to publish, the sidecar is withheld so a partial
    trace can never verify as complete.
    """

    def __init__(self, store: ArtifactStore, spec: TraceSpec,
                 part_base: int = 0):
        self._store = store
        self._spec = spec
        self._payload = spec.payload()
        self._digest = fingerprint(self._payload)
        self._part_base = int(part_base)
        self._parts = []
        self._n_accesses = 0
        self._n_fragments = 0
        self._has_positions = False
        self._complete = True
        self._finished = False

    @property
    def part_envelopes(self) -> list:
        """Integrity envelopes of the parts published so far."""
        return list(self._parts)

    def append(self, block) -> None:
        """Atomically publish one block as the next part file."""
        if self._finished:
            raise StoreError("ChunkedRenderWriter already finished")
        store = self._store
        index = self._part_base + len(self._parts)
        path = store._path(
            "traces", self._digest,
            f".p{index:0{traceio.PART_DIGITS}d}.npz")

        def publish():
            # Stored (uncompressed) npz: the part's integrity lives in
            # its envelope digest, and skipping deflate roughly triples
            # cold streamed throughput on trace-bound scenes.
            _atomic_write(path, lambda temp: traceio.save_trace(
                temp, block, compress=False))
        if not store._guarded_write(publish):
            self._complete = False
            return
        try:
            digest_value = _file_digest(path)
            # Hashed at publish: the writer's own warm folds (and any
            # reader in this process) verify this part with a stat().
            tiers.digest_cache().record(path, digest_value)
            envelope = {
                "name": path.name,
                "digest": digest_value,
                "nbytes": path.stat().st_size,
                "n_accesses": int(block.n_accesses),
                "n_fragments": int(block.n_fragments),
            }
        except OSError:
            self._complete = False
            return
        self._parts.append(envelope)
        self._n_accesses += int(block.n_accesses)
        self._n_fragments += int(block.n_fragments)
        self._has_positions = bool(block.has_positions)

    def finish(self, counters: dict) -> bool:
        """Publish the sidecar listing every part.  ``counters`` must
        carry ``n_triangles_submitted``/``n_triangles_rasterized`` (the
        ``totals`` dict filled by
        :func:`~repro.pipeline.renderer.render_trace_blocks` works).
        Returns whether the artifact is now complete on disk."""
        parts, complete, has_positions = self.finish_parts()
        if not complete:
            return False
        return self._store.publish_chunked_sidecar(
            self._spec, parts, {**counters, "has_positions": has_positions})

    def finish_parts(self) -> tuple:
        """Close the writer WITHOUT publishing a sidecar; returns
        ``(envelopes, complete, has_positions)``.  This is the
        pipelined-range half of :meth:`finish`: each worker's writer
        hands its envelopes to the parent, which assembles every
        range's parts in order and commits the sidecar itself -- so a
        partial fleet can never publish a partial trace."""
        if self._finished:
            raise StoreError("ChunkedRenderWriter already finished")
        self._finished = True
        complete = self._complete and not self._store._demoted
        return list(self._parts), complete, self._has_positions


class ChunkedRenderReader:
    """Iterate a chunked trace artifact one
    :class:`~repro.pipeline.trace.FragmentBlock` at a time.

    Obtained from :meth:`ArtifactStore.open_render_blocks`, which has
    already verified every part's integrity envelope; reading holds
    one part in memory.  Carries the render counters the monolithic
    sidecar would."""

    def __init__(self, store: ArtifactStore, meta: dict):
        self._root = store.root
        self.meta = meta
        self.parts = meta["parts"]
        self._pending_digest = None

    @classmethod
    def pending(cls, store: ArtifactStore,
                spec: TraceSpec) -> "ChunkedRenderReader":
        """A reader over a chunked trace that is still being written:
        there is no sidecar yet, so parts are readiness-polled
        (:meth:`poll_part`) as their producers publish them.  Totals
        are unknown until the producers report; only per-part access
        is meaningful on a pending reader."""
        reader = cls(store, {"parts": [], "n_accesses": 0,
                             "n_fragments": 0, "key": spec.payload()})
        reader._pending_digest = fingerprint(spec.payload())
        return reader

    def poll_part(self, part_index: int):
        """The part at absolute index ``part_index`` if its producer
        has already published it, else ``None`` -- the readiness
        protocol for folding a trace while it is still being written.
        Parts are committed with an atomic rename, so existence implies
        completeness; no lock, size or digest handshake is needed."""
        if self._pending_digest is None:
            raise StoreError("poll_part needs a pending() reader")
        name = (f"{self._pending_digest}"
                f".p{int(part_index):0{traceio.PART_DIGITS}d}.npz")
        path = self._root / "traces" / name
        if not path.exists():
            return None
        return self._load_block(name, int(part_index))

    @property
    def n_parts(self) -> int:
        return len(self.parts)

    @property
    def n_accesses(self) -> int:
        return int(self.meta["n_accesses"])

    @property
    def n_fragments(self) -> int:
        return int(self.meta["n_fragments"])

    @property
    def n_triangles_submitted(self) -> int:
        return int(self.meta["n_triangles_submitted"])

    @property
    def n_triangles_rasterized(self) -> int:
        return int(self.meta["n_triangles_rasterized"])

    def read_part(self, index: int) -> FragmentBlock:
        return self._load_block(self.parts[index]["name"], index)

    def _load_block(self, name: str, index: int) -> FragmentBlock:
        return load_part_block(self._root, name, index)

    def __iter__(self):
        for index in range(self.n_parts):
            yield self.read_part(index)

    def __len__(self) -> int:
        return self.n_parts

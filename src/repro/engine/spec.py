"""Declarative experiment specifications.

The paper's studies are all grids: scenes x rasterization orders x
memory representations x cache configurations.  Before this layer every
consumer (the benchmark harnesses, the CLI, the examples) walked its
own ad-hoc loops and re-rendered shared stages.  An
:class:`ExperimentSpec` names the grid once; the engine runner then
plans the unique renders, address streams and distance profiles the
grid needs and reuses each of them across every cell.

Specs are hashable value objects built from plain tuples so they can
key both the in-memory memos and the on-disk artifact store:

* an *order spec* is a tuple such as ``("horizontal",)``,
  ``("tiled", 8)``, ``("tiled", 8, "col", "col")`` or
  ``("hilbert", 11)``;
* a *layout spec* is a tuple such as ``("nonblocked",)``,
  ``("blocked", 8)``, ``("padded", 8, 4)``,
  ``("blocked6d", 8, 32768)`` or ``("williams",)``.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from ..core.sweep import PAPER_CACHE_SIZES
from ..pipeline.renderer import check_raster
from ..raster.order import TraversalOrder, make_order
from ..scenes import ALL_SCENES
from ..texture.layout import TextureLayout, make_layout


def order_from_spec(spec) -> TraversalOrder:
    """Build a :class:`TraversalOrder` from a hashable spec tuple."""
    name = spec[0]
    if name == "tiled":
        kwargs = {"tile_w": spec[1]}
        if len(spec) > 2:
            kwargs["within"] = spec[2]
            kwargs["across"] = spec[3]
        return make_order("tiled", **kwargs)
    if name == "hilbert":
        return make_order("hilbert", order_bits=spec[1])
    return make_order(name)


def layout_from_spec(spec) -> TextureLayout:
    """Build a :class:`TextureLayout` from a hashable spec tuple."""
    name = spec[0]
    if name == "blocked":
        return make_layout("blocked", block_w=spec[1])
    if name == "padded":
        return make_layout("padded", block_w=spec[1], pad_blocks=spec[2])
    if name == "blocked6d":
        return make_layout("blocked6d", block_w=spec[1], superblock_nbytes=spec[2])
    return make_layout(name)


def paper_order_spec(scene: str) -> tuple:
    """The rasterization direction the paper reports for ``scene``."""
    return (ALL_SCENES[scene].paper_rasterization,)


def resolve_order_spec(scene: str, order) -> tuple:
    """Normalize an order spec; ``"paper"`` resolves per scene."""
    if order is None or order == "paper" or order == ("paper",):
        return paper_order_spec(scene)
    return tuple(order)


@dataclass(frozen=True)
class TraceSpec:
    """Everything that determines one rendered texel trace.

    Two specs that compare equal produce bit-identical traces, so the
    spec (plus the pipeline version stamp) is the artifact-store
    fingerprint for the render stage.  ``raster`` selects the batched
    or reference rasterization *implementation* -- both produce
    bit-identical traces, so it is excluded from the fingerprint and
    warm artifacts stay valid whichever path rendered them.
    """

    scene: str
    scale: float
    order: tuple
    time: float = 0.0
    max_anisotropy: int = 1
    lod_bias: float = 0.0
    use_mipmaps: bool = True
    record_positions: bool = False
    raster: str = "batched"

    #: Fields that never influence the rendered output.
    _IMPLEMENTATION_FIELDS = ("raster",)

    def __post_init__(self):
        if self.scene not in ALL_SCENES:
            raise ValueError(f"unknown scene {self.scene!r}")
        check_raster(self.raster)
        object.__setattr__(self, "order",
                           resolve_order_spec(self.scene, self.order))

    def payload(self) -> dict:
        """JSON-serializable fingerprint payload."""
        record = {f.name: getattr(self, f.name) for f in fields(self)
                  if f.name not in self._IMPLEMENTATION_FIELDS}
        record["order"] = list(self.order)
        return record


@dataclass(frozen=True)
class ExperimentSpec:
    """A sweep grid: scenes x orders x layouts x cache configurations.

    ``orders`` may contain the string ``"paper"`` (or the tuple
    ``("paper",)``), which resolves per scene to the direction the
    paper reports.  ``assocs`` entries follow
    :class:`~repro.core.cache.CacheConfig`: an integer number of ways,
    or ``None`` for fully associative (swept with one stack-distance
    pass per line size instead of one simulation per cache size).
    """

    scenes: tuple
    layouts: tuple
    orders: tuple = ("paper",)
    cache_sizes: tuple = PAPER_CACHE_SIZES
    line_sizes: tuple = (64,)
    assocs: tuple = (None,)
    scale: float = 0.25
    time: float = 0.0
    max_anisotropy: int = 1
    lod_bias: float = 0.0
    use_mipmaps: bool = True
    raster: str = "batched"

    def __post_init__(self):
        for attribute in ("scenes", "layouts", "orders", "cache_sizes",
                          "line_sizes", "assocs"):
            value = getattr(self, attribute)
            coerced = tuple(value) if not isinstance(value, tuple) else value
            if not coerced:
                raise ValueError(f"{attribute} must be non-empty")
            object.__setattr__(self, attribute, coerced)
        for scene in self.scenes:
            if scene not in ALL_SCENES:
                raise ValueError(f"unknown scene {scene!r}")
        for layout in self.layouts:
            layout_from_spec(layout)  # validates eagerly
        check_raster(self.raster)

    def trace_spec(self, scene: str, order) -> TraceSpec:
        return TraceSpec(
            scene=scene, scale=self.scale,
            order=resolve_order_spec(scene, order), time=self.time,
            max_anisotropy=self.max_anisotropy, lod_bias=self.lod_bias,
            use_mipmaps=self.use_mipmaps, raster=self.raster,
        )

    def trace_specs(self) -> list:
        """The deduplicated renders the grid needs (one per
        scene/order; ``"paper"`` aliases collapse onto their
        resolution)."""
        unique = []
        for scene in self.scenes:
            for order in self.orders:
                spec = self.trace_spec(scene, order)
                if spec not in unique:
                    unique.append(spec)
        return unique

    def stream_specs(self) -> list:
        """Deduplicated ``(trace_spec, layout_spec)`` pairs."""
        return [(trace_spec, layout)
                for trace_spec in self.trace_specs()
                for layout in self.layouts]

    @property
    def n_cells(self) -> int:
        return (len(self.stream_specs()) * len(self.line_sizes)
                * len(self.cache_sizes) * len(self.assocs))

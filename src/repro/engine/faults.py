"""Deterministic chaos harness: the ``REPRO_FAULT_PLAN`` grammar.

The self-healing tests need faults that strike at an exact, repeatable
point -- "kill worker rendering range 1 at its second block", not "kill
something eventually".  ``REPRO_FAULT_PLAN`` is a semicolon-separated
list of directives::

    kill-worker:range=1,block=2,scope=once
    wedge-worker:range=0,block=1,seconds=3600
    drop-shm:range=0,block=1,scope=once
    enospc:range=1,block=0,scope=once
    kill-run:after=1,mode=raise

Each action has a fixed injection point in the pipelined engine
(:data:`ACTION_POINTS`); the engine calls :func:`maybe_fault` at those
points with its live context (``range=...``, ``block=...``) and a
directive fires when every matcher equals the context.  Reserved keys
(``scope``, ``mode``, ``seconds``) parameterize the fault instead of
matching.

``scope=once`` fires a directive exactly once across *every* process
of the run: firing requires atomically claiming a marker file under
``REPRO_FAULT_DIR`` (``O_CREAT | O_EXCL``, the same cross-process
claim as ``REPRO_FAULT_WARM=once:<path>``).  The default scope,
``always``, refires on every match -- how a test deterministically
exhausts a retry budget.

Actions
-------
``kill-worker``
    ``os._exit(1)`` in the rendering worker -- a hard crash with no
    cleanup, like the OOM killer.
``wedge-worker``
    The worker sleeps ``seconds`` (default forever, by supervision
    standards) without producing events -- a livelocked worker whose
    heartbeat goes stale.
``drop-shm``
    The just-packed shared-memory segment is unlinked before its
    descriptor ships -- the consumer's mapping fails like a reaped
    ``/dev/shm`` entry.
``enospc``
    The worker's store demotes as if the disk filled mid-part; the
    range finishes incomplete and must be retried on a fresh store.
``kill-run``
    The *parent* crashes after ``after`` ranges completed:
    ``mode=raise`` raises :class:`InjectedCrash` (a ``BaseException``,
    so no ``except Exception`` can absorb it), ``mode=exit`` calls
    ``os._exit(42)`` -- the SIGKILL-equivalent for crash-resume tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Tuple

#: Injection point of each action; :func:`maybe_fault` only considers
#: directives whose action belongs to the point it is called from.
ACTION_POINTS = {
    "kill-worker": "render-block",
    "wedge-worker": "render-block",
    "enospc": "render-block",
    "drop-shm": "ship-block",
    "kill-run": "range-complete",
}

#: Directive keys that parameterize the fault rather than match.
_PARAM_KEYS = frozenset({"scope", "mode", "seconds"})


class InjectedCrash(BaseException):
    """An injected parent-process crash (``kill-run:mode=raise``).

    A ``BaseException`` so production ``except Exception`` blocks can
    never absorb it, mirroring how SIGKILL preempts cleanup."""


@dataclass(frozen=True)
class Fault:
    """One parsed, armed fault directive."""

    action: str
    matchers: Tuple[tuple, ...]
    params: Tuple[tuple, ...]
    token: str  # stable marker-file stem for scope=once claims

    def param(self, key: str, default=None):
        for name, value in self.params:
            if name == key:
                return value
        return default

    @property
    def scope(self) -> str:
        return str(self.param("scope", "always"))


def _coerce(value: str):
    try:
        return int(value)
    except ValueError:
        return value


def _parse_plan(text: str) -> tuple:
    faults = []
    for position, chunk in enumerate(text.split(";")):
        chunk = chunk.strip()
        if not chunk:
            continue
        action, _, spec = chunk.partition(":")
        action = action.strip()
        if action not in ACTION_POINTS:
            raise ValueError(
                f"REPRO_FAULT_PLAN: unknown action {action!r} "
                f"(known: {', '.join(sorted(ACTION_POINTS))})")
        matchers, params = [], []
        for field in filter(None, (f.strip() for f in spec.split(","))):
            key, eq, value = field.partition("=")
            if not eq:
                raise ValueError(
                    f"REPRO_FAULT_PLAN: malformed field {field!r} in "
                    f"{chunk!r} (want key=value)")
            key = key.strip()
            target = params if key in _PARAM_KEYS else matchers
            target.append((key, _coerce(value.strip())))
        faults.append(Fault(
            action=action, matchers=tuple(matchers), params=tuple(params),
            token=f"fault-{position}-{action}"))
    return tuple(faults)


#: Parse memo keyed by the plan text, so workers re-reading the env on
#: every block pay one parse per plan.
_CACHE: tuple = ("", ())


def active_faults(point: str) -> tuple:
    """The armed faults whose action injects at ``point``."""
    global _CACHE
    text = os.environ.get("REPRO_FAULT_PLAN", "")
    if not text:
        return ()
    if _CACHE[0] != text:
        _CACHE = (text, _parse_plan(text))
    return tuple(fault for fault in _CACHE[1]
                 if ACTION_POINTS[fault.action] == point)


def _claim_once(fault: Fault) -> bool:
    """Atomically claim a ``scope=once`` directive across processes."""
    directory = os.environ.get("REPRO_FAULT_DIR")
    if not directory:
        raise ValueError(
            "REPRO_FAULT_PLAN: scope=once needs REPRO_FAULT_DIR "
            "(a scratch directory shared by every process of the run)")
    marker = os.path.join(directory, fault.token + ".fired")
    try:
        os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    return True


def maybe_fault(point: str, **context) -> Optional[Fault]:
    """The first armed fault at ``point`` whose matchers all equal
    ``context``, having claimed it if ``scope=once``; ``None`` when
    nothing fires.  The caller executes the action -- this module only
    decides *whether*."""
    for fault in active_faults(point):
        if all(context.get(key) == value for key, value in fault.matchers):
            if fault.scope == "once" and not _claim_once(fault):
                continue
            return fault
    return None

"""The shared experiment engine.

One :class:`Engine` sits between every consumer (benchmark harnesses,
the CLI, the examples) and the pipeline.  It deduplicates shared
stages -- one render per (scene, order, filtering), one byte-address
stream per layout, one collapsed :class:`~repro.core.sweep.LineStream`
and stack-distance profile per line size -- first against in-memory
memos, then against the on-disk :class:`~repro.engine.artifacts.ArtifactStore`,
so warm processes perform zero renders.

:func:`run_experiment` executes a declarative
:class:`~repro.engine.spec.ExperimentSpec` grid through one engine,
optionally fanning the expensive render/trace stage out across
``multiprocessing`` workers that warm the shared store in parallel.

Fault tolerance
---------------
Store misses compute under the store's per-fingerprint single-flight
lock, so N racing processes produce one render per fingerprint.  The
parallel warm-up submits tasks individually, captures worker
exceptions, retries each failed task with exponential backoff and
jitter, and finally falls back to in-process execution; the outcome is
summarized in a :class:`WarmReport` on the :class:`ExperimentResult`
instead of a first worker crash killing the whole run.  An unwritable
store demotes itself (see :mod:`repro.engine.artifacts`) and the
engine transparently continues on its in-memory memos.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.cache import CacheConfig, CacheStats, simulate
from ..core.kernels import SetDistanceProfile, check_kernel
from ..core.stackdist import DistanceProfile, miss_rate_curve
from ..core.sweep import TraceStreams
from ..pipeline.renderer import Renderer, RenderResult
from ..scenes import ALL_SCENES
from ..texture.memory import place_textures
from .artifacts import (
    ArtifactStore,
    addresses_payload,
    fingerprint,
    profile_payload,
    set_profile_payload,
)
from .spec import ExperimentSpec, TraceSpec, layout_from_spec, order_from_spec

#: Number of actual scene renders performed by this process (cache
#: misses only).  Tests assert warm runs leave this untouched.
RENDER_CALLS = 0

#: Warm-pool fault policy: how many retry rounds a failed task gets in
#: pool workers before falling back to in-process execution, the base
#: backoff between rounds (doubled each round, with jitter), and how
#: long one task may run before it is presumed hung and retried.
WARM_RETRIES = 2
WARM_BACKOFF_S = 0.25
WARM_TIMEOUT_S = 600.0


def render_calls() -> int:
    """Scene renders performed by this process so far."""
    return RENDER_CALLS


def reset_render_calls() -> None:
    global RENDER_CALLS
    RENDER_CALLS = 0


class StoredTraceStreams(TraceStreams):
    """:class:`TraceStreams` whose distance profiles -- fully
    associative and per-set -- round-trip through the artifact store
    (computed once per store, not once per process).

    The byte-address stream itself is lazy: pass ``loader`` instead of
    ``addresses`` and the array is only resolved (store load, or
    render + placement on a true miss) the first time a profile
    actually has to be *computed*.  A pure-warm sweep -- every profile
    store-resident -- therefore never touches the addresses artifact,
    let alone the scene."""

    def __init__(self, addresses=None, store: Optional[ArtifactStore] = None,
                 key_payload: Optional[dict] = None,
                 kernel: str = "vectorized", loader=None):
        if addresses is None and loader is None:
            raise ValueError("StoredTraceStreams needs addresses or a loader")
        self._loader = loader
        # The dataclass base assigns self.addresses; the property
        # setter below routes that into _addresses.
        super().__init__(addresses, kernel=kernel)
        self._store = store
        self._key_payload = key_payload

    @property
    def addresses(self):
        if self._addresses is None:
            self._addresses = self._loader()
        return self._addresses

    @addresses.setter
    def addresses(self, value):
        self._addresses = value

    def prefetch(self, pairs) -> None:
        """Resolve every ``(line_size, n_sets)`` profile a sweep grid
        will read, one store round-trip per *distinct* pair (memoized
        hits are free) -- the batched-serving mirror of
        :meth:`~repro.engine.streaming.StreamedProfiles.prefetch`.
        Misses compute lazily off the addresses, which materialize at
        most once for the whole batch."""
        for line_size, n_sets in sorted({(int(line), int(sets))
                                         for line, sets in pairs}):
            if n_sets == 1:
                # What miss_rate_curve and set_profile(line, 1) both
                # read; the per-set artifact derives from it for free.
                self.profile(line_size)
            else:
                self.set_profile(line_size, n_sets)

    def _backed(self) -> bool:
        return self._store is not None and self._key_payload is not None

    def _through_store(self, kind: str, payload: dict, load, save, compute):
        """Load-or-compute one artifact with single-flight: re-check
        the store under the lock so racing processes compute once."""
        cached = load(payload)
        if cached is not None:
            return cached
        with self._store.single_flight(kind, fingerprint(payload)):
            cached = load(payload)
            if cached is None:
                cached = compute()
                save(payload, cached)
        return cached

    def profile(self, line_size: int) -> DistanceProfile:
        if line_size not in self._profiles:
            if not self._backed():
                return super().profile(line_size)
            compute = super().profile
            self._profiles[line_size] = self._through_store(
                "profiles", profile_payload(self._key_payload, line_size),
                self._store.load_profile, self._store.save_profile,
                lambda: compute(line_size))
        return self._profiles[line_size]

    def set_profile(self, line_size: int, n_sets: int) -> SetDistanceProfile:
        key = (line_size, n_sets)
        if key not in self._set_profiles:
            if not self._backed():
                return super().set_profile(line_size, n_sets)
            compute = super().set_profile
            self._set_profiles[key] = self._through_store(
                "set_profiles",
                set_profile_payload(self._key_payload, line_size, n_sets),
                self._store.load_set_profile, self._store.save_set_profile,
                lambda: compute(line_size, n_sets))
        return self._set_profiles[key]


@dataclass
class WarmReport:
    """Outcome of one parallel store-warming phase.

    ``attempts`` counts every task submission to the worker pool,
    ``retries`` the resubmissions after a failure, ``fallbacks`` the
    tasks that only succeeded in-process after exhausting pool retries,
    and ``errors`` the (task label, error) pairs that failed everywhere
    -- those cells will recompute (and surface any real error) during
    in-process assembly.
    """

    tasks: int = 0
    attempts: int = 0
    retries: int = 0
    fallbacks: int = 0
    errors: tuple = ()

    @property
    def ok(self) -> bool:
        return not self.errors


class Engine:
    """Memoized, store-backed access to every pipeline stage."""

    def __init__(self, store: Optional[ArtifactStore] = None):
        self.store = store if store is not None else ArtifactStore()
        self.last_warm_report: Optional[WarmReport] = None
        #: Aggregated recovery report of the last pipelined run
        #: (:class:`~repro.engine.pipelined.StreamReport`), ``None``
        #: when the last run did not pipeline.
        self.last_stream_report = None
        self._scenes = {}
        self._renders = {}
        self._placements = {}
        self._streams = {}
        self._streamed = {}

    # -- scene construction (cheap, never persisted) ---------------------

    def scene(self, name: str, scale: float, time: float = 0.0):
        """The built :class:`~repro.scenes.base.SceneData`, memoized."""
        key = (name, scale, time)
        if key not in self._scenes:
            self._scenes[key] = ALL_SCENES[name]().build(scale=scale, time=time)
        return self._scenes[key]

    # -- renders ---------------------------------------------------------

    def render(self, spec: TraceSpec, produce_image: bool = False,
               fresh: bool = False) -> RenderResult:
        """The render for ``spec``: memoized, then store-backed, then
        fresh.  ``produce_image=True`` always renders (framebuffers are
        not cached) but still persists the trace for later warm runs;
        ``fresh=True`` also skips the memo and store so the result
        carries real ``phase_ms`` timings (``render --profile``).

        Store misses render under the per-fingerprint single-flight
        lock: of N racing processes one renders, the rest load its
        published artifact."""
        if produce_image or fresh:
            result = self._render_fresh(spec, produce_image=produce_image)
            self.store.save_render(spec, result)
            return result
        if spec not in self._renders:
            result = self.store.load_render(spec)
            if result is None:
                digest = fingerprint(spec.payload())
                with self.store.single_flight("traces", digest):
                    result = self.store.load_render(spec)
                    if result is None:
                        result = self._render_fresh(spec, produce_image=False)
                        self.store.save_render(spec, result)
            self._renders[spec] = result
        return self._renders[spec]

    def _render_fresh(self, spec: TraceSpec, produce_image: bool) -> RenderResult:
        global RENDER_CALLS
        scene = self.scene(spec.scene, spec.scale, spec.time)
        renderer = Renderer(
            order=order_from_spec(spec.order),
            produce_image=produce_image,
            record_positions=spec.record_positions,
            max_anisotropy=spec.max_anisotropy,
            lod_bias=spec.lod_bias,
            use_mipmaps=spec.use_mipmaps,
            raster=spec.raster,
        )
        RENDER_CALLS += 1
        return renderer.render(scene)

    def trace(self, spec: TraceSpec):
        return self.render(spec).trace

    # -- placements and address streams ----------------------------------

    def placements(self, scene: str, scale: float, layout_spec,
                   time: float = 0.0) -> list:
        """Placed textures for (scene, layout), memoized."""
        key = (scene, scale, time, tuple(layout_spec))
        if key not in self._placements:
            built = self.scene(scene, scale, time)
            self._placements[key] = place_textures(
                built.get_mipmaps(), layout_from_spec(layout_spec))
        return self._placements[key]

    def addresses(self, trace_spec: TraceSpec, layout_spec) -> np.ndarray:
        """The byte-address stream for (trace, layout).  Warm hits load
        the stream directly, without building the scene or rendering."""
        return self.streams(trace_spec, layout_spec).addresses

    def streams(self, trace_spec: TraceSpec, layout_spec) -> StoredTraceStreams:
        """Store-backed :class:`TraceStreams` for (trace, layout).

        The address stream resolves lazily: nothing is loaded --
        let alone rendered -- until a profile actually needs the
        addresses, so pure-warm sweeps (profiles store-resident) skip
        the scene, the trace and the address artifact entirely."""
        key = (trace_spec, tuple(layout_spec))
        if key not in self._streams:
            payload = addresses_payload(trace_spec, layout_spec)

            def load_or_compute():
                addresses = self.store.load_addresses(payload)
                if addresses is None:
                    with self.store.single_flight("addresses",
                                                  fingerprint(payload)):
                        addresses = self.store.load_addresses(payload)
                        if addresses is None:
                            addresses = self.trace(trace_spec).byte_addresses(
                                self.placements(
                                    trace_spec.scene, trace_spec.scale,
                                    layout_spec, trace_spec.time))
                            self.store.save_addresses(payload, addresses)
                return addresses

            self._streams[key] = StoredTraceStreams(
                store=self.store, key_payload=payload,
                loader=load_or_compute)
        return self._streams[key]

    def streamed(self, trace_spec: TraceSpec, layout_spec,
                 chunk_size: Optional[int] = None, shards: int = 0,
                 stream_workers: int = 0):
        """Constant-memory :class:`~repro.engine.streaming.StreamedProfiles`
        for (trace, layout), memoized.  Same profiles (bit for bit) as
        :meth:`streams`, computed as a fold over bounded fragment
        blocks instead of materialized arrays.  ``stream_workers >= 2``
        runs the fold through the pipelined persistent pool
        (:mod:`repro.engine.pipelined`): cold renders are partitioned
        across workers and folded as they stream back."""
        from .streaming import DEFAULT_CHUNK_SIZE, StreamedProfiles
        chunk = int(chunk_size) if chunk_size else DEFAULT_CHUNK_SIZE
        key = (trace_spec, tuple(layout_spec), chunk, int(shards),
               int(stream_workers))
        if key not in self._streamed:
            self._streamed[key] = StreamedProfiles(
                self.store, trace_spec, layout_spec,
                chunk_size=chunk, shards=int(shards),
                stream_workers=int(stream_workers))
        return self._streamed[key]

    # -- experiment execution --------------------------------------------

    def run(self, experiment: ExperimentSpec, workers: int = 0,
            kernel: str = "vectorized", chunk_size: Optional[int] = None,
            shards: int = 0, stream_workers: int = 0,
            audit_parts: int = 0) -> "ExperimentResult":
        """Execute every cell of ``experiment``.

        ``workers > 1`` warms the store's render/address/profile
        artifacts with a multiprocessing pool first (one task per
        scene/order/layout), then assembles results from the warm
        store in this process; worker failures are retried and fall
        back in-process (see :class:`WarmReport`) rather than aborting
        the run.  ``kernel`` selects the LRU simulation path: the
        default reads every finite associativity off a store-backed
        per-set distance profile; ``"reference"`` runs the sequential
        :class:`~repro.core.cache.LRUCache` simulator.

        ``chunk_size`` and/or ``shards > 0`` switch the profile stage
        to the streaming fold (:mod:`repro.engine.streaming`): the
        trace is never materialized, peak memory is bounded by the
        chunk size independent of trace length, and ``shards`` fans
        the fold over a process pool.  ``stream_workers >= 2``
        pipelines the fold instead (:mod:`repro.engine.pipelined`):
        cold renders are partitioned across a persistent worker pool
        and folded as blocks stream back through shared memory.
        Streaming produces bit-identical rows and requires the
        vectorized kernel (the reference simulator needs the in-RAM
        stream).

        ``audit_parts = N`` additionally replays N sampled parts of
        every streamed trace through the sequential reference oracle
        (:meth:`~repro.engine.streaming.StreamedProfiles.audit`),
        raising on any per-access disagreement with the folded
        profiles; the reports land on
        :attr:`ExperimentResult.audit_reports`.
        """
        check_kernel(kernel)
        # Any shard/pipeline request counts as streaming (a single
        # shard folds serially) so combining one with the reference
        # kernel fails loudly instead of silently running the
        # non-streamed vectorized path.
        streaming = bool(chunk_size) or shards > 0 or stream_workers > 0
        if streaming and kernel != "vectorized":
            raise ValueError(
                "streaming execution (chunk_size/shards/stream_workers) "
                "requires the vectorized kernel; the reference simulator "
                "replays the materialized stream")
        if audit_parts and not streaming:
            raise ValueError(
                "audit_parts spot-audits the streaming fold; enable "
                "streaming (chunk_size/shards/stream_workers) to use it")
        warm_report = None
        if workers and workers > 1:
            warm_report = self._warm_parallel(experiment, workers)
            self.last_warm_report = warm_report
        rows = []
        audit_reports = []
        stream_reports = []
        for trace_spec in experiment.trace_specs():
            for layout_spec in experiment.layouts:
                if streaming:
                    streams = self.streamed(trace_spec, layout_spec,
                                            chunk_size=chunk_size,
                                            shards=shards,
                                            stream_workers=stream_workers)
                    # Per-run recovery accounting: the memoized
                    # StreamedProfiles would otherwise re-report a
                    # previous run's recoveries.
                    streams.stream_report = None
                    # One pass over the blocks computes the whole
                    # grid's profiles (instead of one pass per pair).
                    streams.prefetch(_profile_pairs(experiment))
                    if getattr(streams, "stream_report", None) is not None:
                        stream_reports.append(streams.stream_report)
                    if audit_parts:
                        audit_reports.append(streams.audit(
                            _profile_pairs(experiment),
                            parts=audit_parts))
                else:
                    streams = self.streams(trace_spec, layout_spec)
                    # Batched grid serving: one store round-trip per
                    # distinct (line_size, n_sets) pair up front, not
                    # one tier walk per grid cell during assembly.
                    streams.prefetch(_profile_pairs(experiment))
                for line_size in experiment.line_sizes:
                    for assoc in experiment.assocs:
                        rows.extend(self._sweep_sizes(
                            trace_spec, layout_spec, streams, line_size,
                            assoc, experiment.cache_sizes, kernel))
        stream_report = None
        if stream_reports:
            from .pipelined import StreamReport
            stream_report = StreamReport()
            for partial in stream_reports:
                stream_report.absorb(partial)
        self.last_stream_report = stream_report
        return ExperimentResult(spec=experiment, rows=rows,
                                warm_report=warm_report,
                                stream_report=stream_report,
                                audit_reports=tuple(audit_reports))

    def _sweep_sizes(self, trace_spec, layout_spec, streams, line_size,
                     assoc, cache_sizes, kernel: str = "vectorized") -> list:
        rows = []
        if assoc is None:
            if kernel == "vectorized":
                curve = miss_rate_curve(streams, line_size,
                                        sorted(cache_sizes))
                stats_per_size = curve.as_stats()
            else:
                # The reference oracle must really be the sequential
                # simulator, not the vectorized profile in disguise.
                stream = streams.stream(line_size)
                stats_per_size = [
                    simulate(stream, CacheConfig(int(size), line_size, None),
                             kernel=kernel)
                    for size in sorted(cache_sizes)]
            for stats in stats_per_size:
                rows.append(ExperimentRow(
                    scene=trace_spec.scene, order=trace_spec.order,
                    layout=tuple(layout_spec), stats=stats))
        else:
            # The vectorized path reads everything off per-set
            # profiles; only the reference simulator materializes the
            # line stream (which streaming profiles refuse to do).
            stream = None
            for size in sorted(cache_sizes):
                config = CacheConfig(int(size), line_size, assoc)
                if kernel == "vectorized":
                    stats = streams.set_profile(
                        line_size, config.n_sets).stats_for(config)
                else:
                    if stream is None:
                        stream = streams.stream(line_size)
                    stats = simulate(stream, config, kernel=kernel)
                rows.append(ExperimentRow(
                    scene=trace_spec.scene, order=trace_spec.order,
                    layout=tuple(layout_spec), stats=stats))
        return rows

    def _warm_parallel(self, experiment: ExperimentSpec,
                       workers: int) -> WarmReport:
        """Warm the store in pool workers, absorbing worker failures.

        Each task is submitted individually; failures are retried for
        :data:`WARM_RETRIES` rounds with exponential backoff + jitter
        (a fresh pool per round, so even a wedged pool cannot take the
        run down), then fall back to in-process execution.  Tasks that
        fail everywhere are recorded in the report and recomputed --
        surfacing their real error -- during assembly.
        """
        import multiprocessing

        pairs = tuple(sorted(_profile_pairs(experiment)))
        tasks = [(str(self.store.root), trace_spec, tuple(layout_spec),
                  pairs)
                 for trace_spec, layout_spec in experiment.stream_specs()]
        report = WarmReport(tasks=len(tasks))
        pending = tasks
        failures = []
        for round_index in range(WARM_RETRIES + 1):
            if not pending:
                break
            if round_index:
                report.retries += len(pending)
                delay = WARM_BACKOFF_S * (2 ** (round_index - 1))
                time.sleep(delay * (0.5 + random.random()))
            failures = []
            with multiprocessing.Pool(
                    processes=min(workers, len(pending))) as pool:
                handles = [(task, pool.apply_async(_warm_task, (task,)))
                           for task in pending]
                for task, handle in handles:
                    report.attempts += 1
                    try:
                        handle.get(timeout=WARM_TIMEOUT_S)
                    except Exception as fault:
                        failures.append(
                            (task, f"{type(fault).__name__}: {fault}"))
            pending = [task for task, _ in failures]
        errors = []
        for task, pool_error in failures:
            try:
                _warm_task(task)
            except Exception as fault:
                errors.append((_task_label(task),
                               f"{type(fault).__name__}: {fault} "
                               f"(pool: {pool_error})"))
            else:
                report.fallbacks += 1
        report.errors = tuple(errors)
        return report


def _profile_pairs(experiment: ExperimentSpec) -> set:
    """Every ``(line_size, n_sets)`` profile the grid's vectorized
    sweep will read -- the prefetch set for one streaming fold pass."""
    pairs = set()
    for line_size in experiment.line_sizes:
        for assoc in experiment.assocs:
            if assoc is None:
                pairs.add((int(line_size), 1))
            else:
                for size in experiment.cache_sizes:
                    config = CacheConfig(int(size), int(line_size), assoc)
                    pairs.add((int(line_size), config.n_sets))
    return pairs


def _task_label(task) -> str:
    _, trace_spec, layout_spec, _ = task
    return f"{trace_spec.scene}/{'-'.join(map(str, trace_spec.order))}" \
           f"/{'-'.join(map(str, layout_spec))}"


def _maybe_inject_warm_fault() -> None:
    """Fault-injection hook for the warm pool (used by tests/CI only).

    ``REPRO_FAULT_WARM=once:<path>`` makes exactly one task raise (the
    first to atomically create ``<path>``), exercising the retry path;
    ``REPRO_FAULT_WARM=workers`` makes every task raise inside pool
    workers while in-process fallback execution succeeds.
    """
    spec = os.environ.get("REPRO_FAULT_WARM")
    if not spec:
        return
    if spec == "workers":
        import multiprocessing
        if multiprocessing.current_process().name != "MainProcess":
            raise RuntimeError("injected warm-pool worker fault")
        return
    if spec.startswith("once:"):
        try:
            os.close(os.open(spec[len("once:"):],
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return
        raise RuntimeError("injected one-shot warm-pool fault")


def _warm_task(task) -> None:
    """Worker: populate the shared store for one (trace, layout) pair.

    Warms the *whole grid's* profile pairs (fully associative and
    per-set), so assembly in the parent is a pure tier read.  Both the
    addresses and the scene resolve lazily: a task whose profiles are
    all store-resident verifies a few envelopes and exits without
    building SceneData or reading the trace."""
    _maybe_inject_warm_fault()
    root, trace_spec, layout_spec, pairs = task
    engine = Engine(store=ArtifactStore(root))
    engine.streams(trace_spec, layout_spec).prefetch(pairs)


@dataclass(frozen=True)
class ExperimentRow:
    """One grid cell's result."""

    scene: str
    order: tuple
    layout: tuple
    stats: CacheStats

    @property
    def config(self) -> CacheConfig:
        return self.stats.config


@dataclass
class ExperimentResult:
    """All cells of one executed :class:`ExperimentSpec`."""

    spec: ExperimentSpec
    rows: list
    warm_report: Optional[WarmReport] = field(default=None)
    #: Aggregated :class:`~repro.engine.pipelined.StreamReport` when
    #: the run used pipelined streaming (``stream_workers >= 2``);
    #: ``None`` for serial/sharded runs.
    stream_report: object = field(default=None)
    #: One :class:`~repro.engine.streaming.StreamAuditReport` per
    #: streamed (trace, layout) pair when ``audit_parts`` was set.
    audit_reports: tuple = ()

    def select(self, **criteria) -> list:
        """Rows matching the given field/config values, e.g.
        ``select(scene="town", line_size=64)``."""
        config_fields = {"cache_size": "size", "line_size": "line_size",
                         "assoc": "assoc"}
        matched = []
        for row in self.rows:
            keep = True
            for name, wanted in criteria.items():
                if name in config_fields:
                    value = getattr(row.config, config_fields[name])
                else:
                    value = getattr(row, name)
                if value != wanted:
                    keep = False
                    break
            if keep:
                matched.append(row)
        return matched


def run_experiment(experiment: ExperimentSpec,
                   store: Optional[ArtifactStore] = None,
                   engine: Optional[Engine] = None,
                   workers: int = 0,
                   kernel: str = "vectorized",
                   chunk_size: Optional[int] = None,
                   shards: int = 0,
                   stream_workers: int = 0,
                   audit_parts: int = 0) -> ExperimentResult:
    """Convenience wrapper: run ``experiment`` on ``engine`` (or a
    fresh one over ``store``)."""
    if engine is None:
        engine = Engine(store=store)
    return engine.run(experiment, workers=workers, kernel=kernel,
                      chunk_size=chunk_size, shards=shards,
                      stream_workers=stream_workers,
                      audit_parts=audit_parts)

"""Pipelined parallel streaming: overlap render, persist and fold.

The serial streaming fold (:mod:`repro.engine.streaming`) renders
blocks, persists parts and folds profiles strictly one after another
in a single process.  This module runs the same fold as a
producer/consumer pipeline over a **persistent** pool of worker
processes, with bit-identical results::

    parent                          workers (persistent StreamPool)
    ------                          -------------------------------
    submit render ranges   ----->   task queue
                                    render one contiguous clipped-
                                    triangle slice -> FragmentBlocks,
                                    persist each part, fold it into
                                    the range's per-pair states
    collect range states   <-----   event queue (per-range partial
    merge in range order            states; or raw blocks over shared
                                    memory / part-file polling)
    renumber + publish     <-----   per-range part envelopes
    sidecar (all ranges
    complete, or nothing)

**Parallel cold render.**  The clipped triangle index space is cut
into equal contiguous slices (:func:`~repro.pipeline.renderer.
triangle_slice_bounds` -- a pure function of the clipped triangle
count, so each worker derives its own bounds).  Triangle boundaries
are fragment boundaries, so concatenating the slices' block streams
in slice order is bit-identical to the unsliced stream, and the
associative-exact :meth:`~repro.core.kernels.PartialSetProfile.merge`
over per-range states in range order reproduces the serial fold bit
for bit (merge is *not* commutative -- order is load-bearing).

**Block transport.**  Three ways rendered blocks reach the fold,
selected by ``REPRO_STREAM_TRANSPORT`` (see :func:`_resolve_transport`
for the tradeoff).  ``state`` (default): each worker folds the blocks
it renders immediately after persisting them and ships only tiny
per-range partial states -- both heavy stages parallelize across the
whole pool and no bulk data crosses a process boundary.  ``shm``: the
parent folds; workers ship each block's columns through one
``multiprocessing.shared_memory`` segment per block (a small
descriptor crosses the queue; the arrays do not get pickled), and the
bounded event queue applies backpressure so in-flight segments -- and
therefore peak RSS -- stay capped at a few blocks.  ``store``: the
parent folds by readiness-polling the part files workers publish
atomically (:meth:`~repro.engine.artifacts.ChunkedRenderReader.
poll_part`) -- no shared memory needed, and the single-machine
prototype of a cross-machine fold.  Forcing ``shm`` on a host without
shared memory degrades to the serial fold, with a warning, via
:class:`PipelineError`.

**Persistence.**  Each worker writes its slice's parts through its
own ``part_base``-offset :class:`~repro.engine.artifacts.
ChunkedRenderWriter` (checksummed, atomically published, sidecar
withheld).  Only the parent -- after every range reports complete --
renumbers the strided parts into the dense ``.p00000`` sequence and
publishes the sidecar, so a partially rendered trace can never
verify as a complete artifact; a killed pipeline leaves orphan parts
that age out through :meth:`~repro.engine.artifacts.ArtifactStore.
repair` like any interrupted serial writer.

**Warm traces** (chunked parts already in the store) skip the render
stage: part ranges fan out over the same pool, each worker folds its
range into picklable partial states, and the parent merges them in
part order -- the sharded fold of PR 6, but on a pool that persists
across every row of an experiment grid instead of being respawned
per fold.

Any failure -- a dead worker, a poisoned queue, shared memory missing
-- raises :class:`PipelineError`; :class:`~repro.engine.streaming.
StreamedProfiles` catches it, warns, and reruns the serial path, so
pipelining can only ever cost time, never correctness.
"""

from __future__ import annotations

import atexit
import os
import time
import traceback
import warnings
from queue import Empty

import numpy as np

from ..core.kernels import PartialSetProfile
from ..pipeline.renderer import render_trace_blocks
from ..pipeline.trace import FragmentBlock
from ..texture.memory import place_textures
from .artifacts import ArtifactStore, ChunkedRenderReader, fingerprint
from .spec import layout_from_spec, order_from_spec

#: Part-index stride between ranges; the parent renumbers densely, so
#: this only needs to exceed any single range's block count.
PART_STRIDE = 100_000

#: Render/fold ranges per worker: >1 so a fragment-heavy slice is
#: rebalanced dynamically through the shared task queue, but low --
#: each range pays fixed dispatch/flush costs, and on the few-core
#: hosts this targets the smoothing won from finer slices is smaller
#: than that overhead.
RANGES_PER_WORKER = 2

#: Event-queue poll interval; also paces store-transport readiness
#: polling.
EVENT_POLL_S = 0.05

#: A pipeline that neither delivers an event nor folds a part for this
#: long (with live workers) is declared wedged.
NO_PROGRESS_TIMEOUT_S = 600.0


class PipelineError(RuntimeError):
    """The pipelined fold could not run or finish; callers degrade to
    the serial streaming path (results stay bit-identical)."""


def _shm_module():
    """``multiprocessing.shared_memory``, or ``None`` when the host
    lacks it (or tests inject ``REPRO_FAULT_SHM=unavailable``)."""
    if os.environ.get("REPRO_FAULT_SHM") == "unavailable":
        return None
    try:
        from multiprocessing import shared_memory
    except ImportError:
        return None
    return shared_memory


def _resolve_transport(store: ArtifactStore) -> str:
    """Which way rendered blocks reach the fold.

    ``state`` (default): each worker folds the blocks it renders and
    ships only per-range partial states -- both heavy stages
    parallelize, nothing bulk crosses a process boundary, but every
    worker holds its own fold state for all pairs.  ``shm``: workers
    ship raw blocks through shared memory and the parent folds --
    workers stay fold-state-free (one copy of the states total),
    costing a dedicated folding core.  ``store``: like ``shm`` but the
    parent readiness-polls the part files instead (no shared memory
    needed; the cross-machine fold protocol)."""
    forced = os.environ.get("REPRO_STREAM_TRANSPORT", "").strip().lower()
    transport = forced or "state"
    if transport == "store":
        if not store.available:
            raise PipelineError(
                "store block transport needs a writable store")
        return "store"
    if transport == "shm":
        if _shm_module() is None:
            raise PipelineError(
                "multiprocessing.shared_memory is unavailable "
                "(set REPRO_STREAM_TRANSPORT=store to pipeline through "
                "part files instead)")
        return "shm"
    if transport != "state":
        raise PipelineError(
            f"unknown REPRO_STREAM_TRANSPORT {forced!r}")
    return "state"


# -- shared-memory block transport ----------------------------------------

#: Column order is part of the descriptor contract.
_BLOCK_COLUMNS = ("texture_id", "level", "tu", "tv",
                  "tu_raw", "tv_raw", "kind", "x", "y")


def _pack_block(shared_memory, block) -> dict:
    """Copy one block's columns into a fresh shared-memory segment;
    returns the descriptor the consumer rebuilds views from.  The
    producer disowns the segment (the consumer unlinks after
    folding), so exactly one process ever frees it."""
    arrays = {}
    for name in _BLOCK_COLUMNS:
        data = getattr(block, name)
        if data is not None:
            arrays[name] = np.ascontiguousarray(data)
    columns = {}
    offset = 0
    for name, data in arrays.items():
        columns[name] = (str(data.dtype), tuple(data.shape), offset)
        offset += data.nbytes
    segment = shared_memory.SharedMemory(create=True, size=max(1, offset))
    try:
        for name, (dtype, shape, start) in columns.items():
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf,
                              offset=start)
            view[...] = arrays[name]
            view = None
    finally:
        descriptor = {
            "shm": segment.name,
            "columns": columns,
            "n_fragments": int(block.n_fragments),
            "index": int(block.index) if block.index is not None else 0,
        }
        segment.close()
        _disown_segment(segment)
    return descriptor


def _disown_segment(segment) -> None:
    """Transfer cleanup responsibility to the consumer.  Without this
    the producer's resource tracker would unlink the segment again at
    process exit -- after the parent already has -- and complain."""
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def _consume_shm_block(shared_memory, descriptor, fold) -> None:
    """Rebuild a block from its shared segment, run ``fold(block)``
    (which must not retain views -- address mapping copies), then
    close and unlink the segment."""
    segment = shared_memory.SharedMemory(name=descriptor["shm"])
    block = columns = None
    try:
        columns = dict.fromkeys(_BLOCK_COLUMNS)
        for name, (dtype, shape, start) in descriptor["columns"].items():
            columns[name] = np.ndarray(tuple(shape), dtype=dtype,
                                       buffer=segment.buf, offset=start)
        block = FragmentBlock(n_fragments=descriptor["n_fragments"],
                              index=descriptor["index"], **columns)
        fold(block)
    finally:
        block = columns = None
        try:
            segment.close()
        except BufferError:
            pass  # a failing fold can pin views; unlink still works
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def _discard_segment(descriptor) -> None:
    """Best-effort unlink of an unconsumed in-flight segment (error
    and shutdown paths)."""
    shared_memory = _shm_module()
    if shared_memory is None:
        return
    try:
        segment = shared_memory.SharedMemory(name=descriptor["shm"])
        segment.close()
        segment.unlink()
    except Exception:
        pass


# -- worker side -----------------------------------------------------------

#: Per-worker memo of the last built scene / placements: an experiment
#: grid re-renders and re-folds the same scene across many rows, and
#: the pool persists across rows, so this is where scene builds
#: amortize.  Size-one on purpose (bounded worker RSS).
_SCENES: dict = {}
_PLACEMENTS: dict = {}
_READERS: dict = {}


def _cached_scene(spec):
    from .streaming import _build_scene
    key = (spec.scene, float(spec.scale), float(spec.time))
    if key not in _SCENES:
        _SCENES.clear()
        _PLACEMENTS.clear()
        _SCENES[key] = _build_scene(spec)
    return _SCENES[key]


def _cached_placements(spec, layout_spec):
    key = (spec.scene, float(spec.scale), float(spec.time),
           tuple(layout_spec))
    if key not in _PLACEMENTS:
        _PLACEMENTS.clear()
        _PLACEMENTS[key] = place_textures(
            _cached_scene(spec).get_mipmaps(),
            layout_from_spec(layout_spec))
    return _PLACEMENTS[key]


def _cached_reader(root: str, spec):
    """Open (and envelope-verify) a chunked trace once per worker, not
    once per fold job: a published trace is immutable and an experiment
    grid folds the same trace once per profile pair, so re-verifying
    every part's checksum on every job dominates small fold ranges."""
    key = (root, fingerprint(spec.payload()))
    if key not in _READERS:
        reader = ArtifactStore(root).open_render_blocks(spec)
        if reader is None:
            return None  # never cache a miss: the trace may land later
        _READERS.clear()
        _READERS[key] = reader
    return _READERS[key]


def _worker_loop(tasks, events) -> None:
    """Generic persistent worker: render ranges and fold ranges until
    the ``None`` sentinel.  A task failure is reported as an event and
    the worker lives on; only a hard crash kills it."""
    while True:
        task = tasks.get()
        if task is None:
            break
        kind, job = task
        try:
            if kind == "render":
                _worker_render(job, events)
            elif kind == "fold":
                _worker_fold(job, events)
            else:
                raise RuntimeError(f"unknown stream task {kind!r}")
        except Exception:
            events.put(("error", job.get("range", -1),
                        traceback.format_exc()))


def _worker_render(job: dict, events) -> None:
    """Render one triangle slice: persist its parts (strided index
    space), fold them inline (state transport) or ship each block to
    the folding parent (shm/store), report envelopes."""
    if os.environ.get("REPRO_FAULT_STREAM_POOL") == "die":
        os._exit(1)  # fault injection: simulate a hard worker crash
    spec = job["trace_spec"]
    store = ArtifactStore(job["root"])
    writer = store.open_render_writer(spec, part_base=job["part_base"])
    shared_memory = _shm_module() if job["transport"] == "shm" else None
    states = placements = None
    if job["transport"] == "state":
        from .streaming import _fold_block_into
        placements = _cached_placements(spec, job["layout_spec"])
        states = {pair: PartialSetProfile.empty(*pair)
                  for pair in job["pairs"]}
    totals: dict = {}
    blocks = render_trace_blocks(
        _cached_scene(spec), job["chunk_size"],
        order=order_from_spec(spec.order), raster=spec.raster,
        record_positions=spec.record_positions,
        max_anisotropy=spec.max_anisotropy, lod_bias=spec.lod_bias,
        use_mipmaps=spec.use_mipmaps, totals=totals,
        triangle_slice=(job["range"], job["n_ranges"]))
    n_blocks = 0
    for block in blocks:
        writer.append(block)
        if states is not None:
            _fold_block_into(states, block.byte_addresses(placements))
        elif shared_memory is not None:
            events.put(("block", job["range"], n_blocks,
                        _pack_block(shared_memory, block)))
        elif len(writer.part_envelopes) != n_blocks + 1:
            # Store transport folds off the part files, so a part that
            # failed to persist (demoted store) would hang the parent.
            raise RuntimeError(
                "store transport needs every part persisted")
        n_blocks += 1
    envelopes, complete, has_positions = writer.finish_parts()
    totals.pop("per_triangle_fragments", None)
    totals["has_positions"] = has_positions
    payload = {"envelopes": envelopes, "complete": complete,
               "totals": totals, "n_blocks": n_blocks}
    if states is not None:
        payload["states"] = states
    events.put(("range_done", job["range"], payload))


def _worker_fold(job: dict, events) -> None:
    """Fold one contiguous part range of a warm chunked trace into
    per-pair partial states (picklable; parent merges in part order)."""
    from .streaming import _fold_block_into
    reader = _cached_reader(job["root"], job["trace_spec"])
    if reader is None:
        raise RuntimeError("chunked trace vanished under the fold")
    placements = _cached_placements(job["trace_spec"], job["layout_spec"])
    states = {pair: PartialSetProfile.empty(*pair)
              for pair in job["pairs"]}
    for index in range(job["lo"], job["hi"]):
        _fold_block_into(states,
                         reader.read_part(index).byte_addresses(placements))
    events.put(("fold_done", job["range"], states))


# -- the persistent pool ---------------------------------------------------

class StreamPool:
    """A persistent pool of streaming workers plus the two queues that
    connect them to the parent.  One pool serves every fold of every
    row of an experiment grid; it is rebuilt only when the worker
    count changes or a worker dies."""

    def __init__(self, workers: int):
        import multiprocessing
        self.workers = int(workers)
        context = multiprocessing.get_context()
        self.tasks = context.Queue()
        # Bounded: backpressure on producers caps in-flight blocks
        # (and therefore shared-memory segments and peak RSS).
        self.events = context.Queue(maxsize=max(4, 2 * self.workers))
        self.processes = [
            context.Process(target=_worker_loop, args=(self.tasks,
                                                       self.events),
                            name=f"stream-worker-{index}", daemon=True)
            for index in range(self.workers)]
        for process in self.processes:
            process.start()

    def alive(self) -> bool:
        return all(process.is_alive() for process in self.processes)

    def shutdown(self, force: bool = False) -> None:
        if not force:
            for _ in self.processes:
                try:
                    self.tasks.put_nowait(None)
                except Exception:
                    break
            for process in self.processes:
                process.join(timeout=5.0)
        for process in self.processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        # Unlink any in-flight shared segments still queued.
        while True:
            try:
                message = self.events.get_nowait()
            except Exception:
                break
            if message and message[0] == "block":
                _discard_segment(message[3])
        for channel in (self.tasks, self.events):
            try:
                channel.close()
                channel.cancel_join_thread()
            except Exception:
                pass


_POOL: StreamPool = None


def _seed_pool_memos(spec, layout_spec, workers: int) -> None:
    """Pre-build the scene (and, given a layout, the placements) in the
    parent when a fresh pool is about to fork: children inherit the
    worker memos copy-on-write, so the whole pool pays one scene build
    -- mipmaps included -- instead of one per worker.  Texture
    synthesis dominates cold time on small scenes, and the duplicated
    builds also contended for memory bandwidth.  No-op when the pool
    already exists (the fork already happened) or the start method
    cannot inherit parent memory."""
    import multiprocessing
    if _POOL is not None and _POOL.workers == int(workers) \
            and _POOL.alive():
        return
    if multiprocessing.get_start_method() != "fork":
        return
    if layout_spec is not None:
        _cached_placements(spec, layout_spec)
    else:
        _cached_scene(spec).get_mipmaps()


def get_pool(workers: int) -> StreamPool:
    """The process-wide persistent pool, (re)built on first use, on a
    worker-count change, or after a worker death."""
    global _POOL
    workers = int(workers)
    if _POOL is not None and (_POOL.workers != workers
                              or not _POOL.alive()):
        _POOL.shutdown(force=not _POOL.alive())
        _POOL = None
    if _POOL is None:
        _POOL = StreamPool(workers)
    return _POOL


def shutdown_stream_pool() -> None:
    """Tear down the persistent pool (idempotent; re-created lazily)."""
    global _POOL
    pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown()


def _break_pool() -> None:
    """Hard-stop a pool in an unknown state (failed run): a clean one
    is rebuilt on the next fold."""
    global _POOL
    pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown(force=True)


atexit.register(shutdown_stream_pool)


# -- parent-side drivers ---------------------------------------------------

def fold_pipelined(profiles, pairs) -> dict:
    """Compute every pair's :class:`PartialSetProfile` for
    ``profiles`` (a :class:`~repro.engine.streaming.StreamedProfiles`)
    through the pipelined pool.  Raises :class:`PipelineError` -- with
    the pool torn down -- on any failure, so the caller can rerun the
    serial path."""
    pairs = tuple(pairs)
    if int(profiles.stream_workers) < 2:
        raise PipelineError("pipelined fold needs stream_workers >= 2")
    try:
        return _fold_dispatch(profiles, pairs)
    except PipelineError:
        _break_pool()
        raise
    except Exception as fault:
        _break_pool()
        raise PipelineError(f"{type(fault).__name__}: {fault}") from fault


def _fold_dispatch(profiles, pairs) -> dict:
    store = profiles.store
    spec = profiles.trace_spec
    reader = store.open_render_blocks(spec)
    if reader is None and store.load_render(spec) is not None:
        # Monolithic artifact: re-chunk it (serial, IO-bound) so the
        # warm parallel fold below has parts to fan out.
        reader = profiles._ensure_chunked()
        if reader is None:
            raise PipelineError(
                "store cannot hold the chunked representation")
    if reader is not None:
        if len(reader) < 2:
            raise PipelineError("single-part trace (nothing to fan out)")
        return _fold_warm(profiles, pairs, reader)
    return _fold_cold(profiles, pairs)


def _fold_warm(profiles, pairs, reader) -> dict:
    """Fan a warm chunked trace's part ranges over the pool."""
    _seed_pool_memos(profiles.trace_spec, profiles.layout_spec,
                     profiles.stream_workers)
    pool = get_pool(profiles.stream_workers)
    n_parts = len(reader)
    n_ranges = min(n_parts, pool.workers * RANGES_PER_WORKER)
    bounds = np.linspace(0, n_parts, n_ranges + 1).astype(int)
    jobs = [{"range": index, "root": str(profiles.store.root),
             "trace_spec": profiles.trace_spec,
             "layout_spec": profiles.layout_spec,
             "lo": int(lo), "hi": int(hi), "pairs": pairs}
            for index, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:]))
            if hi > lo]
    for job in jobs:
        pool.tasks.put(("fold", job))
    results: dict = {}
    last_progress = time.monotonic()
    while len(results) < len(jobs):
        try:
            message = pool.events.get(timeout=EVENT_POLL_S)
        except Empty:
            if not pool.alive():
                raise PipelineError("stream pool worker died mid-fold")
            if time.monotonic() - last_progress > NO_PROGRESS_TIMEOUT_S:
                raise PipelineError("pipelined warm fold stalled")
            continue
        if message[0] == "error":
            raise PipelineError(
                f"stream worker failed:\n{message[2]}")
        if message[0] != "fold_done":
            raise PipelineError(
                f"unexpected {message[0]!r} event in warm fold")
        results[message[1]] = message[2]
        last_progress = time.monotonic()
    # merge() is associative-exact but not commutative: range order is
    # part order is stream order.
    states = {pair: PartialSetProfile.empty(*pair) for pair in pairs}
    for job in jobs:
        for pair in pairs:
            states[pair] = states[pair].merge(results[job["range"]][pair])
    return states


def _fold_cold(profiles, pairs) -> dict:
    """Render, persist and fold a cold trace concurrently."""
    store = profiles.store
    spec = profiles.trace_spec
    transport = _resolve_transport(store)
    # State transport: workers fold, so they need placements; shm and
    # store fold in the parent, whose own placements (profiles._placed)
    # live in a different memo -- seed the render-side scene only.
    _seed_pool_memos(spec,
                     profiles.layout_spec if transport == "state" else None,
                     profiles.stream_workers)
    pool = get_pool(profiles.stream_workers)
    # State transport folds inside the workers, so the parent never
    # maps a block and skips its own placements (the pre-fork seed
    # above builds the scene exactly once, in the worker memo).
    placements = None if transport == "state" else profiles._placed()
    digest = fingerprint(spec.payload())
    with store.single_flight("traces", digest):
        reader = store.open_render_blocks(spec)
        if reader is not None:
            # A racing process published the trace while we waited.
            if len(reader) < 2:
                raise PipelineError("single-part trace (nothing to fan out)")
            return _fold_warm(profiles, pairs, reader)
        from . import runner
        runner.RENDER_CALLS += 1
        n_ranges = pool.workers * RANGES_PER_WORKER
        jobs = [{"range": index, "n_ranges": n_ranges,
                 "root": str(store.root), "trace_spec": spec,
                 "layout_spec": profiles.layout_spec, "pairs": pairs,
                 "chunk_size": profiles.chunk_size,
                 "part_base": index * PART_STRIDE,
                 "transport": transport}
                for index in range(n_ranges)]
        for job in jobs:
            pool.tasks.put(("render", job))
        states, done = _collect_cold(pool, jobs, pairs, placements,
                                     store, spec, transport)
        merged = {pair: PartialSetProfile.empty(*pair) for pair in pairs}
        for index in range(n_ranges):
            for pair in pairs:
                merged[pair] = merged[pair].merge(states[index][pair])
        _publish_assembled(store, spec, done, n_ranges)
    return merged


def _collect_cold(pool, jobs, pairs, placements, store, spec,
                  transport) -> tuple:
    """Drain the event queue until every range is done and fully
    folded.  State transport: ranges arrive pre-folded.  Shm/store:
    the parent folds each range's blocks in order as they arrive
    (shared memory) or as their part files land (readiness polling)."""
    from .streaming import _fold_block_into
    shared_memory = _shm_module()
    n_ranges = len(jobs)
    states = {index: {pair: PartialSetProfile.empty(*pair)
                      for pair in pairs} for index in range(n_ranges)}
    folded = {index: 0 for index in range(n_ranges)}
    done: dict = {}
    pending = (ChunkedRenderReader.pending(store, spec)
               if transport == "store" else None)

    def fold_block(index, block):
        _fold_block_into(states[index], block.byte_addresses(placements))
        folded[index] += 1

    last_progress = time.monotonic()
    while not (len(done) == n_ranges
               and all(folded[r] == done[r]["n_blocks"] for r in done)):
        progressed = False
        try:
            message = pool.events.get(timeout=EVENT_POLL_S)
        except Empty:
            message = None
        if message is not None:
            kind = message[0]
            if kind == "error":
                raise PipelineError(
                    f"stream worker failed:\n{message[2]}")
            if kind == "block":
                _, index, sequence, descriptor = message
                if sequence != folded[index]:
                    _discard_segment(descriptor)
                    raise PipelineError(
                        f"range {index} block {sequence} arrived at "
                        f"fold position {folded[index]}")
                _consume_shm_block(shared_memory, descriptor,
                                   lambda block: fold_block(index, block))
                progressed = True
            elif kind == "range_done":
                payload = message[2]
                worker_states = payload.pop("states", None)
                if worker_states is not None:
                    # State transport: the worker already folded its
                    # range's blocks inline; nothing left to consume.
                    states[message[1]] = worker_states
                    folded[message[1]] = payload["n_blocks"]
                done[message[1]] = payload
                progressed = True
            else:
                raise PipelineError(
                    f"unexpected {kind!r} event in cold fold")
        if pending is not None:
            for job in jobs:
                index = job["range"]
                if index in done and folded[index] >= \
                        done[index]["n_blocks"]:
                    continue
                while True:
                    block = pending.poll_part(
                        job["part_base"] + folded[index])
                    if block is None:
                        break
                    fold_block(index, block)
                    progressed = True
        now = time.monotonic()
        if progressed:
            last_progress = now
        elif message is None:
            if not pool.alive():
                raise PipelineError("stream pool worker died mid-render")
            if now - last_progress > NO_PROGRESS_TIMEOUT_S:
                raise PipelineError("pipelined cold fold stalled")
    return states, done


def _publish_assembled(store, spec, done, n_ranges) -> bool:
    """Commit the sidecar over every range's parts, in range order,
    renumbered densely -- but only when *all* ranges persisted
    completely, so the artifact can never be partial."""
    infos = [done[index] for index in range(n_ranges)]
    if not store.available or not all(info["complete"] for info in infos):
        return False
    if any(len(info["envelopes"]) >= PART_STRIDE for info in infos):
        return False  # would alias another range's index space
    envelopes = [entry for info in infos for entry in info["envelopes"]]
    renamed = store.renumber_parts(spec, envelopes)
    if renamed is None:
        return False
    totals = dict(infos[0]["totals"])  # n_triangles_submitted is global
    totals["n_triangles_rasterized"] = sum(
        int(info["totals"]["n_triangles_rasterized"]) for info in infos)
    totals["has_positions"] = any(
        info["totals"].get("has_positions") for info in infos)
    published = store.publish_chunked_sidecar(spec, renamed, totals)
    if not published:
        warnings.warn(
            f"pipelined render for {spec.scene} persisted its parts but "
            "could not publish the sidecar; the next run re-renders",
            RuntimeWarning, stacklevel=4)
    return published

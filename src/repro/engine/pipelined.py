"""Pipelined parallel streaming: overlap render, persist and fold.

The serial streaming fold (:mod:`repro.engine.streaming`) renders
blocks, persists parts and folds profiles strictly one after another
in a single process.  This module runs the same fold as a
producer/consumer pipeline over a **persistent** pool of worker
processes, with bit-identical results::

    parent                          workers (persistent StreamPool)
    ------                          -------------------------------
    submit render ranges   ----->   task queue
    supervise: heartbeats,          render one contiguous clipped-
    deadlines, respawn dead         triangle slice -> FragmentBlocks,
    workers, retry failed           persist each part, fold it into
    ranges with backoff             the range's per-pair states
    collect range states   <-----   event queue (per-range partial
    merge in range order            states; or raw blocks over shared
                                    memory / part-file polling)
    renumber + publish     <-----   per-range part envelopes
    sidecar (all ranges
    complete, or nothing)

**Parallel cold render.**  The clipped triangle index space is cut
into equal contiguous slices (:func:`~repro.pipeline.renderer.
triangle_slice_bounds` -- a pure function of the clipped triangle
count, so each worker derives its own bounds).  Triangle boundaries
are fragment boundaries, so concatenating the slices' block streams
in slice order is bit-identical to the unsliced stream, and the
associative-exact :meth:`~repro.core.kernels.PartialSetProfile.merge`
over per-range states in range order reproduces the serial fold bit
for bit (merge is *not* commutative -- order is load-bearing).

**Block transport.**  Three ways rendered blocks reach the fold,
selected by ``REPRO_STREAM_TRANSPORT`` (see :func:`_resolve_transport`
for the tradeoff).  ``state`` (default): each worker folds the blocks
it renders immediately after persisting them and ships only tiny
per-range partial states -- both heavy stages parallelize across the
whole pool and no bulk data crosses a process boundary.  ``shm``: the
parent folds; workers ship each block's columns through one
``multiprocessing.shared_memory`` segment per block (a small
descriptor crosses the queue; the arrays do not get pickled), and the
bounded event queue applies backpressure so in-flight segments -- and
therefore peak RSS -- stay capped at a few blocks.  ``store``: the
parent folds by readiness-polling the part files workers publish
atomically (:meth:`~repro.engine.artifacts.ChunkedRenderReader.
poll_part`) -- no shared memory needed, and the single-machine
prototype of a cross-machine fold.  Forcing ``shm`` on a host without
shared memory degrades to the serial fold, with a warning, via
:class:`PipelineError`.

**Persistence.**  Each worker writes its slice's parts through its
own ``part_base``-offset :class:`~repro.engine.artifacts.
ChunkedRenderWriter` (checksummed, atomically published, sidecar
withheld).  Only the parent -- after every range reports complete --
renumbers the strided parts into the dense ``.p00000`` sequence and
publishes the sidecar, so a partially rendered trace can never
verify as a complete artifact.

**Self-healing.**  A fold no longer fails whole on the first fault;
it degrades through an escalation ladder, each rung strictly cheaper
than the next:

1. *Supervised retry.*  The parent (:class:`_Supervision`) tracks
   which worker owns which range through ``started`` events and a
   shared heartbeat array.  A dead worker (SIGKILL, OOM) is detected
   by liveness polling and respawned in place -- forked from the
   parent, so it re-inherits the copy-on-write scene memo -- and a
   wedged worker (heartbeat stale past the per-job deadline,
   ``REPRO_STREAM_JOB_TIMEOUT``) is killed first.  Only the *failed
   contiguous ranges* are re-dispatched, with bounded retries and
   exponential backoff mirroring the warm pool's ``WARM_RETRIES``
   policy (:mod:`repro.engine.runner`).
2. *Residual recovery.*  A range that exhausts its retry budget is
   rendered or folded serially in the parent -- the fold still
   completes bit-identically, with a ``RuntimeWarning`` naming the
   residual count.
3. *Serial fallback.*  Only when *no* range succeeds through the pool
   (or the pipeline itself is unusable) does :class:`PipelineError`
   propagate and :class:`~repro.engine.streaming.StreamedProfiles`
   rerun the entire serial path.

**Crash-resume.**  A cold fold killed mid-run (SIGKILL of the parent,
ENOSPC demotion) leaves checksummed strided parts behind plus two
kinds of resume metadata (:meth:`~repro.engine.artifacts.
ArtifactStore.save_stream_plan` / ``save_range_record``): the range
plan written at dispatch and one completion record per finished
range, listing its part envelopes.  The next cold fold of the same
spec verifies the surviving parts against those envelopes, folds the
verified ranges *warm* (``foldparts`` jobs), re-renders only the
missing ranges under the original plan geometry, then renumbers and
publishes as usual -- bit-identical to an uninterrupted run, and
identical under ``REPRO_STREAM_TRANSPORT=store``.

**Observability.**  Every fold accounts its recovery actions in a
:class:`StreamReport` (the pipelined analog of
:class:`~repro.engine.runner.WarmReport`) hung off the
``StreamedProfiles`` and surfaced on ``ExperimentResult`` and in the
CLI: respawns, retried/residual/resumed ranges, serial fallbacks and
recovery wall-clock (time from a range's first failure to its
recovery, plus respawn and residual work; resumed work is *saved*
time and is counted by range/part instead).  Deterministic fault
injection for all of the above lives in :mod:`repro.engine.faults`
(``REPRO_FAULT_PLAN``).

**Warm traces** (chunked parts already in the store) skip the render
stage: part ranges fan out over the same pool, each worker folds its
range into picklable partial states, and the parent merges them in
part order under the same supervision.
"""

from __future__ import annotations

import atexit
import itertools
import os
import random
import time
import traceback
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty

import numpy as np

from ..core.kernels import PartialSetProfile
from ..pipeline import traceio
from ..pipeline.renderer import render_trace_blocks
from ..pipeline.trace import FragmentBlock
from ..texture.memory import place_textures
from . import faults
from .artifacts import (ArtifactStore, ChunkedRenderReader, fingerprint,
                        load_part_block)
from .spec import layout_from_spec, order_from_spec

#: Part-index stride between ranges; the parent renumbers densely, so
#: this only needs to exceed any single range's block count.
PART_STRIDE = 100_000

#: Render/fold ranges per worker: >1 so a fragment-heavy slice is
#: rebalanced dynamically through the shared task queue, but low --
#: each range pays fixed dispatch/flush costs, and on the few-core
#: hosts this targets the smoothing won from finer slices is smaller
#: than that overhead.
RANGES_PER_WORKER = 2

#: Event-queue poll interval; also paces store-transport readiness
#: polling.
EVENT_POLL_S = 0.05

#: How often the supervisor polls worker liveness and heartbeats.
HEALTH_POLL_S = 0.5

#: A pipeline that neither delivers an event nor folds a part for this
#: long (with live workers) is declared wedged.
NO_PROGRESS_TIMEOUT_S = 600.0

#: Per-range retry budget and backoff base, mirroring the warm pool's
#: ``WARM_RETRIES`` / ``WARM_BACKOFF_S`` policy (:mod:`.runner`): a
#: range is retried this many times (with exponential backoff and
#: jitter) before becoming *residual* and recovering serially in the
#: parent.
STREAM_RETRIES = 2
STREAM_BACKOFF_S = 0.25

#: A dispatched range whose worker heartbeat goes stale for this long
#: is presumed wedged: the worker is killed, respawned, and the range
#: retried.  Override with ``REPRO_STREAM_JOB_TIMEOUT`` (seconds).
STREAM_JOB_TIMEOUT_S = 600.0


def _job_timeout_s() -> float:
    value = os.environ.get("REPRO_STREAM_JOB_TIMEOUT", "")
    try:
        return float(value) if value else STREAM_JOB_TIMEOUT_S
    except ValueError:
        return STREAM_JOB_TIMEOUT_S


class PipelineError(RuntimeError):
    """The pipelined fold could not run or finish; callers degrade to
    the serial streaming path (results stay bit-identical)."""


@dataclass
class StreamReport:
    """Recovery accounting for the pipelined streaming engine -- the
    analog of :class:`~repro.engine.runner.WarmReport`.  One report
    accumulates across every fold of a ``StreamedProfiles`` (an
    experiment row folds once per trace/layout); ``recovery_s`` is the
    wall-clock from each range's first failure to its recovery plus
    respawn and residual-recovery work, while *resumed* work -- saved,
    not lost, time -- is counted by range and part instead."""

    folds: int = 0
    respawns: int = 0
    retried_ranges: int = 0
    residual_ranges: int = 0
    resumed_ranges: int = 0
    resumed_parts: int = 0
    fallbacks: int = 0
    recovery_s: float = 0.0
    events: tuple = field(default=())

    _MAX_EVENTS = 64

    def note(self, event: str) -> None:
        if len(self.events) < self._MAX_EVENTS:
            self.events = (*self.events, str(event))

    @property
    def clean(self) -> bool:
        """True when every fold ran without any recovery action."""
        return not (self.respawns or self.retried_ranges
                    or self.residual_ranges or self.resumed_ranges
                    or self.fallbacks or self.events)

    def absorb(self, other: "StreamReport") -> None:
        """Fold another report into this one (a run aggregates the
        per-``StreamedProfiles`` reports of every trace/layout row)."""
        self.folds += other.folds
        self.respawns += other.respawns
        self.retried_ranges += other.retried_ranges
        self.residual_ranges += other.residual_ranges
        self.resumed_ranges += other.resumed_ranges
        self.resumed_parts += other.resumed_parts
        self.fallbacks += other.fallbacks
        self.recovery_s += other.recovery_s
        for event in other.events:
            self.note(event)

    def summary(self) -> str:
        if self.clean:
            return (f"stream: {self.folds} pipelined fold(s), "
                    "no recovery needed")
        parts = [f"stream: {self.folds} fold(s)"]
        if self.respawns:
            parts.append(f"{self.respawns} worker respawn(s)")
        if self.retried_ranges:
            parts.append(f"{self.retried_ranges} range retry(ies)")
        if self.residual_ranges:
            parts.append(f"{self.residual_ranges} residual range(s) "
                         "recovered serially")
        if self.resumed_ranges:
            parts.append(f"{self.resumed_ranges} range(s) resumed from "
                         f"{self.resumed_parts} published part(s)")
        if self.fallbacks:
            parts.append(f"{self.fallbacks} serial fallback(s)")
        if self.recovery_s:
            parts.append(f"recovery {self.recovery_s:.2f}s")
        return ", ".join(parts)


def _report_of(profiles) -> StreamReport:
    """The profiles' recovery report, created on first use (keeps
    ``fold_pipelined`` usable on bare test doubles)."""
    report = getattr(profiles, "stream_report", None)
    if report is None:
        report = StreamReport()
        try:
            profiles.stream_report = report
        except AttributeError:
            pass
    return report


def _shm_module():
    """``multiprocessing.shared_memory``, or ``None`` when the host
    lacks it (or tests inject ``REPRO_FAULT_SHM=unavailable``)."""
    if os.environ.get("REPRO_FAULT_SHM") == "unavailable":
        return None
    try:
        from multiprocessing import shared_memory
    except ImportError:
        return None
    return shared_memory


def _resolve_transport(store: ArtifactStore) -> str:
    """Which way rendered blocks reach the fold.

    ``state`` (default): each worker folds the blocks it renders and
    ships only per-range partial states -- both heavy stages
    parallelize, nothing bulk crosses a process boundary, but every
    worker holds its own fold state for all pairs.  ``shm``: workers
    ship raw blocks through shared memory and the parent folds --
    workers stay fold-state-free (one copy of the states total),
    costing a dedicated folding core.  ``store``: like ``shm`` but the
    parent readiness-polls the part files instead (no shared memory
    needed; the cross-machine fold protocol)."""
    forced = os.environ.get("REPRO_STREAM_TRANSPORT", "").strip().lower()
    transport = forced or "state"
    if transport == "store":
        if not store.available:
            raise PipelineError(
                "store block transport needs a writable store")
        return "store"
    if transport == "shm":
        if _shm_module() is None:
            raise PipelineError(
                "multiprocessing.shared_memory is unavailable "
                "(set REPRO_STREAM_TRANSPORT=store to pipeline through "
                "part files instead)")
        return "shm"
    if transport != "state":
        raise PipelineError(
            f"unknown REPRO_STREAM_TRANSPORT {forced!r}")
    return "state"


# -- shared-memory block transport ----------------------------------------

#: Column order is part of the descriptor contract.
_BLOCK_COLUMNS = ("texture_id", "level", "tu", "tv",
                  "tu_raw", "tv_raw", "kind", "x", "y")


def _pack_block(shared_memory, block, name=None) -> dict:
    """Copy one block's columns into a fresh shared-memory segment;
    returns the descriptor the consumer rebuilds views from.  The
    producer disowns the segment (the consumer unlinks after
    folding), so exactly one process ever frees it.  ``name`` scopes
    the segment to the pool's unique prefix so a forced shutdown can
    sweep stragglers by glob."""
    arrays = {}
    for column in _BLOCK_COLUMNS:
        data = getattr(block, column)
        if data is not None:
            arrays[column] = np.ascontiguousarray(data)
    columns = {}
    offset = 0
    for column, data in arrays.items():
        columns[column] = (str(data.dtype), tuple(data.shape), offset)
        offset += data.nbytes
    segment = shared_memory.SharedMemory(create=True, size=max(1, offset),
                                         name=name)
    try:
        for column, (dtype, shape, start) in columns.items():
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf,
                              offset=start)
            view[...] = arrays[column]
            view = None
    finally:
        descriptor = {
            "shm": segment.name,
            "columns": columns,
            "n_fragments": int(block.n_fragments),
            "index": int(block.index) if block.index is not None else 0,
        }
        segment.close()
        _disown_segment(segment)
    return descriptor


def _disown_segment(segment) -> None:
    """Transfer cleanup responsibility to the consumer.  Without this
    the producer's resource tracker would unlink the segment again at
    process exit -- after the parent already has -- and complain."""
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:
        pass


def _consume_shm_block(shared_memory, descriptor, fold) -> None:
    """Rebuild a block from its shared segment, run ``fold(block)``
    (which must not retain views -- address mapping copies), then
    close and unlink the segment."""
    segment = shared_memory.SharedMemory(name=descriptor["shm"])
    block = columns = None
    try:
        columns = dict.fromkeys(_BLOCK_COLUMNS)
        for name, (dtype, shape, start) in descriptor["columns"].items():
            columns[name] = np.ndarray(tuple(shape), dtype=dtype,
                                       buffer=segment.buf, offset=start)
        block = FragmentBlock(n_fragments=descriptor["n_fragments"],
                              index=descriptor["index"], **columns)
        fold(block)
    finally:
        block = columns = None
        try:
            segment.close()
        except BufferError:
            pass  # a failing fold can pin views; unlink still works
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


def _discard_segment(descriptor) -> None:
    """Best-effort unlink of an unconsumed in-flight segment (error
    and shutdown paths)."""
    shared_memory = _shm_module()
    if shared_memory is None:
        return
    try:
        segment = shared_memory.SharedMemory(name=descriptor["shm"])
        segment.close()
        segment.unlink()
    except Exception:
        pass


def _purge_segments(prefix: str, extra=()) -> None:
    """Unlink every shared segment a pool may have left behind: the
    tracked in-flight names plus anything matching the pool's unique
    name prefix -- covering segments still queued, packed by a worker
    that died before shipping, or mid-consume when a forced shutdown
    struck."""
    shared_memory = _shm_module()
    if shared_memory is None:
        return
    names = {name for name in extra if name}
    shm_dir = Path("/dev/shm")
    if prefix and shm_dir.is_dir():
        try:
            names.update(entry.name for entry in shm_dir.glob(prefix + "*"))
        except OSError:
            pass
    for name in names:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except Exception:
            continue
        try:
            segment.close()
            segment.unlink()
        except Exception:
            pass


# -- worker side -----------------------------------------------------------

#: Per-worker memo of the last built scene / placements: an experiment
#: grid re-renders and re-folds the same scene across many rows, and
#: the pool persists across rows, so this is where scene builds
#: amortize.  Size-one on purpose (bounded worker RSS).
_SCENES: dict = {}
_PLACEMENTS: dict = {}
_READERS: dict = {}


def _cached_scene(spec):
    from .streaming import _build_scene
    key = (spec.scene, float(spec.scale), float(spec.time))
    if key not in _SCENES:
        _SCENES.clear()
        _PLACEMENTS.clear()
        _SCENES[key] = _build_scene(spec)
    return _SCENES[key]


def _cached_placements(spec, layout_spec):
    key = (spec.scene, float(spec.scale), float(spec.time),
           tuple(layout_spec))
    if key not in _PLACEMENTS:
        _PLACEMENTS.clear()
        _PLACEMENTS[key] = place_textures(
            _cached_scene(spec).get_mipmaps(),
            layout_from_spec(layout_spec))
    return _PLACEMENTS[key]


def _cached_reader(root: str, spec):
    """Open (and envelope-verify) a chunked trace once per worker, not
    once per fold job: a published trace is immutable and an experiment
    grid folds the same trace once per profile pair, so re-verifying
    every part's checksum on every job dominates small fold ranges."""
    key = (root, fingerprint(spec.payload()))
    if key not in _READERS:
        reader = ArtifactStore(root).open_render_blocks(spec)
        if reader is None:
            return None  # never cache a miss: the trace may land later
        _READERS.clear()
        _READERS[key] = reader
    return _READERS[key]


def _bind_to_parent_lifetime() -> None:
    """Linux: ask the kernel to SIGTERM this worker when its parent
    dies (``PR_SET_PDEATHSIG``).  A parent killed without cleanup --
    SIGKILL, ``os._exit`` -- must not leave orphaned workers blocked
    forever on the task queue; crash-resume replaces them on the next
    run."""
    try:
        import ctypes
        import signal as signals
        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signals.SIGTERM, 0, 0, 0)  # 1 = PR_SET_PDEATHSIG
    except Exception:
        pass  # non-Linux hosts: orphans idle until their queue closes


def _worker_loop(tasks, events, heartbeats, block_credits, slot) -> None:
    """Generic persistent worker: render and fold ranges until the
    ``None`` sentinel.  A task failure is reported as an event and the
    worker lives on; only a hard crash kills it.  The worker stamps
    ``heartbeats[slot]`` at task pickup and per block/part so the
    supervisor can tell wedged from slow."""
    _bind_to_parent_lifetime()
    while True:
        task = tasks.get()
        if task is None:
            break
        kind, job = task
        heartbeats[slot] = time.monotonic()

        def beat():
            heartbeats[slot] = time.monotonic()

        events.put(("started", job.get("fold", 0), job.get("range", -1),
                    job.get("attempt", 0), slot, os.getpid()))
        try:
            if kind == "render":
                _worker_render(job, events, beat, block_credits)
            elif kind == "fold":
                _worker_fold(job, events, beat)
            elif kind == "foldparts":
                _worker_fold_parts(job, events, beat)
            else:
                raise RuntimeError(f"unknown stream task {kind!r}")
        except Exception:
            events.put(("error", job.get("fold", 0), job.get("range", -1),
                        job.get("attempt", 0), traceback.format_exc()))
        beat()


def _run_worker_fault(fault, store) -> None:
    """Execute an armed render-block fault directive in the worker."""
    if fault.action == "kill-worker":
        os._exit(1)  # a hard crash: no cleanup, like the OOM killer
    elif fault.action == "wedge-worker":
        time.sleep(float(fault.param("seconds", 3600.0)))
    elif fault.action == "enospc":
        # What ArtifactStore._demote does when the disk fills, minus
        # the warning: writes silently stop persisting mid-range.
        store._demoted = True


def _worker_render(job: dict, events, beat, block_credits=None) -> None:
    """Render one triangle slice: persist its parts (strided index
    space), fold them inline (state transport) or ship each block to
    the folding parent (shm/store), report envelopes.  A completed
    range also leaves a completion record in the store so an
    interrupted run can resume from its parts."""
    if os.environ.get("REPRO_FAULT_STREAM_POOL") == "die":
        os._exit(1)  # legacy whole-pool fault: every attempt dies
    spec = job["trace_spec"]
    store = ArtifactStore(job["root"])
    writer = store.open_render_writer(spec, part_base=job["part_base"])
    shared_memory = _shm_module() if job["transport"] == "shm" else None
    states = placements = None
    if job["transport"] == "state":
        from .streaming import _fold_block_into
        placements = _cached_placements(spec, job["layout_spec"])
        states = {pair: PartialSetProfile.empty(*pair)
                  for pair in job["pairs"]}
    totals: dict = {}
    blocks = render_trace_blocks(
        _cached_scene(spec), job["chunk_size"],
        order=order_from_spec(spec.order), raster=spec.raster,
        record_positions=spec.record_positions,
        max_anisotropy=spec.max_anisotropy, lod_bias=spec.lod_bias,
        use_mipmaps=spec.use_mipmaps, totals=totals,
        triangle_slice=(job["range"], job["n_ranges"]))
    n_blocks = 0
    for block in blocks:
        fault = faults.maybe_fault("render-block", range=job["range"],
                                   block=n_blocks)
        if fault is not None:
            _run_worker_fault(fault, store)
        writer.append(block)
        if states is not None:
            _fold_block_into(states, block.byte_addresses(placements))
        elif shared_memory is not None:
            if block_credits is not None:
                # Backpressure: one credit per in-flight segment, given
                # back by the parent on receipt.
                block_credits.acquire()
            segment_name = (f"{job.get('shm_prefix', '')}"
                            f"f{job.get('fold', 0)}r{job['range']}"
                            f"b{n_blocks}a{job.get('attempt', 0)}")
            descriptor = _pack_block(shared_memory, block,
                                     name=segment_name)
            drop = faults.maybe_fault("ship-block", range=job["range"],
                                      block=n_blocks)
            if drop is not None:
                _discard_segment(descriptor)  # ships a dangling handle
            events.put(("block", job.get("fold", 0), job["range"],
                        job.get("attempt", 0), n_blocks, descriptor))
        elif len(writer.part_envelopes) != n_blocks + 1:
            # Store transport folds off the part files, so a part that
            # failed to persist (demoted store) would hang the parent.
            raise RuntimeError(
                "store transport needs every part persisted")
        n_blocks += 1
        beat()
    envelopes, complete, has_positions = writer.finish_parts()
    totals.pop("per_triangle_fragments", None)
    totals["has_positions"] = has_positions
    payload = {"envelopes": envelopes, "complete": complete,
               "totals": totals, "n_blocks": n_blocks}
    if complete:
        # On disk before the parent hears "done": a parent killed right
        # after this range completed can still resume from it.
        store.save_range_record(spec, job["range"],
                                {"range": job["range"], **payload})
    if states is not None:
        payload["states"] = states
    events.put(("range_done", job.get("fold", 0), job["range"],
                job.get("attempt", 0), payload))


def _worker_fold(job: dict, events, beat) -> None:
    """Fold one contiguous part range of a warm chunked trace into
    per-pair partial states (picklable; parent merges in part order)."""
    from .streaming import _fold_block_into
    reader = _cached_reader(job["root"], job["trace_spec"])
    if reader is None:
        raise RuntimeError("chunked trace vanished under the fold")
    placements = _cached_placements(job["trace_spec"], job["layout_spec"])
    states = {pair: PartialSetProfile.empty(*pair)
              for pair in job["pairs"]}
    for index in range(job["lo"], job["hi"]):
        _fold_block_into(states,
                         reader.read_part(index).byte_addresses(placements))
        beat()
    events.put(("fold_done", job.get("fold", 0), job["range"],
                job.get("attempt", 0), states))


def _worker_fold_parts(job: dict, events, beat) -> None:
    """Fold the explicitly named (envelope-verified) part files of one
    resumed range -- the crash-resume analog of :func:`_worker_fold`,
    which cannot be used because an interrupted render has no sidecar
    to open a reader from."""
    from .streaming import _fold_block_into
    spec = job["trace_spec"]
    placements = _cached_placements(spec, job["layout_spec"])
    states = {pair: PartialSetProfile.empty(*pair)
              for pair in job["pairs"]}
    for sequence, name in enumerate(job["parts"]):
        block = load_part_block(job["root"], name, sequence)
        _fold_block_into(states, block.byte_addresses(placements))
        beat()
    events.put(("fold_done", job.get("fold", 0), job["range"],
                job.get("attempt", 0), states))


# -- the persistent pool ---------------------------------------------------

#: Distinguishes the shared-memory prefixes of pools created in one
#: process lifetime (a test teardown/rebuild cycle reuses the PID).
_POOL_SEQ = itertools.count()

#: Process-wide respawn counter: folds snapshot it around their run to
#: attribute respawns (including ones performed by ``get_pool``
#: between folds) without double counting.
_RESPAWNS_TOTAL = 0


class StreamPool:
    """A persistent pool of streaming workers plus the two queues that
    connect them to the parent.  One pool serves every fold of every
    row of an experiment grid; individual dead workers are respawned
    in place (:meth:`respawn_dead`) and the pool is only rebuilt when
    the worker count changes."""

    def __init__(self, workers: int):
        import multiprocessing
        self.workers = int(workers)
        self._context = multiprocessing.get_context()
        self.tasks = self._context.Queue()
        # Unbounded on purpose: a bounded queue's slot semaphore is
        # acquired at put() but only released when the parent receives
        # the message, so a worker crashing between put() and its
        # feeder thread's flush would leak the slot forever -- enough
        # crashes and every future worker wedges inside put().  Block
        # backpressure (the reason the queue used to be bounded) moved
        # to ``block_credits``, which the parent can repair on death.
        self.events = self._context.Queue()
        #: Shm-transport backpressure: workers take one credit per
        #: in-flight block (before packing its segment) and the parent
        #: returns it on receipt, capping in-flight segments -- and
        #: therefore peak RSS -- at a few blocks.  A worker that dies
        #: holding a credit leaks at most one; the supervisor
        #: compensates per observed death (BoundedSemaphore caps any
        #: over-compensation at the original capacity).
        self.block_credits = self._context.BoundedSemaphore(
            max(4, 2 * self.workers))
        #: Worker liveness stamps (``time.monotonic`` is system-wide on
        #: the platforms with fork, so parent and child clocks agree).
        self.heartbeats = self._context.Array("d", self.workers)
        #: Monotonic per-pool fold counter: events carry the fold id
        #: they belong to, so a fold never consumes a predecessor's
        #: stragglers (a worker may outlive the fold that queued its
        #: task).
        self.fold_id = 0
        self.respawns = 0
        #: Unique prefix for this pool's shared-memory segments, so a
        #: forced shutdown can sweep leaked segments by glob.
        self.shm_prefix = f"repro{os.getpid()}s{next(_POOL_SEQ)}"
        #: Segment names the parent has received but not yet consumed;
        #: unlinked on shutdown if a failure strands them.
        self.inflight_segments: set = set()
        self.processes = [None] * self.workers
        for slot in range(self.workers):
            self._spawn(slot)

    def _spawn(self, slot: int) -> None:
        self.heartbeats[slot] = time.monotonic()
        process = self._context.Process(
            target=_worker_loop,
            args=(self.tasks, self.events, self.heartbeats,
                  self.block_credits, slot),
            name=f"stream-worker-{slot}", daemon=True)
        process.start()
        self.processes[slot] = process

    def replenish_block_credit(self) -> None:
        """Return one shm block credit (on block receipt, or as
        compensation for a worker that died holding one)."""
        try:
            self.block_credits.release()
        except ValueError:
            pass  # already at full capacity: nothing was leaked

    def alive(self) -> bool:
        return all(process.is_alive() for process in self.processes)

    def dead_slots(self) -> list:
        return [slot for slot, process in enumerate(self.processes)
                if not process.is_alive()]

    def respawn_dead(self) -> int:
        """Replace every dead worker with a fresh fork of the parent
        (which re-inherits the copy-on-write scene memo seeded before
        the original pool start).  Returns the number respawned."""
        global _RESPAWNS_TOTAL
        respawned = 0
        for slot in self.dead_slots():
            try:
                self.processes[slot].join(timeout=0)  # reap the zombie
            except Exception:
                pass
            self._spawn(slot)
            respawned += 1
        self.respawns += respawned
        _RESPAWNS_TOTAL += respawned
        return respawned

    def kill_slot(self, slot: int) -> None:
        """Terminate one (presumed wedged) worker so
        :meth:`respawn_dead` can replace it."""
        process = self.processes[slot]
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)

    def shutdown(self, force: bool = False) -> None:
        if not force:
            for _ in self.processes:
                try:
                    self.tasks.put_nowait(None)
                except Exception:
                    break
            for process in self.processes:
                process.join(timeout=5.0)
        for process in self.processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
        # Unlink any in-flight shared segments still queued, then sweep
        # the pool's whole segment namespace: a forced shutdown can
        # strand segments that were packed but never queued (producer
        # killed mid-put) or received but never consumed.
        while True:
            try:
                message = self.events.get_nowait()
            except Exception:
                break
            if message and message[0] == "block":
                _discard_segment(message[5])
        _purge_segments(self.shm_prefix, self.inflight_segments)
        self.inflight_segments.clear()
        for channel in (self.tasks, self.events):
            try:
                channel.close()
                channel.cancel_join_thread()
            except Exception:
                pass


_POOL: StreamPool = None


def _seed_pool_memos(spec, layout_spec, workers: int) -> None:
    """Pre-build the scene (and, given a layout, the placements) in the
    parent when a fresh pool is about to fork: children inherit the
    worker memos copy-on-write, so the whole pool pays one scene build
    -- mipmaps included -- instead of one per worker.  Texture
    synthesis dominates cold time on small scenes, and the duplicated
    builds also contended for memory bandwidth.  Also the reason
    respawned workers stay cheap: they fork from a parent whose memo is
    already warm.  No-op when the pool already exists with every worker
    alive (the forks already happened) or the start method cannot
    inherit parent memory."""
    import multiprocessing
    if _POOL is not None and _POOL.workers == int(workers) \
            and _POOL.alive():
        return
    if multiprocessing.get_start_method() != "fork":
        return
    if layout_spec is not None:
        _cached_placements(spec, layout_spec)
    else:
        _cached_scene(spec).get_mipmaps()


def get_pool(workers: int) -> StreamPool:
    """The process-wide persistent pool, (re)built on first use or on a
    worker-count change.  Workers that died since the last fold are
    respawned in place -- a cheap liveness check instead of failing the
    first post-crash dispatch or tearing down the whole pool -- and
    only an unrespawnable pool is replaced."""
    global _POOL
    workers = int(workers)
    if _POOL is not None and _POOL.workers != workers:
        _POOL.shutdown(force=not _POOL.alive())
        _POOL = None
    if _POOL is not None and not _POOL.alive():
        try:
            _POOL.respawn_dead()
        except Exception:
            _POOL.shutdown(force=True)
            _POOL = None
    if _POOL is None:
        _POOL = StreamPool(workers)
    return _POOL


def shutdown_stream_pool() -> None:
    """Tear down the persistent pool (idempotent; re-created lazily)."""
    global _POOL
    pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown()


def _break_pool() -> None:
    """Hard-stop a pool in an unknown state (failed run): a clean one
    is rebuilt on the next fold."""
    global _POOL
    pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown(force=True)


atexit.register(shutdown_stream_pool)


# -- parent-side supervision -----------------------------------------------

class _Supervision:
    """Parent-side supervisor for one pipelined fold: tracks which
    worker owns which range (via ``started`` events), detects dead and
    wedged workers, respawns them, and re-dispatches only the failed
    ranges with bounded retries and exponential backoff.  A range that
    exhausts the budget becomes *residual* -- recovered serially by
    the caller -- instead of failing the fold."""

    def __init__(self, pool: StreamPool, jobs: dict,
                 report: StreamReport, label: str):
        self.pool = pool
        self.report = report
        self.label = label
        self.jobs = dict(jobs)  # range index -> (task kind, job dict)
        self.attempt = {index: 0 for index in self.jobs}
        self.tries = {index: 0 for index in self.jobs}
        self.dispatched_at: dict = {}
        self.owner: dict = {}       # range index -> worker slot
        self.slot_range: dict = {}  # worker slot -> range index
        self.complete: set = set()
        self.residual: dict = {}    # range index -> first terminal reason
        self.retry_at: list = []    # (due monotonic time, range index)
        self.first_failed_at: dict = {}
        self.on_retry = None        # transport hook: reset partial fold
        self.compensate_credits = False  # shm fold: repair leaked credits
        self.timeout = _job_timeout_s()

    # -- dispatch ---------------------------------------------------------

    def dispatch(self, index: int) -> None:
        kind, job = self.jobs[index]
        self.tries[index] += 1
        self.dispatched_at[index] = time.monotonic()
        self.pool.tasks.put((kind, dict(job, attempt=self.attempt[index],
                                        fold=self.pool.fold_id)))

    def dispatch_all(self) -> None:
        for index in self.jobs:
            self.dispatch(index)

    def flush_due(self) -> bool:
        """Dispatch retries whose backoff has elapsed (the event loop
        stays non-blocking: the parent never sleeps a backoff)."""
        if not self.retry_at:
            return False
        now = time.monotonic()
        due = [index for when, index in self.retry_at if when <= now]
        if not due:
            return False
        self.retry_at = [(when, index) for when, index in self.retry_at
                         if when > now]
        for index in due:
            self.dispatch(index)
        return True

    # -- bookkeeping ------------------------------------------------------

    def current(self, index: int, attempt: int) -> bool:
        """Whether an event belongs to the range's current attempt."""
        return self.attempt.get(index) == attempt

    def note_started(self, index: int, attempt: int, slot: int) -> None:
        if index in self.complete or index in self.residual \
                or not self.current(index, attempt):
            return
        previous = self.owner.get(index)
        if previous is not None:
            self.slot_range.pop(previous, None)
        self.owner[index] = slot
        self.slot_range[slot] = index

    def note_complete(self, index: int) -> None:
        self.complete.add(index)
        self.residual.pop(index, None)  # a late success beats recovery
        slot = self.owner.pop(index, None)
        if slot is not None:
            self.slot_range.pop(slot, None)
        failed_at = self.first_failed_at.pop(index, None)
        if failed_at is not None:
            self.report.recovery_s += time.monotonic() - failed_at

    def fail(self, index: int, why: str) -> None:
        """Record one attempt failure: schedule a backoff retry inside
        the budget, park the range as residual beyond it."""
        if index in self.complete or index in self.residual \
                or index not in self.jobs:
            return
        slot = self.owner.pop(index, None)
        if slot is not None:
            self.slot_range.pop(slot, None)
        self.attempt[index] += 1
        self.first_failed_at.setdefault(index, time.monotonic())
        self.report.note(f"{self.label} range {index}: {why}")
        if self.on_retry is not None:
            self.on_retry(index)
        if self.tries[index] > STREAM_RETRIES:
            self.residual[index] = why
            self.report.residual_ranges += 1
            return
        self.report.retried_ranges += 1
        delay = STREAM_BACKOFF_S * (2 ** (self.tries[index] - 1))
        delay *= 0.5 + random.random()  # jitter, as in the warm pool
        self.retry_at.append((time.monotonic() + delay, index))

    # -- health -----------------------------------------------------------

    def check_health(self) -> bool:
        """Detect dead and wedged workers; fail their ranges and
        respawn replacements.  Returns True when it acted (which counts
        as progress for the stall detector)."""
        acted = False
        pool = self.pool
        dead = pool.dead_slots()
        unattributed = 0
        for slot in dead:
            index = self.slot_range.get(slot)
            if index is not None:
                self.fail(index, f"worker died (slot {slot})")
                acted = True
            else:
                unattributed += 1
        if unattributed:
            # A worker that crashes right after claiming a task usually
            # kills its queue feeder thread before the "started" event
            # flushes, so the death cannot be attributed to a range.
            # Each dead worker held at most one task: fail the oldest
            # in-flight unattributed ranges, one per death.  If the
            # guess is wrong (the worker died idle, or the claim event
            # is still in the queue), the duplicate dispatch is safe --
            # stale attempts are filtered and duplicate part publishes
            # are atomic replaces of identical bytes.
            pending_retry = {index for _, index in self.retry_at}
            candidates = sorted(
                (index for index in self.jobs
                 if index not in self.complete
                 and index not in self.residual
                 and index not in self.owner
                 and index not in pending_retry),
                key=lambda index: self.dispatched_at.get(index, 0.0))
            for index in candidates[:unattributed]:
                self.fail(index, "worker died before reporting its range")
                acted = True
        if dead:
            if self.compensate_credits:
                # A worker killed between taking a block credit and the
                # parent receiving the block leaks that credit.  Each
                # death can hold at most one, so return one per death;
                # the BoundedSemaphore caps over-compensation at the
                # original capacity.
                for _ in dead:
                    pool.replenish_block_credit()
            started = time.monotonic()
            if pool.respawn_dead():
                self.report.recovery_s += time.monotonic() - started
                acted = True
        now = time.monotonic()
        for slot, index in list(self.slot_range.items()):
            if now - pool.heartbeats[slot] <= self.timeout:
                continue
            pool.kill_slot(slot)
            if self.compensate_credits:
                pool.replenish_block_credit()
            self.fail(index, f"worker wedged (slot {slot}: no heartbeat "
                             f"for {self.timeout:.0f}s)")
            pool.respawn_dead()
            acted = True
        # A task dispatched but never started past the deadline has
        # fallen out of the queue (poisoned pickle, queue feeder died
        # with the worker); re-dispatching a duplicate is safe -- a
        # straggler's stale-attempt events are filtered, and duplicate
        # part publishes are atomic replaces of identical bytes.
        pending_retry = {index for _, index in self.retry_at}
        for index in self.jobs:
            if index in self.complete or index in self.residual \
                    or index in self.owner or index in pending_retry:
                continue
            if now - self.dispatched_at.get(index, now) > self.timeout:
                self.fail(index, "task lost (dispatched, never started)")
                acted = True
        return acted

    def finished(self) -> bool:
        return len(self.complete) + len(self.residual) == len(self.jobs)


def _last_line(text: str) -> str:
    lines = str(text).strip().splitlines()
    return lines[-1] if lines else str(text)


def _receive(pool: StreamPool, supervisor: _Supervision, message,
             handle) -> bool:
    """Route one event-queue message: filter stale folds, apply
    supervision events, delegate data events to the fold's handler.
    Returns True when the message constituted progress."""
    kind, fold, index, attempt = (message[0], message[1],
                                  message[2], message[3])
    if kind == "block":
        # Every shipped block holds one backpressure credit; give it
        # back on receipt no matter what happens to the block next.
        pool.replenish_block_credit()
    if fold != pool.fold_id:
        # A straggler from an earlier fold of this pool (its range was
        # retried or abandoned); only its segment needs freeing.
        if kind == "block":
            descriptor = message[5]
            pool.inflight_segments.discard(descriptor.get("shm"))
            _discard_segment(descriptor)
        return False
    if kind == "started":
        slot, pid = message[4], message[5]
        process = pool.processes[slot] \
            if 0 <= slot < len(pool.processes) else None
        if process is None or process.pid != pid:
            # The claim came from a previous incarnation of this slot:
            # the claimer died (and was respawned) before its event was
            # drained, so its range needs a retry *now* -- mapping it
            # to the idle replacement would stall it until the job
            # deadline.
            if supervisor.current(index, attempt):
                supervisor.fail(
                    index, f"worker died at startup (slot {slot})")
            return True
        supervisor.note_started(index, attempt, slot)
        return True  # liveness: the range is in flight, not stalled
    if kind == "error":
        if index < 0:
            raise PipelineError(
                f"stream worker failed:\n{message[4]}")
        if supervisor.current(index, attempt):
            supervisor.fail(
                index, f"worker task failed: {_last_line(message[4])}")
        return True
    return handle(kind, index, attempt, message)


def _drive(pool: StreamPool, supervisor: _Supervision, handle,
           poll=None, what: str = "pipelined fold") -> None:
    """The supervised event loop shared by the warm and cold folds:
    flush due retries, consume events, run the transport's readiness
    poll, check worker health on a short period, and declare a stall
    only when nothing -- events, polls, recoveries -- has progressed
    for :data:`NO_PROGRESS_TIMEOUT_S`."""
    last_progress = last_health = time.monotonic()
    while not supervisor.finished():
        if supervisor.flush_due():
            last_progress = time.monotonic()
        try:
            message = pool.events.get(timeout=EVENT_POLL_S)
        except Empty:
            message = None
        progressed = False
        if message is not None:
            progressed = _receive(pool, supervisor, message, handle)
        if poll is not None and poll():
            progressed = True
        now = time.monotonic()
        if progressed:
            last_progress = now
            continue
        if now - last_health >= HEALTH_POLL_S:
            last_health = now
            if supervisor.check_health():
                last_progress = now
                continue
        if now - last_progress > NO_PROGRESS_TIMEOUT_S:
            raise PipelineError(
                f"{what} stalled (no progress for "
                f"{NO_PROGRESS_TIMEOUT_S:.0f}s)")


def _maybe_kill_run(done_count: int) -> None:
    """Chaos hook: crash the *parent* after ``after`` ranges completed
    (``kill-run`` in ``REPRO_FAULT_PLAN``) -- the deterministic stand-in
    for SIGKILL in crash-resume tests."""
    fault = faults.maybe_fault("range-complete", after=done_count)
    if fault is None:
        return
    if fault.param("mode", "raise") == "exit":
        os._exit(42)
    raise faults.InjectedCrash(
        f"injected parent crash after {done_count} completed range(s)")


# -- parent-side drivers ---------------------------------------------------

def fold_pipelined(profiles, pairs) -> dict:
    """Compute every pair's :class:`PartialSetProfile` for
    ``profiles`` (a :class:`~repro.engine.streaming.StreamedProfiles`)
    through the pipelined pool, self-healing per range.  Raises
    :class:`PipelineError` -- with the pool torn down -- only when the
    pipeline is unusable or no range succeeded, so the caller can
    rerun the serial path."""
    pairs = tuple(pairs)
    if int(profiles.stream_workers) < 2:
        raise PipelineError("pipelined fold needs stream_workers >= 2")
    report = _report_of(profiles)
    report.folds += 1
    respawns_before = _RESPAWNS_TOTAL
    try:
        return _fold_dispatch(profiles, pairs)
    except PipelineError:
        _break_pool()
        raise
    except Exception as fault:
        _break_pool()
        raise PipelineError(f"{type(fault).__name__}: {fault}") from fault
    finally:
        report.respawns += _RESPAWNS_TOTAL - respawns_before


def _fold_dispatch(profiles, pairs) -> dict:
    store = profiles.store
    spec = profiles.trace_spec
    reader = store.open_render_blocks(spec)
    if reader is None and store.load_render(spec) is not None:
        # Monolithic artifact: re-chunk it (serial, IO-bound) so the
        # warm parallel fold below has parts to fan out.
        reader = profiles._ensure_chunked()
        if reader is None:
            raise PipelineError(
                "store cannot hold the chunked representation")
    if reader is not None:
        if len(reader) < 2:
            raise PipelineError("single-part trace (nothing to fan out)")
        return _fold_warm(profiles, pairs, reader)
    return _fold_cold(profiles, pairs)


def _fold_warm(profiles, pairs, reader) -> dict:
    """Fan a warm chunked trace's part ranges over the pool."""
    report = _report_of(profiles)
    _seed_pool_memos(profiles.trace_spec, profiles.layout_spec,
                     profiles.stream_workers)
    pool = get_pool(profiles.stream_workers)
    n_parts = len(reader)
    n_ranges = min(n_parts, pool.workers * RANGES_PER_WORKER)
    bounds = np.linspace(0, n_parts, n_ranges + 1).astype(int)
    jobs = {index: ("fold", {"range": index,
                             "root": str(profiles.store.root),
                             "trace_spec": profiles.trace_spec,
                             "layout_spec": profiles.layout_spec,
                             "lo": int(lo), "hi": int(hi), "pairs": pairs})
            for index, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:]))
            if hi > lo}
    pool.fold_id += 1
    supervisor = _Supervision(
        pool, jobs, report, f"warm fold ({profiles.trace_spec.scene})")
    results: dict = {}

    def handle(kind, index, attempt, message):
        if kind != "fold_done":
            raise PipelineError(
                f"unexpected {kind!r} event in warm fold")
        if index in supervisor.complete:
            return False  # a duplicate attempt finished too; harmless
        results[index] = message[4]
        supervisor.note_complete(index)
        return True

    supervisor.dispatch_all()
    _drive(pool, supervisor, handle, what="pipelined warm fold")
    if supervisor.residual:
        if not supervisor.complete:
            raise PipelineError(
                "every warm fold range failed in the pool "
                f"({_last_line(next(iter(supervisor.residual.values())))})")
        _recover_residual_warm(profiles, pairs, reader, supervisor,
                               results, report)
    # merge() is associative-exact but not commutative: range order is
    # part order is stream order.
    states = {pair: PartialSetProfile.empty(*pair) for pair in pairs}
    for index in sorted(jobs):
        for pair in pairs:
            states[pair] = states[pair].merge(results[index][pair])
    return states


def _recover_residual_warm(profiles, pairs, reader, supervisor, results,
                           report) -> None:
    """Escalation rung two for the warm fold: fold the residual part
    ranges serially in the parent."""
    residual = sorted(supervisor.residual.items())
    started = time.monotonic()
    from .streaming import _fold_block_into
    placements = _cached_placements(profiles.trace_spec,
                                    profiles.layout_spec)
    for index, why in residual:
        _, job = supervisor.jobs[index]
        states = {pair: PartialSetProfile.empty(*pair) for pair in pairs}
        for part_index in range(job["lo"], job["hi"]):
            _fold_block_into(
                states,
                reader.read_part(part_index).byte_addresses(placements))
        results[index] = states
        supervisor.note_complete(index)
    report.recovery_s += time.monotonic() - started
    warnings.warn(
        f"pipelined warm fold recovered {len(residual)} residual "
        "range(s) serially in the parent after the retry budget",
        RuntimeWarning, stacklevel=6)


def _fold_cold(profiles, pairs) -> dict:
    """Render, persist and fold a cold trace concurrently, resuming
    from the verified parts of a previously interrupted run."""
    store = profiles.store
    spec = profiles.trace_spec
    report = _report_of(profiles)
    transport = _resolve_transport(store)
    # State transport: workers fold, so they need placements; shm and
    # store fold in the parent, whose own placements (profiles._placed)
    # live in a different memo -- seed the render-side scene only.
    _seed_pool_memos(spec,
                     profiles.layout_spec if transport == "state" else None,
                     profiles.stream_workers)
    pool = get_pool(profiles.stream_workers)
    # State transport folds inside the workers, so the parent never
    # maps a block and skips its own placements (the pre-fork seed
    # above builds the scene exactly once, in the worker memo).
    placements = None if transport == "state" else profiles._placed()
    digest = fingerprint(spec.payload())
    with store.single_flight("traces", digest):
        reader = store.open_render_blocks(spec)
        if reader is not None:
            # A racing process published the trace while we waited.
            if len(reader) < 2:
                raise PipelineError("single-part trace (nothing to fan out)")
            return _fold_warm(profiles, pairs, reader)
        from . import runner
        runner.RENDER_CALLS += 1
        plan, resumed = _load_resume(store, spec)
        if plan is None or not resumed:
            # Nothing usable survives: plan this run from scratch.
            store.discard_resume_state(spec)
            n_ranges = pool.workers * RANGES_PER_WORKER
            chunk_size = profiles.chunk_size
            store.save_stream_plan(spec, {
                "n_ranges": n_ranges, "chunk_size": int(chunk_size),
                "part_stride": PART_STRIDE, "created_at": time.time()})
            resumed = {}
        else:
            # Resume MUST reuse the interrupted run's slicing geometry:
            # the surviving parts embody its range bounds and chunk
            # size, and only identical bounds make "fold the survivors,
            # render the rest" bit-identical to an uninterrupted run.
            n_ranges = int(plan["n_ranges"])
            chunk_size = int(plan["chunk_size"])
            report.resumed_ranges += len(resumed)
            report.resumed_parts += sum(
                len(record["envelopes"]) for record in resumed.values())
            report.note(
                f"cold fold ({spec.scene}): resumed {len(resumed)}/"
                f"{n_ranges} range(s) from a prior interrupted render")
        jobs: dict = {}
        render_jobs: list = []
        for index in range(n_ranges):
            if index in resumed:
                jobs[index] = ("foldparts", {
                    "range": index, "root": str(store.root),
                    "trace_spec": spec,
                    "layout_spec": profiles.layout_spec, "pairs": pairs,
                    "parts": [entry["name"]
                              for entry in resumed[index]["envelopes"]]})
            else:
                job = {"range": index, "n_ranges": n_ranges,
                       "root": str(store.root), "trace_spec": spec,
                       "layout_spec": profiles.layout_spec, "pairs": pairs,
                       "chunk_size": chunk_size,
                       "part_base": index * PART_STRIDE,
                       "transport": transport,
                       "shm_prefix": pool.shm_prefix}
                jobs[index] = ("render", job)
                render_jobs.append(job)
        pool.fold_id += 1
        supervisor = _Supervision(pool, jobs, report,
                                  f"cold fold ({spec.scene})")
        supervisor.dispatch_all()
        states, done = _collect_cold(pool, supervisor, render_jobs,
                                     resumed, pairs, placements, store,
                                     spec, transport)
        if supervisor.residual:
            if not supervisor.complete:
                raise PipelineError(
                    "every render range failed in the pool "
                    f"({_last_line(next(iter(supervisor.residual.values())))})")
            _recover_residual_cold(profiles, supervisor, pairs, store,
                                   spec, states, done, report)
        merged = {pair: PartialSetProfile.empty(*pair) for pair in pairs}
        for index in range(n_ranges):
            for pair in pairs:
                merged[pair] = merged[pair].merge(states[index][pair])
        _publish_assembled(store, spec, done, n_ranges)
    return merged


def _load_resume(store, spec) -> tuple:
    """The interrupted-run plan and its verified completion records:
    ``(plan, {range index: record})``.  A record only qualifies when
    its geometry is sane and *every* part it lists passes a deep
    envelope check (checksum + size); anything else is discarded --
    along with its parts -- so a half-valid record can never smuggle a
    torn part into a resumed fold."""
    plan = store.load_stream_plan(spec)
    if not isinstance(plan, dict):
        return None, {}
    try:
        n_ranges = int(plan["n_ranges"])
        chunk_size = int(plan["chunk_size"])
        stride = int(plan.get("part_stride", -1))
    except (KeyError, TypeError, ValueError):
        return None, {}
    if stride != PART_STRIDE or n_ranges < 1 or chunk_size < 1:
        return None, {}
    digest = fingerprint(spec.payload())
    resumed = {}
    for index, record in sorted(store.load_range_records(spec).items()):
        envelopes = record.get("envelopes")
        names = [entry.get("name") for entry in envelopes
                 if isinstance(entry, dict)] \
            if isinstance(envelopes, list) else []
        expected = [
            f"{digest}.p{index * PART_STRIDE + seq:0{traceio.PART_DIGITS}d}"
            f".npz" for seq in range(len(names))]
        valid = (
            0 <= index < n_ranges
            and record.get("complete") is True
            and isinstance(envelopes, list)
            and record.get("n_blocks") == len(envelopes)
            and isinstance(record.get("totals"), dict)
            and names == expected
            and store.verify_part_list("traces", envelopes))
        if valid:
            resumed[index] = record
        else:
            store.discard_range_record(spec, index, names)
    return plan, resumed


def _collect_cold(pool, supervisor, render_jobs, resumed, pairs,
                  placements, store, spec, transport) -> tuple:
    """Drive the supervised event loop until every range is complete or
    residual.  State transport: render ranges arrive pre-folded.
    Shm/store: the parent folds each render range's blocks in order as
    they arrive (shared memory) or as their part files land (readiness
    polling).  Resumed ranges arrive pre-folded from ``foldparts``
    jobs on every transport."""
    from .streaming import _fold_block_into
    shared_memory = _shm_module()
    states = {index: {pair: PartialSetProfile.empty(*pair)
                      for pair in pairs} for index in supervisor.jobs}
    folded = {job["range"]: 0 for job in render_jobs}
    done = {index: dict(record) for index, record in resumed.items()}
    resumed_pending = set(resumed)
    pending = (ChunkedRenderReader.pending(store, spec)
               if transport == "store" else None)

    def fold_block(index, block):
        _fold_block_into(states[index], block.byte_addresses(placements))
        folded[index] += 1

    def reset_range(index):
        # A retry replays its range from the first block.  Only the shm
        # fold accumulated transient state to roll back: store-transport
        # retries republish identical parts (atomic replaces), so the
        # parent's fold position stays valid, and state-transport
        # ranges fold entirely in the worker.
        if transport == "shm" and index in folded:
            folded[index] = 0
            states[index] = {pair: PartialSetProfile.empty(*pair)
                             for pair in pairs}

    supervisor.on_retry = reset_range
    supervisor.compensate_credits = transport == "shm"

    def check_complete(index):
        if index in supervisor.complete or index in resumed_pending:
            return
        info = done.get(index)
        if info is None:
            return
        if transport != "state" and index in folded \
                and folded[index] < info["n_blocks"]:
            return
        supervisor.note_complete(index)
        _maybe_kill_run(len(supervisor.complete))

    def handle(kind, index, attempt, message):
        if kind == "block":
            descriptor = message[5]
            name = descriptor.get("shm")
            if transport != "shm" or index in supervisor.complete \
                    or not supervisor.current(index, attempt):
                pool.inflight_segments.discard(name)
                _discard_segment(descriptor)
                return False  # a stale attempt's block: free and ignore
            sequence = message[4]
            if sequence != folded.get(index):
                pool.inflight_segments.discard(name)
                _discard_segment(descriptor)
                supervisor.fail(index,
                                f"block {sequence} arrived at fold "
                                f"position {folded.get(index)}")
                return True
            pool.inflight_segments.add(name)
            try:
                _consume_shm_block(shared_memory, descriptor,
                                   lambda block: fold_block(index, block))
            except Exception as fault:
                supervisor.fail(index, "shm block unusable "
                                f"({type(fault).__name__}: {fault})")
            finally:
                pool.inflight_segments.discard(name)
            check_complete(index)
            return True
        if kind == "range_done":
            payload = message[4]
            if index in supervisor.complete:
                return False  # a duplicate attempt finished; harmless
            if transport == "shm" and not supervisor.current(index, attempt):
                return False  # the current attempt is re-shipping blocks
            if not payload.get("complete"):
                supervisor.fail(index, "range persisted incomplete "
                                       "(worker store demoted)")
                return True
            worker_states = payload.pop("states", None)
            if worker_states is not None:
                # State transport: the worker already folded its
                # range's blocks inline; nothing left to consume.
                states[index] = worker_states
                folded[index] = payload["n_blocks"]
            done[index] = payload
            check_complete(index)
            return True
        if kind == "fold_done":
            if index in supervisor.complete:
                return False
            states[index] = message[4]
            resumed_pending.discard(index)
            check_complete(index)
            return True
        raise PipelineError(f"unexpected {kind!r} event in cold fold")

    def poll():
        if pending is None:
            return False
        progressed = False
        for job in render_jobs:
            index = job["range"]
            if index in supervisor.complete:
                continue
            info = done.get(index)
            if info is not None and folded[index] >= info["n_blocks"]:
                continue
            while True:
                block = pending.poll_part(job["part_base"] + folded[index])
                if block is None:
                    break
                fold_block(index, block)
                progressed = True
            check_complete(index)
        return progressed

    _drive(pool, supervisor, handle, poll, what="pipelined cold fold")
    return states, done


def _recover_residual_cold(profiles, supervisor, pairs, store, spec,
                           states, done, report) -> None:
    """Escalation rung two for the cold fold: render (or, for a
    resumed range, fold) each residual range serially in the parent.
    The parent reuses the pre-fork scene memo, so no scene rebuild."""
    residual = sorted(supervisor.residual.items())
    started = time.monotonic()
    from .streaming import _fold_block_into
    placements = _cached_placements(spec, profiles.layout_spec)
    for index, why in residual:
        kind, job = supervisor.jobs[index]
        if kind == "render":
            range_states, payload = _render_range_inline(
                store, spec, job, pairs, placements)
            states[index] = range_states
            done[index] = payload
        else:  # a resumed range whose foldparts job kept failing
            range_states = {pair: PartialSetProfile.empty(*pair)
                            for pair in pairs}
            for sequence, name in enumerate(job["parts"]):
                _fold_block_into(
                    range_states,
                    load_part_block(store.root, name,
                                    sequence).byte_addresses(placements))
            states[index] = range_states
        supervisor.note_complete(index)
    report.recovery_s += time.monotonic() - started
    warnings.warn(
        f"pipelined cold fold recovered {len(residual)} residual "
        "range(s) serially in the parent after the retry budget",
        RuntimeWarning, stacklevel=6)


def _render_range_inline(store, spec, job, pairs, placements) -> tuple:
    """Render one residual triangle slice in the parent: the same
    persist/fold contract as :func:`_worker_render` (state transport),
    minus the event queue."""
    from .streaming import _fold_block_into
    writer = store.open_render_writer(spec, part_base=job["part_base"])
    states = {pair: PartialSetProfile.empty(*pair) for pair in pairs}
    totals: dict = {}
    n_blocks = 0
    for block in render_trace_blocks(
            _cached_scene(spec), job["chunk_size"],
            order=order_from_spec(spec.order), raster=spec.raster,
            record_positions=spec.record_positions,
            max_anisotropy=spec.max_anisotropy, lod_bias=spec.lod_bias,
            use_mipmaps=spec.use_mipmaps, totals=totals,
            triangle_slice=(job["range"], job["n_ranges"])):
        writer.append(block)
        _fold_block_into(states, block.byte_addresses(placements))
        n_blocks += 1
    envelopes, complete, has_positions = writer.finish_parts()
    totals.pop("per_triangle_fragments", None)
    totals["has_positions"] = has_positions
    payload = {"envelopes": envelopes, "complete": complete,
               "totals": totals, "n_blocks": n_blocks}
    if complete:
        store.save_range_record(spec, job["range"],
                                {"range": job["range"], **payload})
    return states, payload


def _publish_assembled(store, spec, done, n_ranges) -> bool:
    """Commit the sidecar over every range's parts, in range order,
    renumbered densely -- but only when *all* ranges persisted
    completely, so the artifact can never be partial.  Publishing (or
    even attempting the renumber, which consumes the strided parts)
    retires the run's crash-resume metadata; an incomplete set keeps
    it, so the completed ranges stay resumable."""
    infos = [done[index] for index in range(n_ranges)]
    if not store.available or not all(info["complete"] for info in infos):
        return False
    if any(len(info["envelopes"]) >= PART_STRIDE for info in infos):
        return False  # would alias another range's index space
    envelopes = [entry for info in infos for entry in info["envelopes"]]
    renamed = store.renumber_parts(spec, envelopes)
    if renamed is None:
        return False
    store.discard_resume_state(spec)  # records point at consumed names
    totals = dict(infos[0]["totals"])  # n_triangles_submitted is global
    totals["n_triangles_rasterized"] = sum(
        int(info["totals"]["n_triangles_rasterized"]) for info in infos)
    totals["has_positions"] = any(
        info["totals"].get("has_positions") for info in infos)
    published = store.publish_chunked_sidecar(spec, renamed, totals)
    if published:
        # Each part was hashed by the worker that wrote it; seeding
        # the parent's verify-once cache from those envelopes means
        # the first warm fold over this trace re-verifies with stats
        # instead of re-hashing the whole artifact.
        from . import tiers
        for entry in renamed:
            tiers.digest_cache().record(
                store.root / "traces" / entry["name"], entry["digest"])
    else:
        warnings.warn(
            f"pipelined render for {spec.scene} persisted its parts but "
            "could not publish the sidecar; the next run re-renders",
            RuntimeWarning, stacklevel=4)
    return published

"""The shared experiment engine (render -> trace -> simulate, once).

``repro.engine`` is the single entry point every consumer uses to
obtain pipeline intermediates:

* :class:`ArtifactStore` -- content-addressed on-disk cache of rendered
  traces, per-layout byte-address streams and stack-distance profiles
  (default ``benchmarks/.cache/``, overridable via ``REPRO_CACHE_DIR``);
* :class:`TraceSpec` / :class:`ExperimentSpec` -- declarative
  descriptions of one render or a whole sweep grid;
* :class:`Engine` / :func:`run_experiment` -- the runner that
  deduplicates shared stages and optionally fans scenes out across
  ``multiprocessing`` workers.

Quickstart::

    from repro.engine import Engine, ExperimentSpec, TraceSpec

    engine = Engine()                     # benchmarks/.cache store
    spec = TraceSpec("town", scale=0.25, order=("vertical",))
    streams = engine.streams(spec, ("blocked", 8))   # cached end to end
    result = engine.run(ExperimentSpec(scenes=("town",),
                                       layouts=(("blocked", 8),)))
"""

from .artifacts import (
    ArtifactStore,
    CorruptArtifact,
    PIPELINE_VERSION,
    StoreError,
    StoreUnavailable,
    addresses_payload,
    default_cache_dir,
    fingerprint,
    profile_payload,
    set_profile_payload,
)
from .tiers import (
    DigestCache,
    MemoryTier,
    RemoteTier,
    clear_process_caches,
    digest_cache,
    memory_tier,
    remote_tier,
)
from .spec import (
    ExperimentSpec,
    TraceSpec,
    layout_from_spec,
    order_from_spec,
    paper_order_spec,
    resolve_order_spec,
)
from .runner import (
    Engine,
    ExperimentResult,
    ExperimentRow,
    StoredTraceStreams,
    WarmReport,
    render_calls,
    reset_render_calls,
    run_experiment,
)
from .streaming import (
    DEFAULT_CHUNK_SIZE,
    StreamAuditReport,
    StreamedProfiles,
    StreamingAuditError,
    classify_streamed,
)
from .pipelined import (
    PipelineError,
    StreamReport,
    shutdown_stream_pool,
)

__all__ = [
    "ArtifactStore",
    "CorruptArtifact",
    "PIPELINE_VERSION",
    "StoreError",
    "StoreUnavailable",
    "addresses_payload",
    "default_cache_dir",
    "fingerprint",
    "profile_payload",
    "set_profile_payload",
    "DigestCache",
    "MemoryTier",
    "RemoteTier",
    "clear_process_caches",
    "digest_cache",
    "memory_tier",
    "remote_tier",
    "ExperimentSpec",
    "TraceSpec",
    "layout_from_spec",
    "order_from_spec",
    "paper_order_spec",
    "resolve_order_spec",
    "Engine",
    "ExperimentResult",
    "ExperimentRow",
    "StoredTraceStreams",
    "WarmReport",
    "render_calls",
    "reset_render_calls",
    "run_experiment",
    "DEFAULT_CHUNK_SIZE",
    "StreamAuditReport",
    "StreamedProfiles",
    "StreamingAuditError",
    "classify_streamed",
    "PipelineError",
    "StreamReport",
    "shutdown_stream_pool",
]

"""Constant-memory streaming execution of the simulate pipeline.

The in-RAM pipeline materializes a whole frame's texel trace, its
byte-address stream and the per-line-size collapsed streams before any
profile pass runs, so peak memory scales with trace length -- the cap
that kept experiments at reproduction scale 0.25.  This module folds
the same pipeline over bounded :class:`~repro.pipeline.trace.FragmentBlock`
chunks instead::

    render_blocks --> per-block byte addresses --> PartialSetProfile
    per (line_size, n_sets) --> merge --> finalize

:class:`StreamedProfiles` duck-types the ``profile``/``set_profile``/
``stream`` interface of :class:`~repro.core.sweep.TraceStreams` that
``miss_rate_curve`` and ``Engine._sweep_sizes`` consume, and loads or
saves the *same* store artifacts (``profiles/``, ``set_profiles/``)
under the same fingerprints -- so streamed and in-RAM runs warm each
other.  Because :meth:`~repro.core.kernels.PartialSetProfile.merge` is
exactly the profile of the concatenated stream, every downstream
number (miss-rate curves, 3C classification) is bit-identical to the
in-RAM path.

Peak RSS is bounded by ``O(chunk_size + distinct lines + scene
textures)``, independent of trace length.  ``shards > 1`` fans the
fold out over contiguous part ranges of the store's chunked trace
across a ``multiprocessing`` pool (the same pool discipline as the
warm phase); per-shard partial states merge associatively in part
order, so the sharded result is bit-identical too.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.cache import (
    CacheConfig,
    CacheStats,
    LineStream,
    collapse_consecutive,
    to_lines,
)
from ..core.classify import classify_misses
from ..core.kernels import (
    PartialSetProfile,
    SetDistanceProfile,
    per_set_distances,
    previous_occurrences,
)
from ..core.stackdist import DistanceProfile
from ..pipeline.renderer import render_trace_blocks
from ..pipeline.trace import iter_blocks
from ..scenes import ALL_SCENES
from ..texture.memory import place_textures
from .artifacts import (
    ArtifactStore,
    addresses_payload,
    fingerprint,
    profile_payload,
    set_profile_payload,
)
from .spec import TraceSpec, layout_from_spec, order_from_spec

#: Default block bound in texel accesses (~8 MB of trace columns).
DEFAULT_CHUNK_SIZE = 1 << 20


def _build_scene(spec: TraceSpec):
    return ALL_SCENES[spec.scene]().build(scale=spec.scale, time=spec.time)


def _fold_block_into(states: dict, addresses: np.ndarray) -> None:
    """Merge one block's addresses into every ``(line_size, n_sets)``
    partial state, sharing the line reduction, the consecutive-run
    collapse and the previous-occurrence argsort per line size."""
    by_line_size = {}
    for line_size, n_sets in states:
        by_line_size.setdefault(line_size, []).append(n_sets)
    for line_size, set_counts in by_line_size.items():
        lines = to_lines(addresses, line_size)
        if len(lines) == 0:
            continue
        run_lines, duplicate_hits = collapse_consecutive(lines)
        prev = previous_occurrences(run_lines)
        for n_sets in set_counts:
            key = (line_size, n_sets)
            states[key] = states[key].merge(PartialSetProfile.from_runs(
                run_lines, prev, duplicate_hits, len(lines),
                line_size, n_sets))


def _shard_fold_task(task) -> dict:
    """Pool worker: fold one contiguous part range of a chunked trace
    into per-pair partial states (picklable, merged by the parent).

    Scene/placements and the verified reader come from the pipelined
    module's worker memos: a forked worker inherits the parent's
    pre-built copies (and its verify-once digest cache) copy-on-write,
    so the shard pool pays zero scene builds and re-verifies parts
    with stats instead of hashes."""
    from .pipelined import _cached_placements, _cached_reader
    root, trace_spec, layout_spec, lo, hi, pairs = task
    reader = _cached_reader(root, trace_spec)
    if reader is None:
        raise RuntimeError("chunked trace artifact vanished under the fold")
    placements = _cached_placements(trace_spec, layout_spec)
    states = {pair: PartialSetProfile.empty(*pair) for pair in pairs}
    for index in range(lo, hi):
        _fold_block_into(states, reader.read_part(index).byte_addresses(
            placements))
    return states


class StreamingAuditError(RuntimeError):
    """A spot-audited part disagreed with the sequential reference
    oracle (or the folded profile disagreed with the trace totals)."""


@dataclass(frozen=True)
class StreamAuditReport:
    """What one streamed spot audit checked (it raises on failure)."""

    parts: tuple        # sampled part indices
    n_parts: int        # parts in the chunked trace
    pairs: tuple        # audited (line_size, n_sets) pairs
    accesses: int       # texel accesses replayed through the oracle


def _sequential_set_distances(run_lines, n_sets: int) -> tuple:
    """Per-access LRU stack distances of a collapsed run stream by the
    obvious sequential walk (one MRU-first list per set) -- the oracle
    the streamed spot audit replays against the vectorized kernel.
    Returns ``(distances, cold)`` matching
    :func:`~repro.core.kernels.per_set_distances` (distance values on
    cold accesses are unspecified there, so compare warm slots only).
    """
    distances = np.zeros(len(run_lines), dtype=np.int64)
    cold = np.zeros(len(run_lines), dtype=bool)
    stacks: dict = {}
    for position, line in enumerate(map(int, run_lines)):
        stack = stacks.setdefault(line % n_sets, [])
        try:
            depth = stack.index(line)
        except ValueError:
            cold[position] = True
        else:
            distances[position] = depth + 1
            del stack[depth]
        stack.insert(0, line)
    return distances, cold


class StreamedProfiles:
    """Distance profiles for one ``(trace, layout)`` computed as a
    constant-memory fold over fragment blocks.

    Drop-in for :class:`~repro.engine.runner.StoredTraceStreams` on the
    vectorized kernel; :meth:`stream` exists only to satisfy the duck
    check and raises, because streaming never materializes a
    :class:`~repro.core.cache.LineStream` (the reference simulator
    needs the in-RAM path).
    """

    def __init__(self, store: Optional[ArtifactStore], trace_spec: TraceSpec,
                 layout_spec, chunk_size: int = DEFAULT_CHUNK_SIZE,
                 shards: int = 0, stream_workers: int = 0):
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.store = store if store is not None else ArtifactStore()
        self.trace_spec = trace_spec
        self.layout_spec = tuple(layout_spec)
        self.chunk_size = int(chunk_size)
        self.shards = int(shards)
        self.stream_workers = int(stream_workers)
        self._payload = addresses_payload(trace_spec, self.layout_spec)
        self._profiles = {}
        self._set_profiles = {}
        self._scene = None
        self._placements = None
        #: Recovery observability: attached/updated by the pipelined
        #: fold (:class:`~repro.engine.pipelined.StreamReport`); stays
        #: ``None`` when every fold ran serially and undisturbed.
        self.stream_report = None

    # -- TraceStreams duck interface --------------------------------------

    def stream(self, line_size: int) -> LineStream:
        raise RuntimeError(
            "streaming mode never materializes a LineStream; the reference "
            "kernel needs the in-RAM path (drop --chunk-size/--shards)")

    def profile(self, line_size: int) -> DistanceProfile:
        """Fully-associative distance profile: the ``n_sets == 1``
        per-set profile under another name (identical fields)."""
        if line_size not in self._profiles:
            base = self.set_profile(line_size, 1)
            self._profiles[line_size] = DistanceProfile(
                counts=base.counts, cold=base.cold,
                duplicate_hits=base.duplicate_hits)
        return self._profiles[line_size]

    def set_profile(self, line_size: int, n_sets: int) -> SetDistanceProfile:
        key = (int(line_size), int(n_sets))
        if key not in self._set_profiles:
            self.prefetch([key])
        return self._set_profiles[key]

    def collapsed_runs(self, line_size: int) -> tuple:
        """The whole trace's collapsed line runs, folded block by block.

        Returns ``(run_lines, duplicate_hits)`` exactly equal to
        :func:`~repro.core.cache.collapse_consecutive` over the
        materialized line stream: each block collapses independently
        and a run straddling two blocks is stitched back into one
        (the dropped repeat is a guaranteed LRU hit, like any other
        suppressed duplicate).  Peak memory is one block plus the runs
        themselves -- no full trace or byte-address array is ever
        built.  Feeds :func:`~repro.core.kernels.sequence_stats` for
        multi-segment (e.g. inter-frame) simulations.
        """
        parts = []
        total = 0
        last = None
        for block in self._blocks():
            lines = to_lines(block.byte_addresses(self._placed()), line_size)
            total += len(lines)
            runs, _ = collapse_consecutive(lines)
            if last is not None and len(runs) and runs[0] == last:
                runs = runs[1:]
            if len(runs):
                last = int(runs[-1])
                parts.append(runs)
        run_lines = (np.concatenate(parts) if parts
                     else np.empty(0, dtype=np.int64))
        return run_lines, int(total - len(run_lines))

    # -- the fold ----------------------------------------------------------

    def prefetch(self, pairs) -> None:
        """Compute (or load from the store) every ``(line_size,
        n_sets)`` profile in ``pairs`` with at most one pass over the
        blocks -- the way to run a whole sweep grid at one render."""
        pairs = sorted({(int(line_size), int(n_sets))
                        for line_size, n_sets in pairs}
                       - set(self._set_profiles))
        remaining = []
        for pair in pairs:
            cached = self._load_cached(pair)
            if cached is not None:
                self._set_profiles[pair] = cached
            else:
                remaining.append(pair)
        if not remaining:
            return
        for pair, state in self._fold(remaining).items():
            profile = state.finalize()
            self._save_cached(pair, profile)
            self._set_profiles[pair] = profile

    def _fold(self, pairs) -> dict:
        if self.stream_workers > 1:
            from . import pipelined
            try:
                return pipelined.fold_pipelined(self, pairs)
            except pipelined.PipelineError as fault:
                report = pipelined._report_of(self)
                report.fallbacks += 1
                report.note(f"serial fallback: {fault}")
                warnings.warn(
                    f"pipelined streaming fold failed ({fault}); "
                    "falling back to the serial streaming path",
                    RuntimeWarning, stacklevel=3)
        if self.shards > 1:
            reader = self._ensure_chunked()
            if reader is not None and len(reader) > 1:
                try:
                    return self._fold_sharded(reader, pairs)
                except Exception as fault:  # pool death: correctness first
                    warnings.warn(
                        f"sharded profile fold failed ({fault}); "
                        "continuing in-process", RuntimeWarning,
                        stacklevel=3)
        states = {pair: PartialSetProfile.empty(*pair) for pair in pairs}
        for block in self._blocks():
            _fold_block_into(states, block.byte_addresses(self._placed()))
        return states

    def _fold_sharded(self, reader, pairs) -> dict:
        import multiprocessing

        if multiprocessing.get_start_method() == "fork":
            # Build placements once in the parent before the pool
            # forks: every worker inherits the memo copy-on-write
            # instead of re-synthesizing the scene's textures.
            from .pipelined import _cached_placements
            _cached_placements(self.trace_spec, self.layout_spec)
        n_parts = len(reader)
        shards = min(self.shards, n_parts)
        bounds = np.linspace(0, n_parts, shards + 1).astype(int)
        tasks = [(str(self.store.root), self.trace_spec, self.layout_spec,
                  int(lo), int(hi), tuple(pairs))
                 for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo]
        # Cap the pool at the machine: shards partition work, not
        # processes, and oversubscribing cores with one process per
        # shard only adds fork/teardown cost.
        processes = min(len(tasks), os.cpu_count() or 1)
        with multiprocessing.Pool(processes=processes) as pool:
            results = pool.map(_shard_fold_task, tasks)
        # merge() is associative and exact, so folding the per-shard
        # states in part order reproduces the serial fold bit for bit.
        states = {pair: PartialSetProfile.empty(*pair) for pair in pairs}
        for shard_states in results:
            for pair in pairs:
                states[pair] = states[pair].merge(shard_states[pair])
        return states

    # -- spot audit --------------------------------------------------------

    def audit(self, pairs, parts: int = 2) -> StreamAuditReport:
        """Replay ``parts`` evenly-sampled chunks of the trace through
        the sequential reference oracle and assert, per access, that
        the vectorized fold agrees.

        Streaming refuses the reference kernel (it needs the
        materialized stream), so this is the scoped substitute: for
        each sampled part and each ``(line_size, n_sets)`` pair it
        checks (1) the vectorized per-access stack distances and cold
        masks against a sequential per-set LRU walk, (2) the part's
        :class:`~repro.core.kernels.PartialSetProfile` against the
        oracle's histogram, and (3) the folded profile's access total
        against the chunked trace's counters.  Raises
        :class:`StreamingAuditError` on the first disagreement;
        returns a :class:`StreamAuditReport` describing the sample.
        """
        pairs = sorted({(int(line_size), int(n_sets))
                        for line_size, n_sets in pairs})
        if not pairs:
            raise ValueError("audit needs at least one pair")
        reader = self._ensure_chunked()
        if reader is None:
            raise StreamingAuditError(
                "spot audit needs the chunked trace in the store "
                "(store demoted?)")
        n_parts = len(reader)
        sampled = sorted({int(index) for index in np.linspace(
            0, n_parts - 1, max(1, min(int(parts), n_parts)))})
        by_line_size = {}
        for line_size, n_sets in pairs:
            by_line_size.setdefault(line_size, []).append(n_sets)
        accesses = 0
        texels_per_access = None
        for part_index in sampled:
            block = reader.read_part(part_index)
            addresses = block.byte_addresses(self._placed())
            if block.n_accesses:
                texels_per_access = len(addresses) // int(block.n_accesses)
            for line_size, set_counts in by_line_size.items():
                lines = to_lines(addresses, line_size)
                run_lines, duplicate_hits = collapse_consecutive(lines)
                for n_sets in set_counts:
                    self._audit_part(part_index, lines, run_lines,
                                     duplicate_hits, line_size, n_sets)
            accesses += int(block.n_accesses)
        for line_size, n_sets in pairs:
            profile = self.set_profile(line_size, n_sets)
            if texels_per_access and profile.total_accesses != \
                    texels_per_access * reader.n_accesses:
                raise StreamingAuditError(
                    f"folded ({line_size}B, {n_sets} sets) profile "
                    f"covers {profile.total_accesses} accesses; the "
                    f"chunked trace implies "
                    f"{texels_per_access * reader.n_accesses}")
        return StreamAuditReport(parts=tuple(sampled), n_parts=n_parts,
                                 pairs=tuple(pairs), accesses=accesses)

    def _audit_part(self, part_index, lines, run_lines, duplicate_hits,
                    line_size, n_sets) -> None:
        """One part x one pair: vectorized kernel vs sequential walk."""
        label = f"part {part_index}, ({line_size}B, {n_sets} sets)"
        vec_distances, vec_cold = per_set_distances(run_lines, n_sets)
        ref_distances, ref_cold = _sequential_set_distances(
            run_lines, n_sets)
        if not np.array_equal(vec_cold, ref_cold):
            raise StreamingAuditError(
                f"{label}: cold-access mask disagrees with the "
                "sequential oracle")
        if not np.array_equal(vec_distances[~vec_cold],
                              ref_distances[~ref_cold]):
            raise StreamingAuditError(
                f"{label}: per-access stack distances disagree with "
                "the sequential oracle")
        partial = PartialSetProfile.from_lines(lines, line_size, n_sets)
        warm = ref_distances[~ref_cold]
        counts = (np.bincount(warm) if len(warm)
                  else np.zeros(1, dtype=np.int64))
        nonzero = np.flatnonzero(counts)
        counts = (counts[:int(nonzero[-1]) + 1] if len(nonzero)
                  else np.zeros(1, dtype=np.int64))
        if not np.array_equal(partial.counts, counts) \
                or partial.duplicate_hits != duplicate_hits \
                or len(partial.open_lines) != int(ref_cold.sum()) \
                or partial.total_accesses != len(lines):
            raise StreamingAuditError(
                f"{label}: partial profile disagrees with the "
                "sequential oracle's histogram")

    # -- block sources -----------------------------------------------------

    def _blocks(self):
        """Yield the trace's blocks at constant memory: chunked store
        parts, a re-chunked monolithic artifact, or a fresh streaming
        render persisted part by part as it is consumed."""
        reader = self.store.open_render_blocks(self.trace_spec)
        if reader is not None:
            yield from reader
            return
        cached = self.store.load_render(self.trace_spec)
        if cached is not None:
            yield from iter_blocks(cached.trace, self.chunk_size)
            return
        yield from self._render_fresh_blocks()

    def _render_fresh_blocks(self):
        spec = self.trace_spec
        digest = fingerprint(spec.payload())
        with self.store.single_flight("traces", digest):
            reader = self.store.open_render_blocks(spec)
            if reader is not None:  # a racing process published it
                yield from reader
                return
            from . import runner
            runner.RENDER_CALLS += 1
            writer = self.store.open_render_writer(spec)
            totals = {}
            blocks = render_trace_blocks(
                self._built_scene(), self.chunk_size,
                order=order_from_spec(spec.order), raster=spec.raster,
                record_positions=spec.record_positions,
                max_anisotropy=spec.max_anisotropy, lod_bias=spec.lod_bias,
                use_mipmaps=spec.use_mipmaps, totals=totals)
            for block in blocks:
                writer.append(block)
                yield block
            writer.finish(totals)

    def _ensure_chunked(self):
        """The chunked-parts reader, rendering and/or re-chunking into
        the store first if needed; ``None`` when the store cannot hold
        it (demoted)."""
        reader = self.store.open_render_blocks(self.trace_spec)
        if reader is not None:
            return reader
        cached = self.store.load_render(self.trace_spec)
        if cached is not None:
            digest = fingerprint(self.trace_spec.payload())
            with self.store.single_flight("traces", digest):
                reader = self.store.open_render_blocks(self.trace_spec)
                if reader is not None:
                    return reader
                writer = self.store.open_render_writer(self.trace_spec)
                for block in iter_blocks(cached.trace, self.chunk_size):
                    writer.append(block)
                writer.finish({
                    "n_triangles_submitted": cached.n_triangles_submitted,
                    "n_triangles_rasterized": cached.n_triangles_rasterized})
        else:
            for _ in self._render_fresh_blocks():
                pass  # the generator persists parts as a side effect
        return self.store.open_render_blocks(self.trace_spec)

    # -- store round trip --------------------------------------------------

    def _load_cached(self, pair):
        line_size, n_sets = pair
        if n_sets == 1:
            profile = self.store.load_profile(
                profile_payload(self._payload, line_size))
            if profile is None:
                return None
            return SetDistanceProfile(
                line_size=line_size, n_sets=1, counts=profile.counts,
                cold=profile.cold, duplicate_hits=profile.duplicate_hits)
        return self.store.load_set_profile(
            set_profile_payload(self._payload, line_size, n_sets))

    def _save_cached(self, pair, profile: SetDistanceProfile) -> None:
        line_size, n_sets = pair
        if n_sets == 1:
            # Same artifact the in-RAM path persists, so either path
            # warms the other.
            self.store.save_profile(
                profile_payload(self._payload, line_size),
                DistanceProfile(counts=profile.counts, cold=profile.cold,
                                duplicate_hits=profile.duplicate_hits))
        else:
            self.store.save_set_profile(
                set_profile_payload(self._payload, line_size, n_sets),
                profile)

    # -- scene helpers -----------------------------------------------------

    def _built_scene(self):
        if self._scene is None:
            self._scene = _build_scene(self.trace_spec)
        return self._scene

    def _placed(self):
        if self._placements is None:
            self._placements = place_textures(
                self._built_scene().get_mipmaps(),
                layout_from_spec(self.layout_spec))
        return self._placements


def classify_streamed(streams: StreamedProfiles,
                      config: CacheConfig) -> CacheStats:
    """3C classification off streamed profiles -- bit-identical to
    :func:`~repro.core.classify.classify_misses` over the materialized
    address stream, with no per-access pass."""
    streams.prefetch([(config.line_size, 1),
                      (config.line_size, config.n_sets)])
    profile = streams.profile(config.line_size)
    set_profile = streams.set_profile(config.line_size, config.n_sets)
    # classify_misses only needs the stream for its access count; the
    # profiles carry everything else.
    stub = LineStream(line_size=config.line_size,
                      run_lines=np.empty(0, dtype=np.int64),
                      total_accesses=profile.total_accesses)
    return classify_misses(stub, config, profile=profile,
                           set_profile=set_profile)

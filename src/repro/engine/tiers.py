"""Process-level store tiers above the on-disk artifact directory.

The on-disk :class:`~repro.engine.artifacts.ArtifactStore` (T1) is
bracketed by two optional tiers, mirroring the paper's argument that a
small well-placed cache absorbs almost all traffic:

T0 -- :class:`MemoryTier`
    A byte-bounded in-process LRU of *deserialized* artifacts, shared
    by every :class:`~repro.engine.runner.Engine` and store instance in
    the process.  Entries remember the stat identities ``(size,
    mtime_ns, inode)`` of the files they came from (payload and
    sidecar) and re-stat on every hit, so anything rewritten,
    quarantined or cleared on disk reads as a miss instead of serving
    stale bytes.  Budget:
    ``REPRO_STORE_MEMORY_BYTES`` (default 256 MiB); ``REPRO_STORE_MEMORY=0``
    disables the tier.

T0 -- :class:`DigestCache`
    Verify-once SHA-256 memoization keyed by the same stat identity:
    an unchanged file is hashed at most once per process, turning the
    per-load full-file re-verify into a single ``stat``.
    ``REPRO_STORE_VERIFY=always`` restores hash-every-load.

T2 -- :class:`RemoteTier`
    An optional shared read-through directory (``REPRO_STORE_REMOTE``)
    in the same checksummed-envelope layout as the local store.  Local
    misses fetch payload+sidecar from it (atomic-rename write-back
    into the local tier, then the normal local verification -- remote
    corruption quarantines locally and falls back to recompute), and
    local publishes copy back up best-effort, so a fleet of workers
    shares one cold render.

Keeping the tiers in their own module (with no imports from
:mod:`~repro.engine.artifacts`) lets the store, the fault-injection
helpers and the CLI all reach the same process-wide instances without
an import cycle.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional

#: Default T0 budget.  Profiles and address streams at reproduction
#: scale are a few MB each, so this holds a whole experiment grid.
DEFAULT_MEMORY_BYTES = 256 * 1024 * 1024

#: Bound on digest-cache entries (each ~100 bytes); far above any real
#: store's file count, present only so a pathological scan cannot grow
#: without limit.
DIGEST_CACHE_ENTRIES = 1 << 16

#: Sentinel distinguishing "cached None" from "not cached".
MISS = object()

_FALSY = ("0", "off", "false", "no")


def file_digest(path) -> str:
    """SHA-256 of a file's bytes.  On Python >= 3.11
    :func:`hashlib.file_digest` keeps the read loop in C; the fallback
    streams 1 MiB blocks."""
    with open(path, "rb") as handle:
        if hasattr(hashlib, "file_digest"):
            return hashlib.file_digest(handle, "sha256").hexdigest()
        digest = hashlib.sha256()
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
        return digest.hexdigest()


def _stat_key(path) -> Optional[tuple]:
    """The freshness identity of a file: ``(size, mtime_ns, inode)``,
    or ``None`` when it does not exist."""
    try:
        status = os.stat(path)
    except OSError:
        return None
    return (status.st_size, status.st_mtime_ns, status.st_ino)


def mmap_enabled() -> bool:
    """Whether monolithic ``.npy`` payloads load as read-only memory
    maps (``REPRO_STORE_MMAP``, default on)."""
    return os.environ.get("REPRO_STORE_MMAP", "1").strip().lower() \
        not in _FALSY


class DigestCache:
    """Verify-once SHA-256 cache keyed by ``(path, size, mtime_ns,
    inode)``.  Thread-safe; bounded LRU."""

    def __init__(self, max_entries: int = DIGEST_CACHE_ENTRIES):
        self.max_entries = int(max_entries)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def digest(self, path) -> str:
        """The file's SHA-256, hashed at most once per (unchanged)
        file per process."""
        if os.environ.get("REPRO_STORE_VERIFY") == "always":
            return file_digest(path)
        key = str(path)
        stat = _stat_key(key)
        if stat is not None:
            with self._lock:
                entry = self._entries.get(key)
                if entry is not None and entry[0] == stat:
                    self._entries.move_to_end(key)
                    self.hits += 1
                    return entry[1]
        value = file_digest(path)
        # Re-stat *after* hashing: a file rewritten mid-hash must not
        # pin its new identity to the old content's digest.
        stat = _stat_key(key)
        with self._lock:
            self.misses += 1
            if stat is not None:
                self._entries[key] = (stat, value)
                self._entries.move_to_end(key)
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
        return value

    def record(self, path, digest: str) -> None:
        """Seed the cache for a file this process just hashed while
        publishing it, so the first verified load costs one ``stat``."""
        key = str(path)
        stat = _stat_key(key)
        if stat is None:
            return
        with self._lock:
            self._entries[key] = (stat, digest)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def invalidate(self, path=None) -> None:
        """Forget one path, or everything when ``path`` is ``None``."""
        with self._lock:
            if path is None:
                self._entries.clear()
            else:
                self._entries.pop(str(path), None)

    def invalidate_under(self, root) -> None:
        """Forget every cached digest of a file under ``root``."""
        prefix = str(root).rstrip(os.sep) + os.sep
        with self._lock:
            for key in [k for k in self._entries if k.startswith(prefix)]:
                del self._entries[key]

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {"entries": len(self._entries), "hits": self.hits,
                    "misses": self.misses,
                    "hit_rate": self.hits / lookups if lookups else 0.0}


class _Entry:
    __slots__ = ("value", "nbytes", "anchors")

    def __init__(self, value, nbytes, anchors):
        self.value = value
        self.nbytes = nbytes
        #: tuple of (path, stat_key) pairs; every one must still match
        #: on disk for the entry to count as fresh.
        self.anchors = anchors


class MemoryTier:
    """Byte-bounded process-wide LRU of deserialized artifacts (T0).

    Keys are ``(store_root, kind, fingerprint)``; every entry carries
    the stat identity of the payload file it was deserialized from and
    :meth:`get` re-stats to revalidate, so on-disk tampering, clears
    and quarantines invalidate instead of serving stale values.
    """

    def __init__(self, max_bytes: int = DEFAULT_MEMORY_BYTES):
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    def get(self, key):
        """The cached value, or :data:`MISS`.  A hit whose backing
        files changed identity on disk is dropped and reads as a
        miss."""
        with self._lock:
            entry = self._entries.get(key)
        if entry is None:
            with self._lock:
                self.misses += 1
            return MISS
        stale = any(_stat_key(path) != stat
                    for path, stat in entry.anchors)
        with self._lock:
            if stale:
                survivor = self._entries.pop(key, None)
                if survivor is not None:
                    self._bytes -= survivor.nbytes
                self.invalidations += 1
                self.misses += 1
                return MISS
            if key in self._entries:
                self._entries.move_to_end(key)
            self.hits += 1
            return entry.value

    def put(self, key, paths, value, nbytes: int) -> None:
        """Insert (write-through or fill) one deserialized artifact,
        anchored on every file in ``paths``, evicting
        least-recently-used entries past the byte budget.  A value
        larger than the whole budget is not cached."""
        nbytes = int(nbytes)
        if not self.enabled or nbytes > self.max_bytes:
            return
        if isinstance(paths, (str, Path)):
            paths = (paths,)
        anchors = []
        for path in dict.fromkeys(str(p) for p in paths):
            stat = _stat_key(path)
            if stat is None:
                return  # no durable file to revalidate against
            anchors.append((path, stat))
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = _Entry(value, nbytes, tuple(anchors))
            self._bytes += nbytes
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1

    def invalidate(self, path=None) -> None:
        """Drop entries anchored on ``path`` (every entry when
        ``None``)."""
        with self._lock:
            if path is None:
                self._entries.clear()
                self._bytes = 0
                return
            wanted = str(path)
            for key in [k for k, e in self._entries.items()
                        if any(p == wanted for p, _ in e.anchors)]:
                self._bytes -= self._entries.pop(key).nbytes
                self.invalidations += 1

    def invalidate_store(self, root) -> None:
        """Drop every entry belonging to the store rooted at
        ``root``."""
        wanted = str(root)
        with self._lock:
            for key in [k for k in self._entries if k[0] == wanted]:
                self._bytes -= self._entries.pop(key).nbytes

    def resize(self, max_bytes: int) -> None:
        """Change the byte budget, evicting down to it."""
        with self._lock:
            self.max_bytes = int(max_bytes)
            while self._bytes > self.max_bytes and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes
                self.evictions += 1

    def stats(self) -> dict:
        with self._lock:
            lookups = self.hits + self.misses
            return {"enabled": self.enabled, "max_bytes": self.max_bytes,
                    "bytes": self._bytes, "entries": len(self._entries),
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "invalidations": self.invalidations,
                    "hit_rate": self.hits / lookups if lookups else 0.0}


class RemoteTier:
    """Optional shared read-through tier (T2): a directory in the same
    ``<kind>/<fingerprint>.<suffix>`` + ``.json``-sidecar layout,
    typically on shared storage.  All transfers go through a sibling
    temp file and ``os.replace``, so readers on either side never see
    a torn file; every failure degrades to "not available" rather than
    raising into the pipeline."""

    def __init__(self, root):
        self.root = Path(root)

    @classmethod
    def from_env(cls) -> Optional["RemoteTier"]:
        raw = os.environ.get("REPRO_STORE_REMOTE")
        return cls(raw) if raw else None

    def reachable(self) -> bool:
        try:
            return self.root.is_dir()
        except OSError:
            return False

    def _copy_atomic(self, source: Path, target_dir: Path,
                     name: str) -> bool:
        temp_name = None
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            descriptor, temp_name = tempfile.mkstemp(
                dir=target_dir, suffix=".tmp" + Path(name).suffix)
            os.close(descriptor)
            shutil.copyfile(source, temp_name)
            os.replace(temp_name, target_dir / name)
            return True
        except OSError:
            if temp_name is not None:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
            return False

    def fetch(self, kind: str, name: str, local_dir) -> bool:
        """Copy one remote payload/sidecar into the local store
        directory (atomic rename).  False on any failure."""
        source = self.root / kind / name
        try:
            if not source.is_file():
                return False
        except OSError:
            return False
        return self._copy_atomic(source, Path(local_dir), name)

    def publish(self, kind: str, paths) -> int:
        """Best-effort copy of locally published files up into the
        remote tier, in the given order (payloads before their
        sidecar, so a torn upload can never verify as complete).
        Content-addressed names that already exist remotely are
        skipped; the first failure stops the batch.  Returns how many
        of ``paths`` are now present remotely."""
        directory = self.root / kind
        done = 0
        for path in paths:
            path = Path(path)
            try:
                if (directory / path.name).exists():
                    done += 1
                    continue
            except OSError:
                break
            if not self._copy_atomic(path, directory, path.name):
                break
            done += 1
        return done


def _memory_budget_from_env() -> int:
    raw = os.environ.get("REPRO_STORE_MEMORY_BYTES")
    if raw is not None:
        try:
            return max(0, int(raw))
        except ValueError:
            return DEFAULT_MEMORY_BYTES
    toggle = os.environ.get("REPRO_STORE_MEMORY")
    if toggle is not None and toggle.strip().lower() in _FALSY:
        return 0
    return DEFAULT_MEMORY_BYTES


_MEMORY = MemoryTier(_memory_budget_from_env())
_DIGESTS = DigestCache()


def memory_tier() -> MemoryTier:
    """The process-wide T0, re-reading the environment budget so tests
    and benchmarks can resize/disable it between runs."""
    budget = _memory_budget_from_env()
    if budget != _MEMORY.max_bytes:
        _MEMORY.resize(budget)
    return _MEMORY


def digest_cache() -> DigestCache:
    """The process-wide verify-once digest cache."""
    return _DIGESTS


def remote_tier() -> Optional[RemoteTier]:
    """The configured T2, or ``None`` (``REPRO_STORE_REMOTE``)."""
    return RemoteTier.from_env()


def invalidate_path(path) -> None:
    """Drop every process-level cache entry backed by ``path`` -- the
    hook on-disk tampering (tests' fault injection, quarantines) uses
    so T0 can never mask what the disk tier would detect."""
    _MEMORY.invalidate(path)
    _DIGESTS.invalidate(path)


def clear_process_caches() -> None:
    """Empty T0 and the digest cache (counters are kept)."""
    _MEMORY.invalidate(None)
    _DIGESTS.invalidate(None)

"""Multi-banked SRAM cache modelling (paper Section 7.1.2).

To read four texels per cycle, the cache is interleaved across four
independently addressed banks *at texel granularity*: "a conflict-free
address distribution which allows up to four texels to be accessed in
parallel is possible if the texels are stored in a morton order within
the cache lines.  Morton order implies that the texels are stored in
2x2 blocks.  The texels within each 2x2 block are interleaved across
the four banks and the same interleaving pattern is used for all 2x2
blocks ... to ensure that adjacent texels in abutting blocks are
assigned to different banks."

This module assigns bank numbers to texel coordinates under morton and
row-major (linear) interleaving and measures, for a real access trace,
how many filter quads can complete in a single cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pipeline.trace import TexelTrace

#: Banks in the paper's design (one bilinear quad per cycle).
N_BANKS = 4


def morton_bank(tu: np.ndarray, tv: np.ndarray) -> np.ndarray:
    """Bank id under morton (2x2-block) interleaving.

    The bank is determined by the texel coordinate parities, so any
    axis-aligned 2x2 quad -- aligned to the grid or not -- touches all
    four banks exactly once.
    """
    tu = np.asarray(tu, dtype=np.int64)
    tv = np.asarray(tv, dtype=np.int64)
    return ((tv & 1) << 1) | (tu & 1)


def linear_bank(tu: np.ndarray, tv: np.ndarray, level_width: np.ndarray) -> np.ndarray:
    """Bank id when texels are interleaved in row-major address order
    (the naive alternative the paper's morton scheme fixes).

    With power-of-two level widths, texels vertically adjacent land in
    the same bank whenever the row length is a multiple of the bank
    count -- which it always is beyond tiny levels.
    """
    tu = np.asarray(tu, dtype=np.int64)
    tv = np.asarray(tv, dtype=np.int64)
    level_width = np.asarray(level_width, dtype=np.int64)
    return (tv * level_width + tu) & (N_BANKS - 1)


@dataclass
class BankingStats:
    """Per-quad bank conflict statistics for one trace."""

    n_quads: int
    conflict_free_quads: int
    total_extra_cycles: int

    @property
    def conflict_free_fraction(self) -> float:
        return self.conflict_free_quads / self.n_quads if self.n_quads else 1.0

    @property
    def mean_cycles_per_quad(self) -> float:
        """Cycles to read one 4-texel quad (1.0 = conflict free)."""
        if self.n_quads == 0:
            return 1.0
        return 1.0 + self.total_extra_cycles / self.n_quads


def _quad_cycles(banks: np.ndarray, keys: np.ndarray) -> np.ndarray:
    """Cycles needed per quad: the max number of *distinct* texels any
    single bank must serve.  ``banks``/``keys`` have shape
    ``(n_quads, 4)``; duplicate texels inside a quad (degenerate 2x2
    footprints at the 1x1/2x1 pyramid top) are one read broadcast to
    all lerp inputs, not separate bank accesses."""
    duplicate = np.zeros(banks.shape, dtype=bool)
    for column in range(1, 4):
        for earlier in range(column):
            duplicate[:, column] |= keys[:, column] == keys[:, earlier]
    cycles = np.zeros(len(banks), dtype=np.int64)
    for bank in range(N_BANKS):
        served = (banks == bank) & ~duplicate
        cycles = np.maximum(cycles, served.sum(axis=1))
    return np.maximum(cycles, 1)


def analyze_banking(trace: TexelTrace, scheme: str = "morton",
                    level0_width: int = None) -> BankingStats:
    """Measure bank conflicts for the filter quads of ``trace``.

    Accesses are grouped in fours (each trilinear fragment contributes
    a lower-level and an upper-level quad; each bilinear fragment one
    quad) -- the unit the four-banked cache must serve per cycle.

    ``scheme`` is ``morton`` or ``linear``; ``linear`` needs
    ``level0_width`` (texels) to derive each level's row length.
    """
    n = trace.n_accesses - (trace.n_accesses % 4)
    if n == 0:
        return BankingStats(n_quads=0, conflict_free_quads=0, total_extra_cycles=0)
    tu = trace.tu[:n]
    tv = trace.tv[:n]
    if scheme == "morton":
        banks = morton_bank(tu, tv)
    elif scheme == "linear":
        if level0_width is None:
            raise ValueError("linear banking needs level0_width")
        widths = np.maximum(level0_width >> trace.level[:n].astype(np.int64), 1)
        banks = linear_bank(tu, tv, widths)
    else:
        raise ValueError(f"unknown banking scheme {scheme!r}")
    keys = (tv.astype(np.int64) << 21) | tu.astype(np.int64)
    cycles = _quad_cycles(banks.reshape(-1, 4), keys.reshape(-1, 4))
    return BankingStats(
        n_quads=len(cycles),
        conflict_free_quads=int((cycles == 1).sum()),
        total_extra_cycles=int((cycles - 1).sum()),
    )


def fragments_per_second(stats: BankingStats, machine) -> float:
    """Fragment rate once bank conflicts are accounted for.

    The machine's peak (Section 7.1.1's 50 Mfragments/s) assumes every
    filter quad completes in one cycle; bank conflicts stretch the
    average quad to ``mean_cycles_per_quad``, scaling the rate down
    proportionally.
    """
    quads_per_fragment = machine.texels_per_fragment / 4.0
    cycles_per_fragment = quads_per_fragment * stats.mean_cycles_per_quad
    return machine.clock_hz / cycles_per_fragment


def quad_is_conflict_free(tu: np.ndarray, tv: np.ndarray) -> bool:
    """True when the four texels at ``(tu, tv)`` hit distinct morton
    banks (used by tests and the Section 7.1.2 verification)."""
    banks = morton_bank(np.asarray(tu), np.asarray(tv))
    return len(set(banks.tolist())) == 4

"""Machine model for the texture mapping system (paper Section 7.1).

The paper's fragment generator runs at 100 MHz, reads four texels per
cycle from a banked (morton-interleaved) SRAM cache, and therefore
textures at most 50 million trilinear fragments per second.  A 128-byte
line fill costs roughly fifty 10 ns cycles; the machine model exposes
both the peak (latency fully hidden by prefetching, Section 7.1.1) and
latency-bound fragment rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .texcache import TexCacheParams


@dataclass(frozen=True)
class MachineModel:
    """Fragment generator and memory-system timing parameters.

    Defaults reproduce the paper's assumptions: 100 MHz clock, four
    cache ports (texels per cycle), eight texel fetches per trilinear
    fragment, and a line-fill latency of ``miss_setup_cycles`` plus one
    cycle per ``dram_bytes_per_cycle`` transferred -- 18 + 128/4 = 50
    cycles for a 128-byte line, matching Section 7.1.1.
    """

    clock_hz: float = 100e6
    texels_per_cycle: int = 4
    texels_per_fragment: int = 8
    texel_nbytes: int = 4
    miss_setup_cycles: float = 18.0
    dram_bytes_per_cycle: float = 4.0

    @property
    def peak_fragments_per_second(self) -> float:
        """Cache-port-limited fragment rate (50 M/s by default)."""
        return self.clock_hz * self.texels_per_cycle / self.texels_per_fragment

    @property
    def cycles_per_fragment(self) -> float:
        """Cycles to read one fragment's texels from the cache."""
        return self.texels_per_fragment / self.texels_per_cycle

    def miss_latency_cycles(self, line_size: int) -> float:
        """Cycles to fill one cache line from DRAM."""
        return self.miss_setup_cycles + line_size / self.dram_bytes_per_cycle

    def fragments_per_second(
        self, miss_rate: float, line_size: int, latency_hidden: bool = True
    ) -> float:
        """Achieved fragment rate at a given texture-cache miss rate.

        With ``latency_hidden`` (the paper's prefetching rasterizer,
        Section 7.1.1) the system sustains the peak rate; otherwise each
        miss stalls the pipeline for the full line-fill latency,
        "constraining the performance of the system".
        """
        if latency_hidden:
            return self.peak_fragments_per_second
        stall = miss_rate * self.texels_per_fragment * self.miss_latency_cycles(line_size)
        return self.clock_hz / (self.cycles_per_fragment + stall)

    def frame_texels(self, n_fragments: int) -> int:
        """Total texel fetches to texture ``n_fragments`` fragments."""
        return n_fragments * self.texels_per_fragment

    def texcache_params(
        self,
        line_size: int,
        fragment_fifo: int = 32,
        request_fifo: Optional[int] = None,
        reorder_buffer: Optional[int] = None,
    ) -> "TexCacheParams":
        """Three-queue timing parameters for :mod:`repro.core.texcache`.

        Derives the cycle-level fragment FIFO / request FIFO / reorder
        buffer model (Igehy et al. 1998) from this machine: fill latency
        and service interval follow ``miss_latency_cycles`` and the DRAM
        burst rate, fragment consumption follows ``cycles_per_fragment``.
        """
        from .texcache import TexCacheParams

        return TexCacheParams.from_machine(
            self,
            line_size,
            fragment_fifo=fragment_fifo,
            request_fifo=request_fifo,
            reorder_buffer=reorder_buffer,
        )


#: The paper's reference machine.
PAPER_MACHINE = MachineModel()

"""Multi-level texture cache hierarchies.

The paper studies a single SRAM level backed by DRAM, and notes the
tension it leaves open: the cache wants to be small (on-chip, low
latency, Section 3.2) yet large enough to hold the working set
(Section 5.2.3).  A standard resolution is a hierarchy: a tiny L1
tightly coupled to the filter plus a larger L2 in front of the DRAM
pool.  :func:`simulate_hierarchy` measures it: each level's miss
stream, in order, becomes the next level's access stream (exact, since
the simulation is sequential per access).

The default ``kernel="vectorized"`` path derives each level's
per-access verdicts from the per-set stack-distance kernels
(:func:`repro.core.kernels.run_outcomes`) and propagates the boolean
miss mask to carve out the next level's stream -- no per-access
Python; the original sequential loop stays selectable as the
``"reference"`` oracle and both produce identical per-level counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import kernels
from .cache import CacheStats, LRUCache, collapse_consecutive, to_lines


@dataclass
class HierarchyStats:
    """Per-level outcomes of a multi-level simulation."""

    levels: list  # CacheStats per level, L1 first

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def memory_misses(self) -> int:
        """Fetches that reach DRAM (the last level's misses)."""
        return self.levels[-1].misses

    @property
    def memory_miss_rate(self) -> float:
        """DRAM fetches over the original access count."""
        accesses = self.levels[0].accesses
        return self.memory_misses / accesses if accesses else 0.0

    def local_miss_rate(self, level: int) -> float:
        """Misses of ``level`` over *its own* access stream."""
        return self.levels[level].miss_rate


def _check_configs(configs) -> list:
    configs = list(configs)
    if not configs:
        raise ValueError("need at least one cache level")
    for inner, outer in zip(configs, configs[1:]):
        if outer.line_size < inner.line_size:
            raise ValueError(
                "outer levels need line sizes >= inner levels "
                f"({outer.line_size} < {inner.line_size})")
    return configs


def simulate_hierarchy(addresses: np.ndarray, configs,
                       kernel: str = "vectorized") -> HierarchyStats:
    """Simulate an inclusive-traffic cache hierarchy.

    ``configs`` lists :class:`CacheConfig` from L1 outward; each
    level's line size must not shrink at outer levels (an L2 line holds
    whole L1 lines).  L2 sees exactly the L1 miss sequence; each level
    is evaluated on its (already much thinner) input stream, per access.

    ``kernel="vectorized"`` (default) computes every level's hit/miss
    verdicts with the batched per-set stack-distance kernels and
    extracts the miss stream by boolean mask; ``"reference"`` drives
    the sequential :class:`LRUCache` loop.  Both are exact and produce
    identical integer counts at every level.
    """
    kernels.check_kernel(kernel)
    configs = _check_configs(configs)
    stream = np.asarray(addresses, dtype=np.int64)
    levels = []
    for config in configs:
        lines = to_lines(stream, config.line_size)
        if kernel == "vectorized":
            run_lines, _ = collapse_consecutive(lines)
            miss, cold = kernels.run_outcomes(run_lines, config)
            levels.append(CacheStats(
                config=config,
                accesses=len(lines),
                misses=int(np.count_nonzero(miss)),
                cold_misses=int(np.count_nonzero(cold)),
            ))
            miss_lines = run_lines[miss]
        else:
            cache = LRUCache(config)
            fetched = []
            previous = None
            hits = 0
            for line in lines.tolist():
                if line == previous:
                    hits += 1
                    continue
                previous = line
                if not cache.access(line):
                    fetched.append(line)
            cache.accesses += hits  # consecutive duplicates are hits
            levels.append(cache.stats())
            miss_lines = np.asarray(fetched, dtype=np.int64)
        # The next level sees the miss lines as byte addresses.
        stream = miss_lines * config.line_size
    return HierarchyStats(levels=levels)


def hierarchy_bandwidths(stats: HierarchyStats, machine) -> list:
    """Bytes/second crossing each level boundary at the machine's peak
    fragment rate; the last entry is the DRAM bandwidth."""
    accesses_per_second = (machine.texels_per_fragment
                           * machine.peak_fragments_per_second)
    total_accesses = stats.levels[0].accesses
    if total_accesses == 0:
        return [0.0] * stats.n_levels
    results = []
    for level_stats in stats.levels:
        misses_per_access = level_stats.misses / total_accesses
        results.append(misses_per_access * accesses_per_second
                       * level_stats.config.line_size)
    return results

"""Cycle-level prefetching texture cache (Igehy, Eldridge & Proudfoot,
*Prefetching in a Texture Cache Architecture*, SIGGRAPH/Eurographics
Workshop on Graphics Hardware 1998).

The source paper's Section 7.1.1 assumes a prefetching rasterizer hides
the ~50-cycle line-fill latency; Igehy et al. is the follow-on that
models the architecture precisely with three queues:

* a **fragment FIFO** of ``fragment_fifo`` entries between the tag
  check and the texture applicator -- *every* fragment traverses it,
  hit or miss, which is what lets misses overlap with the latency of
  earlier fills;
* a bounded **request FIFO** of ``request_fifo`` pending line fills
  between the tag check and the memory system -- when it is full the
  tag check (and therefore the rasterizer) stalls;
* a **reorder buffer** of ``reorder_buffer`` line slots absorbing the
  fixed-latency, pipelined DRAM returns -- a slot is reserved when the
  memory system accepts the request and freed when the owning fragment
  reaches the head of the fragment FIFO and reads its texels.

:func:`simulate_texcache` walks a per-fragment fill-count stream (from
:func:`~repro.core.prefetch.fragment_miss_counts`, i.e. the exact
per-access verdicts of :func:`~repro.core.kernels.miss_mask`) through
this machine in **integer cycles** and reports total/stall cycles and
queue occupancies.  Two implementations sit behind the repository's
``kernel={"vectorized", "reference"}`` knob:

``"reference"``
    a per-event sequential walk of the recurrences below -- the oracle;
``"vectorized"``
    a lag-blocked scan: the stream is cut into blocks short enough
    that every lagged gate (``begin[i - fragment_fifo]``,
    ``accept[j - request_fifo]``, ``accept[j - reorder_buffer]``)
    lands in an already-computed block, and within a block every
    recurrence collapses to ``np.maximum.accumulate`` over running-sum
    transforms.  All arithmetic is int64, so the two kernels agree
    cycle-exactly, and a whole axis of fill latencies is batched as
    rows of the same 2-D scans (:func:`sweep_texcache`).

Timing semantics (all quantities in cycles, fragment ``i``, fill ``j``
with ``frag(j)`` its owner, ``J(i)`` the last fill of fragment ``i``):

* tag check / fragment-FIFO entry::

      enter[i]  = max(deposit[i-1] + arrival, gate[i])
      gate[i]   = begin[i - F]            (F >= 1; the FIFO is full)
                = begin[i - 1] + consume  (F == 0; no prefetch -- the
                                           merged stage reaches i)
      deposit[i] = max(enter[i], accept[J(i) - R])   (request FIFO
                   full: the tag stage holds fragment i until its last
                   request fits)

* memory acceptance of fill ``j`` (one fill in flight per channel
  slot, a reorder-buffer slot reserved on acceptance)::

      accept[j] = max(enter[frag(j)], accept[j-1] + service[j-1],
                      begin[frag(j - B)])

  The request-FIFO bound never delays *acceptance* (``accept[j - R] <=
  accept[j-1] + service[j-1]`` for any ``R >= 1``); it acts purely as
  back-pressure on the tag stage through ``deposit``.

* pipelined return and texturing::

      return[j] = accept[j] + latency
      begin[i]  = max(begin[i-1] + consume, enter[i], return[J(i)])

``total = begin[n-1] + consume``; the ideal pipeline retires one
fragment per ``max(arrival, consume)``, and ``stall`` is the excess.

A real reorder buffer smaller than one fragment's worst-case fill
count deadlocks (fill ``j`` cannot be accepted until its own fragment
begins texturing, which waits on fill ``j``), so
:func:`simulate_texcache` raises ``ValueError`` for it up front.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from . import kernels
from .cache import CacheConfig
from .dram import PAPER_DRAM, DramModel
from .kernels import _argsort_bounded
from .machine import MachineModel
from .prefetch import fragment_miss_counts

#: "Minus infinity" for int64 cycle arithmetic: low enough to lose
#: every max, high enough that adding latencies/offsets cannot wrap.
_NEG = np.int64(-(np.int64(1) << np.int64(60)))

#: Ceiling on depth x latency grid rows solved in one blocked pass --
#: bounds the transient (events x rows) arrays in :func:`sweep_texcache`.
_SWEEP_ROW_CAP = 64


def _as_cycles(value, name: str) -> int:
    """An integral cycle count, rejecting fractional machine values."""
    cycles = int(round(float(value)))
    if abs(float(value) - cycles) > 1e-9:
        raise ValueError(f"{name} must be an integral cycle count, "
                         f"got {value!r}")
    return cycles


@dataclass(frozen=True)
class TexCacheParams:
    """The three queue depths and the pipeline's cycle constants.

    Defaults model the source paper's machine with a 128-byte line:
    fills return after 50 cycles and occupy the memory channel for 32
    (128 B at 4 B/cycle); the texture stage consumes and the
    rasterizer produces one fragment per 2 cycles (8 texels through 4
    ports).
    """

    fragment_fifo: int = 32
    request_fifo: int = 8
    reorder_buffer: int = 8
    fill_latency: int = 50
    fill_interval: int = 32
    consume_cycles: int = 2
    arrival_cycles: int = 2
    clock_hz: float = 100e6

    def __post_init__(self) -> None:
        for name, minimum in (("fragment_fifo", 0), ("request_fifo", 1),
                              ("reorder_buffer", 1), ("fill_latency", 1),
                              ("fill_interval", 1), ("consume_cycles", 1),
                              ("arrival_cycles", 1)):
            value = getattr(self, name)
            if not isinstance(value, (int, np.integer)):
                raise ValueError(f"{name} must be an integer cycle count")
            if value < minimum:
                raise ValueError(f"{name} must be >= {minimum}")

    @classmethod
    def from_machine(cls, machine: MachineModel, line_size: int,
                     fragment_fifo: int = 32,
                     request_fifo: Optional[int] = None,
                     reorder_buffer: Optional[int] = None) -> "TexCacheParams":
        """Cycle constants derived from a :class:`MachineModel`.

        The request FIFO and reorder buffer default to one fragment's
        worst case (``texels_per_fragment`` fills), the minimum that
        can never deadlock.
        """
        worst_case = int(machine.texels_per_fragment)
        consume = _as_cycles(machine.cycles_per_fragment,
                             "machine.cycles_per_fragment")
        return cls(
            fragment_fifo=int(fragment_fifo),
            request_fifo=int(request_fifo if request_fifo is not None
                             else worst_case),
            reorder_buffer=int(reorder_buffer if reorder_buffer is not None
                               else worst_case),
            fill_latency=_as_cycles(machine.miss_latency_cycles(line_size),
                                    "miss_latency_cycles"),
            fill_interval=_as_cycles(line_size / machine.dram_bytes_per_cycle,
                                     "line_size / dram_bytes_per_cycle"),
            consume_cycles=consume,
            arrival_cycles=consume,
            clock_hz=machine.clock_hz,
        )


@dataclass(frozen=True)
class TexCacheResult:
    """Integer-cycle outcome of one stream through the three queues.

    The ``*_wait`` fields are occupancy integrals (cycles summed over
    entries), so ``wait / total_cycles`` is the queue's average
    occupancy in entries.
    """

    n_fragments: int
    n_fills: int
    total_cycles: int
    ideal_cycles: int
    stall_cycles: int
    fragment_fifo_wait: int
    request_fifo_wait: int
    reorder_buffer_wait: int
    params: TexCacheParams

    @property
    def fragments_per_second(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.n_fragments / self.total_cycles * self.params.clock_hz

    @property
    def efficiency(self) -> float:
        """Achieved fragment rate over the stall-free pipeline's."""
        if self.total_cycles == 0:
            return 0.0
        return self.ideal_cycles / self.total_cycles

    @property
    def avg_fragment_fifo(self) -> float:
        return self.fragment_fifo_wait / self.total_cycles \
            if self.total_cycles else 0.0

    @property
    def avg_request_fifo(self) -> float:
        return self.request_fifo_wait / self.total_cycles \
            if self.total_cycles else 0.0

    @property
    def avg_reorder_buffer(self) -> float:
        return self.reorder_buffer_wait / self.total_cycles \
            if self.total_cycles else 0.0


def _check_streams(miss_counts: np.ndarray, services, params: TexCacheParams):
    miss_counts = np.ascontiguousarray(miss_counts, dtype=np.int64)
    if miss_counts.ndim != 1:
        raise ValueError("miss_counts must be one-dimensional")
    if len(miss_counts) and int(miss_counts.min()) < 0:
        raise ValueError("miss_counts must be non-negative")
    worst = int(miss_counts.max()) if len(miss_counts) else 0
    if worst > params.reorder_buffer:
        raise ValueError(
            f"reorder_buffer={params.reorder_buffer} deadlocks: a fragment "
            f"needs up to {worst} fills, and a fill cannot be accepted "
            "until its slot frees, which waits on the owning fragment")
    n_fills = int(miss_counts.sum())
    if services is None:
        services = np.full(n_fills, params.fill_interval, dtype=np.int64)
    else:
        services = np.ascontiguousarray(services, dtype=np.int64)
        if len(services) != n_fills:
            raise ValueError(
                f"services has {len(services)} entries for {n_fills} fills")
        if n_fills and int(services.min()) < 1:
            raise ValueError("per-fill service times must be >= 1 cycle")
    return miss_counts, services


def _timing_reference(miss_counts: np.ndarray, services: np.ndarray,
                      params: TexCacheParams, latency: int):
    """Sequential oracle: one event at a time, plain Python integers.

    Returns ``(enter, accept, begin)`` int64 arrays -- the complete
    event times, from which every reported metric derives.
    """
    F = params.fragment_fifo
    R = params.request_fifo
    B = params.reorder_buffer
    A = params.arrival_cycles
    C = params.consume_cycles
    L = int(latency)
    n = len(miss_counts)
    counts = miss_counts.tolist()
    serv = services.tolist()
    enter = [0] * n
    begin = [0] * n
    accept = []
    fill_owner = []
    deposit_prev = -A  # so enter[0] >= 0
    channel_free = 0
    j = 0
    for i in range(n):
        if F >= 1:
            gate = begin[i - F] if i >= F else None
        else:
            gate = begin[i - 1] + C if i >= 1 else 0
        e = deposit_prev + A
        if gate is not None and gate > e:
            e = gate
        m = counts[i]
        if m:
            for _ in range(m):
                base = e
                if j >= B:
                    freed = begin[fill_owner[j - B]]
                    if freed > base:
                        base = freed
                if channel_free > base:
                    base = channel_free
                accept.append(base)
                fill_owner.append(i)
                channel_free = base + serv[j]
                j += 1
            ready = accept[j - 1] + L
            deposit = e
            if j - 1 - R >= 0 and accept[j - 1 - R] > deposit:
                deposit = accept[j - 1 - R]
        else:
            ready = None
            deposit = e
        b = begin[i - 1] + C if i >= 1 else 0
        if e > b:
            b = e
        if ready is not None and ready > b:
            b = ready
        enter[i] = e
        begin[i] = b
        deposit_prev = deposit
    return (np.asarray(enter, dtype=np.int64),
            np.asarray(accept, dtype=np.int64),
            np.asarray(begin, dtype=np.int64))


def _timing_blocked(miss_counts: np.ndarray, services: np.ndarray,
                    params: TexCacheParams, depths, latencies):
    """Lag-blocked scan kernel, batched over a whole depth x latency grid.

    Returns ``(enter, accept, begin)`` with a leading axis of
    ``len(depths) * len(latencies)`` rows in depth-major order -- row
    ``d * len(latencies) + l`` is cycle-exactly the reference walk with
    ``fragment_fifo=depths[d], fill_latency=latencies[l]``
    (``params.fragment_fifo`` is ignored in favour of ``depths``).

    Blocks hold at most ``max(min(depths), 1)`` fragments *and* at most
    ``min(request_fifo, reorder_buffer)`` fills (except a block that is
    a single fragment, whose only cross-fill lag is the reorder buffer
    -- already validated ``>=`` its fill count), so every lagged gate
    resolves to a previous block for *every* FIFO depth at once and
    each recurrence becomes one ``np.maximum.accumulate`` over a
    running-sum transform.  Only the fragment-FIFO gate depends on the
    depth, so it alone is applied per depth-group of latency columns;
    the whole grid shares one pass over the blocks, which is where the
    order-of-magnitude win over per-cell sequential walks comes from.
    """
    depths = [int(depth) for depth in depths]
    lats = [int(latency) for latency in latencies]
    n_lats = len(lats)
    lat = np.asarray(np.tile(lats, len(depths)), dtype=np.int64)
    rows = lat.shape[0]
    R = params.request_fifo
    B = params.reorder_buffer
    A = np.int64(params.arrival_cycles)
    C = np.int64(params.consume_cycles)
    n = len(miss_counts)
    n_fills = len(services)
    # Event times live transposed -- (events, grid cells) -- so a
    # block is a contiguous chunk and every gather/scatter is a
    # whole-row memcpy; callers get the (grid cells, events) views.
    enter = np.empty((n, rows), dtype=np.int64)
    accept = np.empty((n_fills, rows), dtype=np.int64)
    begin = np.empty((n, rows), dtype=np.int64)
    if n == 0:
        return enter.T, accept.T, begin.T

    m = miss_counts
    cumf = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(m, out=cumf[1:])
    cumf_list = cumf.tolist()
    last_fill = cumf[1:] - 1  # J(i); only meaningful where m > 0
    fill_owner = np.repeat(np.arange(n, dtype=np.int64), m)
    serv_list = services.tolist()
    chan_prefix = np.zeros(n_fills + 1, dtype=np.int64)
    np.cumsum(services, out=chan_prefix[1:])

    F_min = min(depths)
    F_max = max(depths)
    groups = [(gi * n_lats, (gi + 1) * n_lats, F_d)
              for gi, F_d in enumerate(depths)]
    frag_cap = max(min(F_min, n), 1)
    fill_cap = min(R, B)

    # ---- block boundaries, hoisted out of the hot loop
    bounds = []  # (s, t, j0, j1)
    s = 0
    while s < n:
        t = min(n, s + frag_cap)
        j0 = cumf_list[s]
        if cumf_list[t] - j0 > fill_cap:
            limit = bisect_right(cumf_list, j0 + fill_cap) - 1
            t = max(s + 1, min(t, limit))
        bounds.append((s, t, j0, cumf_list[t]))
        s = t
    n_blocks = len(bounds)
    starts = np.fromiter((b[0] for b in bounds), dtype=np.int64,
                         count=n_blocks)
    ends = np.fromiter((b[1] for b in bounds), dtype=np.int64,
                       count=n_blocks)
    j0s = cumf[starts]
    width = int((ends - starts).max())
    arrive_row = np.arange(width, dtype=np.int64) * A
    consume_row = np.arange(width, dtype=np.int64) * C
    arrive_off = arrive_row[:, None]
    consume_off = consume_row[:, None]

    # ---- per-fill gather tables: owning block, in-block channel
    # offset (service prefix), and reorder-buffer gate sources
    if n_fills:
        blk_of_fill = np.searchsorted(j0s, np.arange(n_fills),
                                      side="right") - 1
        soff = (chan_prefix[:n_fills] -
                chan_prefix[j0s[blk_of_fill]])[:, None]
        fwidth = int((cumf[ends] - j0s).max())
        ya = np.empty((fwidth, rows), dtype=np.int64)
        ga = np.empty((fwidth, rows), dtype=np.int64)
    if n_fills > B:
        rob_src = fill_owner[:n_fills - B]  # owner of fill j - B

    # ---- per-fragment gather tables for the fill-return floor
    miss_i = np.flatnonzero(m > 0)
    blk_of_miss = np.searchsorted(starts, miss_i, side="right") - 1
    mcols = miss_i - starts[blk_of_miss]
    lf_miss = last_fill[miss_i]
    ready_add = lat[None, :] - consume_row[mcols][:, None]
    mp = np.searchsorted(miss_i, np.append(starts, n)).tolist()

    # ---- request-FIFO back-pressure: fragment i waits for
    # accept[J(i-1) - R].  Provably dominated (never binds) when every
    # latency >= arrival and the F-fragment window behind i carries at
    # most R fills: then fill J(i-1)-R belongs to a fragment i'' < i-F,
    # and accept[J(i-1)-R] + A <= begin[i''] - L + A <= begin[i-F], the
    # fragment-FIFO gate itself.  Domination for the largest F implies
    # it for every smaller one (the window only shrinks), and applying
    # a dominated max to the other depth-groups is a no-op, so one
    # conservative mask serves the whole grid; everything not provably
    # dominated is gathered exactly.
    dep_mask = np.zeros(n, dtype=bool)
    if n > 1:
        dep_mask[1:] = (m[:-1] > 0) & (last_fill[:-1] >= R)
    if int(lat.min()) >= int(A):
        if F_max == 0:
            # gate is begin[i-1] + C and owner(J(i-1)-R) <= i-1 always
            dep_mask[:] = False
        elif n > F_max:
            window = cumf[F_max:n] - cumf[0:n - F_max]
            dep_mask[F_max:] &= window > R
    dep_i = np.flatnonzero(dep_mask)
    dcols = dep_i - starts[np.searchsorted(starts, dep_i,
                                           side="right") - 1]
    dep_gd = last_fill[dep_i - 1] - R
    dep_add = (A - arrive_row[dcols])[:, None]
    dp = np.searchsorted(dep_i, np.append(starts, n)).tolist()

    ye = np.empty((width, rows), dtype=np.int64)
    yb = np.empty((width, rows), dtype=np.int64)
    gy = np.empty((width, rows), dtype=np.int64)
    carry_e = np.zeros(rows, dtype=np.int64)  # prev enter + A
    carry_b = np.zeros(rows, dtype=np.int64)  # prev begin + C
    channel_free = np.zeros(rows, dtype=np.int64)
    vmax, vadd, vsub = np.maximum, np.add, np.subtract
    accumulate = np.maximum.accumulate

    for k in range(n_blocks):
        s, t, j0, j1 = bounds[k]
        w = t - s
        ye_w = ye[:w]
        a_off = arrive_off[:w]

        # --- tag-check scan: enter[i] = max(enter[i-1] + A, floor[i]);
        # the fragment-FIFO gate is the one depth-dependent term, so it
        # is applied per depth-group of latency columns.
        for c0, c1, F_d in groups:
            ye_g = ye_w[:, c0:c1]
            if F_d >= 1:
                if s >= F_d:
                    vsub(begin[s - F_d:t - F_d, c0:c1], a_off, out=ye_g)
                else:
                    ye_g[...] = _NEG
                    lo = F_d - s  # first in-block index with a gate
                    if lo < w:
                        vsub(begin[0:t - F_d, c0:c1], a_off[lo:],
                             out=ye_g[lo:])
            else:
                # F == 0: the merged stage reaches fragment i; blocks
                # hold exactly one fragment.
                if s:
                    vadd(begin[s - 1:t - 1, c0:c1], C, out=ye_g)
                else:
                    ye_g[...] = 0
        d0, d1 = dp[k], dp[k + 1]
        if d0 < d1:
            g = gy[:d1 - d0]
            accept.take(dep_gd[d0:d1], axis=0, out=g)
            g += dep_add[d0:d1]
            if d1 - d0 == w:
                vmax(ye_w, g, out=ye_w)
            else:
                cols = dcols[d0:d1]
                ye_w[cols] = vmax(ye_w[cols], g)
        vmax(ye_w[0], carry_e, out=ye_w[0])
        accumulate(ye_w, axis=0, out=ye_w)
        vadd(ye_w, a_off, out=enter[s:t])
        vadd(enter[t - 1], A, out=carry_e)

        # --- memory-channel scan over the block's fills
        nf = j1 - j0
        if nf:
            ya_w = ya[:nf]
            so = soff[j0:j1]
            enter.take(fill_owner[j0:j1], axis=0, out=ya_w)
            ya_w -= so
            if j1 > B:
                k0 = max(j0, B)
                r0 = k0 - j0
                g = ga[:j1 - k0]
                begin.take(rob_src[k0 - B:j1 - B], axis=0, out=g)
                g -= soff[k0:j1]
                tail = ya[r0:nf] if r0 else ya_w
                vmax(tail, g, out=tail)
            vmax(ya_w[0], channel_free, out=ya_w[0])
            accumulate(ya_w, axis=0, out=ya_w)
            vadd(ya_w, so, out=accept[j0:j1])
            vadd(accept[j1 - 1], serv_list[j1 - 1], out=channel_free)

        # --- texture-stage scan: begin[i] = max(begin[i-1] + C,
        #     enter[i], accept[J(i)] + latency); acceptance is
        #     nondecreasing, so the last fill is the latest return.
        yb_w = yb[:w]
        c_off = consume_off[:w]
        vsub(enter[s:t], c_off, out=yb_w)
        p0, p1 = mp[k], mp[k + 1]
        if p0 < p1:
            g = gy[:p1 - p0]
            accept.take(lf_miss[p0:p1], axis=0, out=g)
            g += ready_add[p0:p1]
            if p1 - p0 == w:
                vmax(yb_w, g, out=yb_w)
            else:
                cols = mcols[p0:p1]
                yb_w[cols] = vmax(yb_w[cols], g)
        vmax(yb_w[0], carry_b, out=yb_w[0])
        accumulate(yb_w, axis=0, out=yb_w)
        vadd(yb_w, c_off, out=begin[s:t])
        vadd(begin[t - 1], C, out=carry_b)
    return enter.T, accept.T, begin.T


def _result_from_times(miss_counts, params: TexCacheParams,
                       enter, accept, begin) -> TexCacheResult:
    """Shared (vectorized) epilogue: metrics from the event times."""
    n = len(miss_counts)
    n_fills = len(accept)
    A = params.arrival_cycles
    C = params.consume_cycles
    R = params.request_fifo
    if n == 0:
        return TexCacheResult(0, 0, 0, 0, 0, 0, 0, 0, params)
    total = int(begin[-1]) + C
    ideal = (n - 1) * max(A, C) + C
    frag_wait = int(np.subtract(begin, enter, dtype=np.int64).sum())
    if n_fills:
        fill_owner = np.repeat(np.arange(n, dtype=np.int64), miss_counts)
        deposit = enter[fill_owner]
        if n_fills > R:
            deposit = deposit.copy()
            np.maximum(deposit[R:], accept[:-R], out=deposit[R:])
        req_wait = int((accept - deposit).sum())
        # A reorder-buffer slot is reserved from acceptance until the
        # owning fragment reads its texels.
        rob_wait = int((begin[fill_owner] - accept).sum())
    else:
        req_wait = 0
        rob_wait = 0
    return TexCacheResult(
        n_fragments=n, n_fills=n_fills, total_cycles=total,
        ideal_cycles=ideal, stall_cycles=total - ideal,
        fragment_fifo_wait=frag_wait, request_fifo_wait=req_wait,
        reorder_buffer_wait=rob_wait, params=params)


def _grid_results(miss_counts, params: TexCacheParams, depths, latencies,
                  enter, accept, begin) -> dict:
    """Epilogue for a whole grid: metrics vectorized across the rows.

    ``enter``/``accept``/``begin`` are the (rows, events) views from
    :func:`_timing_blocked` in depth-major order; every reduction runs
    once over the (events, rows) bases instead of once per cell.
    """
    n = len(miss_counts)
    n_lats = len(latencies)
    A = params.arrival_cycles
    C = params.consume_cycles
    R = params.request_fifo
    cells = [(depth, latency) for depth in depths for latency in latencies]
    if n == 0:
        return {(depth, latency): TexCacheResult(
            0, 0, 0, 0, 0, 0, 0, 0,
            replace(params, fragment_fifo=depth, fill_latency=latency))
            for depth, latency in cells}
    eb, ab, bb = enter.T, accept.T, begin.T  # (events, rows) bases
    n_fills = len(ab)
    rows = eb.shape[1]
    total = bb[-1] + C
    ideal = (n - 1) * max(A, C) + C
    frag_wait = (bb - eb).sum(axis=0)
    if n_fills:
        fill_owner = np.repeat(np.arange(n, dtype=np.int64), miss_counts)
        deposit = eb[fill_owner]
        if n_fills > R:
            np.maximum(deposit[R:], ab[:-R], out=deposit[R:])
        req_wait = (ab - deposit).sum(axis=0)
        # A reorder-buffer slot is reserved from acceptance until the
        # owning fragment reads its texels.
        rob_wait = (bb[fill_owner] - ab).sum(axis=0)
    else:
        req_wait = rob_wait = np.zeros(rows, dtype=np.int64)
    results = {}
    for d, depth in enumerate(depths):
        for row, latency in enumerate(latencies):
            r = d * n_lats + row
            cell = replace(params, fragment_fifo=depth,
                           fill_latency=latency)
            results[(depth, latency)] = TexCacheResult(
                n_fragments=n, n_fills=n_fills,
                total_cycles=int(total[r]), ideal_cycles=ideal,
                stall_cycles=int(total[r]) - ideal,
                fragment_fifo_wait=int(frag_wait[r]),
                request_fifo_wait=int(req_wait[r]),
                reorder_buffer_wait=int(rob_wait[r]), params=cell)
    return results


def simulate_texcache(miss_counts: np.ndarray, params: TexCacheParams,
                      services: Optional[np.ndarray] = None,
                      kernel: str = "vectorized") -> TexCacheResult:
    """Run one fill-count stream through the three-queue machine.

    ``miss_counts[i]`` is fragment ``i``'s line-fill count (from
    :func:`~repro.core.prefetch.fragment_miss_counts`); ``services``
    optionally gives each fill's memory-channel occupancy in cycles
    (e.g. :func:`fill_service_cycles` for page-mode DRAM timing),
    defaulting to the uniform ``params.fill_interval``.
    """
    kernels.check_kernel(kernel)
    miss_counts, services = _check_streams(miss_counts, services, params)
    latency = params.fill_latency
    if kernel == "vectorized":
        enter, accept, begin = (x[0] for x in _timing_blocked(
            miss_counts, services, params, [params.fragment_fifo],
            [latency]))
    else:
        enter, accept, begin = _timing_reference(
            miss_counts, services, params, latency)
    return _result_from_times(miss_counts, params, enter, accept, begin)


def sweep_texcache(miss_counts: np.ndarray, params: TexCacheParams,
                   depths, latencies=None,
                   services: Optional[np.ndarray] = None,
                   kernel: str = "vectorized") -> dict:
    """Igehy's latency-tolerance grid: ``{(fragment_fifo, fill_latency):
    TexCacheResult}`` over FIFO ``depths`` x fill ``latencies``.

    The vectorized kernel batches the whole latency axis of one depth
    as rows of the same 2-D scans (the block structure depends only on
    the depth), which is where the order-of-magnitude win over the
    per-cell sequential walk comes from.
    """
    kernels.check_kernel(kernel)
    if latencies is None:
        latencies = (params.fill_latency,)
    latencies = [int(latency) for latency in latencies]
    depths = [int(depth) for depth in depths]
    if not depths or not latencies:
        return {}
    counts, serv = _check_streams(miss_counts, services, params)
    results = {}
    if kernel == "vectorized":
        # One blocked pass covers a whole batch of depths (block width
        # = the batch's smallest depth, so batch neighbours); cap the
        # grid rows per pass to bound the (events x rows) transients.
        group = max(1, _SWEEP_ROW_CAP // max(len(latencies), 1))
        ordered = sorted(set(depths))
        for lo in range(0, len(ordered), group):
            batch = ordered[lo:lo + group]
            enter, accept, begin = _timing_blocked(
                counts, serv, params, batch, latencies)
            results.update(_grid_results(
                counts, params, batch, latencies, enter, accept, begin))
        results = {(depth, latency): results[(depth, latency)]
                   for depth in depths for latency in latencies}
    else:
        for depth in depths:
            for latency in latencies:
                run = replace(params, fragment_fifo=depth,
                              fill_latency=latency)
                enter, accept, begin = _timing_reference(
                    counts, serv, run, latency)
                results[(depth, latency)] = _result_from_times(
                    counts, run, enter, accept, begin)
    return results


def fill_service_cycles(fill_lines: np.ndarray, line_size: int,
                        dram: DramModel = PAPER_DRAM,
                        kernel: str = "vectorized") -> np.ndarray:
    """Per-fill memory-channel occupancy for a miss-line stream.

    ``fill_lines`` is the line-address sequence from
    :func:`~repro.core.kernels.miss_stream`; each fill bursts a whole
    line, paying ``row_cycles`` extra exactly where its row differs
    from the previous fill *of the same bank* (the decomposition behind
    :meth:`DramModel.access_cycles`, kept per access here), so the
    services sum to ``dram.access_cycles(fill_lines * line_size,
    line_size)``.
    """
    kernels.check_kernel(kernel)
    addresses = np.asarray(fill_lines, dtype=np.int64) * int(line_size)
    beats = max(-(-int(line_size) // dram.beat_nbytes), 1)
    burst = np.int64(beats * dram.col_cycles)
    bank, row = dram.bank_and_row(addresses)
    n = len(bank)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if kernel == "vectorized":
        order = _argsort_bounded(bank, dram.n_banks)
        grouped_bank = bank[order]
        grouped_row = row[order]
        grouped_switch = np.empty(n, dtype=bool)
        grouped_switch[0] = True
        np.not_equal(grouped_row[1:], grouped_row[:-1],
                     out=grouped_switch[1:])
        grouped_switch[1:] |= grouped_bank[1:] != grouped_bank[:-1]
        switch = np.empty(n, dtype=bool)
        switch[order] = grouped_switch
    else:
        open_rows = np.full(dram.n_banks, -1, dtype=np.int64)
        switch = np.empty(n, dtype=bool)
        for index, (b, r) in enumerate(zip(bank.tolist(), row.tolist())):
            switch[index] = open_rows[b] != r
            open_rows[b] = r
    return burst + np.int64(dram.row_cycles) * switch


def fragment_fill_streams(addresses: np.ndarray, config: CacheConfig,
                          accesses_per_fragment: int = 8,
                          dram: Optional[DramModel] = None,
                          kernel: str = "vectorized"):
    """``(miss_counts, services)`` for a byte-address stream.

    Folds the exact per-access outcomes into per-fragment fill counts
    and, when ``dram`` is given, derives each fill's page-mode service
    time from the miss-line stream; with ``dram=None`` the services
    are ``None`` (the uniform ``fill_interval`` applies).  Trailing
    accesses short of a whole fragment are dropped, consistently for
    both streams.
    """
    addresses = np.asarray(addresses, dtype=np.int64).ravel()
    whole = len(addresses) - (len(addresses) % accesses_per_fragment)
    miss_counts = fragment_miss_counts(
        addresses[:whole], config,
        accesses_per_fragment=accesses_per_fragment, kernel=kernel)
    services = None
    if dram is not None:
        fills = kernels.miss_stream(addresses[:whole], config)
        services = fill_service_cycles(fills, config.line_size, dram,
                                       kernel=kernel)
    return miss_counts, services

"""Latency hiding by prefetching (paper Section 7.1.1).

The paper's machine hides the ~50-cycle line-fill latency by
rasterizing each triangle twice: a *prefetch* rasterizer computes texel
addresses ahead of time and issues fills for missing lines; a FIFO
buffer carries the addresses to the *texture* rasterizer, which reads
the (by then resident) texels.  If the FIFO is too shallow -- or absent
-- the texture stage stalls on every miss and "the memory latency would
constrain the performance of the system".

:class:`PrefetchPipeline` is a two-stage timing model over a real
miss sequence: the prefetcher runs ``fifo_depth`` fragments ahead of
the texture stage, fills are pipelined through a memory channel that
serves one line every ``fill_interval`` cycles after ``latency``
cycles, and the texture stage consumes one fragment per
``cycles_per_fragment``.  The output is the achieved fragment rate,
which reaches the machine's peak once the FIFO is deep enough to cover
``latency``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import kernels
from .cache import CacheConfig, LRUCache, to_lines
from .machine import PAPER_MACHINE, MachineModel


def fragment_miss_counts(
    addresses: np.ndarray, config: CacheConfig,
    accesses_per_fragment: int = 8, kernel: str = "vectorized",
) -> np.ndarray:
    """Number of cache misses in each fragment's texel quadruple/octet.

    Per-access outcomes (not aggregates) are needed here, folded per
    fragment; trailing accesses that do not fill a whole fragment are
    dropped.  ``kernel="vectorized"`` (default) reads the outcomes off
    :func:`repro.core.kernels.line_miss_mask` and reshapes;
    ``"reference"`` walks the sequential :class:`LRUCache`.  Both are
    exact per access.
    """
    kernels.check_kernel(kernel)
    lines = to_lines(addresses, config.line_size)
    n = len(lines) - (len(lines) % accesses_per_fragment)
    if kernel == "vectorized":
        outcomes = kernels.line_miss_mask(lines[:n], config)
    else:
        cache = LRUCache(config)
        outcomes = np.empty(n, dtype=bool)
        for index, line in enumerate(lines[:n].tolist()):
            outcomes[index] = not cache.access(line)
    return outcomes.reshape(-1, accesses_per_fragment).sum(axis=1)


@dataclass
class PrefetchResult:
    """Timing outcome of one pipeline run."""

    n_fragments: int
    total_cycles: float
    stall_cycles: float
    machine: MachineModel

    @property
    def fragments_per_second(self) -> float:
        if self.total_cycles == 0:
            return 0.0
        return self.n_fragments / self.total_cycles * self.machine.clock_hz

    @property
    def efficiency(self) -> float:
        """Achieved rate over the machine's port-limited peak."""
        peak_cycles = self.n_fragments * self.machine.cycles_per_fragment
        return peak_cycles / self.total_cycles if self.total_cycles else 0.0


class PrefetchPipeline:
    """Two-stage prefetch timing model.

    Parameters
    ----------
    machine:
        Clock, port width, and line-fill latency model.
    fifo_depth:
        How many fragments the prefetch rasterizer may run ahead of the
        texture rasterizer.  Depth 0 models a system with no
        prefetching: every miss exposes the full fill latency.
    fill_interval:
        Cycles between successive line-fill completions once the
        memory pipeline is streaming (bus occupancy per line); defaults
        to ``line_size / dram_bytes_per_cycle``.
    """

    def __init__(self, machine: MachineModel = PAPER_MACHINE,
                 fifo_depth: int = 32, fill_interval: float = None):
        if fifo_depth < 0:
            raise ValueError("fifo_depth must be >= 0")
        self.machine = machine
        self.fifo_depth = fifo_depth
        self.fill_interval = fill_interval

    def run(self, miss_counts: np.ndarray, line_size: int) -> PrefetchResult:
        """Walk fragments through the two-stage pipeline.

        ``miss_counts[i]`` is the number of line fills fragment ``i``
        needs (from :func:`fragment_miss_counts`).
        """
        machine = self.machine
        latency = machine.miss_latency_cycles(line_size)
        interval = self.fill_interval
        if interval is None:
            interval = line_size / machine.dram_bytes_per_cycle
        consume = machine.cycles_per_fragment

        # The prefetcher may issue fragment i's fills once the texture
        # stage has consumed fragment i - fifo_depth; fills stream
        # through the memory channel one per `interval` after `latency`.
        memory_free = 0.0
        ready_at = np.zeros(len(miss_counts))
        texture_time = 0.0
        stall = 0.0
        finish = np.zeros(len(miss_counts))
        for index, misses in enumerate(miss_counts.tolist()):
            if self.fifo_depth > 0:
                gate_index = index - self.fifo_depth
                prefetch_time = finish[gate_index] if gate_index >= 0 else 0.0
            else:
                # No prefetch: fills start when the texture stage
                # reaches the fragment itself.
                prefetch_time = texture_time
            if misses:
                start = max(memory_free, prefetch_time)
                memory_free = start + misses * interval
                ready_at[index] = start + (misses - 1) * interval + latency
            else:
                ready_at[index] = 0.0
            begin = max(texture_time, ready_at[index])
            stall += begin - texture_time
            texture_time = begin + consume
            finish[index] = texture_time
        return PrefetchResult(
            n_fragments=len(miss_counts),
            total_cycles=texture_time,
            stall_cycles=stall,
            machine=machine,
        )


def sweep_fifo_depths(miss_counts: np.ndarray, line_size: int, depths,
                      machine: MachineModel = PAPER_MACHINE,
                      fill_interval: float = None) -> dict:
    """Achieved fragment rate for each FIFO depth."""
    return {
        depth: PrefetchPipeline(machine, fifo_depth=depth,
                                fill_interval=fill_interval).run(miss_counts, line_size)
        for depth in depths
    }
